//! The probe-tier daemon: a [`PingerAgent`] owns one host group's
//! pinglists and serves the controller's frame stream.
//!
//! An agent is a pure protocol machine. It holds the authoritative copy
//! of every pinglist dispatched to its group, applies per-entry diffs
//! with the *identical* procedure the dispatch module defines
//! ([`apply_list_update`]) — so a list rebuilt from diffs is
//! bit-identical to the controller's copy, enforced end-to-end by the
//! [`ListSeal`](crate::Frame::ListSeal) stamp — and caches bound
//! [`PingerBatch`]es keyed on `(version, stamp)` exactly like the
//! single-process runtime's binding cache. Probe outcomes are a pure
//! function of `(list, window seed)` via
//! [`batch_seed`](detector_system::batch_seed), which is what makes the
//! distributed run provably equivalent to sequential stepping.

use std::collections::HashMap;

use detector_core::types::NodeId;
use detector_system::dispatch::{apply_list_update, ListUpdate};
use detector_system::{DataPlane, PingerBatch, Pinglist, SystemConfig};
use detector_topology::SharedTopology;

use crate::frame::Frame;
use crate::transport::{Transport, TransportError};

/// Why an agent's serve loop stopped.
#[derive(Clone, Debug, PartialEq)]
pub enum AgentExit {
    /// The controller sent [`Frame::Shutdown`]: orderly teardown.
    Shutdown,
    /// The transport failed (controller gone, or this agent's simulated
    /// crash budget ran out).
    Transport(TransportError),
    /// The controller violated the protocol (e.g. a diff whose rebuilt
    /// list missed its seal stamp).
    Protocol(&'static str),
}

/// In-flight per-entry edits for one list, accumulated between the first
/// `EntryAdd`/`EntryRemove` and the closing `ListSeal`.
#[derive(Default)]
struct PendingDiff {
    removed: Vec<u64>,
    added: Vec<(u32, detector_system::PingEntry)>,
}

/// One probe-tier daemon: owns a host group's pinglists and runs their
/// probe windows on command.
pub struct PingerAgent {
    id: u32,
    topo: SharedTopology,
    cfg: SystemConfig,
    /// Authoritative dispatched lists, keyed by pinger.
    lists: HashMap<NodeId, Pinglist>,
    /// Bound batches cached across windows; re-bound iff the list's
    /// `(version, stamp)` changed — the same rule as the single-process
    /// runtime's binding cache.
    batches: HashMap<NodeId, PingerBatch>,
    /// Diffs being accumulated toward their `ListSeal`.
    pending: HashMap<NodeId, PendingDiff>,
}

impl PingerAgent {
    /// A fresh agent with no dispatched state.
    pub fn new(id: u32, topo: SharedTopology, cfg: SystemConfig) -> Self {
        Self {
            id,
            topo,
            cfg,
            lists: HashMap::new(),
            batches: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    /// The agent's ordinal (its host-group index).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of lists currently dispatched to this agent.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Serves the controller until shutdown or failure: sends `Hello`,
    /// then answers every frame in arrival order. Probing runs inline on
    /// this thread (one agent = one host group = one probe worker).
    pub fn serve(mut self, transport: &dyn Transport, dataplane: &dyn DataPlane) -> AgentExit {
        if let Err(e) = transport.send(&Frame::Hello { agent: self.id }) {
            return AgentExit::Transport(e);
        }
        loop {
            let frame = match transport.recv() {
                Ok(f) => f,
                Err(e) => return AgentExit::Transport(e),
            };
            match self.handle(frame, transport, dataplane) {
                Ok(true) => {}
                Ok(false) => return AgentExit::Shutdown,
                Err(exit) => return exit,
            }
        }
    }

    /// Processes one frame; `Ok(false)` means orderly shutdown.
    fn handle(
        &mut self,
        frame: Frame,
        transport: &dyn Transport,
        dataplane: &dyn DataPlane,
    ) -> Result<bool, AgentExit> {
        match frame {
            Frame::ListReplace(list) => {
                self.pending.remove(&list.pinger);
                self.apply(&ListUpdate::Replace(list))?;
            }
            Frame::ListRemove { pinger } => {
                self.pending.remove(&pinger);
                self.apply(&ListUpdate::Remove(pinger))?;
            }
            Frame::EntryRemove { pinger, key } => {
                self.pending.entry(pinger).or_default().removed.push(key);
            }
            Frame::EntryAdd {
                pinger,
                index,
                entry,
            } => {
                self.pending
                    .entry(pinger)
                    .or_default()
                    .added
                    .push((index, entry));
            }
            Frame::ListSeal {
                pinger,
                version,
                stamp,
            } => {
                let diff = self.pending.remove(&pinger).unwrap_or_default();
                self.apply(&ListUpdate::Diff {
                    pinger,
                    version,
                    stamp,
                    removed: diff.removed,
                    added: diff.added,
                })?;
            }
            Frame::RangeRebase { .. } => {
                // Range metadata only: the rebased entries themselves
                // travel as remove + add pairs, so there is nothing to
                // edit here. A real deployment would retire stale
                // counters of the old id range; the simulated pinger
                // keeps no cross-window counters.
            }
            Frame::Reset => {
                self.lists.clear();
                self.batches.clear();
                self.pending.clear();
            }
            Frame::WindowStart {
                window,
                window_seed,
                skip,
            } => {
                self.run_window(window, window_seed, &skip, transport, dataplane)?;
            }
            Frame::HeartbeatReq { nonce } => {
                transport
                    .send(&Frame::HeartbeatAck {
                        nonce,
                        agent: self.id,
                    })
                    .map_err(AgentExit::Transport)?;
            }
            Frame::Shutdown => return Ok(false),
            Frame::Hello { .. }
            | Frame::HeartbeatAck { .. }
            | Frame::Report(_)
            | Frame::WindowDone { .. } => {
                return Err(AgentExit::Protocol(
                    "agent-bound stream carried a controller-bound frame",
                ));
            }
        }
        Ok(true)
    }

    /// Applies one list update through the shared dispatch procedure and
    /// invalidates the affected binding.
    fn apply(&mut self, update: &ListUpdate) -> Result<(), AgentExit> {
        let pinger = update.pinger();
        if !apply_list_update(&mut self.lists, update) {
            // The seal stamp is an end-to-end checksum over the rebuilt
            // list; the controller only diffs when the diff provably
            // reproduces its copy, so a miss means the streams diverged.
            return Err(AgentExit::Protocol("diff failed its seal stamp"));
        }
        // Cheap and safe: drop the binding, let the next window's
        // bound_to check rebuild it only if (version, stamp) changed.
        self.batches.remove(&pinger);
        Ok(())
    }

    /// Probes every owned list not in `skip` and streams the reports
    /// back, closing the window with `WindowDone`. Lists run in pinger
    /// order; outcomes don't depend on that order (each batch derives
    /// its own RNG stream from the window seed), it just keeps the wire
    /// trace deterministic.
    fn run_window(
        &mut self,
        window: u64,
        window_seed: u64,
        skip: &[NodeId],
        transport: &dyn Transport,
        dataplane: &dyn DataPlane,
    ) -> Result<(), AgentExit> {
        let mut pingers: Vec<NodeId> = self.lists.keys().copied().collect();
        pingers.sort_unstable();
        for pinger in pingers {
            if skip.contains(&pinger) {
                continue;
            }
            let list = &self.lists[&pinger];
            let stale = self.batches.get(&pinger).is_none_or(|b| !b.bound_to(list));
            if stale {
                self.batches
                    .insert(pinger, PingerBatch::bind(list.clone(), self.topo.graph()));
            }
            let report =
                self.batches[&pinger].run_window(dataplane, &self.cfg, window, window_seed);
            transport
                .send(&Frame::Report(report))
                .map_err(AgentExit::Transport)?;
        }
        transport
            .send(&Frame::WindowDone {
                window,
                agent: self.id,
            })
            .map_err(AgentExit::Transport)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback;
    use detector_simnet::Fabric;
    use detector_system::Detector;
    use detector_topology::Fattree;
    use std::sync::Arc;

    fn fattree_lists() -> (SharedTopology, Vec<Pinglist>) {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let det = Detector::new(ft.clone(), SystemConfig::default()).unwrap();
        let lists = det.pinglists().to_vec();
        (ft as SharedTopology, lists)
    }

    #[test]
    fn agent_probes_dispatched_lists_and_reports() {
        let (topo, lists) = fattree_lists();
        let fabric = Fabric::quiet(topo.as_ref());
        let (ctrl, agent_end) = loopback();
        let own: Vec<Pinglist> = lists.into_iter().take(2).collect();
        let expected: Vec<NodeId> = {
            let mut p: Vec<NodeId> = own.iter().map(|l| l.pinger).collect();
            p.sort_unstable();
            p
        };

        let agent = PingerAgent::new(0, topo.clone(), SystemConfig::default());
        let exit = crossbeam::thread::scope(|scope| {
            let handle = scope.spawn(|_| agent.serve(&agent_end, &fabric));
            assert_eq!(ctrl.recv().unwrap(), Frame::Hello { agent: 0 });
            for l in &own {
                ctrl.send(&Frame::ListReplace(l.clone())).unwrap();
            }
            ctrl.send(&Frame::WindowStart {
                window: 0,
                window_seed: 42,
                skip: Vec::new(),
            })
            .unwrap();
            let mut reporters = Vec::new();
            loop {
                match ctrl.recv().unwrap() {
                    Frame::Report(r) => {
                        assert_eq!(r.window, 0);
                        assert!(r.total_sent() > 0);
                        reporters.push(r.pinger);
                    }
                    Frame::WindowDone { window, agent } => {
                        assert_eq!((window, agent), (0, 0));
                        break;
                    }
                    other => panic!("unexpected frame {other:?}"),
                }
            }
            assert_eq!(reporters, expected);
            ctrl.send(&Frame::Shutdown).unwrap();
            handle.join().unwrap()
        })
        .unwrap();
        assert_eq!(exit, AgentExit::Shutdown);
    }

    #[test]
    fn skip_set_and_heartbeats_are_honored() {
        let (topo, lists) = fattree_lists();
        let fabric = Fabric::quiet(topo.as_ref());
        let (ctrl, agent_end) = loopback();
        let own = lists[0].clone();
        let skipped = own.pinger;

        let agent = PingerAgent::new(3, topo.clone(), SystemConfig::default());
        crossbeam::thread::scope(|scope| {
            let handle = scope.spawn(|_| agent.serve(&agent_end, &fabric));
            assert_eq!(ctrl.recv().unwrap(), Frame::Hello { agent: 3 });
            ctrl.send(&Frame::ListReplace(own.clone())).unwrap();
            ctrl.send(&Frame::HeartbeatReq { nonce: 5 }).unwrap();
            assert_eq!(
                ctrl.recv().unwrap(),
                Frame::HeartbeatAck { nonce: 5, agent: 3 }
            );
            // The only owned pinger is skipped: the window yields no
            // reports, just its WindowDone.
            ctrl.send(&Frame::WindowStart {
                window: 7,
                window_seed: 1,
                skip: vec![skipped],
            })
            .unwrap();
            assert_eq!(
                ctrl.recv().unwrap(),
                Frame::WindowDone {
                    window: 7,
                    agent: 3
                }
            );
            ctrl.send(&Frame::Shutdown).unwrap();
            assert_eq!(handle.join().unwrap(), AgentExit::Shutdown);
        })
        .unwrap();
    }

    #[test]
    fn reset_drops_all_dispatched_state() {
        let (topo, lists) = fattree_lists();
        let fabric = Fabric::quiet(topo.as_ref());
        let (ctrl, agent_end) = loopback();
        let agent = PingerAgent::new(1, topo.clone(), SystemConfig::default());
        crossbeam::thread::scope(|scope| {
            let handle = scope.spawn(|_| agent.serve(&agent_end, &fabric));
            assert_eq!(ctrl.recv().unwrap(), Frame::Hello { agent: 1 });
            ctrl.send(&Frame::ListReplace(lists[0].clone())).unwrap();
            ctrl.send(&Frame::Reset).unwrap();
            ctrl.send(&Frame::WindowStart {
                window: 0,
                window_seed: 9,
                skip: Vec::new(),
            })
            .unwrap();
            // No lists survive the reset: straight to WindowDone.
            assert_eq!(
                ctrl.recv().unwrap(),
                Frame::WindowDone {
                    window: 0,
                    agent: 1
                }
            );
            ctrl.send(&Frame::Shutdown).unwrap();
            assert_eq!(handle.join().unwrap(), AgentExit::Shutdown);
        })
        .unwrap();
    }

    #[test]
    fn controller_bound_frames_are_a_protocol_error() {
        let (topo, _) = fattree_lists();
        let fabric = Fabric::quiet(topo.as_ref());
        let (ctrl, agent_end) = loopback();
        let agent = PingerAgent::new(0, topo.clone(), SystemConfig::default());
        crossbeam::thread::scope(|scope| {
            let handle = scope.spawn(|_| agent.serve(&agent_end, &fabric));
            assert_eq!(ctrl.recv().unwrap(), Frame::Hello { agent: 0 });
            ctrl.send(&Frame::WindowDone {
                window: 0,
                agent: 0,
            })
            .unwrap();
            match handle.join().unwrap() {
                AgentExit::Protocol(_) => {}
                other => panic!("expected protocol error, got {other:?}"),
            }
        })
        .unwrap();
    }
}
