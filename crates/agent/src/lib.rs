//! deTector's distributed control plane: a wire-protocol agent tier.
//!
//! The single-process [`Detector`](detector_system::Detector) runs the
//! controller, every pinger and the diagnoser in one address space. This
//! crate splits the deployment the way the paper does (§ "deTector
//! architecture"): a **controller tier** ([`DistributedDetector`]) owns
//! planning, dispatch and diagnosis, and a **probe tier** of
//! [`PingerAgent`] daemons — one per host group — owns the
//! `PingerBatch`es and streams reports back.
//!
//! The two tiers speak a hand-rolled, registry-free protocol of
//! length-prefixed [`Frame`]s over a [`Transport`]: an in-process
//! [`loopback`] pair for CI (with [`flaky_loopback`] fault injection)
//! or a [`TcpTransport`] for real two-process deployments. Pinglists
//! are dispatched *incrementally*: after the initial sync, a changed
//! list travels as per-entry `EntryAdd`/`EntryRemove` frames sealed by
//! a checksum (`ListSeal`), so dispatch bytes scale with the plan
//! *delta* rather than the fleet — the frame sizes are pinned test-by-
//! test to the [`dispatch`](detector_system::dispatch) cost model.
//!
//! Failure handling is degrade-not-stall: a dead agent (missed
//! heartbeat, closed transport, scripted crash) turns into
//! `PingerUnhealthy` for its host group and the window completes
//! without it. [`DistributedDetector::run_distributed`] is proven
//! equivalent to the sequential oracle via [`DistScript::oracle`].

mod agent;
mod frame;
mod runtime;
mod transport;

pub use agent::{AgentExit, PingerAgent};
pub use frame::{Frame, FrameError, MAX_FRAME};
pub use runtime::{DistAction, DistError, DistOutcome, DistScript, DistributedDetector};
pub use transport::{
    flaky_loopback, loopback, ControlTransport, LoopbackEnd, TcpTransport, Transport,
    TransportError,
};
