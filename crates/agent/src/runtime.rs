//! The controller tier: [`DistributedDetector`] drives probe windows
//! over a fleet of [`PingerAgent`](crate::PingerAgent)s and is proven
//! equivalent to the single-process sequential oracle.
//!
//! # Equivalence contract
//!
//! [`DistributedDetector::run_distributed`] emits the *identical* event
//! stream and [`WindowResult`]s as
//! [`Detector::run_scripted`](detector_system::Detector::run_scripted)
//! over [`DistScript::oracle`]'s expansion of the same script — up to
//! the wall-clock `replan_micros` field of `PlanUpdated`. The pillars:
//!
//! * **Same seeds.** Exactly one `u64` is drawn from the caller's RNG
//!   per window (the master seed); each batch derives its own stream via
//!   [`batch_seed`](detector_system::batch_seed), so probe outcomes are
//!   independent of where (or in what order) batches run.
//! * **Same dispatch procedure.** Deployments install through
//!   [`rebase_and_diff`] — the exact procedure the sequential and
//!   pipelined drivers share — and agents rebuild lists with
//!   [`apply_list_update`](detector_system::dispatch::apply_list_update),
//!   with the `ListSeal` stamp as an end-to-end checksum.
//! * **Same window protocol.** Events are emitted in `step()`'s order
//!   (`WindowStarted`, optional `CycleRefreshed`, per-pinglist
//!   `PingerUnhealthy`/`ReportIngested` in deployment order,
//!   `DiagnosisReady`), with reports collected from agents first and
//!   then ingested in pinglist order.
//!
//! # Failure semantics
//!
//! A dead agent (scripted [`DistAction::AgentDown`], a failed heartbeat,
//! or a transport that dies mid-window) degrades to per-rack
//! `PingerUnhealthy`: its whole host group is marked unhealthy, its
//! partial reports for the in-flight window are discarded, and the run
//! continues — a window is never stalled by a crashed agent. This is
//! exactly the oracle's `MarkUnhealthy` for every server of the group at
//! that window. One caveat, shared with the pipelined scheduler's
//! `ChurnFabric` precedent: a *mid-window* crash coinciding with a cycle
//! refresh or a scripted topology event in the same window re-plans with
//! pre-crash health in the distributed run but post-mark health in the
//! oracle; equivalence under unscripted crashes therefore holds for
//! windows without a coinciding re-plan (scripted `AgentDown` is always
//! exact, because its marks land before any dispatch).

use std::collections::HashMap;
use std::time::Instant;

use detector_core::pmc::PmcError;
use detector_core::types::{NodeId, PathIdRange};
use detector_simnet::{partition_hosts, HostGroups};
use detector_system::dispatch::{rebase_and_diff, rebase_pairs, DispatchStats, ListUpdate};
use detector_system::{
    BuildError, Controller, DataPlane, Deployment, Diagnoser, EventSink, RuntimeEvent, Script,
    SystemConfig, Watchdog, WindowResult,
};
use detector_system::{SimClock, TopologyEvent};
use detector_topology::SharedTopology;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::agent::PingerAgent;
use crate::frame::Frame;
use crate::transport::{flaky_loopback, loopback, ControlTransport};

/// One scripted action for a distributed run.
#[derive(Clone, Debug, PartialEq)]
pub enum DistAction {
    /// Apply a topology event through the incremental re-planner.
    Topology(TopologyEvent),
    /// Mark one server unhealthy (management-plane signal).
    MarkUnhealthy(NodeId),
    /// Clear one server's unhealthy mark.
    MarkHealthy(NodeId),
    /// Kill agent `g`: orderly shutdown of its process, whole host group
    /// marked unhealthy.
    AgentDown(usize),
    /// Restart agent `g`: fresh process, full resync of its owned lists,
    /// host group marked healthy again.
    AgentUp(usize),
}

/// A windowed script of churn, health marks and agent failures, applied
/// before each window's dispatch (push order within a window). Window
/// indices are relative to the start of the run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DistScript {
    actions: Vec<(u64, DistAction)>,
}

impl DistScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an action firing before `window` (builder style; stable
    /// order within one window).
    pub fn at(mut self, window: u64, action: DistAction) -> Self {
        self.actions.push((window, action));
        self.actions.sort_by_key(|(w, _)| *w);
        self
    }

    /// Adds a topology event firing before `window`.
    pub fn topology(self, window: u64, event: TopologyEvent) -> Self {
        self.at(window, DistAction::Topology(event))
    }

    /// Marks `server` unhealthy before `window`.
    pub fn mark_unhealthy(self, window: u64, server: NodeId) -> Self {
        self.at(window, DistAction::MarkUnhealthy(server))
    }

    /// Clears `server`'s mark before `window`.
    pub fn mark_healthy(self, window: u64, server: NodeId) -> Self {
        self.at(window, DistAction::MarkHealthy(server))
    }

    /// Kills agent `g` before `window`.
    pub fn agent_down(self, window: u64, agent: usize) -> Self {
        self.at(window, DistAction::AgentDown(agent))
    }

    /// Restarts agent `g` before `window`.
    pub fn agent_up(self, window: u64, agent: usize) -> Self {
        self.at(window, DistAction::AgentUp(agent))
    }

    /// The actions due before the run's `window`-th window.
    pub fn due(&self, window: u64) -> impl Iterator<Item = &DistAction> {
        self.actions
            .iter()
            .filter(move |(w, _)| *w == window)
            .map(|(_, a)| a)
    }

    /// Total number of scripted actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Expands this script into the sequential oracle's [`Script`]:
    /// `AgentDown(g)` becomes `MarkUnhealthy` for every server of group
    /// `g` (ascending), `AgentUp(g)` the matching `MarkHealthy` fan-out,
    /// everything else passes through. Driving
    /// [`Detector::run_scripted`](detector_system::Detector::run_scripted)
    /// with the expansion reproduces the distributed run exactly.
    pub fn oracle(&self, groups: &HostGroups) -> Script {
        let mut script = Script::new();
        for (window, action) in &self.actions {
            match action {
                DistAction::Topology(ev) => script = script.topology(*window, *ev),
                DistAction::MarkUnhealthy(s) => script = script.mark_unhealthy(*window, *s),
                DistAction::MarkHealthy(s) => script = script.mark_healthy(*window, *s),
                DistAction::AgentDown(g) => {
                    for &s in groups.group(*g) {
                        script = script.mark_unhealthy(*window, s);
                    }
                }
                DistAction::AgentUp(g) => {
                    for &s in groups.group(*g) {
                        script = script.mark_healthy(*window, s);
                    }
                }
            }
        }
        script
    }
}

/// Why a distributed run failed.
#[derive(Debug)]
pub enum DistError {
    /// A scripted topology event failed to re-plan.
    Replan(PmcError),
    /// An agent violated the wire protocol, or an agent thread panicked.
    Protocol(&'static str),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Replan(e) => write!(f, "scripted re-plan failed: {e}"),
            DistError::Protocol(s) => write!(f, "protocol failure: {s}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<PmcError> for DistError {
    fn from(e: PmcError) -> Self {
        DistError::Replan(e)
    }
}

/// What a distributed run produced, with wire accounting from the
/// loopback byte counters.
#[derive(Debug)]
pub struct DistOutcome {
    /// One result per completed window — identical to the oracle's.
    pub results: Vec<WindowResult>,
    /// Controller → agent bytes carrying pinglist material (initial
    /// sync, per-entry diffs, whole-list replacements, range re-bases,
    /// resyncs). This is the quantity the per-entry diff protocol
    /// minimizes: after the initial sync it grows with the *delta*, not
    /// the fleet.
    pub dispatch_bytes: u64,
    /// Total controller → agent bytes (dispatch + window orchestration +
    /// heartbeats + shutdowns).
    pub control_bytes: u64,
    /// Total agent → controller bytes (hellos, reports, acks).
    pub report_bytes: u64,
}

/// One controller-side agent slot: `None` transport = dead. Bytes moved
/// over transports of *previous* incarnations (killed or replaced) are
/// retired into the accumulators so a crash never loses accounting.
/// Generic over [`ControlTransport`]: loopback ends for the in-process
/// fleet, [`TcpTransport`](crate::TcpTransport) for real two-process
/// deployments.
struct AgentLink {
    transport: Option<Box<dyn ControlTransport>>,
    retired_control: u64,
    retired_report: u64,
}

impl AgentLink {
    /// Completes the connection handshake: the first agent-bound frame
    /// must be `Hello`, anything else (or a dead transport) makes a dead
    /// slot.
    fn handshake(transport: Option<Box<dyn ControlTransport>>) -> Self {
        let transport = transport.filter(|t| matches!(t.recv(), Ok(Frame::Hello { .. })));
        AgentLink {
            transport,
            retired_control: 0,
            retired_report: 0,
        }
    }

    fn is_live(&self) -> bool {
        self.transport.is_some()
    }

    /// Controller→agent bytes over every incarnation of this slot.
    fn control_bytes(&self) -> u64 {
        self.retired_control + self.transport.as_ref().map_or(0, |t| t.bytes_sent())
    }

    /// Agent→controller bytes over every incarnation of this slot.
    fn report_bytes(&self) -> u64 {
        self.retired_report + self.transport.as_ref().map_or(0, |t| t.peer_bytes_sent())
    }
}

/// The distributed deTector: the controller/diagnoser tier of a
/// two-tier deployment, driving one [`PingerAgent`](crate::PingerAgent)
/// per host group over the wire protocol.
///
/// Construction mirrors the single-process
/// [`Detector`](detector_system::Detector) exactly (same controller,
/// first deployment and diagnoser), which is what makes oracle
/// comparisons meaningful.
pub struct DistributedDetector {
    topo: SharedTopology,
    cfg: SystemConfig,
    controller: Controller,
    deployment: Deployment,
    diagnoser: Diagnoser,
    /// Server health; exposed for scenario scripting, like
    /// [`Detector::watchdog`](detector_system::Detector).
    pub watchdog: Watchdog,
    clock: SimClock,
    window: u64,
    sinks: Vec<Box<dyn EventSink>>,
    groups: HostGroups,
}

impl DistributedDetector {
    /// Builds the controller tier with `agents` host groups (ToR-
    /// contiguous, via [`partition_hosts`]).
    pub fn new(topo: SharedTopology, cfg: SystemConfig, agents: usize) -> Result<Self, BuildError> {
        cfg.validate()?;
        let mut controller = Controller::new(topo.clone(), cfg.clone());
        let watchdog = Watchdog::new();
        let deployment = controller.build_deployment(watchdog.unhealthy_set())?;
        let diagnoser = Diagnoser::new(deployment.matrix.clone(), cfg.pll).with_diag(cfg.diag);
        let groups = partition_hosts(topo.graph(), agents);
        Ok(Self {
            topo,
            cfg,
            controller,
            deployment,
            diagnoser,
            watchdog,
            clock: SimClock::new(),
            window: 0,
            sinks: Vec::new(),
            groups,
        })
    }

    /// Registers an event sink.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// The host-group partition (one group per agent).
    pub fn groups(&self) -> &HostGroups {
        &self.groups
    }

    /// The topology view's current epoch.
    pub fn epoch(&self) -> u64 {
        self.controller.epoch()
    }

    /// Current simulated time, seconds.
    pub fn now_s(&self) -> u64 {
        self.clock.now_s()
    }

    /// The probe matrix currently deployed.
    pub fn matrix(&self) -> &detector_core::pmc::ProbeMatrix {
        &self.deployment.matrix
    }

    /// The pinglists of the current deployment.
    pub fn pinglists(&self) -> &[detector_system::Pinglist] {
        &self.deployment.pinglists
    }

    /// Runs `windows` windows over a fleet of loopback agents spawned on
    /// scoped threads — shorthand for
    /// [`run_distributed_with_faults`](Self::run_distributed_with_faults)
    /// with reliable transports.
    pub fn run_distributed(
        &mut self,
        dataplane: &(dyn DataPlane + Sync),
        windows: u64,
        script: &DistScript,
        rng: &mut SmallRng,
    ) -> Result<DistOutcome, DistError> {
        self.run_distributed_with_faults(dataplane, windows, script, &[], rng)
    }

    /// Runs `windows` windows, injecting transport faults: each `(g, n)`
    /// in `faults` gives agent `g`'s transport a budget of `n` sends
    /// before it dies mid-stream (see
    /// [`flaky_loopback`](crate::flaky_loopback)) — the crash-mid-window
    /// scenario. Agents respawned by [`DistAction::AgentUp`] get
    /// reliable transports.
    pub fn run_distributed_with_faults(
        &mut self,
        dataplane: &(dyn DataPlane + Sync),
        windows: u64,
        script: &DistScript,
        faults: &[(usize, usize)],
        rng: &mut SmallRng,
    ) -> Result<DistOutcome, DistError> {
        let topo = self.topo.clone();
        let cfg = self.cfg.clone();

        crossbeam::thread::scope(|scope| -> Result<DistOutcome, DistError> {
            // --- Fleet bootstrap -------------------------------------
            let spawn_agent = |g: usize, budget: Option<usize>| -> AgentLink {
                let (ctrl_end, agent_end) = match budget {
                    Some(n) => flaky_loopback(n),
                    None => loopback(),
                };
                let t = topo.clone();
                let c = cfg.clone();
                scope.spawn(move |_| PingerAgent::new(g as u32, t, c).serve(&agent_end, dataplane));
                AgentLink::handshake(Some(Box::new(ctrl_end)))
            };

            let mut connect = |g: usize| {
                let budget = faults.iter().find(|(fg, _)| *fg == g).map(|(_, n)| *n);
                spawn_agent(g, budget)
            };
            let mut respawn = |g: usize| spawn_agent(g, None);
            self.drive_fleet(dataplane, windows, script, &mut connect, &mut respawn, rng)
        })
        .map_err(|_| DistError::Protocol("agent thread panicked"))?
    }

    /// Runs `windows` windows over a fleet reached through
    /// caller-provided transports — the entry point for real
    /// multi-process deployments, where each
    /// [`PingerAgent`](crate::PingerAgent) runs in its own process and
    /// the controller talks to it over a
    /// [`TcpTransport`](crate::TcpTransport).
    ///
    /// `connect` is called once per host group at bootstrap; returning
    /// `None` (or a transport whose handshake fails) starts the slot
    /// dead, degrading its group exactly like a crashed agent. `respawn`
    /// is called for scripted [`DistAction::AgentUp`] slots. The
    /// `dataplane` is only used for the controller-side window hooks —
    /// probes execute against whatever data plane the agent processes
    /// see, which the caller must configure identically for oracle
    /// comparisons.
    pub fn run_distributed_over(
        &mut self,
        dataplane: &(dyn DataPlane + Sync),
        windows: u64,
        script: &DistScript,
        rng: &mut SmallRng,
        connect: &mut dyn FnMut(usize) -> Option<Box<dyn ControlTransport>>,
        respawn: &mut dyn FnMut(usize) -> Option<Box<dyn ControlTransport>>,
    ) -> Result<DistOutcome, DistError> {
        self.drive_fleet(
            dataplane,
            windows,
            script,
            &mut |g| AgentLink::handshake(connect(g)),
            &mut |g| AgentLink::handshake(respawn(g)),
            rng,
        )
    }

    /// The transport-agnostic window loop shared by the loopback and
    /// multi-process drivers: bootstrap the slots via `connect`, sync the
    /// first deployment, run the windows (respawning [`DistAction::AgentUp`]
    /// slots via `respawn`), tear the fleet down, and account the wire.
    fn drive_fleet(
        &mut self,
        dataplane: &(dyn DataPlane + Sync),
        windows: u64,
        script: &DistScript,
        connect: &mut dyn FnMut(usize) -> AgentLink,
        respawn: &mut dyn FnMut(usize) -> AgentLink,
        rng: &mut SmallRng,
    ) -> Result<DistOutcome, DistError> {
        let n_agents = self.groups.len();
        let groups = self.groups.clone();
        {
            let mut links: Vec<AgentLink> = (0..n_agents).map(&mut *connect).collect();
            let mut dispatch_bytes = 0u64;
            for g in 0..n_agents {
                if !links[g].is_live() {
                    kill(&mut links, &groups, &mut self.watchdog, g);
                }
            }

            // Initial full sync: every list travels whole, to its owner.
            for list in &self.deployment.pinglists {
                let frame = Frame::ListReplace(list.clone());
                if let Some(g) = groups.owner_of(list.pinger) {
                    dispatch_bytes += ship(&mut links, &groups, &mut self.watchdog, g, &frame);
                }
            }

            // --- Window loop -----------------------------------------
            let mut results = Vec::with_capacity(windows as usize);
            for i in 0..windows {
                let window = self.window;
                let start_s = self.clock.now_s();

                // Scripted actions, in push order within the window.
                for action in script.due(i) {
                    match action {
                        DistAction::Topology(ev) => {
                            let stats_bytes = self.apply_topology(ev, &mut links, &groups)?;
                            dispatch_bytes += stats_bytes;
                        }
                        DistAction::MarkUnhealthy(s) => self.watchdog.mark_unhealthy(*s),
                        DistAction::MarkHealthy(s) => self.watchdog.mark_healthy(*s),
                        DistAction::AgentDown(g) => {
                            if let Some(t) = &links[*g].transport {
                                let _ = t.send(&Frame::Shutdown);
                            }
                            kill(&mut links, &groups, &mut self.watchdog, *g);
                        }
                        DistAction::AgentUp(g) => {
                            let mut fresh = respawn(*g);
                            fresh.retired_control = links[*g].control_bytes();
                            fresh.retired_report = links[*g].report_bytes();
                            links[*g] = fresh;
                            if links[*g].is_live() {
                                for &s in groups.group(*g) {
                                    self.watchdog.mark_healthy(s);
                                }
                                // Full resync of the group's lists.
                                dispatch_bytes += ship(
                                    &mut links,
                                    &groups,
                                    &mut self.watchdog,
                                    *g,
                                    &Frame::Reset,
                                );
                                for list in &self.deployment.pinglists {
                                    if groups.owner_of(list.pinger) == Some(*g) {
                                        let f = Frame::ListReplace(list.clone());
                                        dispatch_bytes +=
                                            ship(&mut links, &groups, &mut self.watchdog, *g, &f);
                                    }
                                }
                            } else {
                                kill(&mut links, &groups, &mut self.watchdog, *g);
                            }
                        }
                    }
                }

                // Heartbeat sweep: a dead agent degrades to unhealthy
                // racks *before* this window's dispatch, matching the
                // oracle's MarkUnhealthy placement.
                for g in 0..n_agents {
                    let Some(t) = &links[g].transport else {
                        continue;
                    };
                    let ok = t.send(&Frame::HeartbeatReq { nonce: window }).is_ok()
                        && matches!(t.recv(), Ok(Frame::HeartbeatAck { .. }));
                    if !ok {
                        kill(&mut links, &groups, &mut self.watchdog, g);
                    }
                }

                self.emit(RuntimeEvent::WindowStarted { window, start_s });
                dataplane.window_started(window, start_s);

                // Cycle refresh, on exactly step()'s boundary.
                if window > 0 && start_s.is_multiple_of(self.cfg.cycle_s) {
                    if let Ok(dep) = self
                        .controller
                        .build_deployment(self.watchdog.unhealthy_set())
                    {
                        let (version, num_paths) = (dep.version, dep.matrix.num_paths());
                        let (_, bytes) = self.install_and_ship(dep, &[], &mut links, &groups);
                        dispatch_bytes += bytes;
                        self.emit(RuntimeEvent::CycleRefreshed {
                            window,
                            version,
                            num_paths,
                        });
                    }
                }

                // The window's master seed: the run's only RNG draw.
                let window_seed: u64 = rng.gen();
                let mut skip: Vec<NodeId> = self
                    .deployment
                    .pinglists
                    .iter()
                    .map(|l| l.pinger)
                    .filter(|&p| !self.watchdog.is_healthy(p))
                    .collect();
                skip.sort_unstable();

                let start_frame = Frame::WindowStart {
                    window,
                    window_seed,
                    skip: skip.clone(),
                };
                let mut dispatched: Vec<usize> = Vec::new();
                for g in 0..n_agents {
                    if !links[g].is_live() {
                        continue;
                    }
                    if ship(&mut links, &groups, &mut self.watchdog, g, &start_frame) > 0 {
                        dispatched.push(g);
                    }
                }

                // Collect: drain each agent to its WindowDone; an agent
                // dying mid-window forfeits its reports (its racks go
                // unhealthy), it never stalls the window. Each Report
                // frame feeds the ingest-plane shards the moment it is
                // decoded — aggregation is done before collection ends —
                // and a dead agent's already-folded reports are
                // retracted, which lands exactly where the fold did.
                let mut got: HashMap<NodeId, detector_system::PingerReport> = HashMap::new();
                for g in dispatched {
                    let Some(t) = &links[g].transport else {
                        continue;
                    };
                    let mut from_agent: Vec<NodeId> = Vec::new();
                    let died = loop {
                        match t.recv() {
                            Ok(Frame::Report(r)) => {
                                self.diagnoser.fold(&r);
                                from_agent.push(r.pinger);
                                got.insert(r.pinger, r);
                            }
                            Ok(Frame::WindowDone { window: w, .. }) if w == window => break false,
                            Ok(_) => {
                                return Err(DistError::Protocol(
                                    "agent sent an unexpected frame mid-window",
                                ))
                            }
                            Err(_) => break true,
                        }
                    };
                    if died {
                        for p in from_agent {
                            if let Some(r) = got.remove(&p) {
                                self.diagnoser.retract(&r);
                            }
                        }
                        kill(&mut links, &groups, &mut self.watchdog, g);
                    }
                }

                // Ingest in pinglist order — the exact event order of
                // sequential step().
                let mut probes_sent = 0u64;
                let pingers: Vec<NodeId> =
                    self.deployment.pinglists.iter().map(|l| l.pinger).collect();
                for pinger in pingers {
                    if !self.watchdog.is_healthy(pinger) {
                        // Keep the fold set ≡ the store set: a report from
                        // a pinger that went unhealthy after it reported is
                        // withdrawn from the shards too.
                        if let Some(r) = got.remove(&pinger) {
                            self.diagnoser.retract(&r);
                        }
                        self.emit(RuntimeEvent::PingerUnhealthy { window, pinger });
                        continue;
                    }
                    let Some(report) = got.remove(&pinger) else {
                        return Err(DistError::Protocol("no report for a healthy pinger's list"));
                    };
                    let sent = report.total_sent();
                    probes_sent += sent;
                    self.emit(RuntimeEvent::ReportIngested {
                        window,
                        pinger,
                        probes_sent: sent,
                        num_paths: report.paths.len(),
                    });
                    // Already folded at frame receipt — file the raw
                    // report only.
                    self.diagnoser.ingest_stored(report);
                }

                let event = self.diagnoser.diagnose(window, &self.watchdog);
                self.clock.advance_s(self.cfg.window_s);
                self.window += 1;
                self.diagnoser.prune_before(window.saturating_sub(20));
                self.emit(RuntimeEvent::IngestStats {
                    window,
                    reports: event.reports,
                    paths_active: event.num_observations as u64,
                    topk_hits: event.topk_hits,
                    shard_contention: event.shard_contention,
                    retract_mismatch: event.retract_mismatch,
                });
                self.emit(RuntimeEvent::DiagStats {
                    window,
                    lossy_paths: event.lossy_paths,
                    components: event.components,
                    suspects: event.diagnosis.suspects.len() as u64,
                });
                let result = WindowResult {
                    window,
                    start_s,
                    probes_sent,
                    num_observations: event.num_observations,
                    diagnosis: event.diagnosis,
                };
                self.emit(RuntimeEvent::DiagnosisReady(result.clone()));
                dataplane.window_finished(window, self.clock.now_s());
                results.push(result);
            }

            // --- Orderly teardown ------------------------------------
            let mut control_bytes = 0u64;
            let mut report_bytes = 0u64;
            for link in &links {
                if let Some(t) = &link.transport {
                    let _ = t.send(&Frame::Shutdown);
                }
            }
            for link in &links {
                control_bytes += link.control_bytes();
                report_bytes += link.report_bytes();
            }
            Ok(DistOutcome {
                results,
                dispatch_bytes,
                control_bytes,
                report_bytes,
            })
        }
    }

    /// Mirrors `Detector::apply` with the install step replaced by the
    /// frame-shipping installer. Returns the dispatch bytes shipped.
    fn apply_topology(
        &mut self,
        event: &TopologyEvent,
        links: &mut [AgentLink],
        groups: &HostGroups,
    ) -> Result<u64, DistError> {
        // detlint::allow(determinism, reason = "replan_micros stopwatch; measurement only, never branches")
        let t0 = Instant::now();
        let ranges_before = self.controller.probe_plan().map(|p| p.cell_ranges());
        let update = self.controller.apply_event(event)?;
        let mut stats = DispatchStats::default();
        let mut bytes = 0u64;
        if update.links_changed > 0 {
            let dep = self
                .controller
                .build_deployment(self.watchdog.unhealthy_set())?;
            let ranges_after = self.controller.probe_plan().map(|p| p.cell_ranges());
            let rebases = rebase_pairs(ranges_before.as_deref(), ranges_after.as_deref());
            let (s, b) = self.install_and_ship(dep, &rebases, links, groups);
            stats = s;
            bytes = b;
        }
        self.emit(RuntimeEvent::PlanUpdated {
            epoch: update.epoch,
            links_changed: update.links_changed,
            probes_delta: update.probes_delta,
            lists_redispatched: stats.lists_redispatched,
            entries_diffed: stats.entries_diffed,
            bytes_dispatched: stats.bytes_dispatched,
            replan_micros: t0.elapsed().as_micros() as u64,
        });
        Ok(bytes)
    }

    /// The distributed half of the shared install protocol: rebase +
    /// diff exactly like the single-process drivers
    /// ([`rebase_and_diff`]), then ship the diff as frames — re-bases
    /// broadcast to every live agent, list updates routed to their
    /// owners — and point the diagnoser at the new matrix. Returns the
    /// model's [`DispatchStats`] (what `PlanUpdated` reports; re-bases
    /// counted once) and the wire bytes actually sent (re-bases counted
    /// per live agent).
    fn install_and_ship(
        &mut self,
        mut dep: Deployment,
        rebases: &[(PathIdRange, PathIdRange)],
        links: &mut [AgentLink],
        groups: &HostGroups,
    ) -> (DispatchStats, u64) {
        let (diff, stats) = rebase_and_diff(&self.deployment, &mut dep, rebases);
        let mut bytes = 0u64;
        for &(old, new) in &diff.rebases {
            let frame = Frame::RangeRebase { old, new };
            for g in 0..links.len() {
                if links[g].is_live() {
                    bytes += ship(links, groups, &mut self.watchdog, g, &frame);
                }
            }
        }
        for update in &diff.updates {
            let Some(g) = groups.owner_of(update.pinger()) else {
                continue;
            };
            match update {
                ListUpdate::Replace(list) => {
                    bytes += ship(
                        links,
                        groups,
                        &mut self.watchdog,
                        g,
                        &Frame::ListReplace(list.clone()),
                    );
                }
                ListUpdate::Remove(p) => {
                    bytes += ship(
                        links,
                        groups,
                        &mut self.watchdog,
                        g,
                        &Frame::ListRemove { pinger: *p },
                    );
                }
                ListUpdate::Diff {
                    pinger,
                    version,
                    stamp,
                    removed,
                    added,
                } => {
                    for &key in removed {
                        bytes += ship(
                            links,
                            groups,
                            &mut self.watchdog,
                            g,
                            &Frame::EntryRemove {
                                pinger: *pinger,
                                key,
                            },
                        );
                    }
                    for (index, entry) in added {
                        bytes += ship(
                            links,
                            groups,
                            &mut self.watchdog,
                            g,
                            &Frame::EntryAdd {
                                pinger: *pinger,
                                index: *index,
                                entry: entry.clone(),
                            },
                        );
                    }
                    bytes += ship(
                        links,
                        groups,
                        &mut self.watchdog,
                        g,
                        &Frame::ListSeal {
                            pinger: *pinger,
                            version: *version,
                            stamp: *stamp,
                        },
                    );
                }
            }
        }
        self.deployment = dep;
        self.diagnoser.set_matrix(self.deployment.matrix.clone());
        (stats, bytes)
    }

    fn emit(&mut self, ev: RuntimeEvent) {
        for s in self.sinks.iter_mut() {
            s.on_event(&ev);
        }
    }
}

/// Marks agent `g` dead and its whole host group unhealthy (ascending
/// server order — the blast radius of a rack-local agent daemon).
fn kill(links: &mut [AgentLink], groups: &HostGroups, watchdog: &mut Watchdog, g: usize) {
    if let Some(t) = links[g].transport.take() {
        links[g].retired_control += t.bytes_sent();
        links[g].retired_report += t.peer_bytes_sent();
    }
    for &s in groups.group(g) {
        watchdog.mark_unhealthy(s);
    }
}

/// Sends one frame to agent `g`, returning its wire size; a failed send
/// means the agent just died — it is killed (group marked unhealthy) and
/// 0 is returned.
fn ship(
    links: &mut [AgentLink],
    groups: &HostGroups,
    watchdog: &mut Watchdog,
    g: usize,
    frame: &Frame,
) -> u64 {
    let Some(t) = &links[g].transport else {
        return 0;
    };
    let before = t.bytes_sent();
    if t.send(frame).is_ok() {
        t.bytes_sent() - before
    } else {
        kill(links, groups, watchdog, g);
        0
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use detector_simnet::{Fabric, LossDiscipline};
    use detector_system::dispatch::full_dispatch_bytes;
    use detector_system::{CollectingSink, Detector, ScriptAction};
    use detector_topology::{DcnTopology, Fattree};
    use rand::SeedableRng;

    use super::*;

    fn config() -> SystemConfig {
        SystemConfig {
            cycle_s: 60,
            ..SystemConfig::default()
        }
    }

    fn normalize(events: Vec<RuntimeEvent>) -> Vec<RuntimeEvent> {
        events.iter().map(RuntimeEvent::normalized).collect()
    }

    /// Runs the sequential oracle and the distributed fleet over the
    /// same scenario, asserting identical window results, (normalized)
    /// event streams and final state.
    fn check_equivalence(
        ft: &Arc<Fattree>,
        fabric: &Fabric<'_>,
        script: &DistScript,
        faults: &[(usize, usize)],
        agents: usize,
        windows: u64,
        seed: u64,
    ) -> DistOutcome {
        let dist_sink = CollectingSink::new();
        let mut dist =
            DistributedDetector::new(ft.clone() as SharedTopology, config(), agents).expect("boot");
        dist.add_sink(Box::new(dist_sink.clone()));
        let mut rng = SmallRng::seed_from_u64(seed);
        let outcome = dist
            .run_distributed_with_faults(fabric, windows, script, faults, &mut rng)
            .expect("distributed run");

        let seq_sink = CollectingSink::new();
        let mut seq = Detector::builder(ft.clone() as SharedTopology)
            .config(config())
            .sink(Box::new(seq_sink.clone()))
            .build()
            .expect("boot oracle");
        let mut rng = SmallRng::seed_from_u64(seed);
        let oracle = script.oracle(dist.groups());
        let seq_results = seq
            .run_scripted(fabric, windows, &oracle, &mut rng)
            .expect("sequential oracle");

        assert_eq!(seq_results, outcome.results, "window results diverge");
        assert_eq!(
            normalize(seq_sink.events()),
            normalize(dist_sink.events()),
            "event streams diverge"
        );
        assert_eq!(seq.now_s(), dist.now_s());
        assert_eq!(seq.epoch(), dist.epoch());
        assert_eq!(seq.matrix().paths, dist.matrix().paths);
        outcome
    }

    #[test]
    fn oracle_expands_agent_failures_to_group_marks() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let groups = partition_hosts(ft.graph(), 2);
        let script = DistScript::new().agent_down(1, 1).agent_up(3, 1);
        let oracle = script.oracle(&groups);
        let down: Vec<_> = oracle.due(1).collect();
        assert_eq!(down.len(), groups.group(1).len());
        for (action, &server) in down.iter().zip(groups.group(1)) {
            assert_eq!(**action, ScriptAction::MarkUnhealthy(server));
        }
        let up: Vec<_> = oracle.due(3).collect();
        assert_eq!(up.len(), groups.group(1).len());
        assert!(matches!(up[0], ScriptAction::MarkHealthy(_)));
    }

    #[test]
    fn distributed_equals_sequential_on_a_clean_fabric() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let fabric = Fabric::quiet(ft.as_ref());
        check_equivalence(&ft, &fabric, &DistScript::new(), &[], 2, 3, 7);
    }

    #[test]
    fn distributed_equals_sequential_under_loss_churn_and_agent_failure() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut fabric = Fabric::new(ft.as_ref(), 0xFAB);
        fabric.set_discipline_both(ft.ea_link(0, 0, 0), LossDiscipline::Full);
        fabric.set_discipline_both(
            ft.ea_link(1, 0, 1),
            LossDiscipline::RandomPartial { rate: 0.4 },
        );
        // Window 1: a link dies (incremental re-plan + per-entry diffs).
        // Window 2: agent 1 crashes AND the 60 s cycle refresh fires
        //           with its racks unhealthy. Window 4: it comes back
        //           (resync) right on the next cycle boundary.
        let script = DistScript::new()
            .topology(
                1,
                TopologyEvent::LinkDown {
                    link: ft.ea_link(0, 0, 0),
                },
            )
            .agent_down(2, 1)
            .agent_up(4, 1)
            .mark_unhealthy(3, ft.server(2, 0, 0))
            .mark_healthy(5, ft.server(2, 0, 0));
        let outcome = check_equivalence(&ft, &fabric, &script, &[], 3, 6, 99);
        assert!(outcome.dispatch_bytes > 0);
        assert!(outcome.control_bytes > outcome.dispatch_bytes);
        assert!(outcome.report_bytes > 0);
    }

    #[test]
    fn a_mid_window_transport_crash_degrades_to_unhealthy_racks() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let fabric = Fabric::quiet(ft.as_ref());
        let mut dist =
            DistributedDetector::new(ft.clone() as SharedTopology, config(), 4).expect("boot");
        let victim = 3usize;
        let group: Vec<NodeId> = dist.groups().group(victim).to_vec();
        assert!(!group.is_empty());
        // Budget: Hello + window-0 heartbeat ack + one report, then the
        // transport dies mid-stream — after probing began, before the
        // window completed.
        let sink = CollectingSink::new();
        dist.add_sink(Box::new(sink.clone()));
        let mut rng = SmallRng::seed_from_u64(5);
        let outcome = dist
            .run_distributed_with_faults(&fabric, 2, &DistScript::new(), &[(victim, 3)], &mut rng)
            .expect("run survives the crash");
        assert_eq!(outcome.results.len(), 2);
        // The whole group degraded to unhealthy; its partial window-0
        // report was forfeited, not half-ingested.
        for &s in &group {
            assert!(!dist.watchdog.is_healthy(s));
        }
        let events = sink.events();
        let unhealthy: Vec<NodeId> = events
            .iter()
            .filter_map(|e| match e {
                RuntimeEvent::PingerUnhealthy { window: 0, pinger } => Some(*pinger),
                _ => None,
            })
            .collect();
        for p in &unhealthy {
            assert!(group.contains(p), "only the victim's racks degrade");
        }
        assert!(!unhealthy.is_empty());
        // And the degraded run is exactly the oracle that marked those
        // servers unhealthy before window 0.
        let oracle_script = group
            .iter()
            .fold(Script::new(), |s, &srv| s.mark_unhealthy(0, srv));
        let seq_sink = CollectingSink::new();
        let mut seq = Detector::builder(ft.clone() as SharedTopology)
            .config(config())
            .sink(Box::new(seq_sink.clone()))
            .build()
            .expect("boot oracle");
        let mut rng = SmallRng::seed_from_u64(5);
        let seq_results = seq
            .run_scripted(&fabric, 2, &oracle_script, &mut rng)
            .expect("oracle");
        assert_eq!(seq_results, outcome.results);
        assert_eq!(normalize(seq_sink.events()), normalize(sink.events()));
    }

    #[test]
    fn dispatch_bytes_scale_with_the_delta_not_the_fleet() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let fabric = Fabric::quiet(ft.as_ref());
        // Baseline run: no churn. Its dispatch bytes are the initial
        // full sync alone.
        let mut base =
            DistributedDetector::new(ft.clone() as SharedTopology, config(), 2).expect("boot");
        let mut rng = SmallRng::seed_from_u64(1);
        let baseline = base
            .run_distributed(&fabric, 1, &DistScript::new(), &mut rng)
            .expect("baseline");
        let full_sync = full_dispatch_bytes(&Deployment {
            matrix: base.matrix().clone(),
            pinglists: base.pinglists().to_vec(),
            version: 0,
        }) as u64;
        assert_eq!(baseline.dispatch_bytes, full_sync);

        // Churn run: one link down. The extra dispatch bytes are the
        // delta — far below shipping every list again.
        let mut churn =
            DistributedDetector::new(ft.clone() as SharedTopology, config(), 2).expect("boot");
        let mut rng = SmallRng::seed_from_u64(1);
        let script = DistScript::new().topology(
            0,
            TopologyEvent::LinkDown {
                link: ft.ea_link(0, 0, 0),
            },
        );
        let churned = churn
            .run_distributed(&fabric, 1, &script, &mut rng)
            .expect("churn");
        let delta = churned.dispatch_bytes - baseline.dispatch_bytes;
        assert!(delta > 0, "a re-plan must ship something");
        // Fattree(4) is tiny — one link touches most lists — so only a
        // strict improvement is asserted here; the ≥10× separation is
        // asserted at Fattree(16) scale by the dispatch bench artifact.
        assert!(
            delta < full_sync,
            "per-entry diffs must beat re-shipping the fleet: delta {delta}, full {full_sync}"
        );
    }
}
