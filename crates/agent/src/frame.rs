//! The control-plane wire protocol: length-prefixed frames, no registry.
//!
//! Every byte that crosses the controller ↔ agent boundary is one
//! [`Frame`]: a `u32` big-endian length prefix (counting everything after
//! itself), a one-byte tag, and a tag-specific payload. The payload
//! encodings for pinglist material delegate to the canonical forms in
//! [`detector_system::dispatch`] — [`encode_entry`]/[`decode_entry`] for
//! entries, the 34-byte list header for whole lists — so a frame's size
//! is *exactly* what the dispatch cost model
//! ([`ListUpdate::wire_bytes`](detector_system::dispatch::ListUpdate::wire_bytes))
//! charges for it. That identity is load-bearing: `PlanUpdated`'s
//! `bytes_dispatched` is computed from the model, and the tests in this
//! module pin every diff-protocol frame's encoded length to the model's
//! formula.
//!
//! Determinism: report payloads iterate their hash maps in sorted key
//! order and ship `f64`s as IEEE-754 bit patterns, so encoding the same
//! report twice — on any host, in any process — yields identical bytes.
//!
//! [`encode_entry`]: detector_system::dispatch::encode_entry
//! [`decode_entry`]: detector_system::dispatch::decode_entry

use std::fmt;

use detector_core::types::{NodeId, PathId, PathIdRange};
use detector_system::dispatch::{decode_entry, encode_entry};
use detector_system::{PathCounters, PingEntry, PingerReport, Pinglist};

/// Hard cap on a frame's post-prefix length (tag + payload): 16 MiB.
/// A whole-fabric pinglist for the largest supported topologies is well
/// under 1 MiB, so anything bigger is a corrupt or hostile prefix and is
/// rejected before any allocation.
pub const MAX_FRAME: u32 = 1 << 24;

/// One protocol message. The first seven variants are the dispatch
/// vocabulary (full lists and the per-entry diff protocol); the rest are
/// window orchestration, health probing and report return.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Agent introduction, sent once per connection.
    Hello {
        /// The agent's ordinal (its [`HostGroups`] index).
        ///
        /// [`HostGroups`]: detector_simnet::HostGroups
        agent: u32,
    },
    /// Ship a whole pinglist (new pinger, header change, or a diff that
    /// would not be smaller).
    ListReplace(Pinglist),
    /// Retire a pinger's list entirely (it left pinger duty).
    ListRemove {
        /// The pinger whose list is retired.
        pinger: NodeId,
    },
    /// Per-entry diff: insert `entry` at `index` in `pinger`'s list.
    /// Adds within one diff arrive in ascending index order, after all
    /// removals.
    EntryAdd {
        /// The list being edited.
        pinger: NodeId,
        /// Target position in the post-removal list.
        index: u32,
        /// The entry to insert.
        entry: PingEntry,
    },
    /// Per-entry diff: remove the first entry of `pinger`'s list whose
    /// [`entry_key`](detector_system::dispatch::entry_key) equals `key`.
    EntryRemove {
        /// The list being edited.
        pinger: NodeId,
        /// Canonical-encoding FNV-1a key of the entry to drop.
        key: u64,
    },
    /// A plan cell's `PathId` range moved (overflow re-base). Broadcast
    /// so agents can retire counters and bindings of the old ids; the
    /// rebased entries themselves travel as remove + add pairs.
    RangeRebase {
        /// The cell's previous id range.
        old: PathIdRange,
        /// The cell's new id range.
        new: PathIdRange,
    },
    /// Closes a per-entry diff: the edited list adopts `(version,
    /// stamp)`. The stamp doubles as an end-to-end checksum — the agent
    /// re-hashes the rebuilt list and must land on the same value.
    ListSeal {
        /// The list being sealed.
        pinger: NodeId,
        /// Version to adopt.
        version: u64,
        /// Expected [`Pinglist::content_stamp`] of the rebuilt list.
        stamp: u64,
    },
    /// Drop all agent state (lists, bindings, pending diffs) — the
    /// preamble of a full resync.
    Reset,
    /// Run one window over every owned list not in `skip`.
    WindowStart {
        /// Window index.
        window: u64,
        /// The window's master seed; each batch derives its own stream
        /// via [`batch_seed`](detector_system::batch_seed).
        window_seed: u64,
        /// Pingers excluded by the watchdog this window (sorted).
        skip: Vec<NodeId>,
    },
    /// Controller liveness probe.
    HeartbeatReq {
        /// Echo token.
        nonce: u64,
    },
    /// Agent liveness answer.
    HeartbeatAck {
        /// The request's token, echoed.
        nonce: u64,
        /// The answering agent's ordinal.
        agent: u32,
    },
    /// One pinger's window report (the paper's HTTP POST).
    Report(PingerReport),
    /// All owned, non-skipped lists of `window` have reported.
    WindowDone {
        /// The finished window.
        window: u64,
        /// The reporting agent's ordinal.
        agent: u32,
    },
    /// Orderly connection teardown.
    Shutdown,
}

/// Why a byte buffer failed to parse as a [`Frame`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended before the announced length (or mid-field).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize(u32),
    /// Unknown frame tag.
    UnknownTag(u8),
    /// The payload decoded but bytes were left over.
    TrailingBytes,
    /// A structurally invalid payload (e.g. a malformed entry).
    BadPayload(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Oversize(n) => write!(f, "frame length {n} exceeds MAX_FRAME"),
            FrameError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            FrameError::TrailingBytes => write!(f, "trailing bytes after frame payload"),
            FrameError::BadPayload(what) => write!(f, "bad frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

const TAG_HELLO: u8 = 0;
const TAG_LIST_REPLACE: u8 = 1;
const TAG_LIST_REMOVE: u8 = 2;
const TAG_ENTRY_ADD: u8 = 3;
const TAG_ENTRY_REMOVE: u8 = 4;
const TAG_RANGE_REBASE: u8 = 5;
const TAG_LIST_SEAL: u8 = 6;
const TAG_RESET: u8 = 7;
const TAG_WINDOW_START: u8 = 8;
const TAG_HEARTBEAT_REQ: u8 = 9;
const TAG_HEARTBEAT_ACK: u8 = 10;
const TAG_REPORT: u8 = 11;
const TAG_WINDOW_DONE: u8 = 12;
const TAG_SHUTDOWN: u8 = 13;

impl Frame {
    /// Encodes the frame as wire bytes: `u32` BE length prefix (covering
    /// tag + payload), tag byte, payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; 4]; // Length prefix backfilled below.
        match self {
            Frame::Hello { agent } => {
                out.push(TAG_HELLO);
                put_u32(&mut out, *agent);
            }
            Frame::ListReplace(list) => {
                out.push(TAG_LIST_REPLACE);
                encode_list(list, &mut out);
            }
            Frame::ListRemove { pinger } => {
                out.push(TAG_LIST_REMOVE);
                put_u32(&mut out, pinger.0);
            }
            Frame::EntryAdd {
                pinger,
                index,
                entry,
            } => {
                out.push(TAG_ENTRY_ADD);
                put_u32(&mut out, pinger.0);
                put_u32(&mut out, *index);
                encode_entry(entry, &mut out);
            }
            Frame::EntryRemove { pinger, key } => {
                out.push(TAG_ENTRY_REMOVE);
                put_u32(&mut out, pinger.0);
                put_u64(&mut out, *key);
            }
            Frame::RangeRebase { old, new } => {
                out.push(TAG_RANGE_REBASE);
                put_u32(&mut out, old.base);
                put_u32(&mut out, old.capacity);
                put_u32(&mut out, new.base);
                put_u32(&mut out, new.capacity);
            }
            Frame::ListSeal {
                pinger,
                version,
                stamp,
            } => {
                out.push(TAG_LIST_SEAL);
                put_u32(&mut out, pinger.0);
                put_u64(&mut out, *version);
                put_u64(&mut out, *stamp);
            }
            Frame::Reset => out.push(TAG_RESET),
            Frame::WindowStart {
                window,
                window_seed,
                skip,
            } => {
                out.push(TAG_WINDOW_START);
                put_u64(&mut out, *window);
                put_u64(&mut out, *window_seed);
                put_u32(&mut out, skip.len() as u32);
                for s in skip {
                    put_u32(&mut out, s.0);
                }
            }
            Frame::HeartbeatReq { nonce } => {
                out.push(TAG_HEARTBEAT_REQ);
                put_u64(&mut out, *nonce);
            }
            Frame::HeartbeatAck { nonce, agent } => {
                out.push(TAG_HEARTBEAT_ACK);
                put_u64(&mut out, *nonce);
                put_u32(&mut out, *agent);
            }
            Frame::Report(report) => {
                out.push(TAG_REPORT);
                encode_report(report, &mut out);
            }
            Frame::WindowDone { window, agent } => {
                out.push(TAG_WINDOW_DONE);
                put_u64(&mut out, *window);
                put_u32(&mut out, *agent);
            }
            Frame::Shutdown => out.push(TAG_SHUTDOWN),
        }
        let len = (out.len() - 4) as u32;
        out[..4].copy_from_slice(&len.to_be_bytes());
        out
    }

    /// Decodes one whole frame (length prefix included). The buffer must
    /// contain exactly one frame: a short buffer is [`Truncated`], bytes
    /// past the announced length are [`TrailingBytes`].
    ///
    /// [`Truncated`]: FrameError::Truncated
    /// [`TrailingBytes`]: FrameError::TrailingBytes
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < 5 {
            return Err(FrameError::Truncated);
        }
        let len = u32::from_be_bytes(bytes[..4].try_into().expect("4-byte slice"));
        if len > MAX_FRAME {
            return Err(FrameError::Oversize(len));
        }
        let total = 4 + len as usize;
        if bytes.len() < total {
            return Err(FrameError::Truncated);
        }
        if bytes.len() > total {
            return Err(FrameError::TrailingBytes);
        }
        let tag = bytes[4];
        let mut buf = &bytes[5..];
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                agent: take_u32(&mut buf)?,
            },
            TAG_LIST_REPLACE => Frame::ListReplace(decode_list(&mut buf)?),
            TAG_LIST_REMOVE => Frame::ListRemove {
                pinger: NodeId(take_u32(&mut buf)?),
            },
            TAG_ENTRY_ADD => Frame::EntryAdd {
                pinger: NodeId(take_u32(&mut buf)?),
                index: take_u32(&mut buf)?,
                entry: decode_entry(&mut buf).ok_or(FrameError::BadPayload("ping entry"))?,
            },
            TAG_ENTRY_REMOVE => Frame::EntryRemove {
                pinger: NodeId(take_u32(&mut buf)?),
                key: take_u64(&mut buf)?,
            },
            TAG_RANGE_REBASE => Frame::RangeRebase {
                old: PathIdRange::new(take_u32(&mut buf)?, take_u32(&mut buf)?),
                new: PathIdRange::new(take_u32(&mut buf)?, take_u32(&mut buf)?),
            },
            TAG_LIST_SEAL => Frame::ListSeal {
                pinger: NodeId(take_u32(&mut buf)?),
                version: take_u64(&mut buf)?,
                stamp: take_u64(&mut buf)?,
            },
            TAG_RESET => Frame::Reset,
            TAG_WINDOW_START => {
                let window = take_u64(&mut buf)?;
                let window_seed = take_u64(&mut buf)?;
                let n = take_u32(&mut buf)? as usize;
                if buf.len() < n * 4 {
                    return Err(FrameError::Truncated);
                }
                let mut skip = Vec::with_capacity(n);
                for _ in 0..n {
                    skip.push(NodeId(take_u32(&mut buf)?));
                }
                Frame::WindowStart {
                    window,
                    window_seed,
                    skip,
                }
            }
            TAG_HEARTBEAT_REQ => Frame::HeartbeatReq {
                nonce: take_u64(&mut buf)?,
            },
            TAG_HEARTBEAT_ACK => Frame::HeartbeatAck {
                nonce: take_u64(&mut buf)?,
                agent: take_u32(&mut buf)?,
            },
            TAG_REPORT => Frame::Report(decode_report(&mut buf)?),
            TAG_WINDOW_DONE => Frame::WindowDone {
                window: take_u64(&mut buf)?,
                agent: take_u32(&mut buf)?,
            },
            TAG_SHUTDOWN => Frame::Shutdown,
            other => return Err(FrameError::UnknownTag(other)),
        };
        if !buf.is_empty() {
            return Err(FrameError::TrailingBytes);
        }
        Ok(frame)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn take_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], FrameError> {
    if buf.len() < n {
        return Err(FrameError::Truncated);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn take_u16(buf: &mut &[u8]) -> Result<u16, FrameError> {
    Ok(u16::from_be_bytes(
        take_bytes(buf, 2)?.try_into().expect("2-byte slice"),
    ))
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, FrameError> {
    Ok(u32::from_be_bytes(
        take_bytes(buf, 4)?.try_into().expect("4-byte slice"),
    ))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, FrameError> {
    Ok(u64::from_be_bytes(
        take_bytes(buf, 8)?.try_into().expect("8-byte slice"),
    ))
}

/// The 34-byte list header of the dispatch cost model
/// ([`LIST_HEADER_BYTES`](detector_system::dispatch::LIST_HEADER_BYTES)),
/// then an entry count and the canonical entry encodings.
fn encode_list(list: &Pinglist, out: &mut Vec<u8>) {
    put_u64(out, list.version);
    put_u32(out, list.pinger.0);
    put_u64(out, list.interval_us);
    put_u16(out, list.base_sport);
    put_u16(out, list.port_range);
    put_u16(out, list.dport);
    put_u64(out, list.stamp);
    put_u32(out, list.entries.len() as u32);
    for e in &list.entries {
        encode_entry(e, out);
    }
}

fn decode_list(buf: &mut &[u8]) -> Result<Pinglist, FrameError> {
    let version = take_u64(buf)?;
    let pinger = NodeId(take_u32(buf)?);
    let interval_us = take_u64(buf)?;
    let base_sport = take_u16(buf)?;
    let port_range = take_u16(buf)?;
    let dport = take_u16(buf)?;
    let stamp = take_u64(buf)?;
    let n = take_u32(buf)? as usize;
    let mut entries = Vec::new();
    for _ in 0..n {
        entries.push(decode_entry(buf).ok_or(FrameError::BadPayload("ping entry"))?);
    }
    Ok(Pinglist {
        version,
        pinger,
        entries,
        interval_us,
        base_sport,
        port_range,
        dport,
        stamp,
    })
}

fn encode_counters(c: &PathCounters, out: &mut Vec<u8>) {
    put_u64(out, c.sent);
    put_u64(out, c.lost);
    put_u64(out, c.rtt_sum_us.to_bits());
    put_u64(out, c.rtt_max_us.to_bits());
}

fn decode_counters(buf: &mut &[u8]) -> Result<PathCounters, FrameError> {
    Ok(PathCounters {
        sent: take_u64(buf)?,
        lost: take_u64(buf)?,
        rtt_sum_us: f64::from_bits(take_u64(buf)?),
        rtt_max_us: f64::from_bits(take_u64(buf)?),
    })
}

/// Report payload: maps are written in sorted key order so the encoding
/// is a pure function of the report's *contents*, independent of hash
/// map iteration order (and therefore identical across processes).
fn encode_report(r: &PingerReport, out: &mut Vec<u8>) {
    put_u32(out, r.pinger.0);
    put_u64(out, r.window);

    let mut paths: Vec<_> = r.paths.iter().collect();
    paths.sort_by_key(|(pid, _)| **pid);
    put_u32(out, paths.len() as u32);
    for (pid, c) in paths {
        put_u32(out, pid.0);
        encode_counters(c, out);
    }

    let mut in_rack: Vec<_> = r.in_rack.iter().collect();
    in_rack.sort_by_key(|(responder, _)| **responder);
    put_u32(out, in_rack.len() as u32);
    for (responder, c) in in_rack {
        put_u32(out, responder.0);
        encode_counters(c, out);
    }

    let mut flows: Vec<_> = r.flows.iter().collect();
    flows.sort_by_key(|((pid, flow), _)| (*pid, *flow));
    put_u32(out, flows.len() as u32);
    for ((pid, flow), (sent, lost)) in flows {
        put_u32(out, pid.0);
        put_u64(out, *flow);
        put_u64(out, *sent);
        put_u64(out, *lost);
    }
}

fn decode_report(buf: &mut &[u8]) -> Result<PingerReport, FrameError> {
    let mut r = PingerReport {
        pinger: NodeId(take_u32(buf)?),
        window: take_u64(buf)?,
        ..Default::default()
    };
    for _ in 0..take_u32(buf)? {
        let pid = PathId(take_u32(buf)?);
        r.paths.insert(pid, decode_counters(buf)?);
    }
    for _ in 0..take_u32(buf)? {
        let responder = NodeId(take_u32(buf)?);
        r.in_rack.insert(responder, decode_counters(buf)?);
    }
    for _ in 0..take_u32(buf)? {
        let pid = PathId(take_u32(buf)?);
        let flow = take_u64(buf)?;
        let sent = take_u64(buf)?;
        let lost = take_u64(buf)?;
        r.flows.insert((pid, flow), (sent, lost));
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_system::dispatch::{
        encoded_entry_len, encoded_list_len, entry_key, ListUpdate, FRAME_OVERHEAD,
    };

    fn entry(path: Option<u32>, route: &[u32], responder: u32, waypoint: Option<u32>) -> PingEntry {
        PingEntry {
            path: path.map(PathId),
            route: route.iter().map(|&n| NodeId(n)).collect(),
            responder: NodeId(responder),
            waypoint: waypoint.map(NodeId),
        }
    }

    fn list() -> Pinglist {
        let mut l = Pinglist {
            version: 7,
            pinger: NodeId(100),
            entries: vec![
                entry(Some(3), &[100, 1, 2, 101], 101, Some(2)),
                entry(None, &[100, 1, 102], 102, None),
            ],
            interval_us: 100_000,
            base_sport: 33000,
            port_range: 16,
            dport: 53533,
            stamp: 0,
        };
        l.seal();
        l
    }

    fn report() -> PingerReport {
        let mut r = PingerReport {
            pinger: NodeId(100),
            window: 4,
            ..Default::default()
        };
        r.paths.insert(
            PathId(3),
            PathCounters {
                sent: 300,
                lost: 2,
                rtt_sum_us: 123_456.75,
                rtt_max_us: 900.5,
            },
        );
        r.paths.insert(PathId(9), PathCounters::default());
        r.in_rack.insert(
            NodeId(101),
            PathCounters {
                sent: 10,
                lost: 0,
                rtt_sum_us: 80.0,
                rtt_max_us: 12.0,
            },
        );
        r.flows.insert((PathId(3), 77), (150, 1));
        r.flows.insert((PathId(3), 12), (150, 1));
        r
    }

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { agent: 3 },
            Frame::ListReplace(list()),
            Frame::ListRemove { pinger: NodeId(9) },
            Frame::EntryAdd {
                pinger: NodeId(100),
                index: 2,
                entry: entry(Some(8), &[100, 4, 101], 101, None),
            },
            Frame::EntryRemove {
                pinger: NodeId(100),
                key: 0xDEAD_BEEF_CAFE_F00D,
            },
            Frame::RangeRebase {
                old: PathIdRange::new(64, 32),
                new: PathIdRange::new(128, 48),
            },
            Frame::ListSeal {
                pinger: NodeId(100),
                version: 9,
                stamp: 0x1234_5678_9ABC_DEF0,
            },
            Frame::Reset,
            Frame::WindowStart {
                window: 21,
                window_seed: 0xFEED_FACE_0123_4567,
                skip: vec![NodeId(5), NodeId(17)],
            },
            Frame::HeartbeatReq { nonce: 42 },
            Frame::HeartbeatAck {
                nonce: 42,
                agent: 1,
            },
            Frame::Report(report()),
            Frame::WindowDone {
                window: 21,
                agent: 1,
            },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in all_frames() {
            let bytes = f.encode();
            let back = Frame::decode(&bytes).unwrap_or_else(|e| panic!("{f:?}: {e}"));
            assert_eq!(back, f);
        }
    }

    #[test]
    fn frame_sizes_match_the_dispatch_cost_model() {
        // The diff-protocol frames must cost exactly what ListUpdate::
        // wire_bytes charges — PlanUpdated's bytes_dispatched is computed
        // from the model, and the loopback byte counters measure these
        // encodings.
        let e = entry(Some(8), &[100, 4, 101], 101, None);
        assert_eq!(
            Frame::EntryAdd {
                pinger: NodeId(100),
                index: 2,
                entry: e.clone(),
            }
            .encode()
            .len(),
            FRAME_OVERHEAD + 4 + 4 + encoded_entry_len(&e)
        );
        assert_eq!(
            Frame::EntryRemove {
                pinger: NodeId(100),
                key: 1,
            }
            .encode()
            .len(),
            FRAME_OVERHEAD + 4 + 8
        );
        assert_eq!(
            Frame::ListSeal {
                pinger: NodeId(100),
                version: 1,
                stamp: 2,
            }
            .encode()
            .len(),
            FRAME_OVERHEAD + 4 + 8 + 8
        );
        assert_eq!(
            Frame::ListRemove { pinger: NodeId(9) }.encode().len(),
            FRAME_OVERHEAD + 4
        );
        assert_eq!(
            Frame::RangeRebase {
                old: PathIdRange::new(0, 1),
                new: PathIdRange::new(1, 2),
            }
            .encode()
            .len(),
            FRAME_OVERHEAD + 16
        );
        let l = list();
        assert_eq!(
            Frame::ListReplace(l.clone()).encode().len(),
            encoded_list_len(&l)
        );
    }

    #[test]
    fn a_diff_update_frames_to_exactly_its_wire_bytes() {
        let added = entry(Some(8), &[100, 4, 101], 101, None);
        let removed_key = entry_key(&list().entries[0]);
        let update = ListUpdate::Diff {
            pinger: NodeId(100),
            version: 9,
            stamp: 77,
            removed: vec![removed_key],
            added: vec![(1, added.clone())],
        };
        let framed: usize = [
            Frame::EntryRemove {
                pinger: NodeId(100),
                key: removed_key,
            },
            Frame::EntryAdd {
                pinger: NodeId(100),
                index: 1,
                entry: added,
            },
            Frame::ListSeal {
                pinger: NodeId(100),
                version: 9,
                stamp: 77,
            },
        ]
        .iter()
        .map(|f| f.encode().len())
        .sum();
        assert_eq!(framed, update.wire_bytes());
    }

    #[test]
    fn report_encoding_is_sorted_and_deterministic() {
        // Two reports with identical contents but different insertion
        // orders must encode identically.
        let a = report();
        let mut b = PingerReport {
            pinger: a.pinger,
            window: a.window,
            ..Default::default()
        };
        let mut paths: Vec<_> = a.paths.iter().map(|(k, v)| (*k, *v)).collect();
        paths.reverse();
        for (k, v) in paths {
            b.paths.insert(k, v);
        }
        for (k, v) in &a.in_rack {
            b.in_rack.insert(*k, *v);
        }
        let mut flows: Vec<_> = a.flows.iter().map(|(k, v)| (*k, *v)).collect();
        flows.reverse();
        for (k, v) in flows {
            b.flows.insert(k, v);
        }
        assert_eq!(Frame::Report(a).encode(), Frame::Report(b).encode());
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        for f in all_frames() {
            let bytes = f.encode();
            for cut in 0..bytes.len() {
                assert!(
                    Frame::decode(&bytes[..cut]).is_err(),
                    "{f:?} decoded from a {cut}-byte prefix"
                );
            }
        }
    }

    #[test]
    fn garbage_and_oversize_are_rejected() {
        // Unknown tag.
        let mut bytes = Frame::Shutdown.encode();
        bytes[4] = 200;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::UnknownTag(200)));
        // Trailing bytes after a valid frame.
        let mut bytes = Frame::HeartbeatReq { nonce: 1 }.encode();
        bytes.push(0);
        assert_eq!(Frame::decode(&bytes), Err(FrameError::TrailingBytes));
        // A hostile length prefix is rejected before allocation.
        let mut huge = (MAX_FRAME + 1).to_be_bytes().to_vec();
        huge.push(TAG_SHUTDOWN);
        assert_eq!(
            Frame::decode(&huge),
            Err(FrameError::Oversize(MAX_FRAME + 1))
        );
    }
}
