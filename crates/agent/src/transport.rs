//! Frame transports: the in-process loopback pair (CI's workhorse) and
//! a length-prefixed TCP stream for real two-process deployments.
//!
//! A [`Transport`] moves whole [`Frame`]s; framing (the `u32` length
//! prefix) is part of the frame encoding itself, so both impls ship the
//! exact bytes [`Frame::encode`] produces and their byte counters agree
//! with the dispatch cost model. The loopback pair also supports *fault
//! injection*: an end built with a send budget dies after that many
//! sends — the peer drains whatever was already in flight and then sees
//! [`TransportError::Closed`], which is exactly how a crashed agent
//! process looks to the controller.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam::channel::{self, Receiver, Sender, TryRecvError};

use crate::frame::{Frame, FrameError, MAX_FRAME};

/// Why a transport operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is gone (disconnected, crashed, or out of send budget).
    Closed,
    /// Received bytes failed to parse as a frame.
    Codec(FrameError),
    /// An OS-level I/O failure (TCP transport only).
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Codec(e) => write!(f, "codec error: {e}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Codec(e)
    }
}

/// A bidirectional, ordered frame channel. `send` is non-blocking in
/// spirit (the loopback is unbounded; TCP writes through the socket
/// buffer); `recv` blocks until a frame or a closed peer.
pub trait Transport: Send {
    /// Ships one frame to the peer.
    fn send(&self, frame: &Frame) -> Result<(), TransportError>;
    /// Receives the next frame, blocking until one arrives or the peer
    /// is gone.
    fn recv(&self) -> Result<Frame, TransportError>;
    /// Wire bytes this end has sent so far.
    fn bytes_sent(&self) -> u64;
}

/// A [`Transport`] whose agent→controller byte flow the controller can
/// account without owning the agent's end — what
/// [`DistributedDetector`](crate::DistributedDetector) needs from a
/// control-plane link. The loopback pair reads the peer's send counter
/// directly; TCP counts bytes as they are received (equal once the
/// stream is drained, which the window protocol guarantees at every
/// accounting point).
pub trait ControlTransport: Transport {
    /// Agent→controller wire bytes observed so far.
    fn peer_bytes_sent(&self) -> u64;
}

/// One end of an in-process loopback pair.
pub struct LoopbackEnd {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    sent: Arc<AtomicU64>,
    peer_sent: Arc<AtomicU64>,
    /// Remaining sends before this end dies; `usize::MAX` = unlimited.
    budget: AtomicUsize,
}

/// A connected loopback pair `(controller_end, agent_end)`.
pub fn loopback() -> (LoopbackEnd, LoopbackEnd) {
    loopback_with_budgets(usize::MAX, usize::MAX)
}

/// A loopback pair whose *agent* end dies after `agent_sends` sends —
/// the injection point for crash-mid-window tests. The controller end
/// drains frames already in flight, then sees
/// [`TransportError::Closed`].
pub fn flaky_loopback(agent_sends: usize) -> (LoopbackEnd, LoopbackEnd) {
    loopback_with_budgets(usize::MAX, agent_sends)
}

fn loopback_with_budgets(a_budget: usize, b_budget: usize) -> (LoopbackEnd, LoopbackEnd) {
    let (a_tx, a_rx) = channel::unbounded();
    let (b_tx, b_rx) = channel::unbounded();
    let a_sent = Arc::new(AtomicU64::new(0));
    let b_sent = Arc::new(AtomicU64::new(0));
    let a = LoopbackEnd {
        tx: a_tx,
        rx: b_rx,
        sent: Arc::clone(&a_sent),
        peer_sent: Arc::clone(&b_sent),
        budget: AtomicUsize::new(a_budget),
    };
    let b = LoopbackEnd {
        tx: b_tx,
        rx: a_rx,
        sent: b_sent,
        peer_sent: a_sent,
        budget: AtomicUsize::new(b_budget),
    };
    (a, b)
}

impl Transport for LoopbackEnd {
    fn send(&self, frame: &Frame) -> Result<(), TransportError> {
        // A spent budget means this end "crashed": it can never send
        // again. The peer still drains what was already in flight.
        loop {
            let left = self.budget.load(Ordering::SeqCst);
            if left == 0 {
                return Err(TransportError::Closed);
            }
            let next = if left == usize::MAX { left } else { left - 1 };
            if self
                .budget
                .compare_exchange(left, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
        let bytes = frame.encode();
        self.sent.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.tx.send(bytes).map_err(|_| TransportError::Closed)
    }

    fn recv(&self) -> Result<Frame, TransportError> {
        match self.rx.recv() {
            Ok(bytes) => Ok(Frame::decode(&bytes)?),
            Err(_) => Err(TransportError::Closed),
        }
    }

    fn bytes_sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

impl LoopbackEnd {
    /// Non-blocking receive: `Ok(None)` when no frame is waiting but the
    /// peer is still connected.
    pub fn try_recv(&self) -> Result<Option<Frame>, TransportError> {
        match self.rx.try_recv() {
            Ok(bytes) => Ok(Some(Frame::decode(&bytes)?)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    /// Wire bytes the *peer* end has sent so far (counted at its send
    /// call, so in-flight frames are included). The controller uses this
    /// to account the report plane without owning the agents' ends.
    pub fn peer_bytes_sent(&self) -> u64 {
        self.peer_sent.load(Ordering::Relaxed)
    }
}

impl ControlTransport for LoopbackEnd {
    fn peer_bytes_sent(&self) -> u64 {
        LoopbackEnd::peer_bytes_sent(self)
    }
}

/// A [`Transport`] over a connected TCP stream: frames travel exactly as
/// [`Frame::encode`] lays them out. Reads and writes are independently
/// locked so one thread can block in [`recv`](Transport::recv) while
/// another sends.
pub struct TcpTransport {
    reader: Mutex<std::net::TcpStream>,
    writer: Mutex<std::net::TcpStream>,
    sent: AtomicU64,
    received: AtomicU64,
}

impl TcpTransport {
    /// Wraps a connected stream.
    pub fn new(stream: std::net::TcpStream) -> std::io::Result<Self> {
        let reader = stream.try_clone()?;
        Ok(Self {
            reader: Mutex::new(reader),
            writer: Mutex::new(stream),
            sent: AtomicU64::new(0),
            received: AtomicU64::new(0),
        })
    }

    /// Connects to a listening peer.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        Self::new(std::net::TcpStream::connect(addr)?)
    }
}

fn io_err(e: &std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe => TransportError::Closed,
        _ => TransportError::Io(e.to_string()),
    }
}

impl Transport for TcpTransport {
    fn send(&self, frame: &Frame) -> Result<(), TransportError> {
        use std::io::Write;
        let bytes = frame.encode();
        let mut w = self.writer.lock().expect("tcp writer poisoned");
        w.write_all(&bytes).map_err(|e| io_err(&e))?;
        self.sent.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn recv(&self) -> Result<Frame, TransportError> {
        use std::io::Read;
        let mut r = self.reader.lock().expect("tcp reader poisoned");
        let mut prefix = [0u8; 4];
        r.read_exact(&mut prefix).map_err(|e| io_err(&e))?;
        let len = u32::from_be_bytes(prefix);
        if len > MAX_FRAME {
            return Err(TransportError::Codec(FrameError::Oversize(len)));
        }
        let mut rest = vec![0u8; len as usize];
        r.read_exact(&mut rest).map_err(|e| io_err(&e))?;
        let mut whole = prefix.to_vec();
        whole.extend_from_slice(&rest);
        self.received
            .fetch_add(whole.len() as u64, Ordering::Relaxed);
        Ok(Frame::decode(&whole)?)
    }

    fn bytes_sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

impl ControlTransport for TcpTransport {
    fn peer_bytes_sent(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_moves_frames_both_ways_and_counts_bytes() {
        let (ctrl, agent) = loopback();
        let f = Frame::HeartbeatReq { nonce: 7 };
        ctrl.send(&f).unwrap();
        assert_eq!(agent.recv().unwrap(), f);
        assert_eq!(ctrl.bytes_sent(), f.encode().len() as u64);
        let ack = Frame::HeartbeatAck { nonce: 7, agent: 0 };
        agent.send(&ack).unwrap();
        assert_eq!(ctrl.recv().unwrap(), ack);
    }

    #[test]
    fn try_recv_distinguishes_empty_from_closed() {
        let (ctrl, agent) = loopback();
        assert_eq!(ctrl.try_recv().unwrap(), None);
        agent.send(&Frame::Shutdown).unwrap();
        assert_eq!(ctrl.try_recv().unwrap(), Some(Frame::Shutdown));
        drop(agent);
        assert_eq!(ctrl.try_recv(), Err(TransportError::Closed));
    }

    #[test]
    fn dropping_an_end_closes_the_peer_after_drain() {
        let (ctrl, agent) = loopback();
        agent.send(&Frame::Hello { agent: 0 }).unwrap();
        drop(agent);
        // In-flight frames drain first, then the disconnect surfaces.
        assert_eq!(ctrl.recv().unwrap(), Frame::Hello { agent: 0 });
        assert_eq!(ctrl.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn a_spent_send_budget_looks_like_a_crash() {
        let (ctrl, agent) = flaky_loopback(2);
        agent.send(&Frame::Hello { agent: 0 }).unwrap();
        agent
            .send(&Frame::WindowDone {
                window: 0,
                agent: 0,
            })
            .unwrap();
        assert_eq!(agent.send(&Frame::Shutdown), Err(TransportError::Closed));
        // The controller still sees the two frames that made it out.
        assert_eq!(ctrl.recv().unwrap(), Frame::Hello { agent: 0 });
        assert_eq!(
            ctrl.recv().unwrap(),
            Frame::WindowDone {
                window: 0,
                agent: 0
            }
        );
    }

    #[test]
    fn tcp_round_trips_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::new(stream).unwrap();
            let f = t.recv().unwrap();
            t.send(&f).unwrap(); // Echo.
            t.recv() // Expect Closed once the client hangs up.
        });
        let client = TcpTransport::connect(addr).unwrap();
        let f = Frame::WindowStart {
            window: 3,
            window_seed: 99,
            skip: vec![detector_core::types::NodeId(4)],
        };
        client.send(&f).unwrap();
        assert_eq!(client.recv().unwrap(), f);
        assert_eq!(client.bytes_sent(), f.encode().len() as u64);
        drop(client);
        assert_eq!(server.join().unwrap(), Err(TransportError::Closed));
    }
}
