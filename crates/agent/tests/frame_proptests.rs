//! Property tests for the wire-protocol frame codec: arbitrary frames
//! round-trip byte-exactly, every truncation is detected, garbage and
//! oversize inputs are rejected without panicking, and decode never
//! allocates for an oversize length prefix.

use detector_agent::{Frame, FrameError, MAX_FRAME};
use detector_core::types::{NodeId, PathId, PathIdRange};
use detector_system::{PathCounters, PingEntry, PingerReport, Pinglist};
use proptest::prelude::*;

/// Builds one arbitrary entry from raw draws.
fn entry(path: u32, hops: &[u32], responder: u32, waypoint: u32) -> PingEntry {
    PingEntry {
        path: (!path.is_multiple_of(3)).then_some(PathId(path)),
        route: hops.iter().map(|&h| NodeId(h)).collect(),
        responder: NodeId(responder),
        waypoint: (waypoint.is_multiple_of(2)).then_some(NodeId(waypoint)),
    }
}

/// Decodes one raw tuple into an arbitrary frame: `kind` selects the
/// variant, the remaining draws fill its fields.
fn frame(kind: u8, a: u64, b: u64, hops: Vec<u32>, entries: u8) -> Frame {
    let pinger = NodeId(a as u32 % 4096);
    match kind % 14 {
        0 => Frame::Hello { agent: a as u32 },
        1 => {
            let mut list = Pinglist {
                version: a,
                pinger,
                entries: (0..entries % 8)
                    .map(|i| entry(b as u32 + u32::from(i), &hops, a as u32, u32::from(i)))
                    .collect(),
                interval_us: b,
                base_sport: a as u16,
                port_range: b as u16,
                dport: (a >> 16) as u16,
                stamp: 0,
            };
            list.seal();
            Frame::ListReplace(list)
        }
        2 => Frame::ListRemove { pinger },
        3 => Frame::EntryAdd {
            pinger,
            index: b as u32,
            entry: entry(a as u32, &hops, b as u32, a as u32),
        },
        4 => Frame::EntryRemove { pinger, key: b },
        5 => Frame::RangeRebase {
            old: PathIdRange {
                base: a as u32,
                capacity: b as u32 % 1000,
            },
            new: PathIdRange {
                base: b as u32,
                capacity: a as u32 % 1000,
            },
        },
        6 => Frame::ListSeal {
            pinger,
            version: a,
            stamp: b,
        },
        7 => Frame::Reset,
        8 => Frame::WindowStart {
            window: a,
            window_seed: b,
            skip: hops.iter().map(|&h| NodeId(h)).collect(),
        },
        9 => Frame::HeartbeatReq { nonce: a },
        10 => Frame::HeartbeatAck {
            nonce: a,
            agent: b as u32,
        },
        11 => {
            let mut report = PingerReport {
                pinger,
                window: b,
                ..PingerReport::default()
            };
            for (i, &h) in hops.iter().enumerate() {
                let c = PathCounters {
                    sent: u64::from(h),
                    lost: u64::from(h) / 2,
                    rtt_sum_us: f64::from(h) * 1.5,
                    rtt_max_us: f64::from(h),
                };
                report.paths.insert(PathId(h), c);
                report.in_rack.insert(NodeId(h), c);
                report.flows.insert((PathId(h), a ^ i as u64), (a, b));
            }
            Frame::Report(report)
        }
        12 => Frame::WindowDone {
            window: a,
            agent: b as u32,
        },
        _ => Frame::Shutdown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Any frame decodes back to itself from exactly its own bytes.
    #[test]
    fn any_frame_round_trips(
        kind in 0u8..14,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        hops in proptest::collection::vec(0u32..10_000, 0..6),
        entries in 0u8..8,
    ) {
        let f = frame(kind, a, b, hops, entries);
        let bytes = f.encode();
        prop_assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    /// Every strict prefix of a valid frame is `Truncated`; a trailing
    /// byte is `TrailingBytes`. No input panics.
    #[test]
    fn truncations_and_trailers_are_rejected(
        kind in 0u8..14,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        hops in proptest::collection::vec(0u32..10_000, 0..4),
        entries in 0u8..5,
    ) {
        let bytes = frame(kind, a, b, hops, entries).encode();
        for cut in 0..bytes.len() {
            prop_assert_eq!(
                Frame::decode(&bytes[..cut]),
                Err(FrameError::Truncated),
                "prefix of {} bytes must be truncated", cut
            );
        }
        let mut padded = bytes;
        padded.push(0);
        prop_assert_eq!(Frame::decode(&padded), Err(FrameError::TrailingBytes));
    }

    /// Arbitrary garbage never panics the decoder — it either parses or
    /// fails with a typed error.
    #[test]
    fn garbage_never_panics(raw in proptest::collection::vec(0u64..256, 0..64)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = Frame::decode(&bytes);
    }

    /// A corrupted length prefix above `MAX_FRAME` is rejected up front,
    /// whatever follows it. (A bare 4-byte prefix with no tag byte is
    /// `Truncated` first — the prefix alone is not yet a frame.)
    #[test]
    fn oversize_prefixes_are_rejected(extra in 1u32..1_000_000, tail in 1u64..64) {
        let len = MAX_FRAME.saturating_add(extra);
        let mut bytes = len.to_be_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(0u8, tail as usize));
        prop_assert_eq!(Frame::decode(&bytes), Err(FrameError::Oversize(len)));
    }
}
