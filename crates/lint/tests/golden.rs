//! Golden-fixture tests: every check family fires on its bad fixture,
//! every allow-annotated / disciplined fixture is clean, and the
//! workspace itself lints clean (detlint lints the code that implements
//! detlint).
//!
//! Fixtures live under `tests/fixtures/` (not compiled by cargo; the
//! workspace walker skips `fixtures` directories too). Bad fixtures are
//! exercised both through the library API and through the installed
//! `detlint` binary, pinning the clippy-style exit-code contract.

use std::path::Path;
use std::process::Command;

use detector_lint::{find_workspace_root, lint_source, lint_workspace, Check, ScopeMode};

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn lint_fixture(name: &str) -> Vec<detector_lint::Diagnostic> {
    let path = fixture(name);
    let source = std::fs::read_to_string(&path).unwrap();
    lint_source(Path::new(&path), &source, ScopeMode::AllChecks)
}

#[test]
fn determinism_fixture_fires_and_allow_suppresses() {
    let d = lint_fixture("determinism_bad.rs");
    assert_eq!(d.len(), 4, "{d:#?}");
    assert!(d.iter().all(|x| x.check == Check::Determinism), "{d:#?}");

    let d = lint_fixture("determinism_allowed.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn panic_fixture_fires_and_allow_suppresses() {
    let d = lint_fixture("panic_bad.rs");
    assert_eq!(d.len(), 4, "{d:#?}");
    assert!(d.iter().all(|x| x.check == Check::PanicPath), "{d:#?}");

    let d = lint_fixture("panic_allowed.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn locks_fixture_fires_each_hazard_and_discipline_is_clean() {
    let d = lint_fixture("locks_bad.rs");
    assert!(d.iter().all(|x| x.check == Check::LockDiscipline), "{d:#?}");
    let msgs: Vec<&str> = d.iter().map(|x| x.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("double acquisition")),
        "{msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("lock-order inversion")),
        "{msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("held across .send()")),
        "{msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("temporary guard")),
        "{msgs:#?}"
    );
    // The ingest shard swap: sealing must not ship the snapshot while
    // the overflow guard is live.
    assert!(
        msgs.iter()
            .any(|m| m.contains("`self.overflow`") && m.contains("held across .send()")),
        "{msgs:#?}"
    );
    assert_eq!(d.len(), 5, "{d:#?}");

    let d = lint_fixture("locks_allowed.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn events_fixture_fires_on_missing_variant_and_complete_is_clean() {
    let d = lint_fixture("events_bad.rs");
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].check, Check::EventProtocol);
    assert!(d[0].message.contains("`WireEvent::Aborted`"), "{d:#?}");
    assert!(d[0].message.contains("from_json"), "{d:#?}");

    let d = lint_fixture("events_allowed.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let diags = lint_workspace(&root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "the workspace must lint clean; run `cargo run -p detector-lint` for details:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_nonzero_on_bad_fixtures_and_zero_on_workspace() {
    for bad in [
        "determinism_bad.rs",
        "panic_bad.rs",
        "locks_bad.rs",
        "events_bad.rs",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
            .arg(fixture(bad))
            .output()
            .expect("run detlint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{bad}: expected exit 1, got {:?}\nstdout: {}",
            out.status,
            String::from_utf8_lossy(&out.stdout)
        );
        // Diagnostics carry file:line so they are jump-to-able.
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(bad), "{bad}: {stdout}");
    }

    for good in [
        "determinism_allowed.rs",
        "panic_allowed.rs",
        "locks_allowed.rs",
        "events_allowed.rs",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
            .arg(fixture(good))
            .output()
            .expect("run detlint");
        assert_eq!(out.status.code(), Some(0), "{good}: {out:?}");
    }

    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .current_dir(&root)
        .output()
        .expect("run detlint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace run must be clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
