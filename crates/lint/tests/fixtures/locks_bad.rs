// Golden fixture: the three lock-discipline hazards.
use std::sync::Mutex;

struct Shared {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Shared {
    fn double_acquire(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.alpha.lock();
        *a + *b
    }

    fn order_ab(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    fn order_ba(&self) -> u64 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a + *b
    }

    fn send_under_guard(&self, tx: &Sender<u64>) {
        let g = self.alpha.lock();
        tx.send(*g);
    }

    fn temp_guard_in_send(&self, tx: &Sender<u64>) {
        tx.send(*self.beta.lock());
    }
}

// The ingest shard-swap hazard: sealing a window drains the overflow
// map under its mutex (rank above `ReportStore`'s 100), and the sealed
// snapshot must only be shipped *after* the guard is gone. Holding it
// across the send couples diagnosis against every folding collector.
struct IngestPlane {
    overflow: Mutex<Vec<(u64, u64)>>,
}

impl IngestPlane {
    fn seal_under_guard(&self, window: u64, tx: &Sender<Vec<(u64, u64)>>) {
        let mut ov = self.overflow.lock();
        let drained = ov.drain(..).filter(|e| e.0 == window).collect();
        tx.send(drained);
    }
}
