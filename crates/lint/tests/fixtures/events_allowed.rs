// Golden fixture: the complete protocol — every variant appears in
// both directions of the JSON round-trip.
pub enum WireEvent {
    Started { window: u64 },
    Finished(u64),
    Aborted,
}

impl ToJson for WireEvent {
    fn to_json(&self) -> Json {
        match self {
            WireEvent::Started { window } => obj("started", *window),
            WireEvent::Finished(w) => obj("finished", *w),
            WireEvent::Aborted => obj("aborted", 0),
        }
    }
}

impl WireEvent {
    pub fn from_json(j: &Json) -> Option<WireEvent> {
        match j.get("event")?.as_str()? {
            "started" => Some(Self::Started { window: 0 }),
            "finished" => Some(Self::Finished(0)),
            "aborted" => Some(Self::Aborted),
            _ => None,
        }
    }
}
