// Golden fixture: provably-in-bounds indexing with the required
// justification; graceful-degradation forms need no annotation at all.
fn ingest(reports: &[u64], i: usize) -> u64 {
    let head = reports.first().copied().unwrap_or(0);
    if reports.is_empty() {
        return head;
    }
    // detlint::allow(panic_path, reason = "index is modulo len of a slice checked non-empty above")
    head + reports[i % reports.len()]
}
