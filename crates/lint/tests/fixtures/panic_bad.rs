// Golden fixture: hot-path panic constructs, one per flavour.
fn ingest(reports: Vec<u64>, i: usize) -> u64 {
    let first = reports.first().unwrap();
    let second = reports.get(1).expect("second report");
    if i > reports.len() {
        panic!("out of range");
    }
    first + second + reports[i]
}
