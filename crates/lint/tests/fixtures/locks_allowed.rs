// Golden fixture: the disciplined versions of the same operations —
// one consistent order, guards dropped before channel ops.
use std::sync::Mutex;

struct Shared {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Shared {
    fn order_ab(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    fn also_order_ab(&self) -> u64 {
        let a = self.alpha.lock();
        drop(a);
        let b = self.beta.lock();
        *b
    }

    fn send_after_drop(&self, tx: &Sender<u64>) {
        let g = self.alpha.lock();
        let v = *g;
        drop(g);
        tx.send(v);
    }

    fn scoped_guard(&self, tx: &Sender<u64>) {
        let v = {
            let g = self.beta.lock();
            *g
        };
        tx.send(v);
    }
}

// The disciplined ingest shard swap: the seal drains the overflow map
// under its mutex, the guard dies with the block, and only the frozen
// snapshot crosses the channel — folding collectors never wait on
// diagnosis shipping its result.
struct IngestPlane {
    overflow: Mutex<Vec<(u64, u64)>>,
}

impl IngestPlane {
    fn seal_then_send(&self, window: u64, tx: &Sender<Vec<(u64, u64)>>) {
        let drained: Vec<(u64, u64)> = {
            let mut ov = self.overflow.lock();
            ov.drain(..).filter(|e| e.0 == window).collect()
        };
        tx.send(drained);
    }
}
