// Golden fixture: the same wall-clock read, annotated as genuine
// timing measurement. The annotation must carry a non-empty reason.
use std::time::Instant;

fn replan_stopwatch() -> u64 {
    // detlint::allow(determinism, reason = "stopwatch feeds replan_micros; never branches")
    let t0 = Instant::now();
    t0.elapsed().as_micros() as u64
}
