// Golden fixture: every line here violates the determinism check.
use std::time::Instant;

fn window_jitter() -> u64 {
    let t0 = Instant::now();
    let noise: u64 = rand::random();
    let mut rng = thread_rng();
    let stamp = SystemTime::now();
    t0.elapsed().as_micros() as u64 + noise
}
