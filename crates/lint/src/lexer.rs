//! A minimal, dependency-free Rust lexer.
//!
//! `detlint` does not need a parser-grade token model — only a stream
//! precise enough that identifiers inside string literals, comments and
//! doc examples are never mistaken for code. The lexer therefore
//! understands exactly the lexical features that would otherwise cause
//! false positives: line and (nested) block comments, plain / raw / byte
//! string literals, char literals vs. lifetimes, raw identifiers, and
//! numeric literals. Everything else is an identifier or a single-char
//! punctuation token.
//!
//! Comments are returned separately so the annotation layer can parse
//! `// detlint::allow(...)` markers without them ever shadowing code
//! tokens.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `Instant`, `unwrap`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `::` arrives as two `:`).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, number.
    /// Lifetimes also land here — no check cares about them.
    Lit,
}

/// One token with the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    /// 1-based line number.
    pub line: u32,
    /// Token payload.
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// True when this token is the punctuation char `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment (`//...` including the slashes, or a whole `/* */` block)
/// with the line it starts on.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Raw comment text, delimiters included.
    pub text: String,
}

/// Lexes `src` into code tokens and comments.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            comments.push(Comment {
                line,
                text: b[start..i].iter().collect(),
            });
        } else if c == '/' && b.get(i + 1) == Some(&'*') {
            let (start, start_line) = (i, line);
            i += 2;
            let mut depth = 1u32;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                text: b[start..i.min(b.len())].iter().collect(),
            });
        } else if c == '"' {
            let l0 = line;
            i = skip_string(&b, i + 1, &mut line);
            toks.push(Tok {
                line: l0,
                kind: TokKind::Lit,
            });
        } else if is_raw_string_start(&b, i) {
            let l0 = line;
            i = skip_raw_string(&b, i, &mut line);
            toks.push(Tok {
                line: l0,
                kind: TokKind::Lit,
            });
        } else if c == 'r' && b.get(i + 1) == Some(&'#') && is_ident_start(b.get(i + 2)) {
            // Raw identifier r#type.
            let start = i + 2;
            i = start;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            toks.push(Tok {
                line,
                kind: TokKind::Ident(b[start..i].iter().collect()),
            });
        } else if c == '\'' {
            // Lifetime or char literal.
            let next = b.get(i + 1).copied();
            let after = b.get(i + 2).copied();
            if next.is_some_and(|n| n.is_alphanumeric() || n == '_') && after != Some('\'') {
                // Lifetime: 'a, 'static, '_.
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    line,
                    kind: TokKind::Lit,
                });
            } else {
                // Char literal, possibly escaped: 'x', '\n', '\''.
                i += 1;
                if b.get(i) == Some(&'\\') {
                    i += 2; // Skip the escape head; scan to the close below.
                }
                while i < b.len() && b[i] != '\'' {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1;
                toks.push(Tok {
                    line,
                    kind: TokKind::Lit,
                });
            }
        } else if c.is_ascii_digit() {
            while i < b.len() && (is_ident_continue(b[i]) || (b[i] == '.' && digit_after(&b, i))) {
                i += 1;
            }
            toks.push(Tok {
                line,
                kind: TokKind::Lit,
            });
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            toks.push(Tok {
                line,
                kind: TokKind::Ident(b[start..i].iter().collect()),
            });
        } else {
            toks.push(Tok {
                line,
                kind: TokKind::Punct(c),
            });
            i += 1;
        }
    }
    (toks, comments)
}

fn is_ident_start(c: Option<&char>) -> bool {
    c.is_some_and(|&c| c.is_alphabetic() || c == '_')
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `1.5` continues a number at the dot; `1..5` and `1.max(2)` do not.
fn digit_after(b: &[char], dot: usize) -> bool {
    b.get(dot + 1).is_some_and(|c| c.is_ascii_digit())
}

/// True at the start of `r"`, `r#"`, `b"`, `br#"`, `b'` forms.
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
        if b.get(j) == Some(&'\'') {
            return true; // b'x' byte literal, handled by skip_raw_string.
        }
        if b.get(j) == Some(&'"') {
            return true; // b"...".
        }
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
        return b.get(j) == Some(&'"');
    }
    false
}

/// Skips any of the `is_raw_string_start` forms; returns the index past
/// the closing delimiter.
fn skip_raw_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    if b.get(i) == Some(&'b') {
        i += 1;
        if b.get(i) == Some(&'\'') {
            // b'x' or b'\n'.
            i += 1;
            if b.get(i) == Some(&'\\') {
                i += 2;
            }
            while i < b.len() && b[i] != '\'' {
                i += 1;
            }
            return i + 1;
        }
        if b.get(i) == Some(&'"') {
            return skip_string(b, i + 1, line);
        }
    }
    // r, then hashes, then the quote.
    debug_assert_eq!(b.get(i), Some(&'r'));
    i += 1;
    let mut hashes = 0usize;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // Opening quote.
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' && (0..hashes).all(|k| b.get(i + 1 + k) == Some(&'#')) {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a plain (escaped) string body starting just past the opening
/// quote; returns the index past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Index of the `}` matching the `{` at `open` (or `toks.len() - 1` when
/// unbalanced).
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in toks[open..].iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return open + off;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `open` char matching the closing delimiter at `close`,
/// scanning backwards (for `[`/`]` and `(`/`)` receiver chains).
pub fn match_back(toks: &[Tok], close: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0i32;
    let mut j = close as isize;
    while j >= 0 {
        let t = &toks[j as usize];
        if t.is_punct(close_c) {
            depth += 1;
        } else if t.is_punct(open_c) {
            depth -= 1;
            if depth == 0 {
                return j as usize;
            }
        }
        j -= 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // Instant::now in a comment
            /* SystemTime in a block /* nested */ comment */
            let s = "Instant::now()";
            let r = r#"thread_rng "quoted" inside"#;
            let b = b"from_entropy";
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"from_entropy".to_string()));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let (toks, _) = lex(src);
        // Both the lifetimes and the char literal become Lit tokens; the
        // idents survive.
        assert!(toks.iter().any(|t| t.is_ident("str")));
        assert!(toks.iter().any(|t| t.is_ident("char")));
    }

    #[test]
    fn escaped_chars_and_quotes() {
        let src = "let a = '\\''; let b = '\\n'; let c = \"q\\\"uote\"; fn g() {}";
        let ids = idents(src);
        assert!(ids.contains(&"g".to_string()));
        assert!(!ids.contains(&"uote".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let x = 1;\n// detlint::allow(panic_path, reason = \"why\")\nlet y = 2;";
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("detlint::allow"));
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nfn after() {}";
        let (toks, _) = lex(src);
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "for i in 0..10 { x(1.5); y(2.max(3)); }";
        let (toks, _) = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("max")));
        // `0..10` keeps its two dots as puncts.
        assert!(toks.iter().filter(|t| t.is_punct('.')).count() >= 3);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }
}
