//! The four check families. Each module exposes `run(&FileCtx)` plus,
//! for the path-scoped checks, an `in_scope(rel)` predicate used by the
//! workspace walk ([`crate::lint_source`]).

pub mod determinism;
pub mod events;
pub mod locks;
pub mod panic_path;
