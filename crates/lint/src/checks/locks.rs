//! Lock-discipline check: a per-function acquisition summary over the
//! workspace's known `Mutex`/`RwLock` sites.
//!
//! Three deadlock shapes are flagged:
//!
//! * **double acquisition** — re-locking a receiver that is already
//!   held in the same function (`std::sync::Mutex` self-deadlocks;
//!   the parking_lot shim inherits that behaviour);
//! * **lock-order inversion** — two receivers acquired in both orders
//!   within one file (the classic AB/BA deadlock between threads);
//! * **guard across a channel op** — a guard live at a `.send()` /
//!   `.recv()` call. The crossbeam shim's channels are bounded-capable
//!   and block; blocking while holding a lock couples the pipeline
//!   stages into a deadlockable cycle.
//!
//! The analysis is intentionally first-order: a "lock receiver" is the
//! normalized token chain before `.lock()` / `.read()` / `.write()`
//! (e.g. `self.shared.state`, `results[_]`), a guard is *named* when
//! the statement is a top-level `let` binding (it then lives to the end
//! of its block, an explicit `drop(name)`, or end of function) and
//! *temporary* otherwise (it dies at the statement's `;`). The check
//! self-scopes: only files whose token stream mentions `Mutex` or
//! `RwLock` are analyzed, so channel-heavy lock-free files cost
//! nothing.

use std::collections::HashMap;
use std::ops::Range;

use crate::lexer::{match_back, Tok, TokKind};
use crate::{Check, Diagnostic, FileCtx, FnSpan};

/// Lock-returning methods. Empty call parens are required so that
/// `io::Write::write(buf)` / `Read::read(buf)` never match — lock
/// acquisitions take no arguments.
const ACQUIRE: &[&str] = &["lock", "read", "write"];

/// Blocking channel endpoints (crossbeam shim and std mpsc).
const CHANNEL_OPS: &[&str] = &["send", "recv", "try_send", "try_recv", "recv_timeout"];

/// A live named guard.
struct Guard {
    key: String,
    name: String,
    depth: i32,
    line: u32,
}

/// Runs the lock analysis over every function in the file.
pub fn run(ctx: &FileCtx) -> Vec<Diagnostic> {
    let qualifies = ctx
        .toks
        .iter()
        .any(|t| t.is_ident("Mutex") || t.is_ident("RwLock"));
    if !qualifies {
        return Vec::new();
    }

    let mut out = Vec::new();
    // (first-key, second-key) -> line of the second acquisition.
    let mut edges: HashMap<(String, String), u32> = HashMap::new();
    for f in &ctx.fns {
        let nested: Vec<Range<usize>> = ctx
            .fns
            .iter()
            .filter(|g| g.body.start > f.body.start && g.body.end <= f.body.end)
            .map(|g| g.body.clone())
            .collect();
        analyze_fn(ctx, f, &nested, &mut edges, &mut out);
    }

    // AB/BA inversions, reported once per pair at the later site.
    for ((a, b), &l1) in &edges {
        if a < b {
            if let Some(&l2) = edges.get(&(b.clone(), a.clone())) {
                let (anchor, other) = if l1 >= l2 { (l1, l2) } else { (l2, l1) };
                out.push(Diagnostic {
                    file: ctx.rel.clone(),
                    line: anchor,
                    check: Check::LockDiscipline,
                    message: format!(
                        "lock-order inversion: `{a}` and `{b}` are acquired in both orders \
                         (other order at line {other}); pick one order to rule out AB/BA deadlock"
                    ),
                });
            }
        }
    }
    out
}

fn analyze_fn(
    ctx: &FileCtx,
    f: &FnSpan,
    nested: &[Range<usize>],
    edges: &mut HashMap<(String, String), u32>,
    out: &mut Vec<Diagnostic>,
) {
    let t = &ctx.toks;
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0i32;

    // Per-statement state (reset at `;`, `{`, `}`).
    let mut stmt_let_name: Option<String> = None;
    let mut stmt_seen_any = false;
    let mut stmt_paren = 0i32;
    let mut stmt_temps: Vec<(String, u32)> = Vec::new();
    let mut stmt_chan: Option<(String, u32)> = None;

    let mut i = f.body.start;
    while i < f.body.end {
        if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        let tok = &t[i];

        // Statement-leading `let [mut] name` marks a named binding.
        if !stmt_seen_any {
            if tok.is_ident("let") {
                let mut k = i + 1;
                if t.get(k).is_some_and(|x| x.is_ident("mut")) {
                    k += 1;
                }
                if let Some(TokKind::Ident(name)) = t.get(k).map(|x| &x.kind) {
                    stmt_let_name = Some(name.clone());
                }
            }
            stmt_seen_any = true;
        }

        match &tok.kind {
            TokKind::Punct('(') => stmt_paren += 1,
            TokKind::Punct(')') => stmt_paren -= 1,
            TokKind::Punct(';') => {
                flush_stmt(
                    ctx,
                    &mut stmt_temps,
                    &mut stmt_chan,
                    &mut stmt_let_name,
                    &mut stmt_seen_any,
                    &mut stmt_paren,
                    out,
                );
            }
            TokKind::Punct('{') => {
                flush_stmt(
                    ctx,
                    &mut stmt_temps,
                    &mut stmt_chan,
                    &mut stmt_let_name,
                    &mut stmt_seen_any,
                    &mut stmt_paren,
                    out,
                );
                depth += 1;
            }
            TokKind::Punct('}') => {
                flush_stmt(
                    ctx,
                    &mut stmt_temps,
                    &mut stmt_chan,
                    &mut stmt_let_name,
                    &mut stmt_seen_any,
                    &mut stmt_paren,
                    out,
                );
                depth -= 1;
                held.retain(|g| g.depth <= depth);
            }
            TokKind::Ident(id) if id == "drop" && t.get(i + 1).is_some_and(|x| x.is_punct('(')) => {
                if let Some(TokKind::Ident(name)) = t.get(i + 2).map(|x| &x.kind) {
                    if t.get(i + 3).is_some_and(|x| x.is_punct(')')) {
                        held.retain(|g| g.name != *name);
                    }
                }
            }
            TokKind::Ident(id)
                if ACQUIRE.contains(&id.as_str())
                    && i > 0
                    && t[i - 1].is_punct('.')
                    && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                    && t.get(i + 2).is_some_and(|x| x.is_punct(')')) =>
            {
                let key = receiver_key(t, i - 1);
                let line = tok.line;
                if let Some(prev) = held
                    .iter()
                    .map(|g| (g.key.as_str(), g.line))
                    .chain(stmt_temps.iter().map(|(k, l)| (k.as_str(), *l)))
                    .find(|(k, _)| *k == key)
                {
                    out.push(Diagnostic {
                        file: ctx.rel.clone(),
                        line,
                        check: Check::LockDiscipline,
                        message: format!(
                            "double acquisition: `{key}` is already held (guard from line {}); \
                             a second .{id}() self-deadlocks",
                            prev.1
                        ),
                    });
                }
                for first in held
                    .iter()
                    .map(|g| g.key.clone())
                    .chain(stmt_temps.iter().map(|(k, _)| k.clone()))
                    .collect::<Vec<_>>()
                {
                    if first != key {
                        edges.entry((first, key.clone())).or_insert(line);
                    }
                }
                let named = stmt_let_name.is_some() && stmt_paren == 0;
                if named {
                    held.push(Guard {
                        key,
                        name: stmt_let_name.clone().unwrap_or_default(),
                        depth,
                        line,
                    });
                } else {
                    stmt_temps.push((key, line));
                }
            }
            TokKind::Ident(id)
                if CHANNEL_OPS.contains(&id.as_str())
                    && i > 0
                    && t[i - 1].is_punct('.')
                    && t.get(i + 1).is_some_and(|x| x.is_punct('(')) =>
            {
                if let Some(g) = held.first() {
                    out.push(Diagnostic {
                        file: ctx.rel.clone(),
                        line: tok.line,
                        check: Check::LockDiscipline,
                        message: format!(
                            "guard on `{}` (line {}) is held across .{id}(); a blocking channel \
                             op under a lock couples stages into a deadlockable cycle — drop the \
                             guard first",
                            g.key, g.line
                        ),
                    });
                }
                if stmt_chan.is_none() {
                    stmt_chan = Some((id.clone(), tok.line));
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// End-of-statement: a temporary guard plus a channel op in the same
/// statement means the guard outlives the op (temporaries drop at the
/// `;`), which is the same held-across-channel hazard in disguise.
#[allow(clippy::too_many_arguments)]
fn flush_stmt(
    ctx: &FileCtx,
    stmt_temps: &mut Vec<(String, u32)>,
    stmt_chan: &mut Option<(String, u32)>,
    stmt_let_name: &mut Option<String>,
    stmt_seen_any: &mut bool,
    stmt_paren: &mut i32,
    out: &mut Vec<Diagnostic>,
) {
    if let (Some((op, op_line)), Some((key, _))) = (stmt_chan.as_ref(), stmt_temps.first()) {
        out.push(Diagnostic {
            file: ctx.rel.clone(),
            line: *op_line,
            check: Check::LockDiscipline,
            message: format!(
                "temporary guard on `{key}` lives to the end of this statement, across .{op}(); \
                 bind the locked value and drop the guard before the channel op"
            ),
        });
    }
    stmt_temps.clear();
    *stmt_chan = None;
    *stmt_let_name = None;
    *stmt_seen_any = false;
    *stmt_paren = 0;
}

/// Normalized receiver chain before the `.` at `dot`: identifiers joined
/// with `.`, index/call segments collapsed to `[_]` / `(_)` so
/// `results[i].lock()` and `results[j].lock()` share a key.
fn receiver_key(t: &[Tok], dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot as isize - 1;
    while j >= 0 {
        match &t[j as usize].kind {
            TokKind::Ident(id) => {
                parts.push(id.clone());
                if j >= 1 && t[(j - 1) as usize].is_punct('.') {
                    j -= 2;
                } else {
                    break;
                }
            }
            TokKind::Punct(']') => {
                parts.push("[_]".into());
                j = match_back(t, j as usize, '[', ']') as isize - 1;
            }
            TokKind::Punct(')') => {
                parts.push("(_)".into());
                j = match_back(t, j as usize, '(', ')') as isize - 1;
            }
            _ => break,
        }
    }
    parts.reverse();
    let mut key = String::new();
    for p in parts {
        if p == "[_]" || p == "(_)" {
            key.push_str(&p);
        } else {
            if !key.is_empty() {
                key.push('.');
            }
            key.push_str(&p);
        }
    }
    if key.is_empty() {
        key = "<expr>".into();
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, ScopeMode};
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        // Prepend a Mutex mention so the file qualifies, as real lock
        // users do via their imports.
        let src = format!("use std::sync::Mutex;\n{src}");
        lint_source(
            Path::new("crates/demo/src/x.rs"),
            &src,
            ScopeMode::Workspace,
        )
    }

    #[test]
    fn double_acquisition_fires() {
        let d = lint(
            "fn f(&self) {
                let a = self.state.lock();
                let b = self.state.lock();
            }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("double acquisition"));
    }

    #[test]
    fn distinct_receivers_do_not_double_fire() {
        let d = lint(
            "fn f(&self) {
                let a = self.alpha.lock();
                let b = self.beta.lock();
            }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn inversion_across_functions_fires_once() {
        let d = lint(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("lock-order inversion"));
    }

    #[test]
    fn guard_across_send_fires_and_drop_releases() {
        let d = lint(
            "fn f(&self) {
                let g = self.state.lock();
                self.tx.send(1);
            }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("held across .send()"));

        let d = lint(
            "fn f(&self) {
                let g = self.state.lock();
                drop(g);
                self.tx.send(1);
            }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn guard_scope_ends_at_block() {
        let d = lint(
            "fn f(&self) {
                { let g = self.state.lock(); }
                self.rx.recv();
            }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn temp_guard_in_channel_statement_fires() {
        let d = lint("fn f(&self) { self.tx.send(self.state.lock().val); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("temporary guard"));
    }

    #[test]
    fn indexed_receivers_share_a_key() {
        let d = lint(
            "fn f(&self, i: usize, j: usize) {
                let a = self.cells[i].lock();
                let b = self.cells[j].lock();
            }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("cells[_]"), "{d:?}");
    }

    #[test]
    fn io_write_with_args_is_not_an_acquisition() {
        let d = lint("fn f(&self, buf: &[u8]) { self.file.write(buf); self.rx.recv(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn files_without_lock_types_are_skipped() {
        let d = lint_source(
            Path::new("crates/demo/src/x.rs"),
            "fn f(&self) { let g = self.state.lock(); self.tx.send(1); }",
            ScopeMode::Workspace,
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
