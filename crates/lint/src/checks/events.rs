//! Event-protocol check: round-trip completeness for protocol enums.
//!
//! `RuntimeEvent` and `TopologyEvent` cross the process boundary as
//! JSON (event logs, replay, the live-topology delta feed), and the
//! agent tier's `Frame` crosses it as length-prefixed wire bytes.
//! Rust's exhaustiveness checking keeps the serialize side honest only
//! if the match has no wildcard arm — and the parse side is
//! string/tag-keyed, so the compiler cannot help at all: adding a
//! variant and forgetting its parse arm silently turns that message
//! into an error on replay (or a rejected frame on the wire).
//!
//! The check is self-scoping, over two protocol shapes:
//!
//! * **JSON**: an enum with both an `impl ToJson for E` (with
//!   `fn to_json`) and an inherent `fn from_json` constructor;
//! * **wire**: an enum with inherent `fn encode` and `fn decode`
//!   (the `detector-agent` frame codec).
//!
//! Every variant of a protocol enum must be mentioned (as `E::Variant`
//! or `Self::Variant`) in both function bodies. The diagnostic anchors
//! at the variant's declaration line — that is where the new variant
//! was added.

use std::ops::Range;

use crate::lexer::{match_brace, Tok, TokKind};
use crate::{Check, Diagnostic, FileCtx};

struct EnumDef {
    name: String,
    variants: Vec<(String, u32)>,
}

/// One self-scoping protocol shape: the serialize/parse function pair
/// that makes an enum a protocol enum, plus the consequence named in
/// the diagnostic.
struct Protocol {
    ser_trait: Option<&'static str>,
    ser_fn: &'static str,
    de_trait: Option<&'static str>,
    de_fn: &'static str,
    consequence: &'static str,
}

const PROTOCOLS: [Protocol; 2] = [
    Protocol {
        ser_trait: Some("ToJson"),
        ser_fn: "to_json",
        de_trait: None,
        de_fn: "from_json",
        consequence: "the JSON round-trip drops this event on serialize/replay",
    },
    Protocol {
        ser_trait: None,
        ser_fn: "encode",
        de_trait: None,
        de_fn: "decode",
        consequence: "the wire round-trip drops this frame on encode/decode",
    },
];

/// Flags protocol-enum variants missing from either direction.
pub fn run(ctx: &FileCtx) -> Vec<Diagnostic> {
    let t = &ctx.toks;
    let mut out = Vec::new();
    for e in collect_enums(t) {
        for p in &PROTOCOLS {
            let Some(ser) = impl_fn_body(t, p.ser_trait, &e.name, p.ser_fn) else {
                continue;
            };
            let Some(de) = impl_fn_body(t, p.de_trait, &e.name, p.de_fn) else {
                continue;
            };
            for (v, line) in &e.variants {
                let in_ser = mentions_variant(t, &ser, &e.name, v);
                let in_de = mentions_variant(t, &de, &e.name, v);
                if in_ser && in_de {
                    continue;
                }
                let missing = match (in_ser, in_de) {
                    (false, false) => format!("{} and {}", p.ser_fn, p.de_fn),
                    (false, true) => p.ser_fn.to_string(),
                    (true, false) => p.de_fn.to_string(),
                    (true, true) => unreachable!(),
                };
                out.push(Diagnostic {
                    file: ctx.rel.clone(),
                    line: *line,
                    check: Check::EventProtocol,
                    message: format!(
                        "variant `{}::{v}` is missing from {missing}; {}",
                        e.name, p.consequence
                    ),
                });
            }
        }
    }
    out
}

/// All `enum Name { ... }` definitions with their variant names/lines.
fn collect_enums(t: &[Tok]) -> Vec<EnumDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if t[i].is_ident("enum") {
            if let Some(TokKind::Ident(name)) = t.get(i + 1).map(|x| &x.kind) {
                let mut j = i + 2;
                while j < t.len() && !t[j].is_punct('{') && !t[j].is_punct(';') {
                    j += 1;
                }
                if j < t.len() && t[j].is_punct('{') {
                    let close = match_brace(t, j);
                    out.push(EnumDef {
                        name: name.clone(),
                        variants: collect_variants(t, j + 1..close),
                    });
                    i = close;
                }
            }
        }
        i += 1;
    }
    out
}

fn collect_variants(t: &[Tok], body: Range<usize>) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    let mut j = body.start;
    while j < body.end {
        match &t[j].kind {
            TokKind::Punct('#') => j = skip_attr(t, j),
            TokKind::Ident(v) => {
                variants.push((v.clone(), t[j].line));
                // Skip the payload / discriminant to the comma at depth 0.
                j += 1;
                let mut depth = 0i32;
                while j < body.end {
                    let tk = &t[j];
                    if tk.is_punct('(') || tk.is_punct('{') || tk.is_punct('[') {
                        depth += 1;
                    } else if tk.is_punct(')') || tk.is_punct('}') || tk.is_punct(']') {
                        depth -= 1;
                    } else if tk.is_punct(',') && depth == 0 {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
            }
            _ => j += 1,
        }
    }
    variants
}

/// Index just past an attribute group `#[...]` starting at `i`.
fn skip_attr(t: &[Tok], i: usize) -> usize {
    if !t.get(i + 1).is_some_and(|x| x.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < t.len() {
        if t[j].is_punct('[') {
            depth += 1;
        } else if t[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    t.len()
}

/// Body token range of `fn fn_name` inside `impl ToJson for Name` (when
/// `trait_name` is given) or an inherent `impl Name` (when `None`).
fn impl_fn_body(
    t: &[Tok],
    trait_name: Option<&str>,
    type_name: &str,
    fn_name: &str,
) -> Option<Range<usize>> {
    let mut i = 0usize;
    while i < t.len() {
        if t[i].is_ident("impl") {
            if let Some(body) = impl_body_if_matches(t, i, trait_name, type_name) {
                let mut j = body.start;
                while j < body.end {
                    if t[j].is_ident("fn") && t.get(j + 1).is_some_and(|x| x.is_ident(fn_name)) {
                        let mut k = j + 2;
                        while k < body.end && !t[k].is_punct('{') {
                            k += 1;
                        }
                        if k < body.end {
                            return Some(k + 1..match_brace(t, k));
                        }
                    }
                    j += 1;
                }
                i = body.end;
            }
        }
        i += 1;
    }
    None
}

/// If the `impl` at `i` targets (`trait_name` for) `type_name`, returns
/// its brace-body range.
fn impl_body_if_matches(
    t: &[Tok],
    i: usize,
    trait_name: Option<&str>,
    type_name: &str,
) -> Option<Range<usize>> {
    let mut j = i + 1;
    // Skip `impl<...>` generics.
    if t.get(j).is_some_and(|x| x.is_punct('<')) {
        let mut depth = 0i32;
        while j < t.len() {
            if t[j].is_punct('<') {
                depth += 1;
            } else if t[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Path segments up to `for` / `{` / `<` / `where`.
    let mut head: Vec<&str> = Vec::new();
    let mut target: Option<&str> = None;
    let mut saw_for = false;
    while j < t.len() {
        match &t[j].kind {
            TokKind::Ident(id) if id == "for" => saw_for = true,
            TokKind::Ident(id) if id == "where" => break,
            TokKind::Ident(id) => {
                if saw_for {
                    target = Some(id.as_str());
                    break;
                }
                head.push(id.as_str());
            }
            TokKind::Punct('{') => break,
            _ => {}
        }
        j += 1;
    }
    let (trait_last, tgt) = if saw_for {
        (head.last().copied(), target?)
    } else {
        (None, *head.first()?)
    };
    match trait_name {
        Some(want) => {
            if trait_last != Some(want) || tgt != type_name {
                return None;
            }
        }
        None => {
            if trait_last.is_some() || tgt != type_name {
                return None;
            }
        }
    }
    // Find the impl's opening brace (past any where clause).
    while j < t.len() && !t[j].is_punct('{') {
        j += 1;
    }
    if j >= t.len() {
        return None;
    }
    Some(j + 1..match_brace(t, j))
}

/// True when `Enum::Variant` or `Self::Variant` occurs in `range`.
fn mentions_variant(t: &[Tok], range: &Range<usize>, enum_name: &str, variant: &str) -> bool {
    for i in range.clone() {
        if (t[i].is_ident(enum_name) || t[i].is_ident("Self"))
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_ident(variant))
            && i + 3 < range.end
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, ScopeMode};
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source(Path::new("crates/demo/src/x.rs"), src, ScopeMode::Workspace)
    }

    const COMPLETE: &str = "
        pub enum Ev { A, B(u32) }
        impl ToJson for Ev {
            fn to_json(&self) -> Json {
                match self { Ev::A => x(), Ev::B(v) => y(v) }
            }
        }
        impl Ev {
            pub fn from_json(j: &Json) -> Option<Ev> {
                match tag { \"a\" => Some(Self::A), \"b\" => Some(Self::B(0)), _ => None }
            }
        }
    ";

    #[test]
    fn complete_protocol_is_clean() {
        assert!(lint(COMPLETE).is_empty());
    }

    #[test]
    fn variant_missing_from_from_json_fires() {
        let src = COMPLETE.replace("\"b\" => Some(Self::B(0)), ", "");
        let d = lint(&src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, Check::EventProtocol);
        assert!(d[0].message.contains("`Ev::B`"), "{d:?}");
        assert!(d[0].message.contains("from_json"), "{d:?}");
        // Anchored at the enum declaration line of the variant.
        assert_eq!(d[0].line, 2, "{d:?}");
    }

    #[test]
    fn variant_missing_from_to_json_fires() {
        let src = COMPLETE.replace("Ev::B(v) => y(v)", "_ => z()");
        let d = lint(&src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("to_json"), "{d:?}");
    }

    #[test]
    fn enums_without_both_impls_are_ignored() {
        let d = lint("pub enum Plain { A, B }\nimpl Plain { fn other(&self) {} }");
        assert!(d.is_empty(), "{d:?}");

        let d = lint(
            "pub enum OneWay { A }
             impl ToJson for OneWay { fn to_json(&self) -> Json { match self { OneWay::A => x() } } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    const WIRE_COMPLETE: &str = "
        pub enum Frame { Hello { agent: u32 }, Shutdown }
        impl Frame {
            pub fn encode(&self) -> Vec<u8> {
                match self { Frame::Hello { agent } => enc(agent), Frame::Shutdown => tag() }
            }
            pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
                match tag { 0 => Ok(Frame::Hello { agent: 0 }), 1 => Ok(Frame::Shutdown), _ => Err(e()) }
            }
        }
    ";

    #[test]
    fn complete_wire_protocol_is_clean() {
        assert!(lint(WIRE_COMPLETE).is_empty());
    }

    #[test]
    fn frame_variant_missing_from_decode_fires() {
        let src = WIRE_COMPLETE.replace("1 => Ok(Frame::Shutdown), ", "");
        let d = lint(&src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, Check::EventProtocol);
        assert!(d[0].message.contains("`Frame::Shutdown`"), "{d:?}");
        assert!(d[0].message.contains("decode"), "{d:?}");
        assert!(d[0].message.contains("wire round-trip"), "{d:?}");
    }

    #[test]
    fn frame_variant_missing_from_encode_fires() {
        let src = WIRE_COMPLETE.replace("Frame::Shutdown => tag()", "_ => tag()");
        let d = lint(&src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("encode"), "{d:?}");
    }

    #[test]
    fn encode_only_enums_are_ignored() {
        let d = lint(
            "pub enum OneWay { A }
             impl OneWay { pub fn encode(&self) -> Vec<u8> { match self { OneWay::A => v() } } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn variant_attrs_and_struct_payloads_parse() {
        let src = "
            pub enum Ev { #[doc = \"x\"] A { cycle: u64, extra: Vec<u32> }, B }
            impl ToJson for Ev {
                fn to_json(&self) -> Json { match self { Self::A { .. } => x(), Self::B => y() } }
            }
            impl Ev {
                fn from_json(j: &Json) -> Option<Ev> { Some(Ev::A { cycle: 0, extra: v() }) }
            }
        ";
        let d = lint(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`Ev::B`"));
        assert!(d[0].message.contains("from_json"));
    }
}
