//! Panic-path check: no `unwrap`/`expect`/`panic!`-family macros or
//! direct indexing in the per-window hot paths.
//!
//! The pipelined scheduler runs pingers on worker threads; a panic
//! there is caught and surfaced as `PipelineError::Stage`, but a panic
//! in the dispatch or diagnosis stage aborts the whole run — and with a
//! bounded meta channel, a stage that dies while a peer blocks on
//! `send` turns a bug into a hang. Hot-path code therefore degrades
//! gracefully (typed errors, `unwrap_or_else`, `let ... else`) and the
//! provably-infallible remainder carries
//! `detlint::allow(panic_path, reason = "...")` so every accepted panic
//! site has a written justification.
//!
//! Tests, benches and examples are exempt (the walker skips them and
//! `#[cfg(test)]` items are stripped before analysis).

use crate::lexer::TokKind;
use crate::{Check, Diagnostic, FileCtx};

/// The per-window hot paths: everything executed per probe, per report
/// or per window by the sequential and pipelined drivers. Control-plane
/// code (controller, planner) re-plans between windows and reports
/// typed `PmcError`s already.
const SCOPE: &[&str] = &[
    "crates/core/src/pll/components.rs",
    "crates/ingest/src/plane.rs",
    "crates/system/src/scheduler.rs",
    "crates/system/src/pinger.rs",
    "crates/system/src/report.rs",
    "crates/system/src/runtime.rs",
    "crates/system/src/events.rs",
    "crates/system/src/diagnoser.rs",
    "crates/system/src/watchdog.rs",
    "crates/system/src/clock.rs",
    "crates/system/src/responder.rs",
    "crates/system/src/dataplane.rs",
    "crates/system/src/dataplane/udp.rs",
    "crates/system/src/dataplane/udp/harness.rs",
    "crates/system/src/dataplane/udp/timestamp.rs",
];

/// True when the panic-path check applies to `rel`.
pub fn in_scope(rel: &str) -> bool {
    SCOPE.contains(&rel)
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Flags panic-capable constructs in the token stream.
pub fn run(ctx: &FileCtx) -> Vec<Diagnostic> {
    let t = &ctx.toks;
    let mut out = Vec::new();
    let mut diag = |line: u32, message: String| {
        out.push(Diagnostic {
            file: ctx.rel.clone(),
            line,
            check: Check::PanicPath,
            message,
        });
    };
    for i in 0..t.len() {
        match &t[i].kind {
            TokKind::Punct('.')
                if t.get(i + 1)
                    .and_then(|x| x.ident())
                    .is_some_and(|id| id == "unwrap" || id == "expect")
                    && t.get(i + 2).is_some_and(|x| x.is_punct('(')) =>
            {
                let id = t[i + 1].ident().unwrap_or_default();
                diag(
                    t[i + 1].line,
                    format!(
                        ".{id}() can panic in a hot path; return a typed error, degrade \
                         gracefully, or annotate a provably-infallible site with \
                         detlint::allow(panic_path, reason = \"...\")"
                    ),
                );
            }
            TokKind::Ident(id)
                if PANIC_MACROS.contains(&id.as_str())
                    && t.get(i + 1).is_some_and(|x| x.is_punct('!')) =>
            {
                diag(
                    t[i].line,
                    format!("{id}! aborts the stage thread in a hot path; surface a typed error"),
                );
            }
            TokKind::Punct('[') if i > 0 && is_index_base(&t[i - 1].kind) => {
                diag(
                    t[i].line,
                    "direct indexing can panic in a hot path; use .get()/iterators, or annotate \
                     a provably-in-bounds site with detlint::allow(panic_path, reason = \"...\")"
                        .into(),
                );
            }
            _ => {}
        }
    }
    out
}

/// A `[` directly after one of these tokens is an index expression (an
/// array literal, attribute, or slice type follows `=`, `#`, `:`, `&`,
/// `(`, `,`, `<`, `!`, ... instead). Keywords are never index bases:
/// `mut [u32]` in a signature and `return [a, b]` start a slice type or
/// array literal, not an indexing.
fn is_index_base(prev: &TokKind) -> bool {
    const KEYWORDS: &[&str] = &["mut", "dyn", "in", "return", "else", "break", "const"];
    match prev {
        TokKind::Ident(id) => !KEYWORDS.contains(&id.as_str()),
        TokKind::Punct(']') | TokKind::Punct(')') => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, ScopeMode};
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source(
            Path::new("crates/system/src/pinger.rs"),
            src,
            ScopeMode::Workspace,
        )
    }

    #[test]
    fn udp_dataplane_files_are_in_scope() {
        // The socket backend must stay panic-free; its files are scoped
        // explicitly (unlike determinism's prefix scope).
        for rel in [
            "crates/system/src/dataplane/udp.rs",
            "crates/system/src/dataplane/udp/harness.rs",
            "crates/system/src/dataplane/udp/timestamp.rs",
        ] {
            assert!(in_scope(rel), "{rel} must be panic-path scoped");
        }
    }

    #[test]
    fn unwrap_expect_panics_and_indexing_fire() {
        let src = "
            fn f(v: Vec<u32>, i: usize) -> u32 {
                let a = v.get(i).unwrap();
                let b = v.first().expect(\"msg\");
                if i > 3 { panic!(\"boom\"); }
                v[i]
            }
        ";
        let d = lint(src);
        assert_eq!(d.len(), 4, "{d:?}");
        assert!(d.iter().all(|x| x.check == Check::PanicPath));
    }

    #[test]
    fn unwrap_or_family_is_fine() {
        let src = "
            fn f(v: Option<u32>) -> u32 {
                v.unwrap_or(0) + v.unwrap_or_else(|| 1) + v.unwrap_or_default()
            }
        ";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn non_index_brackets_are_fine() {
        let src = "
            #[derive(Clone)]
            struct S { a: [u8; 4] }
            fn f() -> Vec<u32> { let x: &[u32] = &[1, 2]; vec![x[0]; 1] }
        ";
        // Only `x[0]` is an index expression.
        let d = lint(src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn keywords_before_brackets_are_not_index_bases() {
        let src = "
            fn f(parent: &mut [u32]) -> [u8; 2] {
                let _s: &dyn std::any::Any = &1u8;
                for _x in [1, 2] {}
                return [0, 1];
            }
        ";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn tests_are_exempt_and_allow_suppresses() {
        let src = "
            #[cfg(test)]
            mod tests { fn t() { v[0].unwrap(); } }
            fn f(v: &[u32], i: usize) -> u32 {
                // detlint::allow(panic_path, reason = \"i is taken modulo v.len() above\")
                v[i % v.len()]
            }
        ";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn out_of_scope_files_are_not_checked() {
        let d = lint_source(
            Path::new("crates/core/src/pmc/mod.rs"),
            "fn f(v: Vec<u32>) -> u32 { v[0] }",
            ScopeMode::Workspace,
        );
        assert!(d.is_empty());
    }
}
