//! Determinism check: no wall-clock or unseeded entropy in the runtime
//! crates' window paths.
//!
//! The pipelined-equivalence proof (PR 4) holds because a window's
//! outcome is a pure function of its master seed: sequential `step` and
//! `run_pipelined` draw exactly one `u64` per window and derive every
//! probe stream from it. One stray `Instant::now()` branch or
//! `thread_rng()` draw inside the scheduler / pinger / diagnosis path
//! silently voids that proof — the property tests would only catch it if
//! the entropy happened to change an outcome under test. This check
//! makes the invariant structural.
//!
//! Genuine timing *measurement* is fine (it never feeds back into
//! control flow that the equivalence harness compares): the
//! `replan_micros` stopwatch and the PMC solver's timeout deadlines are
//! annotated with `detlint::allow(determinism, ...)` at their sites.

use crate::{Check, Diagnostic, FileCtx};

/// The deterministic core: everything the equivalence proofs cover.
/// Bench binaries, baselines and the shims (criterion's stopwatch is
/// its whole point) are out of scope.
const SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/ingest/src/",
    "crates/simnet/src/",
    "crates/system/src/",
    "crates/topology/src/",
];

/// True when the determinism check applies to `rel`.
pub fn in_scope(rel: &str) -> bool {
    SCOPE.iter().any(|p| rel.starts_with(p))
}

/// Identifiers that are an entropy source wherever they appear.
const ENTROPY_IDENTS: &[(&str, &str)] = &[
    (
        "thread_rng",
        "unseeded RNG: thread_rng() draws OS entropy; derive a stream from the window seed instead",
    ),
    (
        "from_entropy",
        "unseeded RNG: from_entropy() breaks seed-reproducibility; seed from the window master seed",
    ),
    (
        "OsRng",
        "unseeded RNG: OsRng reads OS entropy; runtime paths must derive from the window seed",
    ),
    (
        "SystemTime",
        "wall clock: SystemTime must not reach window logic; use the SimClock / window indices",
    ),
];

/// Flags wall-clock and entropy sources in the token stream.
pub fn run(ctx: &FileCtx) -> Vec<Diagnostic> {
    let t = &ctx.toks;
    let mut out = Vec::new();
    let mut diag = |line: u32, message: String| {
        out.push(Diagnostic {
            file: ctx.rel.clone(),
            line,
            check: Check::Determinism,
            message,
        });
    };
    for i in 0..t.len() {
        if let Some(id) = t[i].ident() {
            if id == "Instant"
                && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 3).is_some_and(|x| x.is_ident("now"))
            {
                diag(
                    t[i].line,
                    "wall clock: Instant::now() in a runtime path; window logic must not branch \
                     on real time (annotate genuine timing measurement with \
                     detlint::allow(determinism, reason = \"...\"))"
                        .into(),
                );
            } else if id == "random"
                && i >= 2
                && t[i - 1].is_punct(':')
                && t[i - 2].is_punct(':')
                && t.get(i.wrapping_sub(3)).is_some_and(|x| x.is_ident("rand"))
            {
                diag(
                    t[i].line,
                    "unseeded RNG: rand::random() draws thread-local entropy; derive from the \
                     window seed"
                        .into(),
                );
            } else if let Some((_, msg)) = ENTROPY_IDENTS.iter().find(|(n, _)| *n == id) {
                diag(t[i].line, (*msg).into());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, ScopeMode};
    use std::path::Path;

    #[test]
    fn scope_covers_runtime_crates_only() {
        assert!(in_scope("crates/system/src/scheduler.rs"));
        assert!(in_scope("crates/core/src/pmc/mod.rs"));
        assert!(in_scope("crates/ingest/src/plane.rs"));
        // The socket backend lives under dataplane/udp/ — prefix scoping
        // must pull new files in automatically.
        assert!(in_scope("crates/system/src/dataplane/udp.rs"));
        assert!(in_scope("crates/system/src/dataplane/udp/timestamp.rs"));
        assert!(!in_scope("crates/bench/src/bin/fig4.rs"));
        assert!(!in_scope("shims/criterion/src/lib.rs"));
    }

    #[test]
    fn instant_now_fires_and_allow_suppresses() {
        let src = "fn f() { let t = Instant::now(); }";
        let d = lint_source(
            Path::new("crates/system/src/x.rs"),
            src,
            ScopeMode::Workspace,
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].check, Check::Determinism);

        let allowed = "fn f() {\n    // detlint::allow(determinism, reason = \"stopwatch only\")\n    let t = Instant::now();\n}";
        let d = lint_source(
            Path::new("crates/system/src/x.rs"),
            allowed,
            ScopeMode::Workspace,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn instant_import_alone_is_fine() {
        let src = "use std::time::Instant;\nfn f(d: Instant) -> Instant { d }";
        let d = lint_source(
            Path::new("crates/system/src/x.rs"),
            src,
            ScopeMode::Workspace,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn entropy_sources_fire() {
        for bad in [
            "thread_rng()",
            "SmallRng::from_entropy()",
            "rand::random::<u64>()",
        ] {
            let src = format!("fn f() {{ let x = {bad}; }}");
            let d = lint_source(
                Path::new("crates/system/src/x.rs"),
                &src,
                ScopeMode::Workspace,
            );
            assert_eq!(d.len(), 1, "{bad}: {d:?}");
        }
    }
}
