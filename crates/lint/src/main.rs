//! `detlint` — run the deTector workspace lints.
//!
//! * `detlint` (no args): find the workspace root from the current
//!   directory and lint every in-scope `.rs` file with path-based
//!   scoping (what CI runs).
//! * `detlint <file>...`: lint the given files with every check enabled
//!   regardless of path (what the golden-fixture tests use).
//!
//! Exit status is 0 when clean, 1 when any diagnostic fires, 2 on usage
//! or I/O errors — the same contract as clippy, so it slots into CI as
//! a plain command.

use std::path::Path;
use std::process::ExitCode;

use detector_lint::{find_workspace_root, lint_source, lint_workspace, Diagnostic, ScopeMode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        println!("usage: detlint [FILE...]");
        println!("  no args: lint the enclosing cargo workspace (path-scoped checks)");
        println!("  FILE...: lint the given files with all checks enabled");
        return ExitCode::SUCCESS;
    }

    let diags: Vec<Diagnostic> = if args.is_empty() {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => return fail(&format!("cannot determine current dir: {e}")),
        };
        let Some(root) = find_workspace_root(&cwd) else {
            return fail("no enclosing cargo workspace found");
        };
        match lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => return fail(&format!("workspace walk failed: {e}")),
        }
    } else {
        let mut all = Vec::new();
        for f in &args {
            let source = match std::fs::read_to_string(f) {
                Ok(s) => s,
                Err(e) => return fail(&format!("cannot read {f}: {e}")),
            };
            all.extend(lint_source(Path::new(f), &source, ScopeMode::AllChecks));
        }
        all
    };

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("detlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("detlint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("detlint: error: {msg}");
    ExitCode::from(2)
}
