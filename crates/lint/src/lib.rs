//! `detlint` — workspace-native static analysis for the deTector
//! reproduction.
//!
//! The pipelined scheduler's headline guarantee (`run_pipelined ≡
//! run_scripted`) and the runtime's liveness rest on invariants no
//! compiler checks. `detlint` is a hand-rolled, registry-free analyzer
//! (lightweight lexer + per-function token analysis — same no-deps
//! philosophy as `shims/`) that walks the workspace and enforces them
//! with `file:line` diagnostics and a clippy-style nonzero exit:
//!
//! * **determinism** — wall-clock reads (`Instant::now`, `SystemTime`)
//!   and unseeded entropy (`thread_rng`, `from_entropy`, `OsRng`,
//!   `rand::random`) are forbidden in the runtime crates' window paths;
//!   genuine timing measurement (`replan_micros`, PMC timeout deadlines)
//!   carries an explicit allow annotation.
//! * **lock_discipline** — a per-function lock-acquisition summary over
//!   the known `Mutex`/`RwLock` sites flags double-acquisition,
//!   lock-order inversion and guards held across a channel
//!   `send`/`recv` (deadlock risk with bounded channels).
//! * **panic_path** — `unwrap`/`expect`/`panic!`-family macros and
//!   direct indexing are forbidden in the per-window hot-path files;
//!   provably-infallible sites carry an allow annotation with a reason.
//! * **event_protocol** — every variant of an enum that has both a
//!   `ToJson` impl and a `from_json` constructor must appear in both
//!   match bodies, so the JSON round-trip can never silently lose a
//!   variant.
//!
//! Suppression syntax (reason is mandatory and non-empty):
//!
//! ```text
//! // detlint::allow(<check>, reason = "...")
//! ```
//!
//! placed on the offending line (trailing) or on its own line directly
//! above it. See `crates/lint/README.md` for the full catalogue.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod checks;
pub mod lexer;

use lexer::{lex, match_brace, Comment, Tok, TokKind};

/// The check families `detlint` enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Check {
    /// Wall-clock / entropy in deterministic window paths.
    Determinism,
    /// Lock-order, double-acquisition, guard-across-channel-op.
    LockDiscipline,
    /// `unwrap`/`expect`/`panic!`/indexing in hot paths.
    PanicPath,
    /// JSON round-trip completeness for event enums.
    EventProtocol,
    /// A malformed `detlint::allow(...)` annotation.
    Annotation,
}

impl Check {
    /// The name used in diagnostics and in `detlint::allow(<name>, ...)`.
    pub fn name(self) -> &'static str {
        match self {
            Check::Determinism => "determinism",
            Check::LockDiscipline => "lock_discipline",
            Check::PanicPath => "panic_path",
            Check::EventProtocol => "event_protocol",
            Check::Annotation => "annotation",
        }
    }

    /// Parses an annotation check name.
    pub fn from_name(s: &str) -> Option<Check> {
        match s {
            "determinism" => Some(Check::Determinism),
            "lock_discipline" => Some(Check::LockDiscipline),
            "panic_path" => Some(Check::PanicPath),
            "event_protocol" => Some(Check::EventProtocol),
            _ => None,
        }
    }
}

/// One finding, printed as `file:line: [check] message`.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// The check family that fired.
    pub check: Check,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.check.name(),
            self.message
        )
    }
}

/// A parsed `detlint::allow` annotation.
#[derive(Clone, Debug)]
struct Allow {
    check: Check,
    /// The lines this annotation suppresses: its own line and, for a
    /// comment standing alone on its line, the next line carrying a code
    /// token.
    targets: Vec<u32>,
}

/// One function's name and body token range (used by the per-function
/// lock analysis).
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body (inside the braces).
    pub body: std::ops::Range<usize>,
}

/// Everything the checks need for one file: relative path, the
/// test-stripped token stream, and the function map.
pub struct FileCtx {
    /// Workspace-relative path (`/`-separated components).
    pub rel: PathBuf,
    /// Code tokens with `#[cfg(test)]` / `#[test]` items removed.
    pub toks: Vec<Tok>,
    /// Functions in `toks` (body ranges may nest).
    pub fns: Vec<FnSpan>,
}

impl FileCtx {
    /// The relative path as a `/`-joined string for scope matching.
    pub fn rel_str(&self) -> String {
        self.rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/")
    }
}

/// How scope rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScopeMode {
    /// Path-based scoping: each check only runs where its invariant
    /// lives (the workspace walk).
    Workspace,
    /// Every check runs regardless of path (explicit-file mode, used by
    /// the golden-fixture tests and `detlint <file>`).
    AllChecks,
}

/// Lints one file's source under `rel_path`. The path decides which
/// checks apply in [`ScopeMode::Workspace`].
pub fn lint_source(rel_path: &Path, source: &str, mode: ScopeMode) -> Vec<Diagnostic> {
    let (toks, comments) = lex(source);
    let toks = strip_test_items(toks);
    let fns = functions(&toks);
    let ctx = FileCtx {
        rel: rel_path.to_path_buf(),
        toks,
        fns,
    };
    let (allows, mut diags) = parse_allows(&ctx, &comments);

    let rel = ctx.rel_str();
    if mode == ScopeMode::AllChecks || checks::determinism::in_scope(&rel) {
        diags.extend(checks::determinism::run(&ctx));
    }
    if mode == ScopeMode::AllChecks || checks::panic_path::in_scope(&rel) {
        diags.extend(checks::panic_path::run(&ctx));
    }
    diags.extend(checks::locks::run(&ctx));
    diags.extend(checks::events::run(&ctx));

    diags.retain(|d| {
        !allows
            .iter()
            .any(|a| a.check == d.check && a.targets.contains(&d.line))
    });
    diags.sort_by_key(|d| d.line);
    diags
}

/// Walks the workspace under `root` and lints every in-scope `.rs` file.
/// Tests, benches, examples, fixtures and build artifacts are exempt.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for f in files {
        let source = std::fs::read_to_string(&f)?;
        let rel = f.strip_prefix(root).unwrap_or(&f).to_path_buf();
        diags.extend(lint_source(&rel, &source, ScopeMode::Workspace));
    }
    Ok(diags)
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

const SKIP_DIRS: &[&str] = &[
    "target", ".git", ".github", "tests", "benches", "examples", "fixtures",
];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parses `detlint::allow` annotations out of the comments, resolving
/// each one's target lines against the code tokens. Malformed
/// annotations become diagnostics.
fn parse_allows(ctx: &FileCtx, comments: &[Comment]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        // Doc comments describe the syntax; only plain comments carry
        // live annotations.
        let doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if doc {
            continue;
        }
        let Some(pos) = c.text.find("detlint::allow") else {
            continue;
        };
        let rest = &c.text[pos + "detlint::allow".len()..];
        match parse_allow_args(rest) {
            Some(check) => {
                let mut targets = vec![c.line];
                // A comment alone on its line covers the next code line;
                // a trailing comment's own line already carries the code.
                if let Some(next) = ctx.toks.iter().map(|t| t.line).find(|&l| l > c.line) {
                    targets.push(next);
                }
                allows.push(Allow { check, targets });
            }
            None => diags.push(Diagnostic {
                file: ctx.rel.clone(),
                line: c.line,
                check: Check::Annotation,
                message: format!(
                    "malformed annotation {:?}: expected detlint::allow(<check>, reason = \"...\") \
                     with a known check name and a non-empty reason",
                    c.text.trim()
                ),
            }),
        }
    }
    (allows, diags)
}

/// Parses `(<check>, reason = "...")`; returns the check on success.
fn parse_allow_args(rest: &str) -> Option<Check> {
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let inner = &inner[..close];
    let (name, reason) = inner.split_once(',')?;
    let check = Check::from_name(name.trim())?;
    let reason = reason.trim().strip_prefix("reason")?.trim_start();
    let reason = reason.strip_prefix('=')?.trim_start();
    let quoted = reason.strip_prefix('"')?;
    let body = quoted.strip_suffix('"').unwrap_or(quoted);
    if body.trim().is_empty() {
        return None;
    }
    Some(check)
}

/// Removes tokens of items under `#[cfg(test)]` or `#[test]` (test code
/// is exempt from every check).
fn strip_test_items(toks: Vec<Tok>) -> Vec<Tok> {
    let mut keep = vec![true; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(end_attr) = test_attr_end(&toks, i) {
            // Skip any further attributes, then the item itself.
            let mut j = end_attr + 1;
            while j < toks.len() && toks[j].is_punct('#') {
                if let Some(e) = attr_end(&toks, j) {
                    j = e + 1;
                } else {
                    break;
                }
            }
            // The item ends at its first top-level `{...}` or at `;`.
            let mut k = j;
            while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                k += 1;
            }
            let item_end = if k < toks.len() && toks[k].is_punct('{') {
                match_brace(&toks, k)
            } else {
                k.min(toks.len().saturating_sub(1))
            };
            for slot in keep.iter_mut().take(item_end + 1).skip(i) {
                *slot = false;
            }
            i = item_end + 1;
        } else {
            i += 1;
        }
    }
    toks.into_iter()
        .zip(keep)
        .filter_map(|(t, k)| k.then_some(t))
        .collect()
}

/// If an attribute group starting at `i` is `#[cfg(test)]` or `#[test]`,
/// returns the index of its closing `]`.
fn test_attr_end(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks[i].is_punct('#') || !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    let end = attr_end(toks, i)?;
    let body: Vec<&Tok> = toks[i + 2..end].iter().collect();
    let is_test = match body.first() {
        Some(t) if t.is_ident("test") => body.len() == 1,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    is_test.then_some(end)
}

/// Index of the `]` closing the attribute whose `#` is at `i`.
fn attr_end(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    let mut depth = 0i32;
    for (off, t) in toks[i + 1..].iter().enumerate() {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1 + off);
            }
        }
    }
    None
}

/// Splits the token stream into functions (`fn` keyword through matching
/// body brace). Nested functions appear both standalone and inside their
/// parent's range; the lock analysis resolves the overlap.
pub fn functions(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                let mut j = i + 2;
                while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('{') {
                    let end = match_brace(toks, j);
                    out.push(FnSpan {
                        name: name.clone(),
                        line: toks[i].line,
                        body: j + 1..end,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> (FileCtx, Vec<Comment>) {
        let (toks, comments) = lex(src);
        let toks = strip_test_items(toks);
        let fns = functions(&toks);
        (
            FileCtx {
                rel: PathBuf::from("crates/demo/src/x.rs"),
                toks,
                fns,
            },
            comments,
        )
    }

    #[test]
    fn cfg_test_items_are_stripped() {
        let src = "
            fn live() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn dead() { b.unwrap(); }
            }
            #[test]
            fn also_dead() { c.unwrap(); }
            fn live2() {}
        ";
        let (c, _) = ctx(src);
        let names: Vec<&str> = c.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live", "live2"]);
    }

    #[test]
    fn functions_capture_bodies() {
        let src = "impl Foo { fn a(&self) -> u32 { self.x } } fn b<T: Fn() -> u8>(t: T) { t(); }";
        let (c, _) = ctx(src);
        assert_eq!(c.fns.len(), 2);
        assert_eq!(c.fns[0].name, "a");
        assert_eq!(c.fns[1].name, "b");
    }

    #[test]
    fn allow_parses_and_targets_next_code_line() {
        let src =
            "\n// detlint::allow(panic_path, reason = \"bounded by modulo\")\nlet x = v[i];\n";
        let (c, comments) = ctx(src);
        let (allows, diags) = parse_allows(&c, &comments);
        assert!(diags.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].check, Check::PanicPath);
        assert!(allows[0].targets.contains(&2));
        assert!(allows[0].targets.contains(&3));
    }

    #[test]
    fn malformed_allow_is_reported() {
        for bad in [
            "// detlint::allow(panic_path)",
            "// detlint::allow(panic_path, reason = \"\")",
            "// detlint::allow(nonsense, reason = \"x\")",
            "// detlint::allow(panic_path, because = \"x\")",
        ] {
            let src = format!("{bad}\nlet x = 1;\n");
            let (c, comments) = ctx(&src);
            let (allows, diags) = parse_allows(&c, &comments);
            assert!(allows.is_empty(), "{bad}");
            assert_eq!(diags.len(), 1, "{bad}");
            assert_eq!(diags[0].check, Check::Annotation);
        }
    }

    #[test]
    fn workspace_root_is_found() {
        let here = std::env::current_dir().unwrap();
        let root = find_workspace_root(&here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
    }
}
