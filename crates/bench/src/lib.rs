//! # detector-bench
//!
//! The evaluation harness: one binary per table/figure of the paper
//! (§4.4, §6.3, §6.4) plus Criterion micro-benchmarks. This library holds
//! the shared experiment machinery: matrix-level probing simulation,
//! accuracy campaigns, and plain-text table rendering.
//!
//! Binaries (run with `cargo run -p detector-bench --release --bin <name>`):
//!
//! | target        | reproduces                                            |
//! |---------------|--------------------------------------------------------|
//! | `table2`      | PMC running time per optimization (Table 2)             |
//! | `table3`      | # selected paths per (α, β) (Table 3)                   |
//! | `table4`      | localization accuracy vs (α, β), Fattree(18) (Table 4)  |
//! | `table5`      | accuracy/FP/FN with (1,2), Fattree(48) (Table 5)        |
//! | `fig4`        | probe-frequency sensitivity (Fig. 4a–d)                 |
//! | `fig5`        | deTector vs Pingmesh vs NetNORAD, single failure (Fig.5)|
//! | `fig6`        | same comparison, multiple failures (Fig. 6)             |
//! | `pll_compare` | PLL vs Tomo/SCORE/OMP (§5.3 / technical report)         |
//!
//! Every binary honours `DETECTOR_BENCH_SCALE` (`quick` | `paper`,
//! default `quick`): `quick` shrinks topology sizes and episode counts to
//! keep a full sweep under a few minutes; `paper` uses the paper's sizes
//! where they are feasible on one machine.

use detector_core::pll::{
    evaluate_diagnosis, LocalizationMetrics, Localizer, PllConfig, PllLocalizer,
};
use detector_core::pmc::ProbeMatrix;
use detector_core::types::PathObservation;
use detector_simnet::{Fabric, FailureGenerator, FailureScenario, FlowKey};
use detector_topology::DcnTopology;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Bench scale selected via `DETECTOR_BENCH_SCALE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly sizes (default).
    Quick,
    /// The paper's sizes where feasible.
    Paper,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        match std::env::var("DETECTOR_BENCH_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }
}

/// The PLL configuration the campaigns use: with loss-confirmation
/// re-probes in place (below), a path that lost only a single packet in a
/// window is background noise (1e-4..1e-5 per link, §5.1) — a real
/// failure always re-drops at least one confirmation. `min_loss_count: 2`
/// encodes exactly that, mirroring the paper's pre-processing threshold
/// "on the number of packet losses in a period of time".
pub fn bench_pll() -> PllConfig {
    PllConfig {
        min_loss_count: 2,
        ..PllConfig::default()
    }
}

/// The PLL localizer the campaigns use, as a trait object-compatible
/// value (see [`bench_pll`] for the configuration rationale).
pub fn bench_localizer() -> PllLocalizer {
    PllLocalizer::new(bench_pll())
}

/// Simulates one observation window directly over the probe matrix:
/// every path is probed `probes_per_path` times with a sweep of source
/// ports (packet entropy), both directions of every link exercised via
/// the echoed reply. Each loss is confirmed with two same-content
/// re-probes, as the pinger does (§3.1).
pub fn probe_matrix_window(
    topo: &(dyn DcnTopology + Sync),
    matrix: &ProbeMatrix,
    fabric: &Fabric<'_>,
    probes_per_path: u32,
    rng: &mut SmallRng,
) -> Vec<PathObservation> {
    let graph = topo.graph();
    let mut out = Vec::with_capacity(matrix.paths.len());
    for path in &matrix.paths {
        let Some(route) = graph.route_from_nodes(path.nodes().to_vec()) else {
            continue;
        };
        let src = route.nodes[0].0;
        let dst = route.nodes[route.nodes.len() - 1].0;
        let mut sent = 0u64;
        let mut lost = 0u64;
        for i in 0..probes_per_path {
            let flow = FlowKey::udp(src, dst, 33_000 + (i as u16 % 64), 53_533);
            let rt = fabric.round_trip(&route, flow, rng);
            sent += 1;
            if !rt.success {
                lost += 1;
                // Confirm the loss pattern (§3.1): same content, twice.
                for _ in 0..2 {
                    sent += 1;
                    if !fabric.round_trip(&route, flow, rng).success {
                        lost += 1;
                    }
                }
            }
        }
        out.push(PathObservation::new(path.id, sent, lost));
    }
    out
}

/// One accuracy episode: inject `scenario`, probe the matrix, localize
/// through the given [`Localizer`], compare against ground truth.
pub fn episode_metrics(
    topo: &(dyn DcnTopology + Sync),
    matrix: &ProbeMatrix,
    scenario: &FailureScenario,
    probes_per_path: u32,
    localizer: &dyn Localizer,
    noise_seed: Option<u64>,
    rng: &mut SmallRng,
) -> LocalizationMetrics {
    let mut fabric = match noise_seed {
        Some(s) => Fabric::new(topo, s),
        None => Fabric::quiet(topo),
    };
    fabric.apply_scenario(scenario);
    let obs = probe_matrix_window(topo, matrix, &fabric, probes_per_path, rng);
    let diagnosis = localizer.localize(matrix, &obs);
    evaluate_diagnosis(&diagnosis.suspect_links(), &scenario.ground_truth(topo))
}

/// Runs an accuracy campaign: `episodes` random scenarios with
/// `n_failures` simultaneous failures each, micro-averaged. Any
/// [`Localizer`] — PLL, a tomography baseline, or a baseline inference —
/// slots in through the same trait object.
#[allow(clippy::too_many_arguments)]
pub fn accuracy_campaign(
    topo: &(dyn DcnTopology + Sync),
    matrix: &ProbeMatrix,
    gen: &FailureGenerator,
    n_failures: usize,
    episodes: usize,
    probes_per_path: u32,
    localizer: &dyn Localizer,
    seed: u64,
) -> LocalizationMetrics {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = LocalizationMetrics::zero();
    for e in 0..episodes {
        let scenario = gen.sample(topo, n_failures, &mut rng);
        let m = episode_metrics(
            topo,
            matrix,
            &scenario,
            probes_per_path,
            localizer,
            Some(seed ^ (e as u64) << 17),
            &mut rng,
        );
        acc.accumulate(&m);
    }
    acc
}

/// Minimal fixed-width table printer for bench output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Formats a duration like the paper's Table 2 (seconds with millis).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_core::pmc::{construct, PmcConfig};
    use detector_core::types::LinkId;
    use detector_topology::Fattree;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["1", "2"]);
        let s = t.render();
        assert!(s.contains("long-header"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn probe_window_detects_injected_failure() {
        let ft = Fattree::new(4).unwrap();
        let matrix = construct(
            ft.probe_links(),
            ft.enumerate_candidates(),
            &PmcConfig::new(3, 1),
        )
        .unwrap();
        let scenario = FailureScenario::single_link(LinkId(0));
        let mut rng = SmallRng::seed_from_u64(1);
        let m = episode_metrics(
            &ft,
            &matrix,
            &scenario,
            10,
            &PllLocalizer::default(),
            None,
            &mut rng,
        );
        assert_eq!(m.true_positives, 1, "metrics: {m:?}");
    }

    #[test]
    fn campaign_accumulates() {
        let ft = Fattree::new(4).unwrap();
        let matrix = construct(
            ft.probe_links(),
            ft.enumerate_candidates(),
            &PmcConfig::new(3, 1),
        )
        .unwrap();
        let gen = FailureGenerator::links_only().with_min_rate(0.05);
        let m = accuracy_campaign(&ft, &matrix, &gen, 1, 5, 10, &PllLocalizer::default(), 42);
        assert!(m.true_positives + m.false_negatives == 5);
        assert!(m.accuracy > 0.5, "metrics: {m:?}");
    }
}
