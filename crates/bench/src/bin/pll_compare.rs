//! PLL vs the localization baselines (§5.3 / technical report): given the
//! *same* probe matrix and observations, compare accuracy, false
//! positives and runtime of PLL, Tomo, SCORE and OMP.
//!
//! The paper reports PLL ~2 % more accurate, ~2 % fewer false positives,
//! and an order of magnitude faster than the alternatives at DCN scale;
//! the gap comes from partial-loss handling (hit-ratio filtering).

use std::time::Instant;

use detector_bench::{pct, probe_matrix_window, Scale, Table};
use detector_core::pll::{
    evaluate_diagnosis, LocalizationMetrics, Localizer, OmpConfig, OmpLocalizer, PllLocalizer,
    ScoreLocalizer, TomoLocalizer,
};
use detector_core::pmc::PmcConfig;
use detector_simnet::{Fabric, FailureGenerator};
use detector_topology::{construct_symmetric, Fattree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let (radix, episodes) = match scale {
        Scale::Quick => (18u32, 10usize),
        Scale::Paper => (32, 20),
    };
    let n_failures = 10usize;

    let ft = Fattree::new(radix).unwrap();
    let matrix = construct_symmetric(&ft, &PmcConfig::new(1, 2)).expect("matrix");
    let gen = FailureGenerator::links_only().with_min_rate(0.05);
    let pll_cfg = detector_bench::bench_pll();
    let omp_cfg = OmpConfig::default();
    // Every algorithm behind the same polymorphic interface.
    let localizers: Vec<Box<dyn Localizer>> = vec![
        Box::new(PllLocalizer::new(pll_cfg)),
        Box::new(TomoLocalizer { cfg: pll_cfg }),
        Box::new(ScoreLocalizer { cfg: pll_cfg }),
        Box::new(OmpLocalizer {
            pll: pll_cfg,
            omp: omp_cfg,
        }),
    ];

    println!(
        "PLL vs baselines: Fattree({radix}), (1,2) matrix with {} paths, {} failures, {} episodes\n",
        matrix.num_paths(),
        n_failures,
        episodes
    );

    let mut rng = SmallRng::seed_from_u64(0x9115);
    let mut acc = [
        LocalizationMetrics::zero(),
        LocalizationMetrics::zero(),
        LocalizationMetrics::zero(),
        LocalizationMetrics::zero(),
    ];
    let mut time_us = [0u128; 4];

    for e in 0..episodes {
        let mut fabric = Fabric::new(&ft, 4000 + e as u64);
        let scenario = gen.sample(&ft, n_failures, &mut rng);
        fabric.apply_scenario(&scenario);
        let obs = probe_matrix_window(&ft, &matrix, &fabric, 30, &mut rng);
        let truth = scenario.ground_truth(&ft);

        for (i, l) in localizers.iter().enumerate() {
            let t = Instant::now();
            let d = l.localize(&matrix, &obs);
            time_us[i] += t.elapsed().as_micros();
            acc[i].accumulate(&evaluate_diagnosis(&d.suspect_links(), &truth));
        }
    }

    let names: Vec<&str> = localizers.iter().map(|l| l.name()).collect();
    let mut table = Table::new(vec![
        "algorithm",
        "accuracy %",
        "false pos %",
        "false neg %",
        "mean time (ms)",
    ]);
    for i in 0..4 {
        table.row(vec![
            names[i].to_string(),
            pct(acc[i].accuracy),
            pct(acc[i].false_positive_ratio),
            pct(acc[i].false_negative_ratio),
            format!("{:.2}", time_us[i] as f64 / episodes as f64 / 1000.0),
        ]);
    }
    table.print();
    println!();
    println!("Shape check (paper/TR): PLL leads on accuracy and false positives");
    println!("(hit-ratio filtering handles partial losses) and runs fastest.");
}
