//! Table 2 — PMC algorithm running time (seconds) with α=2, β=1, per
//! optimization stage: strawman, +decomposition, +lazy update, +symmetry
//! reduction.
//!
//! The paper runs Fattree(12/24/72), VL2(20,12,20 / 40,24,40 /
//! 140,120,100) and BCube(4,2 / 8,2 / 8,4) on a 10-core server with a
//! 24-hour cutoff. The default `quick` scale uses smaller instances and a
//! 30-second cutoff so the whole table regenerates in about a minute; set
//! `DETECTOR_BENCH_SCALE=paper` for the paper's feasible sizes (the
//! symmetric column handles all of them; the enumeration-based columns
//! time out exactly where the paper reports > 24 h).

use std::time::{Duration, Instant};

use detector_bench::{secs, Scale, Table};
use detector_core::pmc::{construct, PmcConfig, PmcError, Strategy};
use detector_topology::{construct_symmetric, BCube, DcnTopology, Fattree, Vl2};

fn variant_cfg(strategy: Strategy, decompose: bool, timeout: Duration) -> PmcConfig {
    let mut cfg = PmcConfig::new(2, 1);
    cfg.strategy = strategy;
    cfg.decompose = decompose;
    cfg.parallel = decompose;
    cfg.timeout = Some(timeout);
    cfg
}

fn run_enumerated(
    topo: &dyn DcnTopology,
    cfg: &PmcConfig,
    max_paths: u128,
) -> Result<String, String> {
    if topo.original_path_count() > max_paths {
        return Err("skip".into());
    }
    let t0 = Instant::now();
    let candidates = topo.enumerate_candidates();
    let res = construct(topo.probe_links(), candidates, cfg);
    match res {
        Ok(m) => {
            if m.achieved.targets_met {
                Ok(secs(t0.elapsed()))
            } else {
                Ok(format!("{}*", secs(t0.elapsed())))
            }
        }
        Err(PmcError::Timeout { .. }) => Err(format!(
            ">{}",
            cfg.timeout.map(|t| t.as_secs()).unwrap_or(0)
        )),
        Err(e) => Err(format!("error: {e}")),
    }
}

fn run_symmetric(topo: &dyn DcnTopology, timeout: Duration) -> String {
    let mut cfg = PmcConfig::new(2, 1);
    cfg.timeout = Some(timeout);
    let t0 = Instant::now();
    match construct_symmetric(topo, &cfg) {
        Ok(m) => {
            if m.achieved.targets_met {
                secs(t0.elapsed())
            } else {
                format!("{}*", secs(t0.elapsed()))
            }
        }
        Err(PmcError::Timeout { .. }) => format!(">{}", timeout.as_secs()),
        Err(e) => format!("error: {e}"),
    }
}

fn main() {
    let scale = Scale::from_env();
    let (mut timeout, max_paths) = match scale {
        Scale::Quick => (Duration::from_secs(30), 1_000_000u128),
        Scale::Paper => (Duration::from_secs(600), 15_000_000u128),
    };
    // Optional override, e.g. DETECTOR_BENCH_TIMEOUT_S=120 for a faster
    // paper-scale sweep (timeouts print as ">N" either way).
    if let Ok(t) = std::env::var("DETECTOR_BENCH_TIMEOUT_S") {
        if let Ok(secs) = t.parse::<u64>() {
            timeout = Duration::from_secs(secs.max(1));
        }
    }

    let topologies: Vec<Box<dyn DcnTopology>> = match scale {
        Scale::Quick => vec![
            Box::new(Fattree::new(4).unwrap()),
            Box::new(Fattree::new(6).unwrap()),
            Box::new(Fattree::new(8).unwrap()),
            Box::new(Vl2::new(8, 6, 4).unwrap()),
            Box::new(Vl2::new(12, 8, 8).unwrap()),
            Box::new(BCube::new(4, 2).unwrap()),
        ],
        Scale::Paper => vec![
            Box::new(Fattree::new(12).unwrap()),
            Box::new(Fattree::new(24).unwrap()),
            Box::new(Fattree::new(72).unwrap()),
            Box::new(Vl2::new(20, 12, 20).unwrap()),
            Box::new(Vl2::new(40, 24, 40).unwrap()),
            Box::new(BCube::new(4, 2).unwrap()),
            Box::new(BCube::new(8, 2).unwrap()),
        ],
    };

    println!(
        "Table 2: PMC running time (s), alpha=2 beta=1, cutoff {}s",
        timeout.as_secs()
    );
    println!("(* = finished without fully meeting targets; skip = candidate set too large to materialize)\n");
    let mut table = Table::new(vec![
        "DCN",
        "nodes",
        "links",
        "orig paths",
        "strawman",
        "decomposition",
        "lazy update",
        "symmetry",
    ]);

    for topo in &topologies {
        let t = topo.as_ref();
        let strawman = run_enumerated(
            t,
            &variant_cfg(Strategy::Strawman, false, timeout),
            max_paths,
        )
        .unwrap_or_else(|e| e);
        let decomp = run_enumerated(
            t,
            &variant_cfg(Strategy::Strawman, true, timeout),
            max_paths,
        )
        .unwrap_or_else(|e| e);
        let lazy = run_enumerated(t, &variant_cfg(Strategy::Lazy, true, timeout), max_paths)
            .unwrap_or_else(|e| e);
        let symmetry = run_symmetric(t, timeout);
        table.row(vec![
            t.name(),
            t.graph().num_nodes().to_string(),
            t.graph().num_links().to_string(),
            t.original_path_count().to_string(),
            strawman,
            decomp,
            lazy,
            symmetry,
        ]);
    }
    table.print();
    println!();
    println!("Shape check (paper): each optimization gives an order-of-magnitude class");
    println!("speed-up; symmetry makes instances feasible whose candidate sets cannot");
    println!("even be enumerated (the paper's >24h entries).");
}
