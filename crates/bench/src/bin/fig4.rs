//! Fig. 4 — sensitivity to probe sending frequency on the 4-ary Fattree
//! testbed: (a) PLL accuracy / false positives, (b) pinger CPU / memory /
//! bandwidth overhead, (c) workload RTT, (d) workload jitter.
//!
//! Each experiment minute injects one failure drawn from the three types
//! of §6.2 (full, deterministic partial, random partial) at a random
//! location; the deTector runtime probes at the given frequency and the
//! diagnosis of the minute's last window is scored. The paper's finding:
//! 10–15 probes/s already gives ≥95 % accuracy and <3 % false positives
//! at ~100 Kbps, 0.4 % CPU and 13 MB per pinger, with no visible impact
//! on workload RTT/jitter.

use detector_bench::{pct, Scale, Table};
use detector_core::pll::{evaluate_diagnosis, LocalizationMetrics};
use detector_core::pmc::PmcConfig;
use detector_simnet::{measure_workload_rtt, Fabric, FailureGenerator, WorkloadGenerator};
use detector_system::{Detector, PingerCostModel, SystemConfig};
use detector_topology::{DcnTopology, Fattree};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let minutes = match scale {
        Scale::Quick => 12usize,
        Scale::Paper => 200,
    };
    let freqs = [1.0f64, 2.0, 5.0, 10.0, 15.0, 20.0, 50.0];

    let ft = Arc::new(Fattree::new(4).unwrap());
    let gen = FailureGenerator {
        switch_fraction: 0.1,
        ..FailureGenerator::default()
    }
    .with_min_rate(0.05);
    let cost = PingerCostModel::default();

    // Workload for (c)/(d): fixed offered load; probe traffic adds its
    // (tiny) share of utilization per frequency.
    let wl = WorkloadGenerator {
        load: 0.2,
        ..Default::default()
    };
    let mut wl_rng = SmallRng::seed_from_u64(0xF164);
    let flows = wl.generate(ft.as_ref(), 1.0, 1e9, &mut wl_rng);
    let base_util = WorkloadGenerator::utilization(ft.as_ref(), &flows, 1.0, 1e9);

    println!("Fig. 4: probe-frequency sensitivity, 4-ary Fattree, {minutes} minutes per point\n");
    let mut table = Table::new(vec![
        "freq (pps)",
        "accuracy %",
        "false pos %",
        "CPU %",
        "mem (MB)",
        "BW (Kbps)",
        "RTT mean (us)",
        "RTT p99 (us)",
        "jitter (us)",
    ]);

    for &freq in &freqs {
        let cfg = SystemConfig::default()
            .with_rate(freq)
            .with_pmc(PmcConfig::new(3, 1));
        let mut run = Detector::new(ft.clone(), cfg).expect("system must boot");
        let mut rng = SmallRng::seed_from_u64(0x000F_1640 + freq as u64);
        let mut metrics = LocalizationMetrics::zero();

        for minute in 0..minutes {
            let mut fabric = Fabric::new(ft.as_ref(), 100 + minute as u64);
            let scenario = gen.sample(ft.as_ref(), 1, &mut rng);
            fabric.apply_scenario(&scenario);
            // Two 30-second windows per minute; score the last diagnosis.
            let _ = run.step(&fabric, &mut rng);
            let w = run.step(&fabric, &mut rng);
            let m = evaluate_diagnosis(
                &w.diagnosis.suspect_links(),
                &scenario.ground_truth(ft.as_ref()),
            );
            metrics.accumulate(&m);
        }

        // Workload RTT/jitter with probe traffic folded into utilization:
        // #pingers × freq × 850 B spread over the fabric.
        let mut fabric = Fabric::new(ft.as_ref(), 7);
        let mut util = base_util.clone();
        let probe_bps = 16.0 * freq * 850.0 * 8.0;
        let per_link = probe_bps / ft.graph().num_links() as f64 / 1e9;
        for u in &mut util {
            *u = (*u + per_link).min(1.0);
        }
        fabric.set_utilization(util);
        let sample: Vec<_> = flows.iter().take(60).copied().collect();
        let stats = measure_workload_rtt(&fabric, &sample, 5, &mut wl_rng);

        table.row(vec![
            format!("{freq}"),
            pct(metrics.accuracy),
            pct(metrics.false_positive_ratio),
            format!("{:.2}", cost.cpu_percent(freq)),
            format!("{:.1}", cost.memory_mb(freq)),
            format!("{:.1}", cost.bandwidth_kbps(freq)),
            format!("{:.0}", stats.mean_rtt_us),
            format!("{:.0}", stats.p99_rtt_us),
            format!("{:.1}", stats.jitter_us),
        ]);
    }
    table.print();
    println!();
    println!("Shape check (paper Fig. 4): accuracy rises and FP falls with frequency,");
    println!("flattening by 10-15 pps; overhead grows linearly (0.4% CPU / 13 MB /");
    println!("~100 Kbps at 10-15 pps); workload RTT and jitter stay essentially flat.");
}
