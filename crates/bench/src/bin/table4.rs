//! Table 4 — localization accuracy (%) in an 18-radix Fattree for probe
//! matrices with different coverage/identifiability levels, under 1–50
//! simultaneous link failures.
//!
//! The paper's shape: coverage alone plateaus low (≈30 % at (1,0), ≈70 %
//! at (3,0)); a single level of identifiability jumps accuracy above
//! 90 %; (1,2) reaches ≈99 %; β ≥ 2 adds little. The failure mix is
//! links-only with loss rates ≥ 0.1 (full/deterministic/random per
//! §6.2), so the table isolates the effect of the matrix rather than of
//! undetectably low loss rates — those are exercised in Fig. 5 and the
//! false-negative discussion of Table 5.

use detector_bench::{accuracy_campaign, pct, Scale, Table};
use detector_core::pmc::PmcConfig;
use detector_simnet::FailureGenerator;
use detector_topology::{construct_symmetric, Fattree};

fn main() {
    let scale = Scale::from_env();
    let (radix, episodes, include_beta3) = match scale {
        Scale::Quick => (18u32, 5usize, std::env::var("DETECTOR_BENCH_BETA3").is_ok()),
        Scale::Paper => (18, 20, true),
    };
    let failures = [1usize, 5, 10, 20, 50];
    let mut configs = vec![(1u32, 0u32), (2, 0), (3, 0), (1, 1), (1, 2)];
    if include_beta3 {
        configs.push((1, 3));
    }

    let ft = Fattree::new(radix).unwrap();
    let gen = FailureGenerator::links_only().with_min_rate(0.05);
    let pll = detector_bench::bench_localizer();

    println!(
        "Table 4: localization accuracy (%) in Fattree({radix}), {} episodes per cell",
        episodes
    );
    println!("(probe matrices from the symmetry-reduced PMC; 30 probes per path per window)\n");

    let mut table = Table::new(vec![
        "(a,b)", "paths", "acc@1", "acc@5", "acc@10", "acc@20", "acc@50",
    ]);
    for (a, b) in configs {
        let matrix = construct_symmetric(&ft, &PmcConfig::new(a, b))
            .expect("matrix construction must succeed");
        let mut cells = vec![format!("({a},{b})"), matrix.num_paths().to_string()];
        for (fi, &n) in failures.iter().enumerate() {
            let m = accuracy_campaign(
                &ft,
                &matrix,
                &gen,
                n,
                episodes,
                30,
                &pll,
                ((0xDEC0 + (a as u64)) << 8) | ((b as u64) << 4) | fi as u64,
            );
            cells.push(pct(m.accuracy));
        }
        table.row(cells);
    }
    table.print();
    println!();
    println!("Shape check (paper Table 4): (1,0)≈30, (3,0)≈70, (1,1)>90, (1,2)≈99;");
    println!("identifiability is far more effective per selected path than coverage.");
}
