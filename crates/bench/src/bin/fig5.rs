//! Fig. 5 — accuracy and false positives of deTector, Pingmesh and
//! NetNORAD as a function of probes per minute, with one failure injected
//! per experiment minute (4-ary Fattree testbed).
//!
//! Probe counts include ping and reply, and — for the baselines — the
//! *extra localization round* (Netbouncer for Pingmesh, fbtracert for
//! NetNORAD) that deTector does not need. Half of the injected failures
//! are *transient* (§2, Table 1): they clear after the detection window,
//! so the baselines' post-alarm round probes a healed fabric — deTector
//! localizes from the same observations that detected the loss and is
//! unaffected. The paper's headline: for 98 % accuracy deTector needs
//! ~3.9× fewer probes than Pingmesh and ~1.9× fewer than NetNORAD, and
//! localizes ~30 s earlier.

use detector_baselines::{fbtracert_localize, netbouncer_localize, BaselineConfig, BaselineSystem};
use detector_bench::{pct, Scale, Table};
use detector_core::pll::{evaluate_diagnosis, LocalizationMetrics};
use detector_core::pmc::PmcConfig;
use detector_simnet::{Fabric, FailureGenerator};
use detector_system::{Detector, SystemConfig};
use detector_topology::Fattree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Fraction of failures that clear before a post-alarm localization round
/// can probe them (transient failures: bit errors, non-atomic rule
/// updates, in-progress upgrades — §2).
const TRANSIENT_FRACTION: f64 = 0.2;

struct Point {
    probes_per_min: f64,
    metrics: LocalizationMetrics,
    latency_s: f64,
}

fn detector_points(
    ft: &Fattree,
    gen: &FailureGenerator,
    rates: &[f64],
    minutes: usize,
) -> Vec<Point> {
    let mut out = Vec::new();
    for &rate in rates {
        let cfg = SystemConfig::default()
            .with_rate(rate)
            .with_pmc(PmcConfig::new(3, 1));
        let mut run = Detector::new(Arc::new(ft.clone()), cfg).expect("system must boot");
        let mut rng = SmallRng::seed_from_u64(0x000F_1500 + (rate * 10.0) as u64);
        let mut metrics = LocalizationMetrics::zero();
        let mut probes = 0u64;
        for minute in 0..minutes {
            let mut fabric = Fabric::new(ft, 500 + minute as u64);
            let scenario = gen.sample(ft, 1, &mut rng);
            fabric.apply_scenario(&scenario);
            let w1 = run.step(&fabric, &mut rng);
            let w2 = run.step(&fabric, &mut rng);
            probes += (w1.probes_sent + w2.probes_sent) * 2;
            let m = evaluate_diagnosis(&w2.diagnosis.suspect_links(), &scenario.ground_truth(ft));
            metrics.accumulate(&m);
        }
        out.push(Point {
            probes_per_min: probes as f64 / minutes as f64,
            metrics,
            // Failures are diagnosed at the end of the 30 s window in
            // which they occur: no extra localization round.
            latency_s: 30.0,
        });
    }
    out
}

enum Baseline {
    Pingmesh,
    NetNorad,
}

fn baseline_points(
    ft: &Fattree,
    gen: &FailureGenerator,
    which: Baseline,
    budgets: &[u64],
    minutes: usize,
) -> Vec<Point> {
    let bcfg = BaselineConfig::default();
    let system = match which {
        Baseline::Pingmesh => BaselineSystem::pingmesh(ft, bcfg),
        Baseline::NetNorad => BaselineSystem::netnorad(ft, bcfg, 4),
    };
    let mut out = Vec::new();
    for &budget in budgets {
        let mut rng = SmallRng::seed_from_u64(0x000F_1510 + budget);
        let mut metrics = LocalizationMetrics::zero();
        let mut probes = 0u64;
        for minute in 0..minutes {
            let mut fabric = Fabric::new(ft, 900 + minute as u64);
            let scenario = gen.sample(ft, 1, &mut rng);
            fabric.apply_scenario(&scenario);
            // Two detection windows per minute.
            let d1 = system.detect_window(&fabric, budget / 2, &mut rng);
            let d2 = system.detect_window(&fabric, budget / 2, &mut rng);
            probes += d1.probes_used + d2.probes_used;
            // Localization round on the suspects: an additional window in
            // wall-clock terms (the 30 s penalty the paper measures) — by
            // which time a transient failure is gone.
            let transient = rng.gen::<f64>() < TRANSIENT_FRACTION;
            if transient {
                fabric.clear_failures();
            }
            let suspects = if d2.suspects.is_empty() {
                &d1.suspects
            } else {
                &d2.suspects
            };
            // The sweep is budgeted like everything else: at most half the
            // per-minute probe budget in round trips.
            let loc_budget = budget / 4;
            let diag = match which {
                Baseline::Pingmesh => {
                    netbouncer_localize(ft, &fabric, suspects, &bcfg, loc_budget, &mut rng)
                }
                Baseline::NetNorad => {
                    fbtracert_localize(ft, &fabric, suspects, &bcfg, loc_budget, &mut rng)
                }
            };
            probes += diag.probes_used;
            let m = evaluate_diagnosis(&diag.links, &scenario.ground_truth(ft));
            metrics.accumulate(&m);
        }
        out.push(Point {
            probes_per_min: probes as f64 / minutes as f64,
            metrics,
            latency_s: 60.0,
        });
    }
    out
}

fn print_points(name: &str, points: &[Point]) {
    println!("{name}:");
    let mut table = Table::new(vec![
        "probes/min",
        "accuracy %",
        "false pos %",
        "localization latency (s)",
    ]);
    for p in points {
        table.row(vec![
            format!("{:.0}", p.probes_per_min),
            pct(p.metrics.accuracy),
            pct(p.metrics.false_positive_ratio),
            format!("{:.0}", p.latency_s),
        ]);
    }
    table.print();
    println!();
}

fn main() {
    let scale = Scale::from_env();
    let minutes = match scale {
        Scale::Quick => 40usize,
        Scale::Paper => 200,
    };
    let ft = Fattree::new(4).unwrap();
    let gen = FailureGenerator {
        switch_fraction: 0.1,
        ..FailureGenerator::default()
    }
    .with_min_rate(0.05);

    println!("Fig. 5: accuracy & false positives vs probes/minute, one failure per minute\n");
    let det = detector_points(&ft, &gen, &[0.5, 1.0, 2.0, 4.0, 8.0], minutes);
    print_points("deTector (3-coverage, 1-identifiability)", &det);
    let pm = baseline_points(
        &ft,
        &gen,
        Baseline::Pingmesh,
        &[2000, 5000, 12000, 30000],
        minutes,
    );
    print_points("Pingmesh (+ Netbouncer localization)", &pm);
    let nn = baseline_points(
        &ft,
        &gen,
        Baseline::NetNorad,
        &[2000, 5000, 12000, 30000],
        minutes,
    );
    print_points("NetNORAD (+ fbtracert localization)", &nn);

    // Headline factor: probes needed for >= 95% accuracy.
    let need = |pts: &[Point]| -> Option<f64> {
        pts.iter()
            .filter(|p| p.metrics.accuracy >= 0.95)
            .map(|p| p.probes_per_min)
            .fold(None, |a: Option<f64>, b| Some(a.map_or(b, |x| x.min(b))))
    };
    if let (Some(d), Some(p), Some(n)) = (need(&det), need(&pm), need(&nn)) {
        println!(
            "Probes/min for >=95% accuracy: deTector {:.0}, Pingmesh {:.0} ({:.1}x), NetNORAD {:.0} ({:.1}x)",
            d, p, p / d, n, n / d
        );
    } else {
        println!("(some systems did not reach 95% accuracy in this sweep)");
    }
    println!("\nShape check (paper Fig. 5): deTector reaches high accuracy with several");
    println!("times fewer probes; baselines need an extra localization round (+30 s).");
}
