//! Ablation: PLL's hit-ratio threshold τ (§5.3).
//!
//! The paper sets τ = 0.6 "by experience and, if possible, by learning
//! from real loss data" and defers the analysis to its technical report.
//! This sweep regenerates that analysis: low τ behaves like Tomo (no
//! exoneration → false positives under partial loss), high τ rejects
//! genuinely faulty links whose paths are not all lossy (false
//! negatives); the sweet spot sits in the 0.4–0.7 plateau containing the
//! paper's default.

use detector_bench::{accuracy_campaign, bench_pll, pct, Scale, Table};
use detector_core::pll::PllLocalizer;
use detector_core::pmc::PmcConfig;
use detector_simnet::FailureGenerator;
use detector_topology::{construct_symmetric, Fattree};

fn main() {
    let scale = Scale::from_env();
    let (radix, episodes) = match scale {
        Scale::Quick => (18u32, 10usize),
        Scale::Paper => (18, 40),
    };
    let taus = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let n_failures = 10usize;

    let ft = Fattree::new(radix).unwrap();
    let matrix = construct_symmetric(&ft, &PmcConfig::identifiable(1)).expect("matrix");
    // Plenty of partial losses: that is where the threshold matters.
    let gen = FailureGenerator {
        full_fraction: 0.1,
        ..FailureGenerator::links_only()
    }
    .with_min_rate(0.05);

    println!(
        "Ablation: hit-ratio threshold, Fattree({radix}) (1,1) matrix, {n_failures} failures, {episodes} episodes\n"
    );
    let mut table = Table::new(vec!["tau", "accuracy %", "false pos %", "false neg %"]);
    for &tau in &taus {
        let pll = PllLocalizer::new(bench_pll().with_hit_ratio(tau));
        let m = accuracy_campaign(
            &ft,
            &matrix,
            &gen,
            n_failures,
            episodes,
            30,
            &pll,
            0xAB1A + (tau * 10.0) as u64,
        );
        table.row(vec![
            format!("{tau:.1}"),
            pct(m.accuracy),
            pct(m.false_positive_ratio),
            pct(m.false_negative_ratio),
        ]);
    }
    table.print();
    println!();
    println!("Shape check (paper TR): false positives fall as tau rises; false");
    println!("negatives rise past the plateau; the paper's tau = 0.6 sits inside it.");
}
