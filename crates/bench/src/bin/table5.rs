//! Table 5 — fault localization with a 2-identifiable probe matrix in a
//! 48-ary Fattree: accuracy, false positive and false negative ratios
//! under 1–50 simultaneous link failures.
//!
//! The paper reports ≈99 % accuracy with false positives ≤ 0.02 % —
//! false negatives are dominated by failures whose loss rate is too low
//! to manifest within one 30-second window.

use detector_bench::{accuracy_campaign, pct, Scale, Table};
use detector_core::pmc::PmcConfig;
use detector_simnet::FailureGenerator;
use detector_topology::{construct_symmetric, DcnTopology, Fattree};

fn main() {
    let scale = Scale::from_env();
    let (radix, episodes) = match scale {
        Scale::Quick => (24u32, 5usize),
        Scale::Paper => (48, 10),
    };
    let failures = [1usize, 5, 10, 20, 50];

    let ft = Fattree::new(radix).unwrap();
    let t0 = std::time::Instant::now();
    let matrix =
        construct_symmetric(&ft, &PmcConfig::new(1, 2)).expect("matrix construction must succeed");
    println!(
        "Table 5: Fattree({radix}) with a (1,2) probe matrix ({} paths over {} links, built in {:.1}s)",
        matrix.num_paths(),
        ft.probe_links(),
        t0.elapsed().as_secs_f64()
    );
    println!(
        "{} episodes per cell, 30 probes per path per window\n",
        episodes
    );

    let gen = FailureGenerator::links_only().with_min_rate(0.05);
    let pll = detector_bench::bench_localizer();

    let mut table = Table::new(vec![
        "# failed links",
        "accuracy %",
        "false positive %",
        "false negative %",
    ]);
    for (fi, &n) in failures.iter().enumerate() {
        let m = accuracy_campaign(
            &ft,
            &matrix,
            &gen,
            n,
            episodes,
            30,
            &pll,
            0x7AB5 + fi as u64,
        );
        table.row(vec![
            n.to_string(),
            pct(m.accuracy),
            pct(m.false_positive_ratio),
            pct(m.false_negative_ratio),
        ]);
    }
    table.print();
    println!();
    println!("Shape check (paper Table 5): accuracy ≈99%, FP << 1%, FN ≈ 1% and");
    println!("growing slightly with the number of concurrent failures.");
}
