//! Detection-to-localization latency: deTector names the faulty link at
//! the end of the 30-second window that detected it; Pingmesh/NetNORAD
//! must first finish a detection window, then run an extra localization
//! round — the "30 seconds in advance" the paper measures in §6.3.
//!
//! This binary measures the full timeline on the simulated clock: failure
//! injected at t = 0 (start of a window), then the first instant each
//! system can hand the operator a *link* (not just a suspect server
//! pair).

use detector_baselines::{netbouncer_localize, BaselineConfig, BaselineSystem};
use detector_bench::{Scale, Table};
use detector_simnet::{Fabric, FailureGenerator, FailureScenario};
use detector_system::{Detector, SystemConfig};
use detector_topology::Fattree;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

const WINDOW_S: u64 = 30;

fn main() {
    let scale = Scale::from_env();
    let episodes = match scale {
        Scale::Quick => 30usize,
        Scale::Paper => 200,
    };
    let ft = Fattree::new(4).unwrap();
    let gen = FailureGenerator::links_only().with_min_rate(0.1);
    let bcfg = BaselineConfig::default();

    let mut rng = SmallRng::seed_from_u64(0x1A7E);
    let mut det_sum = 0u64;
    let mut det_hits = 0usize;
    let mut pm_sum = 0u64;
    let mut pm_hits = 0usize;

    for e in 0..episodes {
        let scenario: FailureScenario = gen.sample(&ft, 1, &mut rng);
        let truth = scenario.ground_truth(&ft);
        let mut fabric = Fabric::new(&ft, 6000 + e as u64);
        fabric.apply_scenario(&scenario);

        // deTector: windows run back to back; the diagnosis at the end of
        // window w is available at (w+1)·30 s after injection.
        let mut run = Detector::new(Arc::new(ft.clone()), SystemConfig::default()).unwrap();
        for w in 0..4u64 {
            let res = run.step(&fabric, &mut rng);
            let found = truth
                .iter()
                .any(|t| res.diagnosis.suspect_links().contains(t));
            if found {
                det_sum += (w + 1) * WINDOW_S;
                det_hits += 1;
                break;
            }
        }

        // Pingmesh: detection windows until a suspect pair appears, then
        // one more window for the Netbouncer sweep.
        let pm = BaselineSystem::pingmesh(&ft, bcfg);
        for w in 0..4u64 {
            let det = pm.detect_window(&fabric, 8000, &mut rng);
            if det.suspects.is_empty() {
                continue;
            }
            let loc = netbouncer_localize(&ft, &fabric, &det.suspects, &bcfg, u64::MAX, &mut rng);
            if truth.iter().any(|t| loc.links.contains(t)) {
                // Detection window (w+1) plus the localization round.
                pm_sum += (w + 2) * WINDOW_S;
                pm_hits += 1;
            }
            break;
        }
    }

    println!("Localization latency from failure injection ({episodes} episodes)\n");
    let mut table = Table::new(vec!["system", "localized %", "mean latency (s)"]);
    table.row(vec![
        "deTector".to_string(),
        format!("{:.0}", 100.0 * det_hits as f64 / episodes as f64),
        format!("{:.0}", det_sum as f64 / det_hits.max(1) as f64),
    ]);
    table.row(vec![
        "Pingmesh+Netbouncer".to_string(),
        format!("{:.0}", 100.0 * pm_hits as f64 / episodes as f64),
        format!("{:.0}", pm_sum as f64 / pm_hits.max(1) as f64),
    ]);
    table.print();
    println!();
    println!("Shape check (paper §6.3): deTector localizes ~30 s earlier because no");
    println!("additional probing round is needed after detection.");
}
