//! Fig. 6 — accuracy and false positives with *multiple* simultaneous
//! failures at a fixed probe budget (5850 probes/minute in the paper's
//! testbed experiment).
//!
//! deTector keeps its accuracy as failures multiply because the probe
//! matrix localizes any ≤β failures from the same observation window; the
//! baselines degrade — their suspect-pair sweeps overlap and the fixed
//! budget is split across more localization work.

use detector_baselines::{fbtracert_localize, netbouncer_localize, BaselineConfig, BaselineSystem};
use detector_bench::{pct, Scale, Table};
use detector_core::pll::{evaluate_diagnosis, LocalizationMetrics};
use detector_core::pmc::PmcConfig;
use detector_simnet::{Fabric, FailureGenerator};
use detector_system::{Detector, SystemConfig};
use detector_topology::Fattree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const BUDGET_PER_MIN: u64 = 5850;

/// Fraction of failures that clear before the baselines' post-alarm
/// localization round (transient failures, §2).
const TRANSIENT_FRACTION: f64 = 0.2;

fn main() {
    let scale = Scale::from_env();
    let minutes = match scale {
        Scale::Quick => 40usize,
        Scale::Paper => 200,
    };
    let failures = [1usize, 2, 3, 4, 5];
    let ft = Fattree::new(4).unwrap();
    let gen = FailureGenerator {
        switch_fraction: 0.1,
        ..FailureGenerator::default()
    }
    .with_min_rate(0.05);
    let bcfg = BaselineConfig {
        // The budget must also pay for localization: shorter sweeps.
        sweep_probes_per_path: 10,
        trace_probes_per_hop: 5,
        ..BaselineConfig::default()
    };

    // deTector rate chosen so that probes/min ≈ the fixed budget:
    // 16 pingers × rate × 60 s × 2 (ping+reply) ≈ 5850 → rate ≈ 3.
    let det_cfg = SystemConfig::default()
        .with_rate(3.0)
        .with_pmc(PmcConfig::new(3, 1));

    println!(
        "Fig. 6: accuracy & false positives with multiple failures at ~{} probes/min\n",
        BUDGET_PER_MIN
    );
    let mut table = Table::new(vec![
        "# failures",
        "deTector acc %",
        "deTector FP %",
        "Pingmesh acc %",
        "Pingmesh FP %",
        "NetNORAD acc %",
        "NetNORAD FP %",
    ]);

    for &n in &failures {
        // deTector.
        let mut run = Detector::new(Arc::new(ft.clone()), det_cfg.clone()).expect("boot");
        let mut rng = SmallRng::seed_from_u64(0x000F_1660 + n as u64);
        let mut det = LocalizationMetrics::zero();
        for minute in 0..minutes {
            let mut fabric = Fabric::new(&ft, 1300 + minute as u64);
            let scenario = gen.sample(&ft, n, &mut rng);
            fabric.apply_scenario(&scenario);
            let _ = run.step(&fabric, &mut rng);
            let w = run.step(&fabric, &mut rng);
            det.accumulate(&evaluate_diagnosis(
                &w.diagnosis.suspect_links(),
                &scenario.ground_truth(&ft),
            ));
        }

        // Baselines at the same budget (detection + localization).
        let pm_sys = BaselineSystem::pingmesh(&ft, bcfg);
        let nn_sys = BaselineSystem::netnorad(&ft, bcfg, 4);
        let mut pm = LocalizationMetrics::zero();
        let mut nn = LocalizationMetrics::zero();
        for minute in 0..minutes {
            let mut fabric = Fabric::new(&ft, 1700 + minute as u64);
            let scenario = gen.sample(&ft, n, &mut rng);
            fabric.apply_scenario(&scenario);
            let transient = rng.gen::<f64>() < TRANSIENT_FRACTION;

            let d = pm_sys.detect_window(&fabric, BUDGET_PER_MIN / 2, &mut rng);
            if transient {
                fabric.clear_failures();
            }
            // Detection took half the budget; localization gets the rest
            // (in round trips).
            let loc_budget = BUDGET_PER_MIN / 4;
            let diag = netbouncer_localize(&ft, &fabric, &d.suspects, &bcfg, loc_budget, &mut rng);
            pm.accumulate(&evaluate_diagnosis(
                &diag.links,
                &scenario.ground_truth(&ft),
            ));

            if transient {
                fabric.apply_scenario(&scenario);
            }
            let d = nn_sys.detect_window(&fabric, BUDGET_PER_MIN / 2, &mut rng);
            if transient {
                fabric.clear_failures();
            }
            let diag = fbtracert_localize(&ft, &fabric, &d.suspects, &bcfg, loc_budget, &mut rng);
            nn.accumulate(&evaluate_diagnosis(
                &diag.links,
                &scenario.ground_truth(&ft),
            ));
        }

        table.row(vec![
            n.to_string(),
            pct(det.accuracy),
            pct(det.false_positive_ratio),
            pct(pm.accuracy),
            pct(pm.false_positive_ratio),
            pct(nn.accuracy),
            pct(nn.false_positive_ratio),
        ]);
    }
    table.print();
    println!();
    println!("Shape check (paper Fig. 6): deTector dominates both baselines at every");
    println!("failure count under the same probe budget, and needs no second probing");
    println!("round (30 s faster localization).");
}
