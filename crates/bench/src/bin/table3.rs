//! Table 3 — number of selected probe paths for (α, β) ∈
//! {(1,0), (1,1), (3,2)} across the three DCN families.
//!
//! The headline shape: selected paths are a vanishing fraction of the
//! original ECMP path count, and scale roughly with the link count (for
//! Fattree (1,1) the paper proves a k³/5 lower bound and selects ~17 %
//! above it; our greedy lands within ~25 % of the paper's counts).

use detector_bench::{Scale, Table};
use detector_core::pmc::PmcConfig;
use detector_topology::{construct_symmetric, BCube, DcnTopology, Fattree, Vl2};

fn main() {
    let scale = Scale::from_env();
    let topologies: Vec<Box<dyn DcnTopology>> = match scale {
        Scale::Quick => vec![
            Box::new(Fattree::new(16).unwrap()),
            Box::new(Fattree::new(24).unwrap()),
            Box::new(Vl2::new(16, 12, 8).unwrap()),
            Box::new(Vl2::new(24, 16, 16).unwrap()),
            Box::new(BCube::new(4, 2).unwrap()),
        ],
        Scale::Paper => vec![
            Box::new(Fattree::new(32).unwrap()),
            Box::new(Fattree::new(64).unwrap()),
            Box::new(Vl2::new(72, 48, 40).unwrap()),
            Box::new(BCube::new(8, 2).unwrap()),
        ],
    };
    let configs = [(1u32, 0u32), (1, 1), (3, 2)];

    println!("Table 3: number of selected paths per (alpha, beta)\n");
    let mut table = Table::new(vec![
        "DCN",
        "links",
        "orig paths",
        "(1,0)",
        "(1,1)",
        "(3,2)",
        "k^3/5 bound",
    ]);
    for topo in &topologies {
        let t = topo.as_ref();
        let mut cells = vec![
            t.name(),
            t.probe_links().to_string(),
            t.original_path_count().to_string(),
        ];
        for (a, b) in configs {
            let m =
                construct_symmetric(t, &PmcConfig::new(a, b)).expect("construction must succeed");
            let mark = if m.achieved.targets_met { "" } else { "*" };
            cells.push(format!("{}{}", m.num_paths(), mark));
        }
        // The k³/5 lower bound applies to Fattree (1,1) only (§4.4).
        let bound = if t.name().starts_with("Fattree") {
            let k: u64 = t
                .name()
                .trim_start_matches("Fattree(")
                .trim_end_matches(')')
                .parse()
                .unwrap_or(0);
            format!("{}", k * k * k / 5)
        } else {
            "-".to_string()
        };
        cells.push(bound);
        table.row(cells);
    }
    table.print();
    println!("\n(* = (alpha,beta) targets not fully attainable on this instance)");
    println!("Shape check (paper): selected << original (<0.1%); Fattree (1,1) lands");
    println!("within a small factor of k^3/5; VL2 needs far fewer paths than Fattree");
    println!("and BCube at comparable scale because it has far fewer switch links.");
}
