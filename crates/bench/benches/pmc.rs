//! Criterion micro-benchmarks for probe-matrix construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use detector_core::pmc::{construct, PmcConfig};
use detector_topology::{construct_symmetric, DcnTopology, Fattree, Vl2};

fn bench_pmc(c: &mut Criterion) {
    let mut g = c.benchmark_group("pmc");
    g.sample_size(10);

    let ft6 = Fattree::new(6).unwrap();
    g.bench_function("fattree6_exhaustive_lazy_(1,1)", |b| {
        b.iter(|| {
            construct(
                ft6.probe_links(),
                ft6.enumerate_candidates(),
                &PmcConfig::identifiable(1),
            )
            .unwrap()
        })
    });
    g.bench_function("fattree6_exhaustive_strawman_(1,1)", |b| {
        b.iter(|| {
            construct(
                ft6.probe_links(),
                ft6.enumerate_candidates(),
                &PmcConfig::identifiable(1).strawman(),
            )
            .unwrap()
        })
    });

    for k in [8u32, 16, 32] {
        let ft = Fattree::new(k).unwrap();
        g.bench_with_input(
            BenchmarkId::new("fattree_symmetric_(1,1)", k),
            &ft,
            |b, ft| b.iter(|| construct_symmetric(ft, &PmcConfig::identifiable(1)).unwrap()),
        );
    }

    let vl2 = Vl2::new(16, 12, 8).unwrap();
    g.bench_function("vl2(16,12,8)_symmetric_(1,1)", |b| {
        b.iter(|| construct_symmetric(&vl2, &PmcConfig::identifiable(1)).unwrap())
    });

    let ft16 = Fattree::new(16).unwrap();
    g.bench_function("fattree16_symmetric_(3,2)", |b| {
        b.iter(|| construct_symmetric(&ft16, &PmcConfig::new(3, 2)).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_pmc);
criterion_main!(benches);
