//! Criterion micro-benchmarks for the simulator substrate: probe
//! round-trip throughput and wire encode/decode.

use criterion::{criterion_group, criterion_main, Criterion};
use detector_simnet::{decode_probe, encode_probe, Fabric, FlowKey, LossDiscipline, ProbePacket};
use detector_topology::{DcnTopology, Fattree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_simnet(c: &mut Criterion) {
    let ft = Fattree::new(8).unwrap();
    let mut fabric = Fabric::new(&ft, 3);
    fabric.set_discipline_both(
        ft.ac_link(0, 0, 0),
        LossDiscipline::RandomPartial { rate: 0.01 },
    );
    let route = ft.ecmp_route(ft.server(0, 0, 0), ft.server(5, 2, 1), 9);
    let mut rng = SmallRng::seed_from_u64(11);

    let mut g = c.benchmark_group("simnet");
    g.sample_size(30);
    g.bench_function("round_trip_6hop", |b| {
        b.iter(|| fabric.round_trip(&route, FlowKey::udp(0, 99, 40_000, 53_533), &mut rng))
    });

    let packet = ProbePacket {
        waypoint: 17,
        flow: FlowKey::udp(3, 8, 40_000, 53_533),
        seq: 1,
        path_id: 42,
        timestamp_us: 123_456,
    };
    g.bench_function("probe_encode", |b| b.iter(|| encode_probe(&packet)));
    let wire = encode_probe(&packet);
    g.bench_function("probe_decode", |b| {
        b.iter(|| decode_probe(wire.clone()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_simnet);
criterion_main!(benches);
