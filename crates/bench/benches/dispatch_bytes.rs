//! Dispatch bytes: whole-list redispatch vs per-entry diffs on a
//! Fattree(16) single-link delta — the wire-cost claim of the
//! distributed control plane (`detector-agent`).
//!
//! The controller runs with `PmcConfig::stable_patch` (the distributed
//! tier's production setting): the cell re-solve is seeded with the
//! surviving previous solution, so only the paths the dead link actually
//! broke change ids or entries. Two arms time the wire encoding of the
//! same delta under the two protocols:
//!
//! * `whole_list` — the pre-diff protocol: every changed pinglist ships
//!   whole (one `ListReplace` frame per list);
//! * `per_entry_diff` — the `detector-agent` protocol: `EntryRemove` /
//!   `EntryAdd` / `ListSeal` frames per changed list, `RangeRebase`
//!   broadcasts for moved id ranges.
//!
//! Timings land in the usual `CRITERION_JSON` feed. The byte accounting
//! itself is machine-independent, so it is persisted separately: set
//! `DISPATCH_JSON=$PWD/BENCH_dispatch.json` and the run appends one
//! JSON-lines record per arm (`bytes`, `entries`, `updates`, `lists`,
//! `paths`) plus a `ratio_x100` summary record. The committed
//! `BENCH_dispatch.json` snapshot is schema-checked — including the
//! ≥10× diff-vs-whole ratio — by `tests/bench_artifacts.rs`:
//!
//! ```text
//! rm -f BENCH_dispatch.json
//! DISPATCH_JSON=$PWD/BENCH_dispatch.json cargo bench -p detector-bench --bench dispatch_bytes
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use detector_system::dispatch::{
    encoded_list_len, rebase_and_diff, rebase_pairs, DeploymentDiff, ListUpdate, FRAME_OVERHEAD,
};
use detector_system::{Controller, Deployment, SharedTopology, SystemConfig};
use detector_topology::{Fattree, TopologyEvent};

/// The single-link delta under measurement: the old deployment, the new
/// deployment, and the diff between them.
struct Delta {
    old: Deployment,
    new: Deployment,
    diff: DeploymentDiff,
}

fn single_link_delta() -> Delta {
    let ft = Arc::new(Fattree::new(16).expect("fattree"));
    let mut cfg = SystemConfig::default();
    cfg.pmc.stable_patch = true;
    let mut ctl = Controller::new(ft.clone() as SharedTopology, cfg);
    let healthy = HashSet::new();
    let old = ctl.build_deployment(&healthy).expect("initial deployment");
    let ranges_before = ctl.probe_plan().map(|p| p.cell_ranges());
    ctl.apply_event(&TopologyEvent::LinkDown {
        link: ft.ea_link(0, 0, 0),
    })
    .expect("re-plan");
    let mut new = ctl.build_deployment(&healthy).expect("patched deployment");
    let ranges_after = ctl.probe_plan().map(|p| p.cell_ranges());
    let rebases = rebase_pairs(ranges_before.as_deref(), ranges_after.as_deref());
    let (diff, _stats) = rebase_and_diff(&old, &mut new, &rebases);
    Delta { old, new, diff }
}

/// Wire bytes of the pre-diff protocol: every update travels as a whole
/// list (`ListReplace`), removals as `ListRemove`.
fn whole_list_bytes(d: &Delta) -> usize {
    d.diff
        .updates
        .iter()
        .map(|u| match u {
            ListUpdate::Remove(_) => FRAME_OVERHEAD + 4,
            ListUpdate::Replace(list) => encoded_list_len(list),
            ListUpdate::Diff { pinger, .. } => d
                .new
                .pinglists
                .iter()
                .find(|l| l.pinger == *pinger)
                .map(encoded_list_len)
                .expect("diffed list exists in the new deployment"),
        })
        .sum()
}

fn append_record(path: &str, record: &str) {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("DISPATCH_JSON file must be writable");
    writeln!(f, "{record}").expect("DISPATCH_JSON write");
}

fn bench_dispatch_bytes(c: &mut Criterion) {
    let delta = single_link_delta();
    let diff_bytes = delta.diff.wire_bytes();
    let whole_bytes = whole_list_bytes(&delta);
    let entries = delta.diff.entries_diffed();
    let updates = delta.diff.updates.len();
    let lists = delta.old.pinglists.len();
    let paths = delta.old.matrix.num_paths();
    println!(
        "dispatch_bytes/fattree16: diff {diff_bytes} B vs whole-list {whole_bytes} B \
         ({entries} entries over {updates}/{lists} lists, {paths} paths) — {:.2}x",
        whole_bytes as f64 / diff_bytes as f64
    );

    if let Ok(path) = std::env::var("DISPATCH_JSON") {
        for (bench, bytes) in [("per_entry_diff", diff_bytes), ("whole_list", whole_bytes)] {
            append_record(
                &path,
                &format!(
                    "{{\"group\":\"dispatch_bytes/fattree16\",\"bench\":\"{bench}\",\
                     \"bytes\":{bytes},\"entries\":{entries},\"updates\":{updates},\
                     \"lists\":{lists},\"paths\":{paths}}}"
                ),
            );
        }
        append_record(
            &path,
            &format!(
                "{{\"group\":\"dispatch_bytes/fattree16\",\"bench\":\"ratio\",\
                 \"ratio_x100\":{}}}",
                whole_bytes * 100 / diff_bytes
            ),
        );
    }

    let mut group = c.benchmark_group("dispatch_bytes/fattree16");
    group.sample_size(10);
    group.bench_function("per_entry_diff", |b| {
        b.iter(|| {
            // Re-derive the edit script and its frame bytes from the two
            // deployments — the work the controller does per delta.
            let mut new = delta.new.clone();
            let (diff, _) = rebase_and_diff(&delta.old, &mut new, &delta.diff.rebases);
            criterion::black_box(diff.wire_bytes())
        })
    });
    group.bench_function("whole_list", |b| {
        b.iter(|| criterion::black_box(whole_list_bytes(&delta)))
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch_bytes);
criterion_main!(benches);
