//! Re-plan latency: full recompute vs incremental patch (the tentpole
//! claim of the live-topology API).
//!
//! For a single-link delta on Fattree(16) (symmetric planner: one base
//! component, k/2 = 8 isomorphic groups) and VL2(20,12,2) (materialized
//! planner: one 70,800-candidate component), compare:
//!
//! * `full_*` — a from-scratch [`ProbePlan`] build for the mutated
//!   topology state, the way a stateless controller must re-plan: it
//!   re-derives candidates/providers and re-solves every affected
//!   subproblem plus a pristine base where replicas need it;
//! * `incremental_*` — [`ProbePlan::apply`] on the standing plan: only
//!   the subproblem the delta touches is re-solved (`_down`), and a
//!   repaired link restores the cached pristine solution without solving
//!   at all (`_up`).
//!
//! Both arms end with `ProbePlan::matrix()` so the cost of assembling the
//! deployable matrix is included on both sides. The shim's criterion
//! reports min/median/mean/max ± std-dev; compare medians.
//!
//! The run also prints a **`lists_redispatched`** accounting block: with
//! segmented per-cell `PathId` ranges, a single-cell delta re-dispatches
//! only the pinglists carrying the touched cell's paths (and a no-op
//! cycle refresh re-dispatches nothing), where the former dense-id
//! assembly shifted every later cell's ids and re-dispatched the whole
//! fabric on any path-count change.
//!
//! Run with: `cargo bench --bench replan_latency`

use std::collections::HashSet;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use detector_core::pmc::PmcConfig;
use detector_core::types::LinkId;
use detector_system::{Detector, ProbePlan, SharedTopology, SystemConfig};
use detector_topology::{Fattree, TopologyEvent, Vl2};

/// Forces the symmetric path regardless of instance size.
const FORCE_SYMMETRIC: u128 = 0;
/// Forces candidate materialization regardless of instance size.
const FORCE_MATERIALIZED: u128 = u128::MAX;

fn bench_case(
    c: &mut Criterion,
    label: &str,
    topo: SharedTopology,
    victim: LinkId,
    cfg: &PmcConfig,
    limit: u128,
) {
    let offline: HashSet<LinkId> = [victim].into_iter().collect();
    let none: HashSet<LinkId> = HashSet::new();

    let pristine =
        ProbePlan::with_exhaustive_limit(topo.clone(), cfg, &none, limit).expect("pristine plan");
    let degraded = {
        let mut p = pristine.clone();
        p.apply(&[victim], &offline).expect("degrade plan");
        p
    };

    let mut g = c.benchmark_group(format!("replan_latency/{label}"));
    g.sample_size(10);

    // Link goes down: full rebuild vs single-subproblem patch.
    g.bench_function("full_down", |b| {
        b.iter(|| {
            ProbePlan::with_exhaustive_limit(topo.clone(), cfg, &offline, limit)
                .expect("full replan")
                .matrix()
                .num_paths()
        })
    });
    g.bench_function("incremental_down", |b| {
        b.iter_batched(
            || pristine.clone(),
            |mut p| {
                p.apply(&[victim], &offline).expect("incremental replan");
                p.matrix().num_paths()
            },
            BatchSize::LargeInput,
        )
    });

    // Link comes back: full rebuild vs pristine-cache restore.
    g.bench_function("full_up", |b| {
        b.iter(|| {
            ProbePlan::with_exhaustive_limit(topo.clone(), cfg, &none, limit)
                .expect("full replan")
                .matrix()
                .num_paths()
        })
    });
    g.bench_function("incremental_up", |b| {
        b.iter_batched(
            || degraded.clone(),
            |mut p| {
                p.apply(&[victim], &none).expect("incremental replan");
                p.matrix().num_paths()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn fattree16(c: &mut Criterion) {
    let ft = Arc::new(Fattree::new(16).expect("fattree"));
    let victim = ft.ea_link(3, 2, 1);
    bench_case(
        c,
        "fattree16",
        ft as SharedTopology,
        victim,
        &PmcConfig::identifiable(1),
        FORCE_SYMMETRIC,
    );
}

fn vl2(c: &mut Criterion) {
    // PMC ignores servers-per-ToR, so 2 keeps graph construction cheap;
    // the probe problem is the paper's VL2(20,12) with one 70,800-path
    // candidate component that does not decompose.
    let vl = Arc::new(Vl2::new(20, 12, 2).expect("vl2"));
    let victim = LinkId(0); // A ToR–aggregation link.
    bench_case(
        c,
        "vl2_20_12",
        vl as SharedTopology,
        victim,
        &PmcConfig::identifiable(1),
        FORCE_MATERIALIZED,
    );
}

/// Reports the dispatch-stability metric: pinglists re-dispatched by a
/// single-link delta (down, then up) and by a no-op re-apply, on
/// Fattree(16) with a (1, 1) matrix. Not a timing benchmark — one run
/// each, printed alongside the latency groups.
fn lists_redispatched(_c: &mut Criterion) {
    let ft = Arc::new(Fattree::new(16).expect("fattree"));
    let dead = ft.ea_link(3, 2, 1);
    let cfg = SystemConfig::default().with_pmc(PmcConfig::identifiable(1));
    let mut run =
        Detector::new(ft.clone() as SharedTopology, cfg).expect("boot Fattree(16) detector");

    println!("\nlists_redispatched (Fattree(16), (1,1), single ea-link delta):");
    let total = run.pinglists().len();
    let down = run
        .apply(&TopologyEvent::LinkDown { link: dead })
        .expect("down delta");
    println!(
        "  link down: {:3} / {} lists re-dispatched ({} cell(s) re-solved, {} µs)",
        down.lists_redispatched,
        run.pinglists().len(),
        down.stats.cells_resolved,
        down.replan_micros
    );
    let noop = run
        .apply(&TopologyEvent::LinkDown { link: dead })
        .expect("no-op delta");
    println!(
        "  no-op:     {:3} / {} lists re-dispatched ({} µs)",
        noop.lists_redispatched,
        run.pinglists().len(),
        noop.replan_micros
    );
    let up = run
        .apply(&TopologyEvent::LinkUp { link: dead })
        .expect("up delta");
    println!(
        "  link up:   {:3} / {} lists re-dispatched (restored from cache, {} µs)",
        up.lists_redispatched,
        run.pinglists().len(),
        up.replan_micros
    );
    println!("  (boot deployment had {total} lists)");
}

criterion_group!(benches, fattree16, vl2, lists_redispatched);
criterion_main!(benches);
