//! Ingest-plane throughput: path-report entries folded per second into
//! the sharded lock-free [`IngestPlane`], plus a windows/s guard proving
//! the streaming plane did not slow the Fattree(16) scheduler down.
//!
//! * `fattree16/fold_seal_st_{N}entries` — one thread folds eight
//!   consecutive windows of [`BurstLossReports`] (every probe-matrix
//!   path reported once per window, 2% of them lossy) and seals each.
//!   Entries/s = N / median.
//! * `fattree16/fold_seal_mt4_{N}entries` — the same eight windows
//!   folded by four threads concurrently, the distributed controller's
//!   shape: one collector per agent stripe hammering the lanes. The
//!   shard CAS design should hold the per-entry cost near the
//!   single-thread number; a collapse here means false sharing or lane
//!   contention.
//! * `fattree16_windows/pipelined_4w` — the scheduler-throughput
//!   pipelined arm re-measured with ingest wired in. windows/s =
//!   4 / median; `tests/bench_artifacts.rs` guards this against the
//!   committed `BENCH_sched.json` numbers.
//!
//! The per-iteration entry count is encoded in the bench name so the
//! committed `BENCH_ingest.json` is self-describing: the artifact test
//! recomputes entries/s from `{N}entries` and `median_ns` and enforces
//! the ≥ 1M path-reports/s floor.
//!
//! Regenerate the committed snapshot with:
//! `CRITERION_JSON=$PWD/BENCH_ingest.json cargo bench -p detector-bench --bench ingest_throughput`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use detector_core::pmc::PmcConfig;
use detector_core::types::PathId;
use detector_ingest::IngestPlane;
use detector_simnet::{BurstLossReports, Fabric, LossDiscipline};
use detector_system::{Detector, PipelineConfig, Script, SharedTopology, SystemConfig};
use detector_topology::{construct_symmetric, Fattree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const FOLD_THREADS: usize = 4;
/// Windows folded per measured iteration — one per default lane, so an
/// iteration exercises the whole epoch-swap rotation and the fixed
/// thread-spawn cost amortizes over a realistic batch.
const FOLD_WINDOWS: u64 = 8;
const WINDOWS_PER_ITER: u64 = 4;

/// `FOLD_WINDOWS` windows of synthetic reports over the real
/// Fattree(16) probe matrix's path-id space.
fn burst_windows(paths: usize) -> Vec<Vec<Vec<(PathId, u64, u64)>>> {
    let gen = BurstLossReports {
        paths: paths as u32,
        reports_per_window: 64,
        probes_per_path: 30,
        lossy_fraction: 0.02,
        burst_windows: 8,
        seed: 0x16E57,
    };
    (0..FOLD_WINDOWS).map(|w| gen.window_reports(w)).collect()
}

fn fold_throughput(c: &mut Criterion) {
    let ft = Fattree::new(16).expect("fattree");
    let matrix = construct_symmetric(&ft, &PmcConfig::new(3, 1)).expect("probe matrix");
    let windows = burst_windows(matrix.num_paths());
    let entries: usize = windows.iter().flatten().map(Vec::len).sum();
    let expect_reports = windows[0].len() as u64;

    let mut g = c.benchmark_group("ingest_throughput/fattree16");
    g.sample_size(10);

    let plane = IngestPlane::for_paths(matrix.num_paths());
    g.bench_function(format!("fold_seal_st_{entries}entries"), |b| {
        let mut base = 0u64;
        b.iter(|| {
            for (w, reports) in windows.iter().enumerate() {
                for r in reports {
                    plane.fold(base + w as u64, r.iter().copied());
                }
            }
            let mut total = 0;
            for w in 0..FOLD_WINDOWS {
                let sealed = plane.seal(base + w);
                assert_eq!(sealed.reports, expect_reports);
                total += sealed.observations.len();
            }
            base += FOLD_WINDOWS;
            total
        })
    });

    let plane = Arc::new(IngestPlane::for_paths(matrix.num_paths()));
    let stripe = windows[0].len().div_ceil(FOLD_THREADS);
    g.bench_function(
        format!("fold_seal_mt{FOLD_THREADS}_{entries}entries"),
        |b| {
            let mut base = 0u64;
            b.iter(|| {
                // Each thread owns a report stripe across all windows — the
                // distributed controller's shape, where a collector drains
                // its agents' reports window after window.
                std::thread::scope(|s| {
                    for t in 0..FOLD_THREADS {
                        let plane = Arc::clone(&plane);
                        let windows = &windows;
                        s.spawn(move || {
                            for (w, reports) in windows.iter().enumerate() {
                                for r in reports.iter().skip(t * stripe).take(stripe) {
                                    plane.fold(base + w as u64, r.iter().copied());
                                }
                            }
                        });
                    }
                });
                let mut total = 0;
                for w in 0..FOLD_WINDOWS {
                    let sealed = plane.seal(base + w);
                    assert_eq!(sealed.reports, expect_reports);
                    total += sealed.observations.len();
                }
                base += FOLD_WINDOWS;
                total
            })
        },
    );
    g.finish();
}

/// The scheduler guard: identical setup to `scheduler_throughput`'s
/// `fattree16_cpu/pipelined` arm, re-measured with the ingest plane in
/// the window loop.
fn windows_guard(c: &mut Criterion) {
    let ft = Arc::new(Fattree::new(16).expect("fattree"));
    let mut fabric = Fabric::new(ft.as_ref(), 7);
    fabric.set_discipline_both(
        ft.ac_link(3, 1, 2),
        LossDiscipline::RandomPartial { rate: 0.3 },
    );
    let cfg = SystemConfig {
        cycle_s: u64::MAX,
        ..SystemConfig::default().with_rate(10.0)
    };
    let pipeline = PipelineConfig {
        probe_workers: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(2, 8),
        depth: 4,
    };

    let mut g = c.benchmark_group("ingest_throughput/fattree16_windows");
    g.sample_size(10);
    let mut det = Detector::new(ft.clone() as SharedTopology, cfg).expect("boot");
    let mut rng = SmallRng::seed_from_u64(1);
    let script = Script::new();
    g.bench_function("pipelined_4w", |b| {
        b.iter(|| {
            det.run_pipelined(&fabric, WINDOWS_PER_ITER, &script, &pipeline, &mut rng)
                .expect("pipelined campaign")
        })
    });
    g.finish();
}

criterion_group!(benches, fold_throughput, windows_guard);
criterion_main!(benches);
