//! Probe RTT and UDP campaign throughput over the loopback harness.
//!
//! Two groups:
//!
//! * `probe_rtt/loopback` — one full probe round trip: encode → socket →
//!   responder thread → echo → seq match → stamp. The per-probe price of
//!   real packets, directly comparable to the ~20 µs wire-latency shim
//!   the `scheduler_throughput` wire arm charges.
//! * `probe_rtt/fattree16_udp` — the `scheduler_throughput/
//!   fattree16_wire` campaign with the shim replaced by the real thing:
//!   Fattree(16), 1 pps, 4-window campaigns, sequential vs pipelined
//!   (4 probe workers, depth 4). The committed snapshot
//!   (`BENCH_udp.json`) must keep pipelined windows/s within 2× of the
//!   committed wire-arm baseline in `BENCH_sched.json` — enforced by
//!   `tests/bench_artifacts.rs`.
//!
//! Run with:
//! `CRITERION_JSON=$PWD/BENCH_udp.json cargo bench -p detector-bench --bench probe_rtt`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use detector_simnet::FlowKey;
use detector_system::{
    DataPlane, Detector, HostClock, PipelineConfig, ProbeClock, ProbeTag, Script, SharedTopology,
    SystemConfig, UdpConfig, UdpHarness,
};
use detector_topology::{DcnTopology, Fattree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const WINDOWS_PER_ITER: u64 = 4;

/// The wire-arm config: probe rate 1 pps, cycle refresh out of reach.
fn config() -> SystemConfig {
    SystemConfig {
        cycle_s: u64::MAX,
        ..SystemConfig::default().with_rate(1.0)
    }
}

fn single_probe(c: &mut Criterion) {
    let ft = Fattree::new(4).expect("fattree");
    let clock: Arc<dyn ProbeClock> = Arc::new(HostClock::new());
    let harness = UdpHarness::spawn(1, 53_533, clock).expect("harness");
    let plane = harness
        .dataplane(&UdpConfig::default(), None)
        .expect("udp plane");
    let route = ft.ecmp_route(ft.server(0, 0, 0), ft.server(1, 0, 0), 0);
    let flow = FlowKey::udp(1, 2, 33_000, 53_533);
    let mut rng = SmallRng::seed_from_u64(1);
    let tag = ProbeTag {
        window: 0,
        path_id: 7,
        waypoint: 3,
    };

    let mut g = c.benchmark_group("probe_rtt/loopback");
    g.bench_function("single_probe", |b| {
        b.iter(|| {
            let out = plane.probe_tagged(tag, &route, flow, &mut rng);
            assert!(out.delivered, "loopback echo lost");
            out.rtt_us
        })
    });
    g.finish();
}

fn udp_campaign(c: &mut Criterion) {
    let ft = Arc::new(Fattree::new(16).expect("fattree"));
    let cfg = config();
    let clock: Arc<dyn ProbeClock> = Arc::new(HostClock::new());
    let harness = UdpHarness::spawn(4, cfg.dport, clock).expect("harness");
    let plane = harness
        .dataplane(&UdpConfig::default(), None)
        .expect("udp plane");
    let pipeline = PipelineConfig {
        probe_workers: 4,
        depth: 4,
    };

    let mut g = c.benchmark_group("probe_rtt/fattree16_udp");
    g.sample_size(10);

    // Same steady-state shape as scheduler_throughput: one detector per
    // arm, cycle refresh disabled, every window identical work.
    let mut seq = Detector::new(ft.clone() as SharedTopology, cfg.clone()).expect("boot");
    let mut rng = SmallRng::seed_from_u64(1);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            for _ in 0..WINDOWS_PER_ITER {
                seq.step(&plane, &mut rng);
            }
        })
    });

    let mut pipe = Detector::new(ft.clone() as SharedTopology, cfg.clone()).expect("boot");
    let mut rng = SmallRng::seed_from_u64(1);
    let script = Script::new();
    g.bench_function("pipelined", |b| {
        b.iter(|| {
            pipe.run_pipelined(&plane, WINDOWS_PER_ITER, &script, &pipeline, &mut rng)
                .expect("pipelined campaign")
        })
    });
    g.finish();
}

criterion_group!(benches, single_probe, udp_campaign);
criterion_main!(benches);
