//! Component-parallel diagnosis: per-window PLL on Fattree(16) with
//! multiple simultaneous failures, sequential `localize` vs the
//! component-decomposed fan-out (`ComponentPll`) at 4 workers.
//!
//! The scenario plants one full-loss edge–agg link in each of several
//! pods. Full loss turns every observed path through a planted link
//! lossy, so each pod contributes a heavy island to the lossy-path/link
//! incidence and the window decomposes into independent components —
//! the structure `parallel_components` exploits. Two loss variants
//! alternate between iterations so the parallel arm's per-window verdict
//! cache never short-circuits an identical window; its per-epoch
//! skeleton cache stays warm across iterations, exactly as in a real
//! campaign (the matrix does not change between windows).
//!
//! Arms:
//!
//! * `sequential` — plain `localize`, the diagnoser's
//!   `parallel_components = 1` path;
//! * `parallel_1w` — the component decomposition on one worker
//!   (attribution: decomposition + skeleton cache without threads);
//! * `parallel_4w` — the same fan-out on a 4-worker pool, the number
//!   `BENCH_diag.json` pins (≥1.5× over `sequential`, checked by
//!   `tests/bench_artifacts.rs`).
//!
//! A second group runs a whole 4-window pipelined campaign with
//! `parallel_components = 4` switched on — the windows/s guard: wiring
//! the fan-out through the scheduler's worker channel must not slow the
//! end-to-end window loop by more than 10% against the committed
//! `BENCH_sched.json` baseline.
//!
//! Regenerate with:
//! `CRITERION_JSON=$PWD/BENCH_diag.json cargo bench -p detector-bench --bench diag_parallel`

use std::collections::HashSet;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use detector_core::pll::{localize, ComponentPll, PllConfig};
use detector_core::pmc::ProbeMatrix;
use detector_core::types::{LinkId, PathObservation};
use detector_simnet::{Fabric, LossDiscipline};
use detector_system::{Controller, Detector, PipelineConfig, Script, SharedTopology, SystemConfig};
use detector_topology::Fattree;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One full-loss window: every path through a planted link drops all of
/// its probes, everything else is clean.
fn window(matrix: &ProbeMatrix, planted: &[LinkId]) -> Vec<PathObservation> {
    let bad: HashSet<LinkId> = planted.iter().copied().collect();
    matrix
        .paths
        .iter()
        .map(|p| {
            let lost = if p.links().iter().any(|l| bad.contains(l)) {
                300
            } else {
                0
            };
            PathObservation::new(p.id, 300, lost)
        })
        .collect()
}

fn multifail(c: &mut Criterion) {
    let ft = Arc::new(Fattree::new(16).expect("fattree"));
    let ctl_cfg = SystemConfig::default();
    let mut ctl = Controller::new(ft.clone() as SharedTopology, ctl_cfg);
    let matrix = ctl
        .build_deployment(&HashSet::new())
        .expect("deployment")
        .matrix;

    // Four failed edge–agg links in each of the sixteen pods — the
    // paper's gray-failure storm, the worst case for the global greedy
    // (every selection rescans every candidate of every island). The B
    // variant moves one failure so consecutive windows differ
    // (defeating the identical-window verdict cache) while the matrix —
    // and so the cached skeleton — stays put.
    let planted_a: Vec<LinkId> = (0..16)
        .flat_map(|p| {
            [
                ft.ea_link(p, p % 8, (p + 1) % 8),
                ft.ea_link(p, (p + 3) % 8, (p + 5) % 8),
                ft.ea_link(p, (p + 6) % 8, (p + 2) % 8),
                ft.ea_link(p, (p + 1) % 8, (p + 4) % 8),
            ]
        })
        .collect();
    let mut planted_b = planted_a.clone();
    planted_b[63] = ft.ea_link(9, 1, 6);
    let windows = [window(&matrix, &planted_a), window(&matrix, &planted_b)];
    let cfg = PllConfig::default();

    // Each measured iteration diagnoses both window variants, so every
    // sample covers the same alternating work.
    let mut g = c.benchmark_group("diag_parallel/fattree16_multifail");
    g.sample_size(30);

    g.bench_function("sequential", |b| {
        b.iter(|| {
            for w in &windows {
                localize(&matrix, w, &cfg);
            }
        })
    });

    for workers in [1usize, 4] {
        let mut cpll = ComponentPll::new();
        g.bench_function(format!("parallel_{workers}w"), |b| {
            b.iter(|| {
                for w in &windows {
                    cpll.localize(&matrix, w, &cfg, workers);
                }
            })
        });
    }
    g.finish();
}

fn windows_guard(c: &mut Criterion) {
    let ft = Arc::new(Fattree::new(16).expect("fattree"));
    let mut fabric = Fabric::new(ft.as_ref(), 7);
    fabric.set_discipline_both(
        ft.ac_link(3, 1, 2),
        LossDiscipline::RandomPartial { rate: 0.3 },
    );
    // The scheduler-throughput scenario with component-parallel
    // diagnosis switched on: comparable window for window with
    // `scheduler_throughput/fattree16_cpu/pipelined` in BENCH_sched.json.
    let cfg = SystemConfig {
        cycle_s: u64::MAX,
        ..SystemConfig::default().with_rate(10.0)
    }
    .with_parallel_diagnosis(4);
    let pipeline = PipelineConfig {
        probe_workers: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(2, 8),
        depth: 4,
    };

    let mut g = c.benchmark_group("diag_parallel/fattree16_windows");
    g.sample_size(10);
    let mut run = Detector::new(ft.clone() as SharedTopology, cfg).expect("boot");
    let mut rng = SmallRng::seed_from_u64(1);
    let script = Script::new();
    g.bench_function("pipelined_diag4", |b| {
        b.iter(|| {
            run.run_pipelined(&fabric, 4, &script, &pipeline, &mut rng)
                .expect("pipelined campaign")
        })
    });
    g.finish();
}

criterion_group!(benches, multifail, windows_guard);
criterion_main!(benches);
