//! Criterion micro-benchmarks for the localization algorithms: same
//! matrix, same observations, PLL vs Tomo vs SCORE vs OMP (the §5.3
//! runtime comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use detector_bench::probe_matrix_window;
use detector_core::pll::{localize, localize_omp, localize_score, localize_tomo, OmpConfig};
use detector_core::pmc::PmcConfig;
use detector_simnet::{Fabric, FailureGenerator};
use detector_topology::{construct_symmetric, Fattree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_pll(c: &mut Criterion) {
    let ft = Fattree::new(18).unwrap();
    let matrix = construct_symmetric(&ft, &PmcConfig::identifiable(2)).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xBE7C);
    let gen = FailureGenerator::links_only().with_min_rate(0.05);
    let scenario = gen.sample(&ft, 10, &mut rng);
    let mut fabric = Fabric::new(&ft, 1);
    fabric.apply_scenario(&scenario);
    let obs = probe_matrix_window(&ft, &matrix, &fabric, 30, &mut rng);
    let cfg = detector_bench::bench_pll();
    let omp = OmpConfig::default();

    let mut g = c.benchmark_group("localization_fattree18_10failures");
    g.sample_size(20);
    g.bench_function("pll", |b| b.iter(|| localize(&matrix, &obs, &cfg)));
    g.bench_function("tomo", |b| b.iter(|| localize_tomo(&matrix, &obs, &cfg)));
    g.bench_function("score", |b| b.iter(|| localize_score(&matrix, &obs, &cfg)));
    g.bench_function("omp", |b| {
        b.iter(|| localize_omp(&matrix, &obs, &cfg, &omp))
    });
    g.finish();
}

criterion_group!(benches, bench_pll);
criterion_main!(benches);
