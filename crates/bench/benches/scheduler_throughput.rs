//! Scheduler throughput: sequential `step()` vs `run_pipelined` on
//! Fattree(16), in windows per second.
//!
//! Two data planes:
//!
//! * `cpu/*` — the raw simulated fabric: probing is pure CPU. Here the
//!   pipeline's win comes from fanning probe batches across cores, so
//!   the speedup tracks `available_parallelism` (on a single-core host
//!   the pipeline only pays its channel/thread overhead).
//! * `wire/*` — the fabric behind a wire-latency shim that makes every
//!   probe *wait* ~20 µs for its echo, the way a real pinger waits on
//!   the network (a DC RTT is ~100 µs; the shim scales it down to keep
//!   the bench short). Waiting is not CPU: pipelined probe workers
//!   overlap their waits even on one core, which is precisely the
//!   production argument for the pipelined scheduler.
//!
//! Each measured iteration runs a 4-window campaign; windows/s =
//! 4 / median. Compare `sequential` vs `pipelined` within each group.
//!
//! Run with: `cargo bench --bench scheduler_throughput`

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use detector_simnet::{Fabric, FlowKey, LossDiscipline};
use detector_system::{
    DataPlane, Detector, PipelineConfig, ProbeOutcome, Script, SharedTopology, SystemConfig,
};
use detector_topology::{Fattree, Route};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const WINDOWS_PER_ITER: u64 = 4;

/// A data plane that charges every probe its round-trip wire time: the
/// pinger blocks on the echo, the CPU does not.
struct WirePlane<'a> {
    fabric: &'a Fabric<'a>,
    rtt: Duration,
}

impl DataPlane for WirePlane<'_> {
    fn probe(&self, route: &Route, flow: FlowKey, rng: &mut SmallRng) -> ProbeOutcome {
        let rt = self.fabric.round_trip(route, flow, rng);
        std::thread::sleep(self.rtt);
        ProbeOutcome {
            delivered: rt.success,
            rtt_us: rt.rtt_us,
        }
    }
}

/// Probe-rate-scaled config with the cycle refresh pushed out of reach,
/// so every measured window does the same work.
fn config(rate_pps: f64) -> SystemConfig {
    SystemConfig {
        cycle_s: u64::MAX,
        ..SystemConfig::default().with_rate(rate_pps)
    }
}

fn bench_pair(
    c: &mut Criterion,
    group: &str,
    ft: &Arc<Fattree>,
    cfg: &SystemConfig,
    dataplane: &(dyn DataPlane + Sync),
    pipeline: &PipelineConfig,
) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);

    // Detectors are stateful across iterations (windows keep counting);
    // with the cycle refresh disabled every window is identical work, so
    // re-using one detector per arm measures steady-state throughput
    // without re-paying the PMC build.
    let mut seq = Detector::new(ft.clone() as SharedTopology, cfg.clone()).expect("boot");
    let mut rng = SmallRng::seed_from_u64(1);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            for _ in 0..WINDOWS_PER_ITER {
                seq.step(dataplane, &mut rng);
            }
        })
    });

    let mut pipe = Detector::new(ft.clone() as SharedTopology, cfg.clone()).expect("boot");
    let mut rng = SmallRng::seed_from_u64(1);
    let script = Script::new();
    g.bench_function("pipelined", |b| {
        b.iter(|| {
            pipe.run_pipelined(dataplane, WINDOWS_PER_ITER, &script, pipeline, &mut rng)
                .expect("pipelined campaign")
        })
    });
    g.finish();
}

fn cpu_bound(c: &mut Criterion) {
    let ft = Arc::new(Fattree::new(16).expect("fattree"));
    let mut fabric = Fabric::new(ft.as_ref(), 7);
    fabric.set_discipline_both(
        ft.ac_link(3, 1, 2),
        LossDiscipline::RandomPartial { rate: 0.3 },
    );
    let cfg = config(10.0);
    let pipeline = PipelineConfig {
        probe_workers: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(2, 8),
        depth: 4,
    };
    bench_pair(
        c,
        "scheduler_throughput/fattree16_cpu",
        &ft,
        &cfg,
        &fabric,
        &pipeline,
    );
}

fn wire_bound(c: &mut Criterion) {
    let ft = Arc::new(Fattree::new(16).expect("fattree"));
    let mut fabric = Fabric::new(ft.as_ref(), 7);
    fabric.set_discipline_both(
        ft.ac_link(3, 1, 2),
        LossDiscipline::RandomPartial { rate: 0.3 },
    );
    let wire = WirePlane {
        fabric: &fabric,
        rtt: Duration::from_micros(20),
    };
    // Low probe rate keeps the wire arm short (the wait dominates).
    let cfg = config(1.0);
    let pipeline = PipelineConfig {
        probe_workers: 4,
        depth: 4,
    };
    bench_pair(
        c,
        "scheduler_throughput/fattree16_wire",
        &ft,
        &cfg,
        &wire,
        &pipeline,
    );
}

criterion_group!(benches, cpu_bound, wire_bound);
criterion_main!(benches);
