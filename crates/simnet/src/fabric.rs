//! The simulated fabric: loss disciplines per link direction, dead
//! switches, background noise, and probe forwarding.

use std::collections::{HashMap, HashSet};

use detector_core::types::{LinkId, NodeId};
use detector_topology::{DcnTopology, Route};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::failures::{FailureKind, FailureScenario, FailureTarget};
use crate::flow::FlowKey;
use crate::rtt::RttModel;
use crate::LossDiscipline;

/// Traversal direction of an undirected link, relative to its endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// From `link.a` towards `link.b`.
    AtoB,
    /// From `link.b` towards `link.a`.
    BtoA,
}

/// Result of a one-way packet transmission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeOutcome {
    /// Did the packet reach the destination?
    pub delivered: bool,
    /// The link where it was dropped, if it was.
    pub dropped_link: Option<LinkId>,
    /// Accumulated one-way latency up to delivery or drop, microseconds.
    pub latency_us: f64,
}

/// Result of a request/response exchange.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundTrip {
    /// Did the response arrive?
    pub success: bool,
    /// Round-trip time, microseconds (meaningless unless `success`).
    pub rtt_us: f64,
    /// Where the exchange died, if it did.
    pub dropped_link: Option<LinkId>,
}

/// The simulated data-center fabric.
///
/// Holds the topology behind a `Sync` bound so a fabric can be shared
/// across concurrent probe stages (`Fabric: Sync`, and probing via
/// [`Fabric::send`] / [`Fabric::round_trip`] takes `&self`); every
/// concrete topology in `detector-topology` is plain data and satisfies
/// the bound. Mutation (disciplines, dead switches, utilization) still
/// requires `&mut self` — wrap the fabric in a lock to churn it mid-run.
pub struct Fabric<'a> {
    topo: &'a (dyn DcnTopology + Sync),
    disciplines: HashMap<(LinkId, LinkDir), LossDiscipline>,
    dead_switches: HashSet<NodeId>,
    /// Background loss rate per link (the normal 1e-4..1e-5 of §5.1).
    noise: Vec<f64>,
    /// Offered utilization per link (drives queueing latency).
    utilization: Vec<f64>,
    /// Latency model.
    pub rtt_model: RttModel,
}

impl<'a> Fabric<'a> {
    /// A fabric with background noise sampled per link from `seed`
    /// (log-uniform in [1e-5, 1e-4]).
    pub fn new(topo: &'a (dyn DcnTopology + Sync), seed: u64) -> Self {
        let n = topo.graph().num_links();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_ba5e);
        let noise = (0..n)
            .map(|_| {
                let exp = rng.gen_range(-5.0..-4.0f64);
                10f64.powf(exp)
            })
            .collect();
        Self {
            topo,
            disciplines: HashMap::new(),
            dead_switches: HashSet::new(),
            noise,
            utilization: vec![0.0; n],
            rtt_model: RttModel::default(),
        }
    }

    /// A fabric with zero background noise (for exact-loss tests).
    pub fn quiet(topo: &'a (dyn DcnTopology + Sync)) -> Self {
        let n = topo.graph().num_links();
        Self {
            topo,
            disciplines: HashMap::new(),
            dead_switches: HashSet::new(),
            noise: vec![0.0; n],
            utilization: vec![0.0; n],
            rtt_model: RttModel::default(),
        }
    }

    /// The topology this fabric simulates.
    pub fn topology(&self) -> &'a (dyn DcnTopology + Sync) {
        self.topo
    }

    /// Sets the loss discipline of one direction of a link.
    pub fn set_discipline(&mut self, link: LinkId, dir: LinkDir, disc: LossDiscipline) {
        if matches!(disc, LossDiscipline::Healthy) {
            self.disciplines.remove(&(link, dir));
        } else {
            self.disciplines.insert((link, dir), disc);
        }
    }

    /// Sets the loss discipline of both directions of a link.
    pub fn set_discipline_both(&mut self, link: LinkId, disc: LossDiscipline) {
        self.set_discipline(link, LinkDir::AtoB, disc);
        self.set_discipline(link, LinkDir::BtoA, disc);
    }

    /// Marks a switch as dead: every packet traversing it is dropped.
    pub fn kill_switch(&mut self, node: NodeId) {
        self.dead_switches.insert(node);
    }

    /// Brings a dead/drained switch back: packets traverse it again
    /// (the recovery half of a drain/undrain churn cycle).
    pub fn revive_switch(&mut self, node: NodeId) {
        self.dead_switches.remove(&node);
    }

    /// Removes all injected failures (noise remains).
    pub fn clear_failures(&mut self) {
        self.disciplines.clear();
        self.dead_switches.clear();
    }

    /// Applies a failure scenario.
    pub fn apply_scenario(&mut self, scenario: &FailureScenario) {
        for f in &scenario.failures {
            let disc = match f.kind {
                FailureKind::Full => LossDiscipline::Full,
                FailureKind::DeterministicPartial { fraction } => {
                    LossDiscipline::DeterministicPartial {
                        fraction,
                        salt: f.salt,
                    }
                }
                FailureKind::RandomPartial { rate } => LossDiscipline::RandomPartial { rate },
            };
            match f.target {
                FailureTarget::Link(l) => self.set_discipline_both(l, disc),
                FailureTarget::Switch(s) => self.kill_switch(s),
            }
        }
    }

    /// Overrides the per-link utilization (from a workload).
    pub fn set_utilization(&mut self, util: Vec<f64>) {
        assert_eq!(util.len(), self.utilization.len());
        self.utilization = util;
    }

    /// Background loss rate of a link.
    pub fn noise_rate(&self, link: LinkId) -> f64 {
        self.noise[link.index()]
    }

    fn direction(&self, link: LinkId, from: NodeId) -> LinkDir {
        let l = self.topo.graph().link(link);
        if l.a == from {
            LinkDir::AtoB
        } else {
            debug_assert_eq!(l.b, from, "node {from} is not an endpoint of {link}");
            LinkDir::BtoA
        }
    }

    /// Sends one packet along `route`; applies dead switches, per-link
    /// disciplines and background noise hop by hop.
    pub fn send(&self, route: &Route, flow: FlowKey, rng: &mut SmallRng) -> ProbeOutcome {
        let mut latency = 0.0;
        for (i, &link) in route.links.iter().enumerate() {
            let from = route.nodes[i];
            let to = route.nodes[i + 1];
            // A dead switch silently eats everything it would forward.
            if self.dead_switches.contains(&from) || self.dead_switches.contains(&to) {
                return ProbeOutcome {
                    delivered: false,
                    dropped_link: Some(link),
                    latency_us: latency,
                };
            }
            let dir = self.direction(link, from);
            if let Some(d) = self.disciplines.get(&(link, dir)) {
                let draw = rng.gen::<f64>();
                if d.drops(flow, draw) {
                    return ProbeOutcome {
                        delivered: false,
                        dropped_link: Some(link),
                        latency_us: latency,
                    };
                }
            }
            let noise = self.noise[link.index()];
            if noise > 0.0 && rng.gen::<f64>() < noise {
                return ProbeOutcome {
                    delivered: false,
                    dropped_link: Some(link),
                    latency_us: latency,
                };
            }
            latency += self
                .rtt_model
                .hop_latency_us(self.utilization[link.index()], rng);
        }
        ProbeOutcome {
            delivered: true,
            dropped_link: None,
            latency_us: latency,
        }
    }

    /// Request along `route`, response along the same route reversed
    /// (deTector's source-routed echo, §3.2).
    pub fn round_trip(&self, route: &Route, flow: FlowKey, rng: &mut SmallRng) -> RoundTrip {
        let back = Route {
            nodes: route.nodes.iter().rev().copied().collect(),
            links: route.links.iter().rev().copied().collect(),
        };
        self.round_trip_via(route, &back, flow, rng)
    }

    /// Request along `fwd`, response along `rev` (baseline probes, whose
    /// reply takes its own ECMP path).
    pub fn round_trip_via(
        &self,
        fwd: &Route,
        rev: &Route,
        flow: FlowKey,
        rng: &mut SmallRng,
    ) -> RoundTrip {
        let out = self.send(fwd, flow, rng);
        if !out.delivered {
            return RoundTrip {
                success: false,
                rtt_us: 0.0,
                dropped_link: out.dropped_link,
            };
        }
        let back = self.send(rev, flow.reversed(), rng);
        if !back.delivered {
            return RoundTrip {
                success: false,
                rtt_us: 0.0,
                dropped_link: back.dropped_link,
            };
        }
        RoundTrip {
            success: true,
            rtt_us: out.latency_us + back.latency_us,
            dropped_link: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_topology::Fattree;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn healthy_quiet_fabric_delivers() {
        let ft = Fattree::new(4).unwrap();
        let fabric = Fabric::quiet(&ft);
        let route = ft.ecmp_route(ft.server(0, 0, 0), ft.server(3, 1, 1), 5);
        let mut r = rng();
        for _ in 0..100 {
            let out = fabric.send(&route, FlowKey::udp(0, 15, 100, 200), &mut r);
            assert!(out.delivered);
            assert!(out.latency_us > 0.0);
        }
    }

    #[test]
    fn full_loss_kills_the_affected_direction_only() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ea_link(0, 0, 0);
        // The link goes edge(0,0) -> agg(0,0): edge is `a`.
        fabric.set_discipline(bad, LinkDir::AtoB, LossDiscipline::Full);

        // A route that climbs through agg(0,0) from edge(0,0) dies...
        let up = ft.ecmp_route(ft.server(0, 0, 0), ft.server(1, 0, 0), 0);
        assert!(up.links.contains(&bad));
        let mut r = rng();
        let out = fabric.send(&up, FlowKey::udp(0, 4, 1, 2), &mut r);
        assert!(!out.delivered);
        assert_eq!(out.dropped_link, Some(bad));

        // ...but the reverse direction still works.
        let down = Route {
            nodes: up.nodes.iter().rev().copied().collect(),
            links: up.links.iter().rev().copied().collect(),
        };
        let out = fabric.send(&down, FlowKey::udp(4, 0, 2, 1), &mut r);
        assert!(out.delivered);
    }

    #[test]
    fn dead_switch_drops_traversals() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        fabric.kill_switch(ft.agg(0, 0));
        let mut r = rng();
        let mut failures = 0;
        let mut successes = 0;
        for h in 0..16u64 {
            let route = ft.ecmp_route(ft.server(0, 0, 0), ft.server(2, 0, 0), h);
            let out = fabric.send(&route, FlowKey::udp(0, 8, h as u16, 9), &mut r);
            if out.delivered {
                successes += 1;
            } else {
                failures += 1;
            }
        }
        // Half the ECMP fan-out climbs through agg(0,0).
        assert!(failures > 0);
        assert!(successes > 0);
    }

    #[test]
    fn round_trip_exercises_reverse_direction() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ea_link(1, 0, 0);
        // Fail only edge(1,0) -> agg(1,0): the direction only the *reply*
        // traverses. The request gets through; the echo dies, and the
        // round trip still catches the failure (§4.1's bidirectional-link
        // argument).
        fabric.set_discipline(bad, LinkDir::AtoB, LossDiscipline::Full);
        let route = ft.ecmp_route(ft.server(0, 0, 0), ft.server(1, 0, 0), 0);
        assert!(route.links.contains(&bad));
        let mut r = rng();
        let rt = fabric.round_trip(&route, FlowKey::udp(0, 4, 7, 8), &mut r);
        // One of the two directions must be hit.
        assert!(!rt.success);
        assert_eq!(rt.dropped_link, Some(bad));
    }

    #[test]
    fn noise_rate_is_in_documented_band() {
        let ft = Fattree::new(4).unwrap();
        let fabric = Fabric::new(&ft, 9);
        for l in 0..ft.graph().num_links() {
            let n = fabric.noise_rate(LinkId(l as u32));
            assert!((1e-5..=1e-4).contains(&n), "noise {n}");
        }
    }

    #[test]
    fn same_seed_same_outcomes() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::new(&ft, 3);
        fabric.set_discipline_both(
            ft.ac_link(0, 0, 0),
            LossDiscipline::RandomPartial { rate: 0.5 },
        );
        let route = ft.ecmp_route(ft.server(0, 0, 0), ft.server(2, 0, 0), 0);
        let run = |seed: u64| -> Vec<bool> {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..64)
                .map(|i| {
                    fabric
                        .send(&route, FlowKey::udp(0, 8, i, 9), &mut r)
                        .delivered
                })
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
