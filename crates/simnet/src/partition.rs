//! Fabric partitioning for the distributed control plane: deterministic,
//! ToR-contiguous host groups.
//!
//! The agent tier (`detector-agent`) runs one pinger agent per *host
//! group*; each agent owns the [`PingerBatch`]es of every server in its
//! group. Groups are built ToR-by-ToR — a rack's servers always share an
//! agent — so an agent failure maps onto whole racks going dark, which is
//! both the realistic blast radius (the agent daemon runs on rack-local
//! infrastructure) and what keeps the controller's degraded-mode
//! bookkeeping simple: a dead agent is exactly a set of unhealthy racks.
//!
//! [`PingerBatch`]: https://docs.rs/detector-system

use std::collections::HashMap;

use detector_core::types::NodeId;
use detector_topology::Dcn;

/// A deterministic partition of a fabric's servers into ToR-contiguous
/// groups, one per agent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostGroups {
    groups: Vec<Vec<NodeId>>,
    owner: HashMap<NodeId, usize>,
}

/// Splits the fabric's servers into `n` groups without ever splitting a
/// rack: ToRs (sorted by id) are dealt into `n` contiguous runs of
/// near-equal size, and each group owns every server under its ToRs.
///
/// Deterministic by construction — same graph and `n`, same groups — so
/// the controller and a test oracle derive identical ownership without
/// exchanging it. `n` is clamped to at least 1; when `n` exceeds the ToR
/// count the tail groups are empty (their agents simply own nothing).
pub fn partition_hosts(graph: &Dcn, n: usize) -> HostGroups {
    let n = n.max(1);
    let mut tors: Vec<NodeId> = graph
        .nodes()
        .iter()
        .filter(|node| node.kind.is_switch())
        .filter(|node| !graph.servers_under(node.id).is_empty())
        .map(|node| node.id)
        .collect();
    tors.sort_unstable();

    let mut groups: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    let mut owner = HashMap::new();
    let per = tors.len() / n;
    let extra = tors.len() % n;
    let mut next = 0usize;
    for g in 0..n {
        let take = per + usize::from(g < extra);
        let mut servers = Vec::new();
        for &tor in &tors[next..next + take] {
            let mut under = graph.servers_under(tor);
            under.sort_unstable();
            for s in under {
                // Multi-homed servers (BCube hangs each server off one
                // switch per level) belong to their lowest-id switch.
                if let std::collections::hash_map::Entry::Vacant(e) = owner.entry(s) {
                    e.insert(g);
                    servers.push(s);
                }
            }
        }
        next += take;
        groups.push(servers);
    }
    HostGroups { groups, owner }
}

impl HostGroups {
    /// Number of groups (= agents), including empty tail groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when there are no groups (never produced by
    /// [`partition_hosts`], which clamps `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The servers of group `g`, sorted ascending.
    pub fn group(&self, g: usize) -> &[NodeId] {
        &self.groups[g]
    }

    /// The group owning `server`, if it is a known server.
    pub fn owner_of(&self, server: NodeId) -> Option<usize> {
        self.owner.get(&server).copied()
    }

    /// Iterates the groups in order.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.groups.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_topology::{BCube, DcnTopology, Fattree};

    #[test]
    fn groups_are_disjoint_and_total() {
        let ft = Fattree::new(8).unwrap();
        let hg = partition_hosts(ft.graph(), 4);
        assert_eq!(hg.len(), 4);
        let mut seen = std::collections::HashSet::new();
        let mut total = 0;
        for g in hg.iter() {
            for &s in g {
                assert!(seen.insert(s), "server {s:?} in two groups");
                total += 1;
            }
        }
        // k = 8 Fattree: k³/4 = 128 servers, all owned.
        assert_eq!(total, 128);
        for (i, g) in hg.iter().enumerate() {
            for &s in g {
                assert_eq!(hg.owner_of(s), Some(i));
            }
        }
    }

    #[test]
    fn racks_are_never_split() {
        let ft = Fattree::new(8).unwrap();
        let hg = partition_hosts(ft.graph(), 7); // Uneven on purpose.
        for g in 0..hg.len() {
            for &s in hg.group(g) {
                let tor = ft.graph().switch_of(s).unwrap();
                for peer in ft.graph().servers_under(tor) {
                    assert_eq!(
                        hg.owner_of(peer),
                        Some(g),
                        "rack of {tor:?} split across groups"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_is_deterministic_and_clamped() {
        let ft = Fattree::new(4).unwrap();
        assert_eq!(
            partition_hosts(ft.graph(), 3),
            partition_hosts(ft.graph(), 3)
        );
        // n = 0 clamps to one group owning everything.
        let all = partition_hosts(ft.graph(), 0);
        assert_eq!(all.len(), 1);
        assert_eq!(all.group(0).len(), 16);
        // n beyond the ToR count (8 ToRs at k = 4) leaves empty tails.
        let wide = partition_hosts(ft.graph(), 11);
        assert_eq!(wide.len(), 11);
        assert!(wide.group(10).is_empty());
        assert_eq!(wide.iter().map(<[NodeId]>::len).sum::<usize>(), 16);
    }

    #[test]
    fn server_centric_topologies_group_by_level0_switch() {
        // BCube servers hang off level-0 switches; those act as the
        // "racks" here, so the invariants hold unchanged.
        let bc = BCube::new(4, 1).unwrap();
        let hg = partition_hosts(bc.graph(), 4);
        let total: usize = hg.iter().map(<[NodeId]>::len).sum();
        assert_eq!(total, 16); // 4² servers.
    }
}
