//! Probe packet encoding: IP-in-IP source routing over UDP (§3.2, §6.1).
//!
//! deTector controls the probe path by encapsulating the probe in an outer
//! IP header addressed to the chosen core/intermediate switch, which
//! decapsulates and forwards the inner packet to the true destination. We
//! encode exactly that wire layout (outer IPv4 + inner IPv4 + UDP + probe
//! payload) with the `bytes` crate so the runtime manipulates realistic
//! packets; the simulator itself only needs the parsed form.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::flow::FlowKey;

/// Parsed probe packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbePacket {
    /// Address of the decapsulation point (core switch) — the outer
    /// destination. 0 means no encapsulation (direct probe).
    pub waypoint: u32,
    /// The probe's flow identity (inner header fields).
    pub flow: FlowKey,
    /// Probe sequence number within its path/window.
    pub seq: u32,
    /// Probe-matrix path id the probe exercises.
    pub path_id: u32,
    /// Sender timestamp in microseconds (for RTT measurement; the
    /// responder echoes it back).
    pub timestamp_us: u64,
}

/// Errors from probe decoding and responder-side validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer is shorter than the fixed layout requires.
    Truncated,
    /// A version/protocol field had an unexpected value.
    Malformed,
    /// The payload checksum did not match.
    BadChecksum,
    /// A well-formed probe addressed to a port the receiver does not
    /// serve. On a real socket this is stray traffic, not codec
    /// corruption: responders drop it silently instead of counting it
    /// against the wire format.
    WrongPort,
}

impl core::fmt::Display for PacketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PacketError::Truncated => write!(f, "probe packet truncated"),
            PacketError::Malformed => write!(f, "probe packet malformed"),
            PacketError::BadChecksum => write!(f, "probe payload checksum mismatch"),
            PacketError::WrongPort => write!(f, "well-formed probe to an unserved port"),
        }
    }
}

impl std::error::Error for PacketError {}

const IPV4_HDR: usize = 20;
const UDP_HDR: usize = 8;
const PAYLOAD: usize = 24;
/// Probe packets average 850 bytes on the wire (§6.1); the remainder after
/// headers and payload is padding that raises packet entropy.
pub const PROBE_WIRE_SIZE: usize = 850;

fn put_ipv4(buf: &mut BytesMut, src: u32, dst: u32, proto: u8, dscp: u8, total_len: u16) {
    buf.put_u8(0x45); // Version 4, IHL 5.
    buf.put_u8(dscp << 2);
    buf.put_u16(total_len);
    buf.put_u16(0); // Identification.
    buf.put_u16(0x4000); // Don't fragment.
    buf.put_u8(63); // TTL.
    buf.put_u8(proto);
    buf.put_u16(0); // Header checksum (filled by hardware in practice).
    buf.put_u32(src);
    buf.put_u32(dst);
}

fn payload_checksum(packet: &ProbePacket) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for v in [
        packet.seq,
        packet.path_id,
        packet.timestamp_us as u32,
        (packet.timestamp_us >> 32) as u32,
        packet.flow.src,
        packet.flow.dst,
    ] {
        h ^= v;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encodes a probe as outer-IP(-in-IP) + inner IP + UDP + payload, padded
/// to [`PROBE_WIRE_SIZE`].
pub fn encode_probe(packet: &ProbePacket) -> Bytes {
    let mut buf = BytesMut::with_capacity(PROBE_WIRE_SIZE);
    let inner_len = (IPV4_HDR + UDP_HDR + PAYLOAD) as u16;
    if packet.waypoint != 0 {
        // Outer header: src = real source, dst = waypoint, proto 4
        // (IP-in-IP).
        put_ipv4(
            &mut buf,
            packet.flow.src,
            packet.waypoint,
            4,
            packet.flow.dscp,
            inner_len + IPV4_HDR as u16,
        );
    }
    put_ipv4(
        &mut buf,
        packet.flow.src,
        packet.flow.dst,
        packet.flow.proto,
        packet.flow.dscp,
        inner_len,
    );
    buf.put_u16(packet.flow.sport);
    buf.put_u16(packet.flow.dport);
    buf.put_u16((UDP_HDR + PAYLOAD) as u16);
    buf.put_u16(0); // UDP checksum.
    buf.put_u32(packet.seq);
    buf.put_u32(packet.path_id);
    buf.put_u64(packet.timestamp_us);
    buf.put_u32(payload_checksum(packet));
    buf.put_u32(0xdeec_70f5); // Payload magic.
    while buf.len() < PROBE_WIRE_SIZE {
        buf.put_u8(0xa5);
    }
    buf.freeze()
}

/// Decodes a probe produced by [`encode_probe`].
pub fn decode_probe(mut buf: Bytes) -> Result<ProbePacket, PacketError> {
    if buf.len() < IPV4_HDR {
        return Err(PacketError::Truncated);
    }
    // Peek the first header to see whether it is an encapsulation.
    let vihl = buf[0];
    if vihl != 0x45 {
        return Err(PacketError::Malformed);
    }
    let outer_proto = buf[9];
    let mut waypoint = 0u32;
    if outer_proto == 4 {
        let mut outer = buf.split_to(IPV4_HDR);
        outer.advance(16);
        waypoint = outer.get_u32();
        if buf.len() < IPV4_HDR {
            return Err(PacketError::Truncated);
        }
        if buf[0] != 0x45 {
            return Err(PacketError::Malformed);
        }
    }
    if buf.len() < IPV4_HDR + UDP_HDR + PAYLOAD {
        return Err(PacketError::Truncated);
    }
    let mut inner = buf.split_to(IPV4_HDR);
    inner.advance(1);
    let dscp = inner.get_u8() >> 2;
    inner.advance(6);
    inner.advance(1); // TTL.
    let proto = inner.get_u8();
    inner.advance(2);
    let src = inner.get_u32();
    let dst = inner.get_u32();

    let sport = buf.get_u16();
    let dport = buf.get_u16();
    let _udp_len = buf.get_u16();
    let _udp_csum = buf.get_u16();
    let seq = buf.get_u32();
    let path_id = buf.get_u32();
    let timestamp_us = buf.get_u64();
    let csum = buf.get_u32();

    let packet = ProbePacket {
        waypoint,
        flow: FlowKey {
            src,
            dst,
            sport,
            dport,
            proto,
            dscp,
        },
        seq,
        path_id,
        timestamp_us,
    };
    if payload_checksum(&packet) != csum {
        return Err(PacketError::BadChecksum);
    }
    Ok(packet)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(waypoint: u32) -> ProbePacket {
        ProbePacket {
            waypoint,
            flow: FlowKey {
                src: 11,
                dst: 22,
                sport: 33000,
                dport: 53000,
                proto: 17,
                dscp: 46,
            },
            seq: 77,
            path_id: 1234,
            timestamp_us: 987_654_321,
        }
    }

    #[test]
    fn encode_decode_round_trip_with_encap() {
        let p = sample(99);
        let wire = encode_probe(&p);
        assert_eq!(wire.len(), PROBE_WIRE_SIZE);
        assert_eq!(decode_probe(wire).unwrap(), p);
    }

    #[test]
    fn encode_decode_round_trip_without_encap() {
        let p = sample(0);
        let wire = encode_probe(&p);
        assert_eq!(decode_probe(wire).unwrap(), p);
    }

    #[test]
    fn truncated_is_rejected() {
        let p = sample(5);
        let wire = encode_probe(&p);
        let short = wire.slice(0..30);
        assert_eq!(decode_probe(short), Err(PacketError::Truncated));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let p = sample(5);
        let wire = encode_probe(&p);
        let mut raw = wire.to_vec();
        // Flip a payload byte (the seq field of the inner payload).
        let off = IPV4_HDR * 2 + UDP_HDR;
        raw[off] ^= 0xff;
        assert_eq!(
            decode_probe(Bytes::from(raw)),
            Err(PacketError::BadChecksum)
        );
    }

    #[test]
    fn garbage_is_malformed() {
        let raw = vec![0u8; 100];
        assert_eq!(decode_probe(Bytes::from(raw)), Err(PacketError::Malformed));
    }
}
