//! Synthetic pinger-report streams with bursty loss.
//!
//! The streaming ingest plane is sized for *report* arrival rates, not
//! probe rates, so its benchmarks and soak tests need a generator that
//! produces realistic per-window `(path, sent, lost)` entry streams
//! without simulating any packets. Loss in data centers is bursty — a
//! failing link stays bad for minutes, not one window (§2 of the
//! paper) — which is exactly the regime the top-K pre-filter and the
//! incremental localizer exploit: the lossy set is small and mostly
//! stable between windows. [`BurstLossReports`] reproduces that shape:
//!
//! * a fraction of the path space is lossy at any time, in **bursts**
//!   lasting a configurable number of windows;
//! * which paths burst changes at each burst boundary (deterministic in
//!   the seed), so consecutive windows inside a burst patch cheaply
//!   while boundary windows exercise the re-score path;
//! * everything is a pure function of `(seed, window)` — no RNG state,
//!   no allocation surprises, bit-identical streams for the same
//!   parameters.

use detector_core::types::PathId;

/// Deterministic generator of per-window report entry streams with
/// Gilbert–Elliott-style bursty loss.
#[derive(Clone, Copy, Debug)]
pub struct BurstLossReports {
    /// Size of the path-id space (entries use `PathId(0..paths)`).
    pub paths: u32,
    /// Reports (pingers) per window; the path space is striped across
    /// them so every path appears in exactly one report per window.
    pub reports_per_window: u32,
    /// Probes sent per path per window.
    pub probes_per_path: u64,
    /// Fraction of paths lossy at any time (0..=1).
    pub lossy_fraction: f64,
    /// Windows a burst lasts before the lossy set is redrawn.
    pub burst_windows: u64,
    /// Seeds the burst membership and loss intensities.
    pub seed: u64,
}

impl Default for BurstLossReports {
    fn default() -> Self {
        Self {
            paths: 1024,
            reports_per_window: 16,
            probes_per_path: 30,
            lossy_fraction: 0.02,
            burst_windows: 8,
            seed: 0xB0257,
        }
    }
}

/// SplitMix64: the same cheap avalanche the ingest plane hashes with.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BurstLossReports {
    /// The burst index `window` falls in.
    fn burst_of(&self, window: u64) -> u64 {
        window / self.burst_windows.max(1)
    }

    /// Whether `path` is lossy in `window`, stable across the whole
    /// burst.
    pub fn is_lossy(&self, window: u64, path: PathId) -> bool {
        let h = mix(self.seed ^ mix(self.burst_of(window)) ^ u64::from(path.0));
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.lossy_fraction
    }

    /// The `(path, sent, lost)` entries of one report. Report `r` of a
    /// window carries the paths congruent to `r` modulo
    /// [`reports_per_window`](Self::reports_per_window). A lossy path
    /// loses a burst-stable fraction of its probes (at least one).
    pub fn report_entries(&self, window: u64, report: u32) -> Vec<(PathId, u64, u64)> {
        let stripe = self.reports_per_window.max(1);
        let mut entries = Vec::with_capacity((self.paths / stripe + 1) as usize);
        let mut p = report % stripe;
        while p < self.paths {
            let path = PathId(p);
            let lost = if self.is_lossy(window, path) {
                // Loss intensity is burst-stable too: severity in
                // 1..=probes (a full outage when the draw saturates).
                let h = mix(self.seed ^ mix(self.burst_of(window)).rotate_left(17) ^ u64::from(p));
                1 + h % self.probes_per_path.max(1)
            } else {
                0
            };
            entries.push((path, self.probes_per_path, lost));
            p += stripe;
        }
        entries
    }

    /// All reports of one window, in report order.
    pub fn window_reports(&self, window: u64) -> Vec<Vec<(PathId, u64, u64)>> {
        (0..self.reports_per_window.max(1))
            .map(|r| self.report_entries(window, r))
            .collect()
    }

    /// Number of distinct lossy paths in a window.
    pub fn lossy_paths(&self, window: u64) -> usize {
        (0..self.paths)
            .filter(|&p| self.is_lossy(window, PathId(p)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let g = BurstLossReports::default();
        assert_eq!(g.window_reports(3), g.window_reports(3));
        assert_eq!(g.report_entries(7, 2), g.report_entries(7, 2));
    }

    #[test]
    fn every_path_appears_exactly_once_per_window() {
        let g = BurstLossReports {
            paths: 100,
            reports_per_window: 7,
            ..Default::default()
        };
        let mut seen: Vec<u32> = g
            .window_reports(0)
            .into_iter()
            .flatten()
            .map(|(p, _, _)| p.0)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn loss_is_burst_stable_and_changes_at_boundaries() {
        let g = BurstLossReports {
            paths: 2048,
            lossy_fraction: 0.05,
            burst_windows: 4,
            ..Default::default()
        };
        // Same burst ⇒ identical lossy set.
        let in_burst: Vec<bool> = (0..g.paths).map(|p| g.is_lossy(0, PathId(p))).collect();
        for w in 1..4 {
            let again: Vec<bool> = (0..g.paths).map(|p| g.is_lossy(w, PathId(p))).collect();
            assert_eq!(in_burst, again, "window {w} left its burst");
        }
        // Next burst ⇒ a different set (with overwhelming probability).
        let next: Vec<bool> = (0..g.paths).map(|p| g.is_lossy(4, PathId(p))).collect();
        assert_ne!(in_burst, next, "burst boundary must redraw the set");
    }

    #[test]
    fn lossy_fraction_is_roughly_respected() {
        let g = BurstLossReports {
            paths: 20_000,
            lossy_fraction: 0.1,
            ..Default::default()
        };
        let frac = g.lossy_paths(0) as f64 / f64::from(g.paths);
        assert!((frac - 0.1).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn lossy_entries_lose_at_least_one_probe_and_never_more_than_sent() {
        let g = BurstLossReports {
            paths: 512,
            lossy_fraction: 0.2,
            probes_per_path: 30,
            ..Default::default()
        };
        for (path, sent, lost) in g.window_reports(5).into_iter().flatten() {
            assert_eq!(sent, 30);
            assert!(lost <= sent);
            assert_eq!(lost > 0, g.is_lossy(5, path));
        }
    }
}
