//! Per-hop latency model for RTT/jitter measurements (Fig. 4c/4d).
//!
//! Store-and-forward switching plus an M/M/1-style queueing term that
//! grows with link utilization, plus light exponential jitter. Absolute
//! values are calibrated to commodity 1 GbE data-center gear (~10 µs per
//! hop unloaded, sub-millisecond RTTs end to end).

use rand::Rng;

/// Latency model parameters.
#[derive(Clone, Copy, Debug)]
pub struct RttModel {
    /// Fixed per-hop latency in microseconds (serialization + switching +
    /// propagation).
    pub base_us_per_hop: f64,
    /// Mean queueing delay at full load, microseconds.
    pub queue_us_at_saturation: f64,
    /// Mean of the exponential jitter term, microseconds.
    pub jitter_mean_us: f64,
}

impl Default for RttModel {
    fn default() -> Self {
        Self {
            base_us_per_hop: 10.0,
            queue_us_at_saturation: 400.0,
            jitter_mean_us: 2.0,
        }
    }
}

impl RttModel {
    /// Samples the one-way latency contribution of a hop whose link runs
    /// at `utilization` (0..1).
    pub fn hop_latency_us(&self, utilization: f64, rng: &mut impl Rng) -> f64 {
        let u = utilization.clamp(0.0, 0.95);
        // M/M/1 waiting-time shape: ρ / (1 − ρ), normalized so that the
        // queueing term reaches `queue_us_at_saturation` at ρ = 0.95.
        let queue = self.queue_us_at_saturation * (u / (1.0 - u)) / (0.95 / 0.05);
        let jitter = -self.jitter_mean_us * (1.0f64 - rng.gen::<f64>()).ln();
        self.base_us_per_hop + queue + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn latency_grows_with_utilization() {
        let m = RttModel::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let idle: f64 = (0..1000)
            .map(|_| m.hop_latency_us(0.0, &mut rng))
            .sum::<f64>()
            / 1000.0;
        let busy: f64 = (0..1000)
            .map(|_| m.hop_latency_us(0.9, &mut rng))
            .sum::<f64>()
            / 1000.0;
        assert!(busy > idle * 2.0, "idle {idle}, busy {busy}");
    }

    #[test]
    fn idle_latency_is_near_base() {
        let m = RttModel::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let mean: f64 = (0..2000)
            .map(|_| m.hop_latency_us(0.0, &mut rng))
            .sum::<f64>()
            / 2000.0;
        assert!(
            (mean - m.base_us_per_hop - m.jitter_mean_us).abs() < 1.0,
            "mean {mean}"
        );
    }

    #[test]
    fn utilization_is_clamped() {
        let m = RttModel::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let v = m.hop_latency_us(5.0, &mut rng);
        assert!(v.is_finite());
    }
}
