//! Failure scenario generation (§6.2).
//!
//! Without access to production loss data, the paper synthesizes failures
//! from published measurements: the failure mix and per-tier probabilities
//! follow Gill et al., SIGCOMM'11 \[20\] and the loss-rate distribution
//! follows Benson et al. \[12\] (rates spanning 1e-4 to 1). We encode the
//! same recipe with documented constants:
//!
//! * a failure event targets a switch with probability 0.2, a link
//!   otherwise (device failures are rarer than link failures but heavier);
//! * loss types split 30% full loss / 35% deterministic partial /
//!   35% random partial — each minute of the paper's testbed experiment
//!   picks one of the three at random;
//! * partial loss rates are log-uniform over \[1e-4, 1\], so low-rate
//!   losses (the hard case for Pingmesh/NetNORAD) are well represented.

use detector_core::types::{LinkId, NodeId};
use detector_topology::{pod_switches, DcnTopology, TopologyEvent};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::fabric::Fabric;
use crate::LossDiscipline;

/// What fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureTarget {
    /// A single (probe) link, both directions.
    Link(LinkId),
    /// A whole switch: every packet traversing it is dropped.
    Switch(NodeId),
}

/// How it fails.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FailureKind {
    /// All packets dropped.
    Full,
    /// A `fraction` of the flow space is dropped deterministically.
    DeterministicPartial {
        /// Affected fraction of flows.
        fraction: f64,
    },
    /// Every packet dropped independently at `rate`.
    RandomPartial {
        /// Per-packet drop probability.
        rate: f64,
    },
}

/// One injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InjectedFailure {
    /// What fails.
    pub target: FailureTarget,
    /// How it fails.
    pub kind: FailureKind,
    /// Salt for blackhole flow selection.
    pub salt: u64,
}

/// A set of simultaneous failures plus the derived ground truth.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FailureScenario {
    /// The injected failures.
    pub failures: Vec<InjectedFailure>,
}

impl FailureScenario {
    /// A single full-loss link failure (the simplest scenario).
    pub fn single_link(link: LinkId) -> Self {
        Self {
            failures: vec![InjectedFailure {
                target: FailureTarget::Link(link),
                kind: FailureKind::Full,
                salt: 0,
            }],
        }
    }

    /// The probe links a localization algorithm should blame: failed
    /// links themselves, plus every probe link adjacent to a failed
    /// switch.
    pub fn ground_truth(&self, topo: &dyn DcnTopology) -> Vec<LinkId> {
        let probe_links = topo.probe_links();
        let mut out = Vec::new();
        for f in &self.failures {
            match f.target {
                FailureTarget::Link(l) => {
                    if l.index() < probe_links {
                        out.push(l);
                    }
                }
                FailureTarget::Switch(s) => {
                    for &(_, l) in topo.graph().neighbors(s) {
                        if l.index() < probe_links {
                            out.push(l);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The expected end-to-end drop rate of the worst failure (used by
    /// tests to reason about detectability).
    pub fn max_expected_rate(&self) -> f64 {
        self.failures
            .iter()
            .map(|f| match f.kind {
                FailureKind::Full => 1.0,
                FailureKind::DeterministicPartial { fraction } => fraction,
                FailureKind::RandomPartial { rate } => rate,
            })
            .fold(0.0, f64::max)
    }
}

/// A scheduled mid-run topology change: at the start of `window`, apply
/// `event` to both the simulated fabric and the running detector so drop
/// behaviour and re-planning stay in lockstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Window index before which the event fires.
    pub window: u64,
    /// What changes.
    pub event: TopologyEvent,
}

/// A script of [`TopologyEvent`]s indexed by window — the simnet driver
/// for churn scenarios (drains, repairs, expansions) interacting with
/// incremental re-planning.
///
/// The schedule only *describes* the churn; per window the campaign loop
/// pulls the due events, mirrors each onto the fabric with
/// [`ChurnSchedule::apply_to_fabric`] (a downed link drops every packet,
/// a drained switch eats traversals) and onto the detector with
/// `Detector::apply` (which re-plans incrementally).
///
/// # Examples
///
/// ```
/// use detector_core::types::LinkId;
/// use detector_simnet::ChurnSchedule;
///
/// let churn = ChurnSchedule::drain_recover(LinkId(3), 2, 5);
/// assert_eq!(churn.due(2).count(), 1);
/// assert_eq!(churn.due(3).count(), 0);
/// assert_eq!(churn.due(5).count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event firing before `window` (builder style).
    pub fn at(mut self, window: u64, event: TopologyEvent) -> Self {
        self.events.push(ChurnEvent { window, event });
        self.events.sort_by_key(|e| e.window);
        self
    }

    /// The classic drill: `link` goes down before `down_window` and is
    /// repaired before `up_window`.
    pub fn drain_recover(link: LinkId, down_window: u64, up_window: u64) -> Self {
        Self::new()
            .at(down_window, TopologyEvent::LinkDown { link })
            .at(up_window, TopologyEvent::LinkUp { link })
    }

    /// All scheduled events, in firing order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// The events due at the start of `window`.
    pub fn due(&self, window: u64) -> impl Iterator<Item = &TopologyEvent> {
        self.events
            .iter()
            .filter(move |e| e.window == window)
            .map(|e| &e.event)
    }

    /// Mirrors a topology event onto the simulated fabric: a downed link
    /// drops every packet in both directions, a drained switch eats all
    /// traversals, and the `Up`/`Undrain`/`PodAdded` counterparts restore
    /// forwarding.
    ///
    /// Recovery events model *repair*: `LinkUp` sets the link fully
    /// healthy, and `SwitchUndrain`/`PodAdded` revive dead switches —
    /// clearing whatever failure was previously injected on the same
    /// link or switch (by this schedule or a [`FailureScenario`]). A
    /// scenario where a link must stay faulty through a churn cycle
    /// should re-inject its discipline after the recovery event.
    pub fn apply_to_fabric(fabric: &mut Fabric<'_>, event: &TopologyEvent) {
        match event {
            TopologyEvent::LinkDown { link } => {
                fabric.set_discipline_both(*link, LossDiscipline::Full);
            }
            TopologyEvent::LinkUp { link } => {
                fabric.set_discipline_both(*link, LossDiscipline::Healthy);
            }
            TopologyEvent::SwitchDrain { switch } => fabric.kill_switch(*switch),
            TopologyEvent::SwitchUndrain { switch } => fabric.revive_switch(*switch),
            TopologyEvent::PodDrained { pod } => {
                for s in pod_switches(fabric.topology(), *pod) {
                    fabric.kill_switch(s);
                }
            }
            TopologyEvent::PodAdded { pod } => {
                for s in pod_switches(fabric.topology(), *pod) {
                    fabric.revive_switch(s);
                }
            }
        }
    }
}

/// Randomized failure generator with the documented mix.
#[derive(Clone, Copy, Debug)]
pub struct FailureGenerator {
    /// Probability that a failure event takes out a switch.
    pub switch_fraction: f64,
    /// Probability that a (link) failure is full loss.
    pub full_fraction: f64,
    /// Lower bound of the log-uniform partial loss rate.
    pub min_rate: f64,
    /// Upper bound of the log-uniform partial loss rate.
    pub max_rate: f64,
}

impl Default for FailureGenerator {
    fn default() -> Self {
        Self {
            switch_fraction: 0.2,
            full_fraction: 0.3,
            min_rate: 1e-4,
            max_rate: 1.0,
        }
    }
}

impl FailureGenerator {
    /// A generator that only produces link failures (no switch-down), as
    /// used when comparing localization accuracy per link (Tables 4/5).
    pub fn links_only() -> Self {
        Self {
            switch_fraction: 0.0,
            ..Self::default()
        }
    }

    /// A generator whose partial losses are never below `min_rate` —
    /// useful to separate "detectable" failures from background noise in
    /// controlled tests.
    pub fn with_min_rate(mut self, min_rate: f64) -> Self {
        self.min_rate = min_rate;
        self
    }

    fn sample_rate(&self, rng: &mut SmallRng) -> f64 {
        let lo = self.min_rate.log10();
        let hi = self.max_rate.log10();
        10f64.powf(rng.gen_range(lo..hi))
    }

    fn sample_kind(&self, rng: &mut SmallRng) -> FailureKind {
        let x: f64 = rng.gen();
        if x < self.full_fraction {
            FailureKind::Full
        } else if x < self.full_fraction + (1.0 - self.full_fraction) / 2.0 {
            FailureKind::DeterministicPartial {
                fraction: self.sample_rate(rng).max(1e-3),
            }
        } else {
            FailureKind::RandomPartial {
                rate: self.sample_rate(rng),
            }
        }
    }

    /// Samples `n` simultaneous failures with distinct targets.
    pub fn sample(&self, topo: &dyn DcnTopology, n: usize, rng: &mut SmallRng) -> FailureScenario {
        let probe_links = topo.probe_links() as u32;
        let switches: Vec<NodeId> = topo
            .graph()
            .nodes()
            .iter()
            .filter(|nd| nd.kind.is_switch())
            .map(|nd| nd.id)
            .collect();

        let mut used_links = std::collections::HashSet::new();
        let mut used_switches = std::collections::HashSet::new();
        let mut failures = Vec::with_capacity(n);
        while failures.len() < n {
            let target = if rng.gen::<f64>() < self.switch_fraction {
                let s = switches[rng.gen_range(0..switches.len())];
                if !used_switches.insert(s) {
                    continue;
                }
                FailureTarget::Switch(s)
            } else {
                let l = LinkId(rng.gen_range(0..probe_links));
                if !used_links.insert(l) {
                    continue;
                }
                FailureTarget::Link(l)
            };
            failures.push(InjectedFailure {
                target,
                kind: self.sample_kind(rng),
                salt: rng.gen(),
            });
        }
        FailureScenario { failures }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_topology::Fattree;
    use rand::SeedableRng;

    #[test]
    fn ground_truth_of_link_failure_is_the_link() {
        let ft = Fattree::new(4).unwrap();
        let s = FailureScenario::single_link(ft.ea_link(1, 1, 1));
        assert_eq!(s.ground_truth(&ft), vec![ft.ea_link(1, 1, 1)]);
    }

    #[test]
    fn ground_truth_of_switch_failure_is_its_probe_links() {
        let ft = Fattree::new(4).unwrap();
        let s = FailureScenario {
            failures: vec![InjectedFailure {
                target: FailureTarget::Switch(ft.agg(0, 0)),
                kind: FailureKind::Full,
                salt: 0,
            }],
        };
        let truth = s.ground_truth(&ft);
        // agg(0,0) has 2 edge links + 2 core links in a 4-ary Fattree;
        // all are probe links.
        assert_eq!(truth.len(), 4);
    }

    #[test]
    fn server_links_are_excluded_from_truth() {
        let ft = Fattree::new(4).unwrap();
        let s = FailureScenario {
            failures: vec![InjectedFailure {
                target: FailureTarget::Switch(ft.edge(0, 0)),
                kind: FailureKind::Full,
                salt: 0,
            }],
        };
        // edge(0,0): 2 agg links are probe links; 2 server links are not.
        assert_eq!(s.ground_truth(&ft).len(), 2);
    }

    #[test]
    fn generator_respects_count_and_distinctness() {
        let ft = Fattree::new(6).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let gen = FailureGenerator::default();
        for n in [1usize, 5, 10, 20] {
            let s = gen.sample(&ft, n, &mut rng);
            assert_eq!(s.failures.len(), n);
        }
    }

    #[test]
    fn links_only_generator_never_kills_switches() {
        let ft = Fattree::new(4).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let gen = FailureGenerator::links_only();
        let s = gen.sample(&ft, 20, &mut rng);
        assert!(s
            .failures
            .iter()
            .all(|f| matches!(f.target, FailureTarget::Link(_))));
    }

    #[test]
    fn churn_events_round_trip_on_the_fabric() {
        use rand::SeedableRng;
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let link = ft.ea_link(0, 0, 0);
        let route = ft.ecmp_route(ft.server(0, 0, 0), ft.server(1, 0, 0), 0);
        assert!(route.links.contains(&link));
        let mut rng = SmallRng::seed_from_u64(1);
        let flow = crate::FlowKey::udp(0, 4, 1, 2);

        ChurnSchedule::apply_to_fabric(&mut fabric, &TopologyEvent::LinkDown { link });
        assert!(!fabric.send(&route, flow, &mut rng).delivered);
        ChurnSchedule::apply_to_fabric(&mut fabric, &TopologyEvent::LinkUp { link });
        assert!(fabric.send(&route, flow, &mut rng).delivered);

        let agg = ft.agg(0, 0);
        assert!(route.nodes.contains(&agg));
        ChurnSchedule::apply_to_fabric(&mut fabric, &TopologyEvent::SwitchDrain { switch: agg });
        assert!(!fabric.send(&route, flow, &mut rng).delivered);
        ChurnSchedule::apply_to_fabric(&mut fabric, &TopologyEvent::SwitchUndrain { switch: agg });
        assert!(fabric.send(&route, flow, &mut rng).delivered);

        ChurnSchedule::apply_to_fabric(&mut fabric, &TopologyEvent::PodDrained { pod: 0 });
        assert!(!fabric.send(&route, flow, &mut rng).delivered);
        ChurnSchedule::apply_to_fabric(&mut fabric, &TopologyEvent::PodAdded { pod: 0 });
        assert!(fabric.send(&route, flow, &mut rng).delivered);
    }

    #[test]
    fn schedule_orders_and_filters_by_window() {
        let link = LinkId(9);
        let churn = ChurnSchedule::new()
            .at(5, TopologyEvent::LinkUp { link })
            .at(2, TopologyEvent::LinkDown { link });
        assert_eq!(churn.events()[0].window, 2);
        let due: Vec<_> = churn.due(2).collect();
        assert_eq!(due, vec![&TopologyEvent::LinkDown { link }]);
        assert_eq!(churn.due(0).count(), 0);
    }

    #[test]
    fn sampled_rates_stay_in_band() {
        let ft = Fattree::new(4).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let gen = FailureGenerator::default();
        let s = gen.sample(&ft, 50, &mut rng);
        for f in &s.failures {
            match f.kind {
                FailureKind::RandomPartial { rate } => {
                    assert!((1e-4..=1.0).contains(&rate));
                }
                FailureKind::DeterministicPartial { fraction } => {
                    assert!((1e-3..=1.0).contains(&fraction));
                }
                FailureKind::Full => {}
            }
        }
    }
}
