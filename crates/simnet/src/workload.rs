//! Synthetic workload traffic (§6.3).
//!
//! The paper replays packet traces from a university data center \[11\]
//! (mostly HTTP flows) to load the testbed while probing. Those traces are
//! not redistributable, so we synthesize flows with the published shape:
//! heavy-tailed flow sizes (bounded Pareto), HTTP-dominated port mix, and
//! uniformly random server pairs. Only the offered load level matters for
//! the Fig. 4 RTT/jitter experiment, which is what the generator controls.

use detector_core::types::NodeId;
use detector_topology::DcnTopology;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::fabric::Fabric;
use crate::flow::FlowKey;

/// One workload flow.
#[derive(Clone, Copy, Debug)]
pub struct Flow {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Flow size in bytes (bounded Pareto).
    pub bytes: u64,
    /// Transport identity (drives ECMP placement).
    pub key: FlowKey,
}

/// Generates workload flows and derives per-link utilization.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadGenerator {
    /// Target average utilization of server access links (0..1).
    pub load: f64,
    /// Pareto shape for flow sizes (1 < α ≤ 2 is heavy-tailed).
    pub pareto_shape: f64,
    /// Minimum flow size, bytes.
    pub min_flow_bytes: u64,
    /// Maximum flow size, bytes.
    pub max_flow_bytes: u64,
}

impl Default for WorkloadGenerator {
    fn default() -> Self {
        Self {
            load: 0.2,
            pareto_shape: 1.2,
            min_flow_bytes: 10_000,
            max_flow_bytes: 100_000_000,
        }
    }
}

/// RTT statistics of workload traffic under the current fabric state.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkloadStats {
    /// Mean RTT, microseconds.
    pub mean_rtt_us: f64,
    /// Median RTT.
    pub p50_rtt_us: f64,
    /// 99th percentile RTT.
    pub p99_rtt_us: f64,
    /// Jitter: mean absolute difference of consecutive RTT samples
    /// (RFC 3550-style).
    pub jitter_us: f64,
    /// Number of samples taken.
    pub samples: usize,
}

impl WorkloadGenerator {
    /// Samples one flow between distinct random servers.
    pub fn sample_flow(&self, topo: &dyn DcnTopology, rng: &mut SmallRng) -> Flow {
        let graph = topo.graph();
        let servers: u32 = graph.num_servers() as u32;
        let base = graph.num_nodes() as u32 - servers;
        let s1 = rng.gen_range(0..servers);
        let mut s2 = rng.gen_range(0..servers);
        while s2 == s1 {
            s2 = rng.gen_range(0..servers);
        }
        // Bounded Pareto via inverse transform.
        let u: f64 = rng.gen();
        let a = self.pareto_shape;
        let lo = self.min_flow_bytes as f64;
        let hi = self.max_flow_bytes as f64;
        let bytes = (lo / (1.0 - u * (1.0 - (lo / hi).powf(a))).powf(1.0 / a)) as u64;
        // HTTP-dominated port mix (~80% port 80/8080, rest ephemeral).
        let dport = match rng.gen_range(0..10u32) {
            0..=6 => 80,
            7 => 8080,
            _ => rng.gen_range(1024..65000),
        };
        Flow {
            src: NodeId(base + s1),
            dst: NodeId(base + s2),
            bytes,
            key: FlowKey::udp(s1, s2, rng.gen_range(10_000..60_000), dport),
        }
    }

    /// Generates flows until the total offered bytes reach the target
    /// load on the aggregate server capacity for `duration_s` seconds at
    /// `capacity_bps` per access link.
    pub fn generate(
        &self,
        topo: &dyn DcnTopology,
        duration_s: f64,
        capacity_bps: f64,
        rng: &mut SmallRng,
    ) -> Vec<Flow> {
        let servers = topo.graph().num_servers() as f64;
        let budget = (self.load * servers * capacity_bps * duration_s / 8.0) as u64;
        let mut flows = Vec::new();
        let mut sent = 0u64;
        while sent < budget {
            let f = self.sample_flow(topo, rng);
            sent += f.bytes;
            flows.push(f);
        }
        flows
    }

    /// Routes every flow over ECMP and returns per-link utilization
    /// (fraction of `capacity_bps` · `duration_s`).
    pub fn utilization(
        topo: &dyn DcnTopology,
        flows: &[Flow],
        duration_s: f64,
        capacity_bps: f64,
    ) -> Vec<f64> {
        let mut bytes = vec![0u64; topo.graph().num_links()];
        for f in flows {
            let route = topo.ecmp_route(f.src, f.dst, f.key.ecmp_hash());
            for l in route.links {
                bytes[l.index()] += f.bytes;
            }
        }
        let cap = capacity_bps * duration_s / 8.0;
        bytes
            .into_iter()
            .map(|b| (b as f64 / cap).min(1.0))
            .collect()
    }
}

/// Measures RTT/jitter experienced by sample workload flows on `fabric`.
pub fn measure_workload_rtt(
    fabric: &Fabric<'_>,
    flows: &[Flow],
    probes_per_flow: usize,
    rng: &mut SmallRng,
) -> WorkloadStats {
    let topo = fabric.topology();
    let mut rtts: Vec<f64> = Vec::new();
    for f in flows {
        let route = topo.ecmp_route(f.src, f.dst, f.key.ecmp_hash());
        for _ in 0..probes_per_flow {
            let rt = fabric.round_trip(&route, f.key, rng);
            if rt.success {
                rtts.push(rt.rtt_us);
            }
        }
    }
    if rtts.is_empty() {
        return WorkloadStats::default();
    }
    let mean = rtts.iter().sum::<f64>() / rtts.len() as f64;
    let jitter = if rtts.len() > 1 {
        rtts.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (rtts.len() - 1) as f64
    } else {
        0.0
    };
    let mut sorted = rtts.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("RTTs are finite"));
    let p = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
    WorkloadStats {
        mean_rtt_us: mean,
        p50_rtt_us: p(0.5),
        p99_rtt_us: p(0.99),
        jitter_us: jitter,
        samples: rtts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_topology::Fattree;
    use rand::SeedableRng;

    #[test]
    fn flows_have_valid_endpoints_and_sizes() {
        let ft = Fattree::new(4).unwrap();
        let gen = WorkloadGenerator::default();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let f = gen.sample_flow(&ft, &mut rng);
            assert_ne!(f.src, f.dst);
            assert!(f.bytes >= gen.min_flow_bytes);
            assert!(f.bytes <= gen.max_flow_bytes);
            // Endpoints must be servers.
            assert!(!ft.graph().node(f.src).kind.is_switch());
            assert!(!ft.graph().node(f.dst).kind.is_switch());
        }
    }

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        let ft = Fattree::new(4).unwrap();
        let gen = WorkloadGenerator::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let sizes: Vec<u64> = (0..5000)
            .map(|_| gen.sample_flow(&ft, &mut rng).bytes)
            .collect();
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(mean > 2.0 * median, "mean {mean}, median {median}");
    }

    #[test]
    fn utilization_grows_with_load() {
        let ft = Fattree::new(4).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let light = WorkloadGenerator {
            load: 0.05,
            ..Default::default()
        };
        let heavy = WorkloadGenerator {
            load: 0.4,
            ..Default::default()
        };
        let fl = light.generate(&ft, 1.0, 1e9, &mut rng);
        let fh = heavy.generate(&ft, 1.0, 1e9, &mut rng);
        let ul = WorkloadGenerator::utilization(&ft, &fl, 1.0, 1e9);
        let uh = WorkloadGenerator::utilization(&ft, &fh, 1.0, 1e9);
        let avg = |u: &[f64]| u.iter().sum::<f64>() / u.len() as f64;
        assert!(avg(&uh) > avg(&ul) * 2.0);
    }

    #[test]
    fn rtt_stats_reflect_load() {
        let ft = Fattree::new(4).unwrap();
        let gen = WorkloadGenerator {
            load: 0.3,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let flows = gen.generate(&ft, 1.0, 1e9, &mut rng);
        let util = WorkloadGenerator::utilization(&ft, &flows, 1.0, 1e9);

        let mut idle = Fabric::quiet(&ft);
        let sample: Vec<Flow> = flows.iter().take(50).copied().collect();
        let s0 = measure_workload_rtt(&idle, &sample, 3, &mut rng);
        idle.set_utilization(util);
        let s1 = measure_workload_rtt(&idle, &sample, 3, &mut rng);
        assert!(s0.samples > 0 && s1.samples > 0);
        assert!(s1.mean_rtt_us > s0.mean_rtt_us);
        assert!(s1.p99_rtt_us >= s1.p50_rtt_us);
    }
}
