//! Flow identity: the 5-tuple every ECMP hash and header-match rule sees.

use serde::{Deserialize, Serialize};

/// A transport 5-tuple (addresses abstracted to server indices).
///
/// deTector probes vary source/destination ports and DSCP to raise packet
/// entropy (§7); ECMP in the fabric hashes this key to pick among parallel
/// paths, and deterministic-partial failures (blackholes) match on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source server index.
    pub src: u32,
    /// Destination server index.
    pub dst: u32,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// IP protocol (17 = UDP for probes).
    pub proto: u8,
    /// DSCP class carried in the IP header (QoS probing, §6.1).
    pub dscp: u8,
}

impl FlowKey {
    /// A UDP flow with default DSCP.
    pub fn udp(src: u32, dst: u32, sport: u16, dport: u16) -> Self {
        Self {
            src,
            dst,
            sport,
            dport,
            proto: 17,
            dscp: 0,
        }
    }

    /// The reply flow: endpoints and ports swapped.
    pub fn reversed(&self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
            sport: self.dport,
            dport: self.sport,
            proto: self.proto,
            dscp: self.dscp,
        }
    }

    /// 64-bit FNV-1a hash of the tuple, salted — used for ECMP path choice
    /// and blackhole membership.
    pub fn hash_with(&self, salt: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut eat = |v: u64, bytes: usize| {
            for i in 0..bytes {
                h ^= (v >> (8 * i)) & 0xff;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.src as u64, 4);
        eat(self.dst as u64, 4);
        eat(self.sport as u64, 2);
        eat(self.dport as u64, 2);
        eat(self.proto as u64, 1);
        eat(self.dscp as u64, 1);
        h
    }

    /// The ECMP hash (salt 0).
    pub fn ecmp_hash(&self) -> u64 {
        self.hash_with(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_swaps_endpoints_and_ports() {
        let f = FlowKey::udp(1, 2, 100, 200);
        let r = f.reversed();
        assert_eq!(r.src, 2);
        assert_eq!(r.dst, 1);
        assert_eq!(r.sport, 200);
        assert_eq!(r.dport, 100);
        assert_eq!(r.reversed(), f);
    }

    #[test]
    fn hash_depends_on_every_field() {
        let base = FlowKey::udp(1, 2, 100, 200);
        let h = base.ecmp_hash();
        let variants = [
            FlowKey::udp(3, 2, 100, 200),
            FlowKey::udp(1, 3, 100, 200),
            FlowKey::udp(1, 2, 101, 200),
            FlowKey::udp(1, 2, 100, 201),
            FlowKey { proto: 6, ..base },
            FlowKey { dscp: 46, ..base },
        ];
        for v in variants {
            assert_ne!(v.ecmp_hash(), h, "{v:?} collided");
        }
    }

    #[test]
    fn salt_changes_hash() {
        let f = FlowKey::udp(1, 2, 3, 4);
        assert_ne!(f.hash_with(1), f.hash_with(2));
    }

    #[test]
    fn ecmp_hash_is_roughly_uniform() {
        // Spread over 4 buckets must be within 10% of uniform.
        let mut buckets = [0u32; 4];
        for sport in 0..4000u16 {
            let f = FlowKey::udp(7, 9, sport, 5000);
            buckets[(f.ecmp_hash() % 4) as usize] += 1;
        }
        for &b in &buckets {
            assert!((b as f64 - 1000.0).abs() < 100.0, "buckets: {buckets:?}");
        }
    }
}
