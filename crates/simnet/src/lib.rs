//! # detector-simnet
//!
//! A deterministic packet-level probe simulator standing in for the
//! paper's 20-switch ONetSwitch SDN testbed (§6.2). It reproduces the
//! three loss types the paper injects with OpenFlow rules — **full packet
//! loss**, **deterministic partial loss** (header-matched drops, e.g.
//! packet blackholes) and **random partial loss** (bit flips, CRC errors,
//! buffer overflow) — plus switch-down failures, the normal 1e-4..1e-5
//! background loss every link exhibits (§5.1), and an RTT/jitter model for
//! the workload-impact experiment (Fig. 4).
//!
//! Everything is seeded: the same seed, topology and failure scenario
//! produce bit-identical observations.
//!
//! # Examples
//!
//! ```
//! use detector_simnet::{Fabric, FlowKey, LossDiscipline};
//! use detector_topology::{DcnTopology, Fattree};
//! use rand::SeedableRng;
//!
//! let ft = Fattree::new(4).unwrap();
//! let mut fabric = Fabric::new(&ft, 7);
//! // Fail one edge-aggregation link completely, in both directions.
//! let bad = ft.ea_link(0, 0, 0);
//! fabric.set_discipline_both(bad, LossDiscipline::Full);
//!
//! let mut rng = <rand::rngs::SmallRng as SeedableRng>::seed_from_u64(1);
//! let route = ft.ecmp_route(ft.server(0, 0, 0), ft.server(1, 0, 0), 0);
//! let out = fabric.send(&route, FlowKey::udp(1, 2, 3000, 4000), &mut rng);
//! assert!(!out.delivered);
//! ```

mod fabric;
mod failures;
mod flow;
mod packet;
mod partition;
mod reports;
mod rtt;
mod workload;

pub use fabric::{Fabric, LinkDir, ProbeOutcome, RoundTrip};
pub use failures::{
    ChurnEvent, ChurnSchedule, FailureGenerator, FailureKind, FailureScenario, FailureTarget,
    InjectedFailure,
};
pub use flow::FlowKey;
pub use packet::{decode_probe, encode_probe, PacketError, ProbePacket, PROBE_WIRE_SIZE};
pub use partition::{partition_hosts, HostGroups};
pub use reports::BurstLossReports;
pub use rtt::RttModel;
pub use workload::{measure_workload_rtt, Flow, WorkloadGenerator, WorkloadStats};

/// Loss behaviour applied to one direction of one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossDiscipline {
    /// No failure (only background noise applies).
    Healthy,
    /// Every packet is dropped (link down / switch port dead).
    Full,
    /// Packets whose flow matches a header subset are dropped
    /// deterministically (blackhole, misconfigured rule): a fraction
    /// `fraction` of the flow space is affected, selected by `salt`.
    DeterministicPartial {
        /// Fraction of flows dropped (0..=1).
        fraction: f64,
        /// Selects which flows fall in the blackhole.
        salt: u64,
    },
    /// Each packet is dropped independently with probability `rate`
    /// (bit flips, CRC errors, buffer overflow).
    RandomPartial {
        /// Per-packet drop probability (0..=1).
        rate: f64,
    },
    /// Only packets of one QoS class are dropped (a misconfigured
    /// priority queue or ACL): probes carry DSCP values precisely to
    /// expose such class-specific failures (§6.1, §7).
    DscpBlackhole {
        /// The affected DSCP class.
        dscp: u8,
    },
}

impl LossDiscipline {
    /// Does this discipline drop a packet of `flow`, given a uniform draw
    /// in [0, 1)?
    #[inline]
    pub fn drops(&self, flow: FlowKey, draw: f64) -> bool {
        match *self {
            LossDiscipline::Healthy => false,
            LossDiscipline::Full => true,
            LossDiscipline::DeterministicPartial { fraction, salt } => {
                // Deterministic per flow: the same flow always hits or
                // always misses the blackhole.
                let h = flow.hash_with(salt);
                (h % 1_000_000) as f64 / 1_000_000.0 < fraction
            }
            LossDiscipline::RandomPartial { rate } => draw < rate,
            LossDiscipline::DscpBlackhole { dscp } => flow.dscp == dscp,
        }
    }

    /// The long-run loss rate this discipline induces on uniform traffic.
    pub fn expected_rate(&self) -> f64 {
        match *self {
            LossDiscipline::Healthy => 0.0,
            LossDiscipline::Full => 1.0,
            LossDiscipline::DeterministicPartial { fraction, .. } => fraction,
            LossDiscipline::RandomPartial { rate } => rate,
            // Probes sweep QoS classes uniformly; workload traffic mostly
            // rides one class, so "expected rate" is per-class.
            LossDiscipline::DscpBlackhole { .. } => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_drops_everything() {
        let d = LossDiscipline::Full;
        assert!(d.drops(FlowKey::udp(1, 2, 3, 4), 0.99));
        assert_eq!(d.expected_rate(), 1.0);
    }

    #[test]
    fn healthy_drops_nothing() {
        let d = LossDiscipline::Healthy;
        assert!(!d.drops(FlowKey::udp(1, 2, 3, 4), 0.0));
    }

    #[test]
    fn deterministic_partial_is_flow_stable() {
        let d = LossDiscipline::DeterministicPartial {
            fraction: 0.5,
            salt: 42,
        };
        for sport in 0..100u16 {
            let f = FlowKey::udp(1, 2, sport, 4000);
            let first = d.drops(f, 0.3);
            for _ in 0..5 {
                assert_eq!(d.drops(f, 0.9), first, "flow fate must be stable");
            }
        }
    }

    #[test]
    fn deterministic_partial_fraction_is_roughly_respected() {
        let d = LossDiscipline::DeterministicPartial {
            fraction: 0.3,
            salt: 7,
        };
        let dropped = (0..10_000u16)
            .filter(|&p| d.drops(FlowKey::udp(9, 9, p, 53), 0.0))
            .count();
        let frac = dropped as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "observed {frac}");
    }

    #[test]
    fn dscp_blackhole_hits_only_its_class() {
        let d = LossDiscipline::DscpBlackhole { dscp: 46 };
        let mut ef = FlowKey::udp(1, 2, 3, 4);
        ef.dscp = 46;
        assert!(d.drops(ef, 0.9));
        let mut be = FlowKey::udp(1, 2, 3, 4);
        be.dscp = 0;
        assert!(!d.drops(be, 0.0));
    }

    #[test]
    fn random_partial_uses_the_draw() {
        let d = LossDiscipline::RandomPartial { rate: 0.25 };
        assert!(d.drops(FlowKey::udp(1, 2, 3, 4), 0.1));
        assert!(!d.drops(FlowKey::udp(1, 2, 3, 4), 0.9));
    }
}
