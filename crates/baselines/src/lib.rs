//! # detector-baselines
//!
//! The monitoring systems deTector is evaluated against (§2, §6.3):
//!
//! * **Pingmesh** (Guo et al., SIGCOMM'15) — full-mesh end-to-end probing:
//!   a complete graph among the servers of each rack plus a complete graph
//!   over all ToRs. Probes take whatever path ECMP hashes them onto, so
//!   Pingmesh detects pair-level loss but cannot localize it; once a pair
//!   is suspect, **Netbouncer** sweeps every parallel path between the pair
//!   with an extra round of probes and runs tomography on the result.
//! * **NetNORAD** (Facebook) — like Pingmesh but with pingers in a few
//!   pods only; localization is delegated to **fbtracert**, which sends
//!   TTL-limited probes along each ECMP path and blames the hop where loss
//!   begins.
//!
//! Both baselines therefore *separate* detection from localization: the
//! extra probe round costs another reporting window (30 s) and transient
//! failures may be gone before it fires — the coupling argument at the
//! heart of the paper.

//! # The unified localization interface
//!
//! Both baselines' inference stages implement the
//! [`Localizer`](detector_core::pll::Localizer) trait shared with PLL /
//! Tomo / SCORE / OMP: a *sweep* function gathers a
//! [`SweepResult`] (budgeted probing), and [`NetbouncerLocalizer`] /
//! [`FbtracertLocalizer`] turn its matrix + observations into a
//! `Diagnosis` — so comparison harnesses drive every system through one
//! polymorphic call. The `*_localize` functions compose the two stages.

mod common;
mod fbtracert;
mod netbouncer;
mod pingmesh;

pub use common::{BaselineConfig, DetectionResult, PairObservation, ProbeBudget, SweepResult};
pub use fbtracert::{fbtracert_localize, fbtracert_sweep, FbtracertLocalizer};
pub use netbouncer::{
    netbouncer_localize, netbouncer_sweep, BaselineDiagnosis, NetbouncerLocalizer,
};
pub use pingmesh::{BaselineKind, BaselineSystem};
