//! # detector-baselines
//!
//! The monitoring systems deTector is evaluated against (§2, §6.3):
//!
//! * **Pingmesh** (Guo et al., SIGCOMM'15) — full-mesh end-to-end probing:
//!   a complete graph among the servers of each rack plus a complete graph
//!   over all ToRs. Probes take whatever path ECMP hashes them onto, so
//!   Pingmesh detects pair-level loss but cannot localize it; once a pair
//!   is suspect, **Netbouncer** sweeps every parallel path between the pair
//!   with an extra round of probes and runs tomography on the result.
//! * **NetNORAD** (Facebook) — like Pingmesh but with pingers in a few
//!   pods only; localization is delegated to **fbtracert**, which sends
//!   TTL-limited probes along each ECMP path and blames the hop where loss
//!   begins.
//!
//! Both baselines therefore *separate* detection from localization: the
//! extra probe round costs another reporting window (30 s) and transient
//! failures may be gone before it fires — the coupling argument at the
//! heart of the paper.

mod common;
mod fbtracert;
mod netbouncer;
mod pingmesh;

pub use common::{BaselineConfig, DetectionResult, PairObservation, ProbeBudget};
pub use fbtracert::fbtracert_localize;
pub use netbouncer::netbouncer_localize;
pub use pingmesh::{BaselineKind, BaselineSystem};
