//! Pingmesh and NetNORAD probe selection and detection (§2, §6.3).

use detector_core::types::NodeId;
use detector_simnet::{Fabric, FlowKey};
use detector_topology::DcnTopology;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::common::{BaselineConfig, DetectionResult, PairObservation};

/// Which baseline's pair-selection policy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineKind {
    /// Complete graph within each rack + complete graph over all ToRs
    /// (pingers on every server).
    Pingmesh,
    /// Pingers in a subset of racks only (one rack in `1/stride` of the
    /// racks), each targeting every rack.
    NetNorad {
        /// Keep one pinger rack every `stride` racks.
        stride: usize,
    },
}

/// A configured baseline monitoring system.
pub struct BaselineSystem<'a> {
    topo: &'a dyn DcnTopology,
    cfg: BaselineConfig,
    kind: BaselineKind,
    /// Ordered (pinger server, target server) pairs probed every window.
    pairs: Vec<(NodeId, NodeId)>,
}

impl<'a> BaselineSystem<'a> {
    /// Builds a Pingmesh deployment over `topo`.
    pub fn pingmesh(topo: &'a dyn DcnTopology, cfg: BaselineConfig) -> Self {
        Self::build(topo, cfg, BaselineKind::Pingmesh)
    }

    /// Builds a NetNORAD deployment with pingers every `stride` racks.
    pub fn netnorad(topo: &'a dyn DcnTopology, cfg: BaselineConfig, stride: usize) -> Self {
        Self::build(
            topo,
            cfg,
            BaselineKind::NetNorad {
                stride: stride.max(1),
            },
        )
    }

    fn build(topo: &'a dyn DcnTopology, cfg: BaselineConfig, kind: BaselineKind) -> Self {
        let graph = topo.graph();
        let endpoints = topo.probe_endpoints();
        // Representative server per endpoint: the endpoint itself when it
        // is a server (BCube); its first server otherwise.
        let racks: Vec<(NodeId, Vec<NodeId>)> = endpoints
            .iter()
            .map(|&e| {
                if graph.node(e).kind.is_switch() {
                    (e, graph.servers_under(e))
                } else {
                    (e, vec![e])
                }
            })
            .collect();

        let mut pairs = Vec::new();
        match kind {
            BaselineKind::Pingmesh => {
                // Complete graph over ToRs: pair (i, j), i ≠ j, with
                // rotating server choice.
                for (i, (_, si)) in racks.iter().enumerate() {
                    for (j, (_, sj)) in racks.iter().enumerate() {
                        if i == j || si.is_empty() || sj.is_empty() {
                            continue;
                        }
                        pairs.push((si[j % si.len()], sj[i % sj.len()]));
                    }
                }
                // Complete graph within each rack.
                for (_, servers) in &racks {
                    for (a, &sa) in servers.iter().enumerate() {
                        for &sb in servers.iter().skip(a + 1) {
                            pairs.push((sa, sb));
                        }
                    }
                }
            }
            BaselineKind::NetNorad { stride } => {
                for (i, (_, si)) in racks.iter().enumerate() {
                    if i % stride != 0 || si.is_empty() {
                        continue;
                    }
                    for (j, (_, sj)) in racks.iter().enumerate() {
                        if i == j || sj.is_empty() {
                            continue;
                        }
                        pairs.push((si[0], sj[i % sj.len()]));
                    }
                }
            }
        }
        Self {
            topo,
            cfg,
            kind,
            pairs,
        }
    }

    /// The pair-selection policy in force.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Number of probed server pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Runs one detection window with a total budget of `budget_probes`
    /// (ping + reply count, like Fig. 5's x-axis): round trips are spread
    /// evenly over the pairs, each with a random source port — so ECMP
    /// scatters them over the parallel paths, which is exactly why
    /// low-rate losses dilute (§2).
    pub fn detect_window(
        &self,
        fabric: &Fabric<'_>,
        budget_probes: u64,
        rng: &mut SmallRng,
    ) -> DetectionResult {
        let mut result = DetectionResult::default();
        if self.pairs.is_empty() || budget_probes == 0 {
            return result;
        }
        let round_trips = (budget_probes / 2).max(1);
        let per_pair = (round_trips / self.pairs.len() as u64).max(1);

        for &(src, dst) in &self.pairs {
            let mut sent = 0u64;
            let mut lost = 0u64;
            for _ in 0..per_pair {
                let sport: u16 = rng.gen_range(32_768..60_000);
                let flow = FlowKey::udp(src.0, dst.0, sport, 53533);
                // The request takes the ECMP path of the forward flow; the
                // reply hashes independently (no source routing).
                let fwd = self.topo.ecmp_route(src, dst, flow.ecmp_hash());
                let rev = self.topo.ecmp_route(dst, src, flow.reversed().ecmp_hash());
                let rt = fabric.round_trip_via(&fwd, &rev, flow, rng);
                sent += 1;
                if !rt.success {
                    lost += 1;
                }
            }
            result.probes_used += sent * 2;
            let obs = PairObservation {
                src,
                dst,
                sent,
                lost,
            };
            if obs.lost >= self.cfg.pair_min_loss
                && obs.loss_ratio() >= self.cfg.pair_loss_threshold
            {
                result.suspects.push((src, dst));
            }
            result.pairs.push(obs);
        }
        result
    }

    /// The configuration (shared with the localization helpers).
    pub fn config(&self) -> &BaselineConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_simnet::LossDiscipline;
    use detector_topology::Fattree;
    use rand::SeedableRng;

    #[test]
    fn pingmesh_builds_tor_and_rack_meshes() {
        let ft = Fattree::new(4).unwrap();
        let pm = BaselineSystem::pingmesh(&ft, BaselineConfig::default());
        // 8 ToRs: 8×7 inter-rack ordered pairs + 8 racks × C(2,2)=1.
        assert_eq!(pm.num_pairs(), 56 + 8);
    }

    #[test]
    fn netnorad_has_fewer_pairs() {
        let ft = Fattree::new(4).unwrap();
        let nn = BaselineSystem::netnorad(&ft, BaselineConfig::default(), 4);
        let pm = BaselineSystem::pingmesh(&ft, BaselineConfig::default());
        assert!(nn.num_pairs() < pm.num_pairs());
        assert_eq!(nn.num_pairs(), 2 * 7);
    }

    #[test]
    fn clean_fabric_yields_no_suspects() {
        let ft = Fattree::new(4).unwrap();
        let pm = BaselineSystem::pingmesh(&ft, BaselineConfig::default());
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(1);
        let det = pm.detect_window(&fabric, 4000, &mut rng);
        assert!(det.suspects.is_empty());
        assert!(det.probes_used > 0);
    }

    #[test]
    fn full_loss_is_detected_as_suspect_pairs() {
        let ft = Fattree::new(4).unwrap();
        let pm = BaselineSystem::pingmesh(&ft, BaselineConfig::default());
        let mut fabric = Fabric::quiet(&ft);
        fabric.set_discipline_both(ft.ea_link(0, 0, 0), LossDiscipline::Full);
        let mut rng = SmallRng::seed_from_u64(2);
        let det = pm.detect_window(&fabric, 8000, &mut rng);
        assert!(!det.suspects.is_empty());
    }

    #[test]
    fn low_rate_loss_often_escapes_ecmp_dilution() {
        // The §2 motivation: a 1% loss on one of many parallel paths
        // barely moves pair loss ratios when probes scatter over ECMP.
        let ft = Fattree::new(4).unwrap();
        let pm = BaselineSystem::pingmesh(&ft, BaselineConfig::default());
        let mut fabric = Fabric::quiet(&ft);
        fabric.set_discipline_both(
            ft.ac_link(0, 0, 0),
            LossDiscipline::RandomPartial { rate: 0.01 },
        );
        let mut rng = SmallRng::seed_from_u64(3);
        // A small budget: each pair gets a handful of probes.
        let det = pm.detect_window(&fabric, 2000, &mut rng);
        // The affected pair set should be tiny (often empty).
        assert!(det.suspects.len() <= 4, "suspects: {:?}", det.suspects);
    }
}
