//! fbtracert-style localization (§6.3): TTL-limited probes along every
//! ECMP path of a suspect pair; the hop where losses begin is blamed.

use std::collections::HashMap;

use detector_core::types::{LinkId, NodeId};
use detector_simnet::{Fabric, FlowKey};
use detector_topology::{DcnTopology, Route};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::common::{BaselineConfig, ProbeBudget};
use crate::netbouncer::BaselineDiagnosis;

/// Traces every ECMP path of every suspect pair hop by hop and blames the
/// first link whose prefix loss ratio jumps past the threshold.
pub fn fbtracert_localize(
    topo: &dyn DcnTopology,
    fabric: &Fabric<'_>,
    suspects: &[(NodeId, NodeId)],
    cfg: &BaselineConfig,
    budget_round_trips: u64,
    rng: &mut SmallRng,
) -> BaselineDiagnosis {
    let mut budget = ProbeBudget::default();
    // Blame votes per link.
    let mut votes: HashMap<LinkId, u32> = HashMap::new();
    let mut traces = 0u32;

    'pairs: for &(src, dst) in suspects {
        for route in topo.all_ecmp_routes(src, dst) {
            if budget.round_trips >= budget_round_trips {
                break 'pairs;
            }
            traces += 1;
            // Per-hop loss ratio of TTL-limited probes: prefix h covers
            // the first h links; a TTL-expired reply returns over the
            // reversed prefix (like real traceroute responses).
            let mut prev_loss = 0.0f64;
            for h in 1..=route.links.len() {
                let prefix = Route {
                    nodes: route.nodes[..=h].to_vec(),
                    links: route.links[..h].to_vec(),
                };
                let mut lost = 0u64;
                for p in 0..cfg.trace_probes_per_hop {
                    if budget.round_trips >= budget_round_trips {
                        break;
                    }
                    let sport = 40_000u16
                        .wrapping_add(p as u16)
                        .wrapping_add(rng.gen_range(0..8));
                    let flow = FlowKey::udp(src.0, dst.0, sport, 33434);
                    let rt = fabric.round_trip(&prefix, flow, rng);
                    budget.round_trips += 1;
                    if !rt.success {
                        lost += 1;
                    }
                }
                let loss = lost as f64 / cfg.trace_probes_per_hop.max(1) as f64;
                // Loss appears at this hop but not before: blame the hop's
                // link.
                if loss - prev_loss >= cfg.hop_blame_threshold {
                    *votes.entry(route.links[h - 1]).or_insert(0) += 1;
                    break;
                }
                prev_loss = prev_loss.max(loss);
            }
        }
    }

    // A link is blamed when a meaningful share of traces implicate it.
    let min_votes = 1u32.max((traces as f64 * 0.05) as u32);
    let mut links: Vec<LinkId> = votes
        .into_iter()
        .filter(|&(l, v)| v >= min_votes && l.index() < topo.probe_links())
        .map(|(l, _)| l)
        .collect();
    links.sort_unstable();
    BaselineDiagnosis {
        links,
        probes_used: budget.probes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_simnet::LossDiscipline;
    use detector_topology::Fattree;
    use rand::SeedableRng;

    #[test]
    fn trace_blames_the_failing_hop() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ac_link(0, 0, 0);
        fabric.set_discipline_both(bad, LossDiscipline::Full);
        let mut rng = SmallRng::seed_from_u64(1);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let d = fbtracert_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            u64::MAX,
            &mut rng,
        );
        assert!(d.links.contains(&bad), "blamed: {:?}", d.links);
    }

    #[test]
    fn clean_paths_blame_nothing() {
        let ft = Fattree::new(4).unwrap();
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(2);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let d = fbtracert_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            u64::MAX,
            &mut rng,
        );
        assert!(d.links.is_empty());
        assert!(d.probes_used > 0);
    }

    #[test]
    fn random_partial_loss_is_traceable_at_high_rate() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ea_link(1, 0, 0);
        fabric.set_discipline_both(bad, LossDiscipline::RandomPartial { rate: 0.6 });
        let mut rng = SmallRng::seed_from_u64(3);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let d = fbtracert_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            u64::MAX,
            &mut rng,
        );
        assert!(d.links.contains(&bad), "blamed: {:?}", d.links);
    }

    #[test]
    fn budget_is_respected() {
        let ft = Fattree::new(4).unwrap();
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(4);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let d = fbtracert_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            7,
            &mut rng,
        );
        assert!(d.probes_used <= 14);
    }
}
