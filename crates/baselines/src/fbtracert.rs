//! fbtracert-style localization (§6.3): TTL-limited probes along every
//! ECMP path of a suspect pair; the hop where losses begin is blamed.
//!
//! Split along the unified [`Localizer`] interface like Netbouncer:
//! [`fbtracert_sweep`] probes each route prefix by prefix (TTL 1, 2, …)
//! and records one observation per prefix, stopping a trace early once
//! the loss jump already implicates a hop (exactly the probe budget the
//! monolithic implementation used). [`FbtracertLocalizer`] replays the
//! hop-blame walk over the recorded prefix chains — a pure function of
//! (matrix, observations), so comparison harnesses can drive it through
//! the same trait object as PLL, Tomo or Netbouncer.

use std::collections::HashMap;

use detector_core::pll::{Diagnosis, Localizer, SuspectLink};
use detector_core::pmc::ProbeMatrix;
use detector_core::types::{LinkId, NodeId, PathObservation, ProbePath};
use detector_simnet::{Fabric, FlowKey};
use detector_topology::{DcnTopology, Route};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::common::{BaselineConfig, ProbeBudget, SweepResult};
use crate::netbouncer::BaselineDiagnosis;

/// fbtracert's inference stage: blame, per recorded trace, the first
/// link whose prefix loss ratio jumps past the threshold.
///
/// Expects a *prefix-chain* matrix as produced by [`fbtracert_sweep`]:
/// consecutive paths that extend one another by one link form a trace.
/// (Running it over an arbitrary matrix — e.g. deTector's probe matrix —
/// degenerates to treating every path as a one-hop trace, which is
/// exactly the information an fbtracert deployment would have there:
/// none.)
#[derive(Clone, Copy, Debug)]
pub struct FbtracertLocalizer {
    /// Blame-threshold settings.
    pub cfg: BaselineConfig,
    /// Only links below this index are blamed (the probe-link universe;
    /// server access links are checked by in-rack probing in all
    /// systems). `usize::MAX` disables the filter.
    pub probe_links: usize,
}

impl Default for FbtracertLocalizer {
    fn default() -> Self {
        Self {
            cfg: BaselineConfig::default(),
            probe_links: usize::MAX,
        }
    }
}

impl FbtracertLocalizer {
    /// A localizer restricted to the probe-link universe of `topo`.
    pub fn for_topology(topo: &dyn DcnTopology, cfg: BaselineConfig) -> Self {
        Self {
            cfg,
            probe_links: topo.probe_links(),
        }
    }
}

/// True when `next` extends `prev` by exactly one hop (same trace).
///
/// Judged on the node sequence: a `ProbePath` normalizes its link set
/// (sorted, de-duplicated) but keeps nodes in hop order.
fn extends(next: &ProbePath, prev: &ProbePath) -> bool {
    let (n, p) = (next.nodes(), prev.nodes());
    n.len() == p.len() + 1 && n[..p.len()] == *p
}

/// The link `next` covers that `prev` does not: the newly traversed hop.
fn new_link(next: &ProbePath, prev: Option<&ProbePath>) -> Option<LinkId> {
    next.links()
        .iter()
        .copied()
        .find(|&l| !prev.is_some_and(|p| p.covers(l)))
}

impl Localizer for FbtracertLocalizer {
    fn name(&self) -> &str {
        "fbtracert"
    }

    fn localize(&self, matrix: &ProbeMatrix, observations: &[PathObservation]) -> Diagnosis {
        let obs_by_path: HashMap<_, _> = observations.iter().map(|o| (o.path, o)).collect();
        // votes, loss-jump sum and explained losses per blamed link.
        let mut votes: HashMap<LinkId, (u32, f64, u64)> = HashMap::new();
        let mut unexplained = Vec::new();
        let mut traces = 0u32;

        let paths = &matrix.paths;
        let mut i = 0;
        while i < paths.len() {
            // One trace: a maximal run of consecutive prefix paths.
            let start = i;
            i += 1;
            while i < paths.len() && extends(&paths[i], &paths[i - 1]) {
                i += 1;
            }
            let chain = &paths[start..i];
            traces += 1;

            let mut prev_loss = 0.0f64;
            let mut blamed = false;
            for (ci, p) in chain.iter().enumerate() {
                let Some(o) = obs_by_path.get(&p.id) else {
                    continue;
                };
                if o.sent == 0 {
                    continue;
                }
                // Same denominator as the sweep's stop rule (and the
                // original monolithic walk): a budget-truncated hop with
                // a tiny sample must not look lossier than the full
                // per-hop quota would have shown it.
                let denom = o.sent.max(self.cfg.trace_probes_per_hop as u64);
                let loss = o.lost as f64 / denom as f64;
                // Loss appears at this hop but not before: blame the
                // hop's link (the one this prefix adds over the previous
                // one).
                if loss - prev_loss >= self.cfg.hop_blame_threshold {
                    let prev = ci.checked_sub(1).map(|i| &chain[i]);
                    if let Some(link) = new_link(p, prev) {
                        let e = votes.entry(link).or_insert((0, 0.0, 0));
                        e.0 += 1;
                        e.1 += loss - prev_loss;
                        e.2 += o.lost;
                    }
                    blamed = true;
                    break;
                }
                prev_loss = prev_loss.max(loss);
            }
            if !blamed {
                if let Some(last) = chain.last() {
                    if obs_by_path
                        .get(&last.id)
                        .is_some_and(|o| o.lost > 0 && o.sent > 0)
                    {
                        unexplained.push(last.id);
                    }
                }
            }
        }

        // A link is blamed when a meaningful share of traces implicate it.
        let min_votes = 1u32.max((traces as f64 * 0.05) as u32);
        let mut suspects: Vec<SuspectLink> = votes
            .into_iter()
            .filter(|&(l, (v, _, _))| v >= min_votes && l.index() < self.probe_links)
            .map(|(link, (v, jump_sum, losses))| SuspectLink {
                link,
                estimated_loss_rate: jump_sum / v as f64,
                hit_ratio: v as f64 / traces.max(1) as f64,
                explained_paths: v,
                explained_losses: losses,
            })
            .collect();
        suspects.sort_unstable_by_key(|s| s.link);
        Diagnosis {
            suspects,
            unexplained_paths: unexplained,
        }
    }
}

/// Traces every ECMP path of every suspect pair hop by hop: TTL-limited
/// probes per prefix, with a TTL-expired reply returning over the
/// reversed prefix (like real traceroute responses). A trace stops
/// extending once the loss jump already implicates a hop, so the probe
/// budget matches the monolithic walk.
pub fn fbtracert_sweep(
    topo: &dyn DcnTopology,
    fabric: &Fabric<'_>,
    suspects: &[(NodeId, NodeId)],
    cfg: &BaselineConfig,
    budget_round_trips: u64,
    rng: &mut SmallRng,
) -> SweepResult {
    let mut budget = ProbeBudget::default();
    let mut paths: Vec<ProbePath> = Vec::new();
    let mut observations: Vec<PathObservation> = Vec::new();

    'pairs: for &(src, dst) in suspects {
        for route in topo.all_ecmp_routes(src, dst) {
            if budget.round_trips >= budget_round_trips {
                break 'pairs;
            }
            let mut prev_loss = 0.0f64;
            for h in 1..=route.links.len() {
                let prefix = Route {
                    nodes: route.nodes[..=h].to_vec(),
                    links: route.links[..h].to_vec(),
                };
                let mut sent = 0u64;
                let mut lost = 0u64;
                for p in 0..cfg.trace_probes_per_hop {
                    if budget.round_trips >= budget_round_trips {
                        break;
                    }
                    let sport = 40_000u16
                        .wrapping_add(p as u16)
                        .wrapping_add(rng.gen_range(0..8));
                    let flow = FlowKey::udp(src.0, dst.0, sport, 33434);
                    let rt = fabric.round_trip(&prefix, flow, rng);
                    budget.round_trips += 1;
                    sent += 1;
                    if !rt.success {
                        lost += 1;
                    }
                }
                if sent == 0 {
                    // Budget exhausted mid-trace: nothing more to learn.
                    break;
                }
                let id = paths.len() as u32;
                paths.push(ProbePath::from_route(
                    id,
                    prefix.nodes.clone(),
                    prefix.links.clone(),
                ));
                observations.push(PathObservation::new(
                    detector_core::types::PathId(id),
                    sent,
                    lost,
                ));
                // The blame walk stops at the first implicating jump; so
                // does the sweep (same per-hop denominator as the
                // original monolithic implementation).
                let loss = lost as f64 / cfg.trace_probes_per_hop.max(1) as f64;
                if loss - prev_loss >= cfg.hop_blame_threshold {
                    break;
                }
                prev_loss = prev_loss.max(loss);
            }
        }
    }

    SweepResult {
        matrix: ProbeMatrix::from_paths(topo.graph().num_links(), paths),
        observations,
        probes_used: budget.probes(),
    }
}

/// Traces every ECMP path of every suspect pair and blames the first
/// link whose prefix loss ratio jumps past the threshold: the composed
/// two-round NetNORAD localization pipeline.
pub fn fbtracert_localize(
    topo: &dyn DcnTopology,
    fabric: &Fabric<'_>,
    suspects: &[(NodeId, NodeId)],
    cfg: &BaselineConfig,
    budget_round_trips: u64,
    rng: &mut SmallRng,
) -> BaselineDiagnosis {
    let sweep = fbtracert_sweep(topo, fabric, suspects, cfg, budget_round_trips, rng);
    let localizer = FbtracertLocalizer::for_topology(topo, *cfg);
    let diagnosis = localizer.localize(&sweep.matrix, &sweep.observations);
    BaselineDiagnosis {
        links: diagnosis.suspect_links(),
        probes_used: sweep.probes_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_simnet::LossDiscipline;
    use detector_topology::Fattree;
    use rand::SeedableRng;

    #[test]
    fn trace_blames_the_failing_hop() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ac_link(0, 0, 0);
        fabric.set_discipline_both(bad, LossDiscipline::Full);
        let mut rng = SmallRng::seed_from_u64(1);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let d = fbtracert_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            u64::MAX,
            &mut rng,
        );
        assert!(d.links.contains(&bad), "blamed: {:?}", d.links);
    }

    #[test]
    fn clean_paths_blame_nothing() {
        let ft = Fattree::new(4).unwrap();
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(2);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let d = fbtracert_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            u64::MAX,
            &mut rng,
        );
        assert!(d.links.is_empty());
        assert!(d.probes_used > 0);
    }

    #[test]
    fn random_partial_loss_is_traceable_at_high_rate() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ea_link(1, 0, 0);
        fabric.set_discipline_both(bad, LossDiscipline::RandomPartial { rate: 0.6 });
        let mut rng = SmallRng::seed_from_u64(3);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let d = fbtracert_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            u64::MAX,
            &mut rng,
        );
        assert!(d.links.contains(&bad), "blamed: {:?}", d.links);
    }

    #[test]
    fn budget_is_respected() {
        let ft = Fattree::new(4).unwrap();
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(4);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let d = fbtracert_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            7,
            &mut rng,
        );
        assert!(d.probes_used <= 14);
    }

    #[test]
    fn sweep_records_prefix_chains() {
        let ft = Fattree::new(4).unwrap();
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(5);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let sweep = fbtracert_sweep(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            u64::MAX,
            &mut rng,
        );
        assert!(!sweep.matrix.paths.is_empty());
        // Consecutive prefixes extend each other or start a new trace at
        // a single hop.
        for w in sweep.matrix.paths.windows(2) {
            assert!(
                extends(&w[1], &w[0]) || w[1].nodes().len() == 2,
                "paths must form prefix chains"
            );
        }
        // One observation per recorded prefix.
        assert_eq!(sweep.matrix.num_paths(), sweep.observations.len());
    }

    #[test]
    fn budget_truncated_hop_is_not_blamed_from_a_tiny_sample() {
        // A hop whose probe loop was cut short by the budget (sent <
        // trace_probes_per_hop) must be judged against the full per-hop
        // quota — the denominator the sweep's stop rule and the original
        // monolithic walk both use — not against its tiny sample.
        use detector_core::types::{NodeId, PathId};
        let cfg = BaselineConfig::default(); // per-hop 10, threshold 0.2.
        let paths = vec![
            ProbePath::from_route(0, vec![NodeId(0), NodeId(1)], vec![LinkId(0)]),
            ProbePath::from_route(
                1,
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![LinkId(0), LinkId(1)],
            ),
        ];
        let matrix = ProbeMatrix::from_paths(4, paths);
        let observations = vec![
            PathObservation::new(PathId(0), 10, 0),
            // Truncated: 1 background loss out of 2 probes — 0.5 of the
            // sample but only 0.1 of the per-hop quota.
            PathObservation::new(PathId(1), 2, 1),
        ];
        let localizer = FbtracertLocalizer {
            cfg,
            probe_links: usize::MAX,
        };
        let d = localizer.localize(&matrix, &observations);
        assert!(
            d.suspect_links().is_empty(),
            "tiny truncated sample must not implicate a hop, got {:?}",
            d.suspect_links()
        );
    }

    #[test]
    fn trait_object_dispatch_matches_composed_call() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ac_link(0, 0, 0);
        fabric.set_discipline_both(bad, LossDiscipline::Full);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let cfg = BaselineConfig::default();

        let mut rng = SmallRng::seed_from_u64(6);
        let sweep = fbtracert_sweep(&ft, &fabric, &suspects, &cfg, u64::MAX, &mut rng);
        let localizer: Box<dyn Localizer> = Box::new(FbtracertLocalizer::for_topology(&ft, cfg));
        let via_trait = localizer.localize(&sweep.matrix, &sweep.observations);

        let mut rng = SmallRng::seed_from_u64(6);
        let composed = fbtracert_localize(&ft, &fabric, &suspects, &cfg, u64::MAX, &mut rng);
        assert_eq!(via_trait.suspect_links(), composed.links);
        assert!(composed.links.contains(&bad));
    }
}
