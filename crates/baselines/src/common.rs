//! Shared pieces of the baseline systems.

use detector_core::pmc::ProbeMatrix;
use detector_core::types::{NodeId, PathObservation};

/// Baseline behaviour knobs (kept identical across systems, §6.2: "we
/// implement those details in the same way across all three systems").
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    /// A pair is suspect when its loss ratio reaches this (same noise
    /// filter as deTector's pre-processing, 1e-3).
    pub pair_loss_threshold: f64,
    /// Minimum lost probes for a pair to be suspect.
    pub pair_min_loss: u64,
    /// Probes per parallel path during a Netbouncer sweep.
    pub sweep_probes_per_path: u32,
    /// Probes per TTL per path during an fbtracert trace.
    pub trace_probes_per_hop: u32,
    /// Fraction of lossy traces needed to blame a hop.
    pub hop_blame_threshold: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            pair_loss_threshold: 1e-3,
            pair_min_loss: 1,
            sweep_probes_per_path: 20,
            trace_probes_per_hop: 10,
            hop_blame_threshold: 0.2,
        }
    }
}

/// Loss counters of one probed server pair over a detection window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairObservation {
    /// Pinger server.
    pub src: NodeId,
    /// Target server.
    pub dst: NodeId,
    /// Probes sent.
    pub sent: u64,
    /// Probes lost.
    pub lost: u64,
}

impl PairObservation {
    /// Loss ratio of the pair.
    pub fn loss_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

/// What a detection window produced.
#[derive(Clone, Debug, Default)]
pub struct DetectionResult {
    /// Per-pair counters.
    pub pairs: Vec<PairObservation>,
    /// Pairs exceeding the loss threshold (candidates for localization).
    pub suspects: Vec<(NodeId, NodeId)>,
    /// Probes consumed (ping + reply, as Fig. 5 counts them).
    pub probes_used: u64,
}

/// What a localization sweep gathered: an ad-hoc probe matrix over the
/// swept paths plus one observation per path.
///
/// Feeding this to a [`Localizer`](detector_core::pll::Localizer) —
/// Netbouncer's tomography or fbtracert's hop-blame walk — yields the
/// baseline's diagnosis; the split mirrors deTector's own matrix /
/// observations / localize pipeline so every system shares one
/// inference interface.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The swept paths as a probe matrix.
    pub matrix: ProbeMatrix,
    /// Loss counters per swept path.
    pub observations: Vec<PathObservation>,
    /// Probes consumed by the sweep (ping + reply).
    pub probes_used: u64,
}

/// Probe accounting shared by detection and localization phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeBudget {
    /// Round trips performed.
    pub round_trips: u64,
}

impl ProbeBudget {
    /// Fig. 5 counts ping and reply separately.
    pub fn probes(&self) -> u64 {
        self.round_trips * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_loss_ratio() {
        let p = PairObservation {
            src: NodeId(0),
            dst: NodeId(1),
            sent: 200,
            lost: 50,
        };
        assert!((p.loss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn budget_counts_ping_and_reply() {
        let b = ProbeBudget { round_trips: 10 };
        assert_eq!(b.probes(), 20);
    }
}
