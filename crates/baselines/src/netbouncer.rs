//! Netbouncer-style localization (§6.3): after Pingmesh raises a suspect
//! server pair, sweep *all* parallel paths between the pair with
//! source-routed probes and infer per-link health from the per-path
//! results. Netbouncer's real inference estimates per-link success
//! probabilities from lossy *and* clean paths, so the inference stage —
//! [`NetbouncerLocalizer`] — runs the hit-ratio localizer over the sweep
//! observations (plain set-cover tomography cannot exonerate links that
//! clean paths passed through and mis-localizes single-pair sweeps).
//!
//! The two stages are split along the unified [`Localizer`] interface:
//! [`netbouncer_sweep`] gathers a [`SweepResult`] (probing, budgeted),
//! [`NetbouncerLocalizer::localize`] turns it into a [`Diagnosis`]
//! (inference, pure). [`netbouncer_localize`] composes both.

use detector_core::pll::{localize, Diagnosis, Localizer, PllConfig};
use detector_core::pmc::ProbeMatrix;
use detector_core::types::{LinkId, NodeId, PathObservation, ProbePath};
use detector_simnet::{Fabric, FlowKey};
use detector_topology::DcnTopology;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::common::{BaselineConfig, ProbeBudget, SweepResult};

/// Result of a localization round.
#[derive(Clone, Debug, Default)]
pub struct BaselineDiagnosis {
    /// Blamed links.
    pub links: Vec<LinkId>,
    /// Probes consumed (ping + reply).
    pub probes_used: u64,
}

/// Netbouncer's inference stage: per-link health from a path sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetbouncerLocalizer {
    /// Settings of the underlying hit-ratio localizer.
    pub cfg: PllConfig,
}

impl Localizer for NetbouncerLocalizer {
    fn name(&self) -> &str {
        "Netbouncer"
    }

    fn localize(&self, matrix: &ProbeMatrix, observations: &[PathObservation]) -> Diagnosis {
        localize(matrix, observations, &self.cfg)
    }
}

/// Sweeps every ECMP path of every suspect pair, gathering one
/// observation per parallel path until the round-trip budget runs out.
pub fn netbouncer_sweep(
    topo: &dyn DcnTopology,
    fabric: &Fabric<'_>,
    suspects: &[(NodeId, NodeId)],
    cfg: &BaselineConfig,
    budget_round_trips: u64,
    rng: &mut SmallRng,
) -> SweepResult {
    let mut budget = ProbeBudget::default();
    let mut paths: Vec<ProbePath> = Vec::new();
    let mut observations: Vec<PathObservation> = Vec::new();

    'pairs: for &(src, dst) in suspects {
        for route in topo.all_ecmp_routes(src, dst) {
            if budget.round_trips >= budget_round_trips {
                // Fixed-budget deployments stop sweeping here; the
                // remaining pairs go unlocalized this round.
                break 'pairs;
            }
            let id = paths.len() as u32;
            // Restrict the tomography universe to probe links: server
            // access links are checked by in-rack probing in all systems.
            let probe_links: Vec<LinkId> = route
                .links
                .iter()
                .copied()
                .filter(|l| l.index() < topo.probe_links())
                .collect();
            let path = ProbePath::from_route(id, route.nodes.clone(), probe_links);
            let mut sent = 0u64;
            let mut lost = 0u64;
            for p in 0..cfg.sweep_probes_per_path {
                if budget.round_trips >= budget_round_trips {
                    break;
                }
                let sport = 33_000u16
                    .wrapping_add(p as u16)
                    .wrapping_add(rng.gen_range(0..8));
                let flow = FlowKey::udp(src.0, dst.0, sport, 53533);
                let rt = fabric.round_trip(&route, flow, rng);
                budget.round_trips += 1;
                sent += 1;
                if !rt.success {
                    lost += 1;
                }
            }
            observations.push(PathObservation::new(path.id, sent, lost));
            paths.push(path);
        }
    }

    SweepResult {
        matrix: ProbeMatrix::from_paths(topo.probe_links(), paths),
        observations,
        probes_used: budget.probes(),
    }
}

/// Sweeps the suspects and localizes over the gathered observations (see
/// module docs for the inference choice): the composed two-round
/// Netbouncer pipeline.
pub fn netbouncer_localize(
    topo: &dyn DcnTopology,
    fabric: &Fabric<'_>,
    suspects: &[(NodeId, NodeId)],
    cfg: &BaselineConfig,
    budget_round_trips: u64,
    rng: &mut SmallRng,
) -> BaselineDiagnosis {
    let sweep = netbouncer_sweep(topo, fabric, suspects, cfg, budget_round_trips, rng);
    if sweep.matrix.num_paths() == 0 {
        return BaselineDiagnosis {
            links: Vec::new(),
            probes_used: sweep.probes_used,
        };
    }
    let localizer = NetbouncerLocalizer::default();
    let diagnosis = localizer.localize(&sweep.matrix, &sweep.observations);
    BaselineDiagnosis {
        links: diagnosis.suspect_links(),
        probes_used: sweep.probes_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_simnet::LossDiscipline;
    use detector_topology::Fattree;
    use rand::SeedableRng;

    #[test]
    fn sweep_localizes_full_loss() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ac_link(0, 0, 0);
        fabric.set_discipline_both(bad, LossDiscipline::Full);
        let mut rng = SmallRng::seed_from_u64(1);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let d = netbouncer_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            u64::MAX,
            &mut rng,
        );
        assert!(d.links.contains(&bad), "blamed: {:?}", d.links);
        assert!(d.probes_used > 0);
    }

    #[test]
    fn no_suspects_means_no_probes() {
        let ft = Fattree::new(4).unwrap();
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(2);
        let d = netbouncer_localize(
            &ft,
            &fabric,
            &[],
            &BaselineConfig::default(),
            u64::MAX,
            &mut rng,
        );
        assert_eq!(d.probes_used, 0);
        assert!(d.links.is_empty());
    }

    #[test]
    fn sweep_covers_all_parallel_paths() {
        let ft = Fattree::new(4).unwrap();
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(3);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(2, 1, 0))];
        let d = netbouncer_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            u64::MAX,
            &mut rng,
        );
        // 4 parallel paths × 20 probes × 2 (ping+reply).
        assert_eq!(d.probes_used, 4 * 20 * 2);

        // A tight budget is respected.
        let d = netbouncer_localize(
            &ft,
            &fabric,
            &suspects,
            &BaselineConfig::default(),
            10,
            &mut rng,
        );
        assert_eq!(d.probes_used, 10 * 2);
    }

    #[test]
    fn sweep_plus_trait_object_matches_composed_call() {
        // The unified Localizer interface must agree with the convenience
        // wrapper on identical sweep data.
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ac_link(0, 0, 0);
        fabric.set_discipline_both(bad, LossDiscipline::Full);
        let suspects = vec![(ft.server(0, 0, 0), ft.server(1, 0, 0))];
        let cfg = BaselineConfig::default();

        let mut rng = SmallRng::seed_from_u64(7);
        let sweep = netbouncer_sweep(&ft, &fabric, &suspects, &cfg, u64::MAX, &mut rng);
        let localizer: Box<dyn Localizer> = Box::new(NetbouncerLocalizer::default());
        let via_trait = localizer.localize(&sweep.matrix, &sweep.observations);

        let mut rng = SmallRng::seed_from_u64(7);
        let composed = netbouncer_localize(&ft, &fabric, &suspects, &cfg, u64::MAX, &mut rng);
        assert_eq!(via_trait.suspect_links(), composed.links);
        assert!(via_trait.suspect_links().contains(&bad));
    }
}
