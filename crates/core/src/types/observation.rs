//! End-to-end probing observations consumed by the localization algorithms.

use serde::{Deserialize, Serialize};

use super::PathId;

/// Aggregated probing result for one probe path over one collection window.
///
/// Pingers aggregate per-path counters every 30 seconds (§6.1 of the paper)
/// and ship them to the diagnoser; this is the wire format of one row of
/// such a report after it has been keyed to a probe-matrix path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathObservation {
    /// The probe path the counters refer to.
    pub path: PathId,
    /// Number of probes sent on the path in the window.
    pub sent: u64,
    /// Number of probes lost (no response within the timeout).
    pub lost: u64,
}

impl PathObservation {
    /// Creates an observation, clamping `lost` to `sent`.
    pub fn new(path: PathId, sent: u64, lost: u64) -> Self {
        Self {
            path,
            sent,
            lost: lost.min(sent),
        }
    }

    /// Fraction of probes lost, or 0.0 when nothing was sent.
    #[inline]
    pub fn loss_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }

    /// Returns true if at least one probe was lost.
    #[inline]
    pub fn is_lossy(&self) -> bool {
        self.lost > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lost_is_clamped_to_sent() {
        let o = PathObservation::new(PathId(0), 10, 25);
        assert_eq!(o.lost, 10);
        assert!((o.loss_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn loss_ratio_of_clean_path_is_zero() {
        let o = PathObservation::new(PathId(0), 100, 0);
        assert_eq!(o.loss_ratio(), 0.0);
        assert!(!o.is_lossy());
    }

    #[test]
    fn loss_ratio_handles_zero_sent() {
        let o = PathObservation::new(PathId(0), 0, 0);
        assert_eq!(o.loss_ratio(), 0.0);
    }
}
