//! Small integer identifier newtypes.
//!
//! All identifiers are dense indices assigned by the topology (or, for
//! [`PathId`], by whoever enumerates candidate paths). Using newtypes keeps
//! the three id spaces from being mixed up while staying `Copy` and free of
//! runtime overhead.

use serde::{Deserialize, Serialize};

/// Identifier of a node (switch or server) in a data center network.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Identifier of an undirected physical link.
///
/// The paper treats each inter-switch link as bi-directional: a probe along
/// a path exercises the forward direction, and the response exercises the
/// reverse direction, so a single identifier per undirected link suffices
/// for the probe matrix (§4.1). When deTector blames a link, the fault may
/// lie in either direction or in one of the two adjacent switches.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LinkId(pub u32);

/// Identifier of a probe path within one probe matrix.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PathId(pub u32);

impl NodeId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PathId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A contiguous block of [`PathId`]s owned by one allocation unit (a
/// probe-plan cell).
///
/// Segmented id allocation gives every independently re-solvable cell of
/// a probe plan its own stable range: ids inside the range are assigned
/// densely from [`PathIdRange::base`], and the slack between the cell's
/// current path count and [`PathIdRange::capacity`] (the *headroom*)
/// absorbs growth, so a re-solve that changes one cell's path count
/// never shifts the ids of any other cell. A cell is re-based — handed a
/// fresh range — only when its path count overflows the capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct PathIdRange {
    /// First id of the range.
    pub base: u32,
    /// Number of ids reserved (allocated paths + headroom).
    pub capacity: u32,
}

impl PathIdRange {
    /// A range of `capacity` ids starting at `base`.
    pub fn new(base: u32, capacity: u32) -> Self {
        Self { base, capacity }
    }

    /// One-past-the-end id of the range.
    #[inline]
    pub fn end(&self) -> u32 {
        self.base + self.capacity
    }

    /// True when `id` falls inside the range.
    #[inline]
    pub fn contains(&self, id: PathId) -> bool {
        id.0 >= self.base && id.0 < self.end()
    }

    /// The `i`-th id of the range (`i < capacity`).
    #[inline]
    pub fn id(&self, i: usize) -> PathId {
        debug_assert!((i as u32) < self.capacity, "id {i} outside range {self:?}");
        PathId(self.base + i as u32)
    }

    /// True when `len` paths fit in the range.
    #[inline]
    pub fn fits(&self, len: usize) -> bool {
        len as u64 <= u64::from(self.capacity)
    }
}

impl core::fmt::Display for PathIdRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{}..p{}", self.base, self.end())
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl core::fmt::Display for LinkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl core::fmt::Display for PathId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(LinkId(1) < LinkId(2));
        assert!(NodeId(0) < NodeId(10));
        assert!(PathId(3) > PathId(2));
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(LinkId(7).to_string(), "l7");
        assert_eq!(PathId(7).to_string(), "p7");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(LinkId(42).index(), 42);
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(PathId(42).index(), 42);
    }

    #[test]
    fn ranges_contain_their_ids_and_nothing_else() {
        let r = PathIdRange::new(16, 8);
        assert_eq!(r.end(), 24);
        assert!(!r.contains(PathId(15)));
        assert!(r.contains(PathId(16)));
        assert!(r.contains(PathId(23)));
        assert!(!r.contains(PathId(24)));
        assert_eq!(r.id(0), PathId(16));
        assert_eq!(r.id(7), PathId(23));
        assert!(r.fits(8));
        assert!(!r.fits(9));
        assert_eq!(r.to_string(), "p16..p24");
    }
}
