//! Small integer identifier newtypes.
//!
//! All identifiers are dense indices assigned by the topology (or, for
//! [`PathId`], by whoever enumerates candidate paths). Using newtypes keeps
//! the three id spaces from being mixed up while staying `Copy` and free of
//! runtime overhead.

use serde::{Deserialize, Serialize};

/// Identifier of a node (switch or server) in a data center network.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Identifier of an undirected physical link.
///
/// The paper treats each inter-switch link as bi-directional: a probe along
/// a path exercises the forward direction, and the response exercises the
/// reverse direction, so a single identifier per undirected link suffices
/// for the probe matrix (§4.1). When deTector blames a link, the fault may
/// lie in either direction or in one of the two adjacent switches.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LinkId(pub u32);

/// Identifier of a probe path within one probe matrix.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PathId(pub u32);

impl NodeId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PathId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl core::fmt::Display for LinkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl core::fmt::Display for PathId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(LinkId(1) < LinkId(2));
        assert!(NodeId(0) < NodeId(10));
        assert!(PathId(3) > PathId(2));
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(LinkId(7).to_string(), "l7");
        assert_eq!(PathId(7).to_string(), "p7");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(LinkId(42).index(), 42);
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(PathId(42).index(), 42);
    }
}
