//! Probe path representation.

use serde::{Deserialize, Serialize};

use super::{LinkId, NodeId, PathId};

/// A candidate (or selected) probe path.
///
/// A path is described by the sequence of nodes it visits (used by the
/// simulator and the runtime for source routing) and by the *set* of
/// physical links it covers (used by the PMC and PLL algorithms, which see
/// the path as a row of the routing matrix, §4.1 of the paper).
///
/// The link set is kept sorted and de-duplicated: a path that traverses the
/// same undirected link twice (e.g. a Fattree intra-pod path that goes up to
/// a core switch and back down through the same aggregation switch) covers
/// that link once, exactly as a binary routing-matrix row would record it.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProbePath {
    /// Dense identifier of this path within its candidate set or matrix.
    pub id: PathId,
    /// Node sequence from source ToR to destination ToR (may be empty for
    /// purely abstract paths used in algorithm unit tests).
    nodes: Vec<NodeId>,
    /// Sorted, de-duplicated physical links covered by the path.
    links: Vec<LinkId>,
}

impl ProbePath {
    /// Creates a path from an explicit link set, without node information.
    ///
    /// The links are sorted and de-duplicated. This constructor is intended
    /// for algorithm-level tests and for callers that manage node sequences
    /// themselves.
    pub fn from_links(id: u32, mut links: Vec<LinkId>) -> Self {
        links.sort_unstable();
        links.dedup();
        Self {
            id: PathId(id),
            nodes: Vec::new(),
            links,
        }
    }

    /// Creates a path from a node sequence plus the traversed links.
    ///
    /// `links` should list the traversed links in hop order; they are
    /// normalized (sorted, de-duplicated) for matrix use.
    pub fn from_route(id: u32, nodes: Vec<NodeId>, mut links: Vec<LinkId>) -> Self {
        links.sort_unstable();
        links.dedup();
        Self {
            id: PathId(id),
            nodes,
            links,
        }
    }

    /// The sorted, de-duplicated set of physical links covered by the path.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// The node sequence of the path (empty for abstract paths).
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Returns true if the path covers `link`.
    #[inline]
    pub fn covers(&self, link: LinkId) -> bool {
        self.links.binary_search(&link).is_ok()
    }

    /// Number of distinct physical links covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns true if the path covers no link.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Re-assigns the path id (used when a selection is compacted into a
    /// probe matrix whose rows are re-numbered densely).
    pub(crate) fn with_id(mut self, id: PathId) -> Self {
        self.id = id;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_are_sorted_and_deduped() {
        let p = ProbePath::from_links(0, vec![LinkId(5), LinkId(1), LinkId(5), LinkId(3)]);
        assert_eq!(p.links(), &[LinkId(1), LinkId(3), LinkId(5)]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn covers_uses_binary_search() {
        let p = ProbePath::from_links(0, vec![LinkId(2), LinkId(9), LinkId(4)]);
        assert!(p.covers(LinkId(4)));
        assert!(!p.covers(LinkId(5)));
    }

    #[test]
    fn route_keeps_nodes() {
        let p = ProbePath::from_route(
            1,
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![LinkId(10), LinkId(11)],
        );
        assert_eq!(p.nodes().len(), 3);
        assert_eq!(p.links().len(), 2);
    }

    #[test]
    fn empty_path_is_empty() {
        let p = ProbePath::from_links(0, vec![]);
        assert!(p.is_empty());
    }
}
