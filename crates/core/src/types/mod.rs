//! Shared identifier, path and observation types used across the workspace.

mod ids;
mod observation;
mod path;

pub use ids::{LinkId, NodeId, PathId, PathIdRange};
pub use observation::PathObservation;
pub use path::ProbePath;
