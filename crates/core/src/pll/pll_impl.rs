//! The PLL greedy (§5.3, Steps 1–5).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use super::rate::estimate_rate;
use super::{preprocess, PllConfig};
use crate::json::{Json, ToJson};
use crate::pmc::ProbeMatrix;
use crate::types::{LinkId, PathId, PathObservation};

/// A link blamed by a localization algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuspectLink {
    /// The blamed physical link.
    pub link: LinkId,
    /// Estimated loss rate on the link (MLE under the assumption that the
    /// losses of the paths this link explains happened on this link).
    pub estimated_loss_rate: f64,
    /// Hit ratio of the link at selection time: lossy observed paths
    /// through the link / all observed paths through the link.
    pub hit_ratio: f64,
    /// Number of lossy paths this link explained.
    pub explained_paths: u32,
    /// Number of lost packets this link explained.
    pub explained_losses: u64,
}

/// Result of a localization run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Blamed links in selection order (first = strongest explanation).
    pub suspects: Vec<SuspectLink>,
    /// Lossy paths whose losses no suspect link explains (e.g. all their
    /// links stayed below the hit-ratio threshold).
    pub unexplained_paths: Vec<PathId>,
}

impl Diagnosis {
    /// Blamed link ids, sorted.
    pub fn suspect_links(&self) -> Vec<LinkId> {
        let mut v: Vec<LinkId> = self.suspects.iter().map(|s| s.link).collect();
        v.sort_unstable();
        v
    }

    /// True if nothing was blamed and nothing was left unexplained.
    pub fn is_clean(&self) -> bool {
        self.suspects.is_empty() && self.unexplained_paths.is_empty()
    }

    /// Rebuilds a diagnosis from its [`ToJson`] representation.
    pub fn from_json(v: &Json) -> Option<Diagnosis> {
        let suspects = v
            .get("suspects")?
            .as_array()?
            .iter()
            .map(SuspectLink::from_json)
            .collect::<Option<Vec<_>>>()?;
        let unexplained_paths = v
            .get("unexplained_paths")?
            .as_array()?
            .iter()
            .map(|p| p.as_u32().map(PathId))
            .collect::<Option<Vec<_>>>()?;
        Some(Diagnosis {
            suspects,
            unexplained_paths,
        })
    }
}

impl ToJson for Diagnosis {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "suspects",
                Json::Array(self.suspects.iter().map(ToJson::to_json).collect()),
            ),
            (
                "unexplained_paths",
                Json::Array(
                    self.unexplained_paths
                        .iter()
                        .map(|p| Json::uint(p.0 as u64))
                        .collect(),
                ),
            ),
        ])
    }
}

impl SuspectLink {
    /// Rebuilds a suspect from its [`ToJson`] representation.
    pub fn from_json(v: &Json) -> Option<SuspectLink> {
        Some(SuspectLink {
            link: LinkId(v.get("link")?.as_u32()?),
            estimated_loss_rate: v.get("estimated_loss_rate")?.as_f64()?,
            hit_ratio: v.get("hit_ratio")?.as_f64()?,
            explained_paths: v.get("explained_paths")?.as_u32()?,
            explained_losses: v.get("explained_losses")?.as_u64()?,
        })
    }
}

impl ToJson for SuspectLink {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("link", Json::uint(self.link.0 as u64)),
            ("estimated_loss_rate", Json::Float(self.estimated_loss_rate)),
            ("hit_ratio", Json::Float(self.hit_ratio)),
            ("explained_paths", Json::uint(self.explained_paths as u64)),
            ("explained_losses", Json::uint(self.explained_losses)),
        ])
    }
}

/// Pre-indexed view of the observations against the probe matrix, shared
/// by PLL and the baseline localizers.
pub(super) struct ObservedMatrix {
    /// Pre-processed observations.
    pub obs: Vec<PathObservation>,
    /// For every physical link: indices into `obs` of observed paths
    /// through the link.
    pub link_paths: Vec<Vec<u32>>,
    /// Links that lie on at least one lossy observed path.
    pub candidate_links: Vec<LinkId>,
}

impl ObservedMatrix {
    pub(super) fn build(
        matrix: &ProbeMatrix,
        observations: &[PathObservation],
        cfg: &PllConfig,
    ) -> Self {
        let obs = preprocess(observations, cfg, &HashSet::new());
        let mut link_paths: Vec<Vec<u32>> = vec![Vec::new(); matrix.num_links];
        for (oi, o) in obs.iter().enumerate() {
            // Resolve through the matrix's id index: ids may be segmented
            // (sparse within per-cell ranges), and observations against a
            // retired pre-re-base id simply drop out here.
            let Some(path) = matrix.path(o.path) else {
                continue;
            };
            for l in path.links() {
                link_paths[l.index()].push(oi as u32);
            }
        }
        let mut candidate_links: Vec<LinkId> = Vec::new();
        for (li, paths) in link_paths.iter().enumerate() {
            if paths.iter().any(|&oi| obs[oi as usize].is_lossy()) {
                candidate_links.push(LinkId(li as u32));
            }
        }
        Self {
            obs,
            link_paths,
            candidate_links,
        }
    }

    /// Hit ratio of a link: lossy observed paths / all observed paths.
    pub(super) fn hit_ratio(&self, link: LinkId) -> f64 {
        let paths = &self.link_paths[link.index()];
        if paths.is_empty() {
            return 0.0;
        }
        let lossy = paths
            .iter()
            .filter(|&&oi| self.obs[oi as usize].is_lossy())
            .count();
        lossy as f64 / paths.len() as f64
    }
}

/// Localizes packet losses with the PLL algorithm.
///
/// Observations are pre-processed first (noise filtering, §5.1); callers
/// that need watchdog-based outlier exclusion should run
/// [`preprocess`](super::preprocess) with their exclusion set beforehand.
///
/// The greedy repeatedly blames, among the links whose *hit ratio* meets
/// `cfg.hit_ratio_threshold`, the link explaining the most still-unexplained
/// lost packets, until every lossy path is explained or no candidate
/// remains (remaining paths are reported in
/// [`Diagnosis::unexplained_paths`]).
pub fn localize(
    matrix: &ProbeMatrix,
    observations: &[PathObservation],
    cfg: &PllConfig,
) -> Diagnosis {
    let om = ObservedMatrix::build(matrix, observations, cfg);
    // Hit ratios are computed once: explanation does not change the
    // underlying observation data, only what remains to be explained.
    let hit: Vec<(LinkId, f64)> = om
        .candidate_links
        .iter()
        .map(|&l| (l, om.hit_ratio(l)))
        .collect();
    greedy(&om.obs, &om.link_paths, &hit, cfg)
}

/// The greedy cover (Steps 3–5) over a pre-indexed window: `obs` are the
/// pre-processed observations, `link_paths` maps every link to its
/// observed path indices, `hit` lists the candidate links with their hit
/// ratios in ascending link order. Factored out of [`localize`] so the
/// incremental mode can rerun it against a cached skeleton.
pub(super) fn greedy(
    obs: &[PathObservation],
    link_paths: &[Vec<u32>],
    hit: &[(LinkId, f64)],
    cfg: &PllConfig,
) -> Diagnosis {
    let outcome = greedy_scoped(obs, link_paths, hit, cfg, None);
    let unexplained_paths = outcome
        .unexplained
        .iter()
        .map(|&oi| obs[oi as usize].path)
        .collect();
    Diagnosis {
        suspects: outcome.suspects,
        unexplained_paths,
    }
}

/// The output of one (possibly component-scoped) greedy run: the suspects
/// in selection order plus the *indices* (into `obs`) of the lossy
/// observations no suspect explained, ascending.
#[derive(Debug)]
pub(super) struct GreedyOutcome {
    pub suspects: Vec<SuspectLink>,
    pub unexplained: Vec<u32>,
}

/// [`greedy`] restricted to a scope of observation indices. With
/// `scope = None` every observation participates (the classic global run);
/// with `Some(indices)` only those observations seed the unexplained set
/// and the remaining-loss budget, which is exactly the greedy of the
/// subproblem induced by one connected component of the path/link
/// incidence (see [`components`](super::components)) — provided `hit`
/// lists only that component's candidate links.
pub(super) fn greedy_scoped(
    obs: &[PathObservation],
    link_paths: &[Vec<u32>],
    hit: &[(LinkId, f64)],
    cfg: &PllConfig,
    scope: Option<&[u32]>,
) -> GreedyOutcome {
    let mut unexplained: Vec<bool> = vec![false; obs.len()];
    let mut remaining: u64 = 0;
    match scope {
        None => {
            for (oi, o) in obs.iter().enumerate() {
                unexplained[oi] = o.is_lossy();
                remaining += o.lost;
            }
        }
        Some(indices) => {
            for &oi in indices {
                let o = &obs[oi as usize];
                unexplained[oi as usize] = o.is_lossy();
                remaining += o.lost;
            }
        }
    }
    let mut suspects = Vec::new();

    while remaining > 0 {
        // Step 3: score = lost packets this link could still explain.
        // The paper-faithful order ranks by score with the hit ratio as a
        // filter only; the consistency-first variant promotes fully
        // consistent links (hit ratio 1: *every* observed path through
        // the link is lossy) ahead of any partially consistent one.
        let mut best: Option<(bool, u64, f64, LinkId)> = None;
        for &(l, h) in hit {
            if h < cfg.hit_ratio_threshold {
                continue;
            }
            let score: u64 = link_paths[l.index()]
                .iter()
                .filter(|&&oi| unexplained[oi as usize])
                .map(|&oi| obs[oi as usize].lost)
                .sum();
            if score == 0 {
                continue;
            }
            let consistent = cfg.prefer_consistent && h >= 1.0 - 1e-12;
            let better = match best {
                None => true,
                Some((bc, bs, bh, bl)) => {
                    (consistent, score, h, std::cmp::Reverse(l))
                        > (bc, bs, bh, std::cmp::Reverse(bl))
                }
            };
            if better {
                best = Some((consistent, score, h, l));
            }
        }
        let Some((_, score, h, link)) = best else {
            break;
        };

        // Step 4: blame the link and explain its lossy paths.
        let mut explained_paths = 0u32;
        let mut samples: Vec<(u64, u64)> = Vec::new();
        for &oi in &link_paths[link.index()] {
            let oi = oi as usize;
            if unexplained[oi] {
                unexplained[oi] = false;
                explained_paths += 1;
                remaining -= obs[oi].lost;
                samples.push((obs[oi].sent, obs[oi].lost));
            }
        }
        suspects.push(SuspectLink {
            link,
            estimated_loss_rate: estimate_rate(&samples),
            hit_ratio: h,
            explained_paths,
            explained_losses: score,
        });
    }

    let unexplained_indices = (0..obs.len() as u32)
        .filter(|&oi| unexplained[oi as usize])
        .collect();
    GreedyOutcome {
        suspects,
        unexplained: unexplained_indices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProbePath;

    /// A 4-link matrix: p0={0,1}, p1={0,2}, p2={2,3}, p3={3}, p4={1}.
    fn matrix() -> ProbeMatrix {
        let paths = vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(0), LinkId(2)]),
            ProbePath::from_links(2, vec![LinkId(2), LinkId(3)]),
            ProbePath::from_links(3, vec![LinkId(3)]),
            ProbePath::from_links(4, vec![LinkId(1)]),
        ];
        ProbeMatrix::from_paths(4, paths)
    }

    fn obs(rows: &[(u32, u64, u64)]) -> Vec<PathObservation> {
        rows.iter()
            .map(|&(p, sent, lost)| PathObservation::new(PathId(p), sent, lost))
            .collect()
    }

    #[test]
    fn single_full_loss_is_localized() {
        // Link 0 fully bad: p0 and p1 lose everything, others clean.
        let d = localize(
            &matrix(),
            &obs(&[
                (0, 100, 100),
                (1, 100, 100),
                (2, 100, 0),
                (3, 100, 0),
                (4, 100, 0),
            ]),
            &PllConfig::default(),
        );
        assert_eq!(d.suspect_links(), vec![LinkId(0)]);
        let s = &d.suspects[0];
        assert!((s.estimated_loss_rate - 1.0).abs() < 1e-9);
        assert_eq!(s.explained_paths, 2);
        assert!(d.unexplained_paths.is_empty());
    }

    #[test]
    fn hit_ratio_filters_partial_suspects() {
        // Only p0 is lossy. Links 0 and 1 both lie on it; link 0 has hit
        // ratio 1/2 (p1 clean), link 1 has 1/2 (p4 clean). With the 0.6
        // threshold nothing qualifies and the loss stays unexplained.
        let d = localize(
            &matrix(),
            &obs(&[
                (0, 100, 40),
                (1, 100, 0),
                (2, 100, 0),
                (3, 100, 0),
                (4, 100, 0),
            ]),
            &PllConfig::default(),
        );
        assert!(d.suspects.is_empty());
        assert_eq!(d.unexplained_paths, vec![PathId(0)]);

        // Lowering the threshold lets the greedy blame one of them.
        let d = localize(
            &matrix(),
            &obs(&[
                (0, 100, 40),
                (1, 100, 0),
                (2, 100, 0),
                (3, 100, 0),
                (4, 100, 0),
            ]),
            &PllConfig::default().with_hit_ratio(0.5),
        );
        assert_eq!(d.suspects.len(), 1);
    }

    #[test]
    fn two_failures_are_both_blamed() {
        // Links 1 and 3 bad (partial): p0, p4 lossy (via 1); p2, p3 lossy
        // (via 3).
        let d = localize(
            &matrix(),
            &obs(&[
                (0, 100, 30),
                (1, 100, 0),
                (2, 100, 35),
                (3, 100, 30),
                (4, 100, 25),
            ]),
            &PllConfig::default(),
        );
        assert_eq!(d.suspect_links(), vec![LinkId(1), LinkId(3)]);
        assert!(d.unexplained_paths.is_empty());
    }

    #[test]
    fn noise_produces_clean_diagnosis() {
        let d = localize(
            &matrix(),
            &obs(&[(0, 100_000, 3), (1, 100_000, 5), (2, 100_000, 0)]),
            &PllConfig::default(),
        );
        assert!(d.is_clean());
    }

    #[test]
    fn localizes_over_segmented_path_ids() {
        // The same single-full-loss scenario, but with the matrix ids
        // living in two plan-cell ranges (0.. and 16..) with headroom
        // gaps: observations resolve through the id index.
        let paths = vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(0)]),
            ProbePath::from_links(16, vec![LinkId(2), LinkId(3)]),
            ProbePath::from_links(17, vec![LinkId(3)]),
        ];
        let m = ProbeMatrix::from_segmented(4, paths);
        let d = localize(
            &m,
            &obs(&[(0, 100, 100), (1, 100, 100), (16, 100, 0), (17, 100, 0)]),
            &PllConfig::default(),
        );
        assert_eq!(d.suspect_links(), vec![LinkId(0)]);
        // A retired (unknown) id never aliases another row: its losses
        // surface as unexplained instead of blaming some other path's
        // links.
        let d = localize(
            &m,
            &obs(&[(7, 100, 100), (16, 100, 0), (17, 100, 0)]),
            &PllConfig::default(),
        );
        assert!(d.suspects.is_empty());
        assert_eq!(d.unexplained_paths, vec![PathId(7)]);
    }

    #[test]
    fn consistency_first_prefers_fully_consistent_links() {
        // Link 0 lies on p0, p1 (lossy) and p2 (clean): hit ratio 2/3,
        // score 200. Links 1 and 2 are fully consistent (hit ratio 1)
        // with score 100 each. The paper-faithful order blames link 0
        // alone; consistency-first blames exactly the consistent pair.
        let paths = vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(0), LinkId(2)]),
            ProbePath::from_links(2, vec![LinkId(0)]),
        ];
        let m = ProbeMatrix::from_paths(3, paths);
        let window = [(0u32, 100u64, 100u64), (1, 100, 100), (2, 100, 0)];

        let score_first = localize(&m, &obs(&window), &PllConfig::default());
        assert_eq!(score_first.suspect_links(), vec![LinkId(0)]);

        let consistency_first =
            localize(&m, &obs(&window), &PllConfig::default().consistency_first());
        assert_eq!(
            consistency_first.suspect_links(),
            vec![LinkId(1), LinkId(2)]
        );
        assert!(consistency_first.unexplained_paths.is_empty());
    }

    #[test]
    fn rate_estimate_reflects_partial_loss() {
        // Link 3 drops ~30%.
        let d = localize(
            &matrix(),
            &obs(&[
                (0, 100, 0),
                (1, 100, 0),
                (2, 100, 31),
                (3, 100, 29),
                (4, 100, 0),
            ]),
            &PllConfig::default(),
        );
        assert_eq!(d.suspect_links(), vec![LinkId(3)]);
        let r = d.suspects[0].estimated_loss_rate;
        assert!((r - 0.30).abs() < 0.02, "estimated {r}");
    }
}
