//! Localization quality metrics, with the paper's exact definitions (§5.3
//! and §6.4).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::json::{Json, ToJson};
use crate::types::LinkId;

/// Outcome of comparing a diagnosis against ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LocalizationMetrics {
    /// Truly bad links correctly blamed.
    pub true_positives: usize,
    /// Good links incorrectly blamed.
    pub false_positives: usize,
    /// Truly bad links not blamed.
    pub false_negatives: usize,
    /// Accuracy = TP / truly-bad (the paper's "true positive ratio").
    pub accuracy: f64,
    /// False-positive ratio = FP / (TP + FP): good links blamed over all
    /// links identified (good and bad).
    pub false_positive_ratio: f64,
    /// False-negative ratio = FN / truly-bad.
    pub false_negative_ratio: f64,
}

/// Compares blamed links against the ground-truth bad set.
///
/// With an empty truth set, accuracy is 1.0 (there was nothing to find)
/// and every blamed link is a false positive.
pub fn evaluate_diagnosis(suspects: &[LinkId], truth: &[LinkId]) -> LocalizationMetrics {
    let truth_set: HashSet<LinkId> = truth.iter().copied().collect();
    let suspect_set: HashSet<LinkId> = suspects.iter().copied().collect();

    let true_positives = suspect_set.intersection(&truth_set).count();
    let false_positives = suspect_set.len() - true_positives;
    let false_negatives = truth_set.len() - true_positives;

    let accuracy = if truth_set.is_empty() {
        1.0
    } else {
        true_positives as f64 / truth_set.len() as f64
    };
    let identified = true_positives + false_positives;
    let false_positive_ratio = if identified == 0 {
        0.0
    } else {
        false_positives as f64 / identified as f64
    };
    let false_negative_ratio = if truth_set.is_empty() {
        0.0
    } else {
        false_negatives as f64 / truth_set.len() as f64
    };

    LocalizationMetrics {
        true_positives,
        false_positives,
        false_negatives,
        accuracy,
        false_positive_ratio,
        false_negative_ratio,
    }
}

impl LocalizationMetrics {
    /// Accumulates another run's counts into self (micro-averaging), and
    /// recomputes the derived ratios.
    pub fn accumulate(&mut self, other: &LocalizationMetrics) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        let truly_bad = self.true_positives + self.false_negatives;
        self.accuracy = if truly_bad == 0 {
            1.0
        } else {
            self.true_positives as f64 / truly_bad as f64
        };
        let identified = self.true_positives + self.false_positives;
        self.false_positive_ratio = if identified == 0 {
            0.0
        } else {
            self.false_positives as f64 / identified as f64
        };
        self.false_negative_ratio = if truly_bad == 0 {
            0.0
        } else {
            self.false_negatives as f64 / truly_bad as f64
        };
    }

    /// An all-zero starting point for [`Self::accumulate`].
    pub fn zero() -> Self {
        Self {
            true_positives: 0,
            false_positives: 0,
            false_negatives: 0,
            accuracy: 1.0,
            false_positive_ratio: 0.0,
            false_negative_ratio: 0.0,
        }
    }

    /// Rebuilds metrics from their [`ToJson`] representation.
    pub fn from_json(v: &Json) -> Option<LocalizationMetrics> {
        Some(LocalizationMetrics {
            true_positives: v.get("true_positives")?.as_usize()?,
            false_positives: v.get("false_positives")?.as_usize()?,
            false_negatives: v.get("false_negatives")?.as_usize()?,
            accuracy: v.get("accuracy")?.as_f64()?,
            false_positive_ratio: v.get("false_positive_ratio")?.as_f64()?,
            false_negative_ratio: v.get("false_negative_ratio")?.as_f64()?,
        })
    }
}

impl ToJson for LocalizationMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("true_positives", Json::uint(self.true_positives as u64)),
            ("false_positives", Json::uint(self.false_positives as u64)),
            ("false_negatives", Json::uint(self.false_negatives as u64)),
            ("accuracy", Json::Float(self.accuracy)),
            (
                "false_positive_ratio",
                Json::Float(self.false_positive_ratio),
            ),
            (
                "false_negative_ratio",
                Json::Float(self.false_negative_ratio),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn links(ids: &[u32]) -> Vec<LinkId> {
        ids.iter().map(|&i| LinkId(i)).collect()
    }

    #[test]
    fn perfect_diagnosis() {
        let m = evaluate_diagnosis(&links(&[1, 2]), &links(&[1, 2]));
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.false_positive_ratio, 0.0);
        assert_eq!(m.false_negative_ratio, 0.0);
    }

    #[test]
    fn partial_diagnosis() {
        let m = evaluate_diagnosis(&links(&[1, 3]), &links(&[1, 2]));
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.false_negatives, 1);
        assert!((m.accuracy - 0.5).abs() < 1e-12);
        assert!((m.false_positive_ratio - 0.5).abs() < 1e-12);
        assert!((m.false_negative_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_truth() {
        let m = evaluate_diagnosis(&links(&[5]), &links(&[]));
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.false_positive_ratio, 1.0);
    }

    #[test]
    fn duplicates_are_ignored() {
        let m = evaluate_diagnosis(&links(&[1, 1, 2]), &links(&[2, 2]));
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 1);
    }

    #[test]
    fn accumulate_micro_averages() {
        let mut acc = LocalizationMetrics::zero();
        acc.accumulate(&evaluate_diagnosis(&links(&[1]), &links(&[1, 2])));
        acc.accumulate(&evaluate_diagnosis(&links(&[3]), &links(&[3])));
        assert_eq!(acc.true_positives, 2);
        assert_eq!(acc.false_negatives, 1);
        assert!((acc.accuracy - 2.0 / 3.0).abs() < 1e-12);
    }
}
