//! Incremental PLL: re-score only what changed between windows.
//!
//! Within one plan epoch every window observes the same probe paths, so
//! the expensive part of [`localize`](super::localize) — resolving each
//! observation through the probe matrix and building the link → paths
//! index — produces the same skeleton window after window.
//! [`IncrementalPll`] caches that skeleton, keyed on the pre-processed
//! observation id vector, and per window only:
//!
//! 1. diffs the per-path *lossy* flags against the previous window and
//!    patches the per-link lossy counters for the links whose paths
//!    flipped (`O(flipped paths × path length)`);
//! 2. rebuilds the candidate list and hit ratios from those counters
//!    (`O(links)` integer scans — no per-path work);
//! 3. reruns the cheap greedy cover against the cached index.
//!
//! A window whose pre-processed observations are *identical* to the
//! previous one short-circuits to the cached verdict. Anything that can
//! change the skeleton falls back to a full rebuild: a different
//! observation id set, a different link count, or an explicit
//! [`invalidate`](IncrementalPll::invalidate) (the diagnoser calls it
//! whenever a new probe matrix is installed — plan epoch changes and
//! cycle refreshes).
//!
//! Equivalence with full PLL is by construction — the candidate order,
//! hit ratios and greedy are the same computations over the same data —
//! and is property-tested under loss × churn × cycle refresh in
//! `tests/scheduler_equivalence.rs` and `tests/distributed_equivalence.rs`.

use std::collections::HashSet;

use super::pll_impl::{greedy, Diagnosis, ObservedMatrix};
use super::{preprocess, PllConfig};
use crate::pmc::ProbeMatrix;
use crate::types::{LinkId, PathId, PathObservation};

/// Cached cross-window PLL state. One instance per diagnoser; feed it
/// every window in order and [`invalidate`](IncrementalPll::invalidate)
/// it on matrix changes.
#[derive(Debug, Default)]
pub struct IncrementalPll {
    /// Cached skeleton is usable (set after a full rebuild, cleared by
    /// [`invalidate`](IncrementalPll::invalidate)).
    valid: bool,
    /// Pre-processed observation ids the skeleton was built for.
    path_ids: Vec<PathId>,
    /// Link → indices into the observation vector.
    link_paths: Vec<Vec<u32>>,
    /// Previous window's pre-processed observations.
    obs: Vec<PathObservation>,
    /// Previous window's per-observation lossy flags.
    lossy: Vec<bool>,
    /// Per-link count of lossy observed paths (hit-ratio numerators).
    lossy_count: Vec<u32>,
    /// Previous window's verdict (for the unchanged-window shortcut).
    verdict: Diagnosis,
    full_rebuilds: u64,
    patched_windows: u64,
    reused_verdicts: u64,
}

impl IncrementalPll {
    /// Fresh, empty state: the first window always rebuilds fully.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached skeleton. Call whenever the probe matrix the
    /// observations are resolved against changes (plan epoch change,
    /// cycle refresh): path ids may be reused with different link sets,
    /// which the id-vector key alone cannot detect.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Windows that rebuilt the skeleton from scratch.
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    /// Windows that patched the cached skeleton.
    pub fn patched_windows(&self) -> u64 {
        self.patched_windows
    }

    /// Windows that returned the cached verdict unchanged.
    pub fn reused_verdicts(&self) -> u64 {
        self.reused_verdicts
    }

    /// Localizes one window, reusing the cached skeleton when the
    /// observation set allows it. Produces exactly what
    /// [`localize`](super::localize) would for the same inputs.
    pub fn localize(
        &mut self,
        matrix: &ProbeMatrix,
        observations: &[PathObservation],
        cfg: &PllConfig,
    ) -> Diagnosis {
        let obs = preprocess(observations, cfg, &HashSet::new());
        let reusable = self.valid
            && self.link_paths.len() == matrix.num_links
            && self.path_ids.len() == obs.len()
            && self.path_ids.iter().zip(&obs).all(|(p, o)| *p == o.path);
        if !reusable {
            self.rebuild(matrix, obs, cfg);
            return self.verdict.clone();
        }
        if self.obs == obs {
            self.reused_verdicts += 1;
            return self.verdict.clone();
        }

        // Patch: flip the lossy counters of links on paths whose lossy
        // flag changed since the previous window.
        for (i, o) in obs.iter().enumerate() {
            let was = self.lossy[i];
            let is = o.is_lossy();
            if was == is {
                continue;
            }
            self.lossy[i] = is;
            let Some(path) = matrix.path(o.path) else {
                continue;
            };
            for l in path.links() {
                if is {
                    self.lossy_count[l.index()] += 1;
                } else {
                    self.lossy_count[l.index()] -= 1;
                }
            }
        }
        self.obs = obs;
        self.patched_windows += 1;
        self.verdict = greedy(&self.obs, &self.link_paths, &self.hit(), cfg);
        self.verdict.clone()
    }

    /// Candidate links with hit ratios, in ascending link order — the
    /// exact list `ObservedMatrix::build` + `hit_ratio` would produce.
    fn hit(&self) -> Vec<(LinkId, f64)> {
        self.lossy_count
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(li, &c)| {
                let l = LinkId(li as u32);
                (l, c as f64 / self.link_paths[li].len() as f64)
            })
            .collect()
    }

    fn rebuild(&mut self, matrix: &ProbeMatrix, obs: Vec<PathObservation>, cfg: &PllConfig) {
        // `obs` is already pre-processed; build indexes it against the
        // matrix. Re-running preprocess inside build is a no-op on
        // already-normalized observations *except* that noise-normalized
        // rows (lost forced to 0) stay 0 — so feeding the pre-processed
        // vector is exact.
        let om = ObservedMatrix::build(matrix, &obs, cfg);
        self.path_ids = om.obs.iter().map(|o| o.path).collect();
        self.lossy = om.obs.iter().map(|o| o.is_lossy()).collect();
        self.lossy_count = vec![0; matrix.num_links];
        for (li, paths) in om.link_paths.iter().enumerate() {
            self.lossy_count[li] = paths
                .iter()
                .filter(|&&oi| om.obs[oi as usize].is_lossy())
                .count() as u32;
        }
        let hit: Vec<(LinkId, f64)> = om
            .candidate_links
            .iter()
            .map(|&l| (l, om.hit_ratio(l)))
            .collect();
        self.verdict = greedy(&om.obs, &om.link_paths, &hit, cfg);
        self.obs = om.obs;
        self.link_paths = om.link_paths;
        self.valid = true;
        self.full_rebuilds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::localize;
    use crate::types::ProbePath;

    /// p0={0,1}, p1={0,2}, p2={2,3}, p3={3}, p4={1}.
    fn matrix() -> ProbeMatrix {
        let paths = vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(0), LinkId(2)]),
            ProbePath::from_links(2, vec![LinkId(2), LinkId(3)]),
            ProbePath::from_links(3, vec![LinkId(3)]),
            ProbePath::from_links(4, vec![LinkId(1)]),
        ];
        ProbeMatrix::from_paths(4, paths)
    }

    fn obs(rows: &[(u32, u64, u64)]) -> Vec<PathObservation> {
        rows.iter()
            .map(|&(p, s, l)| PathObservation::new(PathId(p), s, l))
            .collect()
    }

    #[test]
    fn matches_full_pll_across_changing_windows() {
        let m = matrix();
        let cfg = PllConfig::default();
        let mut inc = IncrementalPll::new();
        let windows = vec![
            obs(&[
                (0, 100, 100),
                (1, 100, 100),
                (2, 100, 0),
                (3, 100, 0),
                (4, 100, 0),
            ]),
            obs(&[
                (0, 100, 0),
                (1, 100, 0),
                (2, 100, 31),
                (3, 100, 29),
                (4, 100, 0),
            ]),
            obs(&[
                (0, 100, 0),
                (1, 100, 0),
                (2, 100, 0),
                (3, 100, 0),
                (4, 100, 0),
            ]),
            obs(&[
                (0, 100, 30),
                (1, 100, 0),
                (2, 100, 35),
                (3, 100, 30),
                (4, 100, 25),
            ]),
        ];
        for w in &windows {
            assert_eq!(inc.localize(&m, w, &cfg), localize(&m, w, &cfg));
        }
        assert_eq!(inc.full_rebuilds(), 1);
        assert_eq!(inc.patched_windows(), 3);
    }

    #[test]
    fn identical_window_reuses_the_verdict() {
        let m = matrix();
        let cfg = PllConfig::default();
        let mut inc = IncrementalPll::new();
        let w = obs(&[
            (0, 100, 100),
            (1, 100, 100),
            (2, 100, 0),
            (3, 100, 0),
            (4, 100, 0),
        ]);
        let first = inc.localize(&m, &w, &cfg);
        let second = inc.localize(&m, &w, &cfg);
        assert_eq!(first, second);
        assert_eq!(inc.reused_verdicts(), 1);
        assert_eq!(inc.full_rebuilds(), 1);
    }

    #[test]
    fn changed_observation_set_triggers_a_rebuild() {
        let m = matrix();
        let cfg = PllConfig::default();
        let mut inc = IncrementalPll::new();
        inc.localize(&m, &obs(&[(0, 100, 0), (1, 100, 0)]), &cfg);
        // A path drops out of the window (e.g. its pinger went down).
        let w = obs(&[(0, 100, 100)]);
        assert_eq!(inc.localize(&m, &w, &cfg), localize(&m, &w, &cfg));
        assert_eq!(inc.full_rebuilds(), 2);
    }

    #[test]
    fn invalidate_forces_the_next_window_to_rebuild() {
        let m = matrix();
        let cfg = PllConfig::default();
        let mut inc = IncrementalPll::new();
        let w = obs(&[
            (0, 100, 0),
            (1, 100, 0),
            (2, 100, 0),
            (3, 100, 0),
            (4, 100, 0),
        ]);
        inc.localize(&m, &w, &cfg);
        inc.invalidate();
        inc.localize(&m, &w, &cfg);
        assert_eq!(inc.full_rebuilds(), 2);
        assert_eq!(inc.patched_windows(), 0);
    }

    #[test]
    fn noise_normalized_windows_stay_equivalent() {
        // A window where preprocess rewrites losses (below the noise
        // thresholds) still patches and matches full PLL.
        let m = matrix();
        let cfg = PllConfig {
            min_loss_count: 3,
            ..PllConfig::default()
        };
        let mut inc = IncrementalPll::new();
        let w1 = obs(&[
            (0, 100, 100),
            (1, 100, 100),
            (2, 100, 0),
            (3, 100, 0),
            (4, 100, 0),
        ]);
        let w2 = obs(&[
            (0, 100, 2),
            (1, 100, 1),
            (2, 100, 0),
            (3, 100, 0),
            (4, 100, 0),
        ]);
        assert_eq!(inc.localize(&m, &w1, &cfg), localize(&m, &w1, &cfg));
        assert_eq!(inc.localize(&m, &w2, &cfg), localize(&m, &w2, &cfg));
        assert_eq!(inc.patched_windows(), 1);
    }
}
