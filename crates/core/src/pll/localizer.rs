//! The unified localization interface.
//!
//! Every localization algorithm in this reproduction — PLL (§5.3) and the
//! Tomo / SCORE / OMP baselines, plus the Netbouncer and fbtracert
//! inference stages in `detector-baselines` — answers the same question:
//! *given a probe matrix and one window of end-to-end loss observations,
//! which links are faulty?* The [`Localizer`] trait captures exactly that
//! shape, so comparison harnesses drive every system through one
//! polymorphic call instead of bespoke per-algorithm glue.

use super::{
    localize, localize_omp, localize_score, localize_tomo, Diagnosis, OmpConfig, PllConfig,
};
use crate::pmc::ProbeMatrix;
use crate::types::PathObservation;

/// A packet-loss localization algorithm.
///
/// Implementors are cheap, immutable configuration holders; `localize` is
/// pure, so one instance can serve any number of windows (and threads,
/// given the `Send + Sync` supertraits).
pub trait Localizer: Send + Sync {
    /// Short human-readable algorithm name (for bench tables and logs).
    fn name(&self) -> &str;

    /// Blames a set of links for the losses in `observations`.
    fn localize(&self, matrix: &ProbeMatrix, observations: &[PathObservation]) -> Diagnosis;
}

/// PLL (§5.3): hit-ratio filtered greedy cover — the paper's algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct PllLocalizer {
    /// PLL settings (threshold τ, noise filters).
    pub cfg: PllConfig,
}

impl PllLocalizer {
    /// A PLL localizer with the given configuration.
    pub fn new(cfg: PllConfig) -> Self {
        Self { cfg }
    }
}

impl Localizer for PllLocalizer {
    fn name(&self) -> &str {
        "PLL"
    }

    fn localize(&self, matrix: &ProbeMatrix, observations: &[PathObservation]) -> Diagnosis {
        localize(matrix, observations, &self.cfg)
    }
}

/// Classic boolean network tomography (greedy set cover, no hit-ratio
/// exoneration).
#[derive(Clone, Copy, Debug, Default)]
pub struct TomoLocalizer {
    /// Pre-processing settings (the greedy itself ignores the hit ratio).
    pub cfg: PllConfig,
}

impl Localizer for TomoLocalizer {
    fn name(&self) -> &str {
        "Tomo"
    }

    fn localize(&self, matrix: &ProbeMatrix, observations: &[PathObservation]) -> Diagnosis {
        localize_tomo(matrix, observations, &self.cfg)
    }
}

/// SCORE-style maximum-coverage heuristic.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScoreLocalizer {
    /// Pre-processing settings.
    pub cfg: PllConfig,
}

impl Localizer for ScoreLocalizer {
    fn name(&self) -> &str {
        "SCORE"
    }

    fn localize(&self, matrix: &ProbeMatrix, observations: &[PathObservation]) -> Diagnosis {
        localize_score(matrix, observations, &self.cfg)
    }
}

/// Orthogonal matching pursuit over the loss-rate system.
#[derive(Clone, Copy, Debug, Default)]
pub struct OmpLocalizer {
    /// Pre-processing settings.
    pub pll: PllConfig,
    /// OMP-specific settings (residual threshold, max iterations).
    pub omp: OmpConfig,
}

impl Localizer for OmpLocalizer {
    fn name(&self) -> &str {
        "OMP"
    }

    fn localize(&self, matrix: &ProbeMatrix, observations: &[PathObservation]) -> Diagnosis {
        localize_omp(matrix, observations, &self.pll, &self.omp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{LinkId, ProbePath};

    fn fixture() -> (ProbeMatrix, Vec<PathObservation>) {
        // Link 0 fully lossy; link 1 clean.
        let matrix = ProbeMatrix::from_paths(
            2,
            vec![
                ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
                ProbePath::from_links(1, vec![LinkId(0)]),
                ProbePath::from_links(2, vec![LinkId(1)]),
            ],
        );
        let obs = vec![
            PathObservation::new(crate::types::PathId(0), 100, 100),
            PathObservation::new(crate::types::PathId(1), 100, 100),
            PathObservation::new(crate::types::PathId(2), 100, 0),
        ];
        (matrix, obs)
    }

    #[test]
    fn every_builtin_localizer_agrees_with_its_free_function() {
        let (matrix, obs) = fixture();
        let pll_cfg = PllConfig::default();
        let omp_cfg = OmpConfig::default();

        let direct: Vec<Diagnosis> = vec![
            localize(&matrix, &obs, &pll_cfg),
            localize_tomo(&matrix, &obs, &pll_cfg),
            localize_score(&matrix, &obs, &pll_cfg),
            localize_omp(&matrix, &obs, &pll_cfg, &omp_cfg),
        ];
        let localizers: Vec<Box<dyn Localizer>> = vec![
            Box::new(PllLocalizer::default()),
            Box::new(TomoLocalizer::default()),
            Box::new(ScoreLocalizer::default()),
            Box::new(OmpLocalizer::default()),
        ];
        for (l, d) in localizers.iter().zip(&direct) {
            let via_trait = l.localize(&matrix, &obs);
            assert_eq!(
                via_trait.suspect_links(),
                d.suspect_links(),
                "{} trait-object dispatch must match the direct call",
                l.name()
            );
            assert_eq!(
                via_trait.unexplained_paths,
                d.unexplained_paths,
                "{}",
                l.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            PllLocalizer::default().name().to_string(),
            TomoLocalizer::default().name().to_string(),
            ScoreLocalizer::default().name().to_string(),
            OmpLocalizer::default().name().to_string(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
