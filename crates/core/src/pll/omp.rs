//! The OMP baseline (orthogonal matching pursuit, Pati et al., ACSSC'93).
//!
//! Treats localization as sparse recovery over the linearized loss model:
//! with per-link transmission rates t_l, a path's end-to-end success rate
//! is Π t_l, so y_path = −ln(1 − loss_ratio) = Σ x_l with x_l = −ln t_l.
//! OMP greedily picks the link column most correlated with the residual,
//! re-solves least squares on the support, and stops when the residual is
//! negligible or the iteration cap is reached.

use super::pll_impl::{Diagnosis, ObservedMatrix, SuspectLink};
use super::PllConfig;
use crate::pmc::ProbeMatrix;
use crate::types::{LinkId, PathObservation};

/// OMP-specific knobs.
#[derive(Clone, Copy, Debug)]
pub struct OmpConfig {
    /// Maximum support size (number of blamed links).
    pub max_iterations: usize,
    /// Stop when the residual's infinity norm falls below this.
    pub residual_tolerance: f64,
    /// Minimum recovered loss rate for a support link to be reported.
    pub rate_threshold: f64,
}

impl Default for OmpConfig {
    fn default() -> Self {
        Self {
            max_iterations: 64,
            residual_tolerance: 1e-6,
            rate_threshold: 1e-3,
        }
    }
}

/// Localizes losses with orthogonal matching pursuit.
pub fn localize_omp(
    matrix: &ProbeMatrix,
    observations: &[PathObservation],
    cfg: &PllConfig,
    omp: &OmpConfig,
) -> Diagnosis {
    let om = ObservedMatrix::build(matrix, observations, cfg);
    let m = om.obs.len();
    if m == 0 {
        return Diagnosis::default();
    }

    // y_i = −ln(1 − loss_ratio), with full loss capped for finiteness.
    let y: Vec<f64> = om
        .obs
        .iter()
        .map(|o| -(1.0 - o.loss_ratio().min(1.0 - 1e-9)).ln())
        .collect();
    if y.iter().all(|&v| v < omp.residual_tolerance) {
        return Diagnosis::default();
    }

    let mut residual = y.clone();
    let mut support: Vec<LinkId> = Vec::new();
    let mut x = Vec::new();

    for _ in 0..omp.max_iterations {
        // Most correlated column (normalized by column norm).
        let mut best: Option<(f64, LinkId)> = None;
        for &l in &om.candidate_links {
            if support.contains(&l) {
                continue;
            }
            let paths = &om.link_paths[l.index()];
            if paths.is_empty() {
                continue;
            }
            let dot: f64 = paths.iter().map(|&oi| residual[oi as usize]).sum();
            let corr = dot.abs() / (paths.len() as f64).sqrt();
            let better = match best {
                None => true,
                Some((bc, bl)) => corr > bc || (corr == bc && l < bl),
            };
            if better && corr > 0.0 {
                best = Some((corr, l));
            }
        }
        let Some((_, pick)) = best else { break };
        support.push(pick);

        // Least squares on the support via normal equations.
        x = solve_least_squares(&om, &support, &y);

        // Refresh the residual.
        residual.copy_from_slice(&y);
        for (si, &l) in support.iter().enumerate() {
            for &oi in &om.link_paths[l.index()] {
                residual[oi as usize] -= x[si];
            }
        }
        let linf = residual.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        if linf < omp.residual_tolerance {
            break;
        }
    }

    let mut suspects: Vec<SuspectLink> = Vec::new();
    for (si, &l) in support.iter().enumerate() {
        let rate = 1.0 - (-x[si]).exp();
        if rate >= omp.rate_threshold {
            suspects.push(SuspectLink {
                link: l,
                estimated_loss_rate: rate.clamp(0.0, 1.0),
                hit_ratio: om.hit_ratio(l),
                explained_paths: om.link_paths[l.index()].len() as u32,
                explained_losses: 0,
            });
        }
    }
    Diagnosis {
        suspects,
        unexplained_paths: Vec::new(),
    }
}

/// Solves min ‖A_S x − y‖₂ over the support columns by normal equations
/// with partial-pivot Gaussian elimination (|S| is small).
fn solve_least_squares(om: &ObservedMatrix, support: &[LinkId], y: &[f64]) -> Vec<f64> {
    let k = support.len();
    let mut gram = vec![vec![0.0f64; k]; k];
    let mut rhs = vec![0.0f64; k];

    // Membership bitmaps per support column.
    let m = y.len();
    let mut member = vec![vec![false; m]; k];
    for (si, &l) in support.iter().enumerate() {
        for &oi in &om.link_paths[l.index()] {
            member[si][oi as usize] = true;
        }
    }
    for i in 0..k {
        rhs[i] = (0..m).filter(|&oi| member[i][oi]).map(|oi| y[oi]).sum();
        for j in i..k {
            let dot = (0..m).filter(|&oi| member[i][oi] && member[j][oi]).count() as f64;
            gram[i][j] = dot;
            gram[j][i] = dot;
        }
        // Tikhonov nudge keeps the system solvable when columns collide.
        gram[i][i] += 1e-9;
    }

    // Gaussian elimination with partial pivoting.
    for col in 0..k {
        let mut piv = col;
        for r in (col + 1)..k {
            if gram[r][col].abs() > gram[piv][col].abs() {
                piv = r;
            }
        }
        gram.swap(col, piv);
        rhs.swap(col, piv);
        let d = gram[col][col];
        if d.abs() < 1e-15 {
            continue;
        }
        for r in (col + 1)..k {
            let f = gram[r][col] / d;
            let (upper, lower) = gram.split_at_mut(r);
            for (rc, pc) in lower[0][col..].iter_mut().zip(&upper[col][col..]) {
                *rc -= f * pc;
            }
            rhs[r] -= f * rhs[col];
        }
    }
    let mut x = vec![0.0f64; k];
    for col in (0..k).rev() {
        let mut acc = rhs[col];
        for c in (col + 1)..k {
            acc -= gram[col][c] * x[c];
        }
        let d = gram[col][col];
        x[col] = if d.abs() < 1e-15 { 0.0 } else { acc / d };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{PathId, ProbePath};

    fn matrix() -> ProbeMatrix {
        let paths = vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(0), LinkId(2)]),
            ProbePath::from_links(2, vec![LinkId(2)]),
            ProbePath::from_links(3, vec![LinkId(1)]),
        ];
        ProbeMatrix::from_paths(3, paths)
    }

    #[test]
    fn recovers_single_random_loss() {
        // Link 0 drops 20%: p0 and p1 lose ~20%, others clean.
        let obs = vec![
            PathObservation::new(PathId(0), 1000, 200),
            PathObservation::new(PathId(1), 1000, 200),
            PathObservation::new(PathId(2), 1000, 0),
            PathObservation::new(PathId(3), 1000, 0),
        ];
        let d = localize_omp(
            &matrix(),
            &obs,
            &PllConfig::default(),
            &OmpConfig::default(),
        );
        assert_eq!(d.suspect_links(), vec![LinkId(0)]);
        let r = d.suspects[0].estimated_loss_rate;
        assert!((r - 0.2).abs() < 0.02, "estimated {r}");
    }

    #[test]
    fn clean_observations_blame_nothing() {
        let obs = vec![
            PathObservation::new(PathId(0), 1000, 0),
            PathObservation::new(PathId(1), 1000, 0),
        ];
        let d = localize_omp(
            &matrix(),
            &obs,
            &PllConfig::default(),
            &OmpConfig::default(),
        );
        assert!(d.suspects.is_empty());
    }

    #[test]
    fn two_independent_losses_are_recovered() {
        // Link 1 drops 30%, link 2 drops 10%.
        let obs = vec![
            PathObservation::new(PathId(0), 1000, 300),
            PathObservation::new(PathId(1), 1000, 100),
            PathObservation::new(PathId(2), 1000, 100),
            PathObservation::new(PathId(3), 1000, 300),
        ];
        let d = localize_omp(
            &matrix(),
            &obs,
            &PllConfig::default(),
            &OmpConfig::default(),
        );
        assert_eq!(d.suspect_links(), vec![LinkId(1), LinkId(2)]);
    }
}
