//! Loss-type classification (§7, "Loss diagnosis").
//!
//! The paper points out that the four loss patterns — full loss,
//! deterministic partial loss (blackholes matching specific headers),
//! random partial loss (bit errors, buffer overflow) and congestion-level
//! noise — "exhibit different loss characteristics" and that telling them
//! apart narrows the operator's diagnosis scope. The distinguishing
//! statistic is the *per-flow* loss profile on the suspect link:
//!
//! * full loss — every flow loses everything;
//! * deterministic partial — **bimodal**: a flow is either entirely inside
//!   the blackhole (≈100 % loss) or entirely outside (≈0 %);
//! * random partial — every flow loses at a similar intermediate rate;
//! * congestion/noise — a uniformly low rate.

use serde::{Deserialize, Serialize};

/// Per-flow probing counters on paths attributed to one suspect link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSample {
    /// Flow discriminator (e.g. the probe source port).
    pub flow: u64,
    /// Probes sent on this flow.
    pub sent: u64,
    /// Probes lost on this flow.
    pub lost: u64,
}

impl FlowSample {
    /// Creates a sample, clamping `lost` to `sent`.
    pub fn new(flow: u64, sent: u64, lost: u64) -> Self {
        Self {
            flow,
            sent,
            lost: lost.min(sent),
        }
    }

    fn rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

/// The inferred loss pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossType {
    /// All flows lose (nearly) everything: link down, dead port.
    Full,
    /// Bimodal per-flow fates: packet blackhole / misconfigured rule.
    DeterministicPartial,
    /// Uniform intermediate per-flow loss: bit flips, CRC errors,
    /// overflow.
    RandomPartial,
    /// Uniformly low rate: transient congestion or background noise, not
    /// a failure.
    Congestion,
}

/// A classification with its supporting statistics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LossClassification {
    /// The inferred pattern.
    pub loss_type: LossType,
    /// Pooled loss rate over all flows.
    pub overall_rate: f64,
    /// Fraction of flows losing ≥ 90 %.
    pub high_loss_flows: f64,
    /// Fraction of flows losing ≤ 10 %.
    pub low_loss_flows: f64,
    /// Number of flows observed.
    pub flows: usize,
}

/// Classification thresholds (documented defaults; tune from operator
/// experience like the hit-ratio threshold, §5.3).
#[derive(Clone, Copy, Debug)]
pub struct ClassifyConfig {
    /// Overall rate at or above which the loss is "full".
    pub full_rate: f64,
    /// Overall rate at or below which the loss is congestion/noise.
    pub congestion_rate: f64,
    /// A flow is "high loss" at or above this rate.
    pub high_flow_rate: f64,
    /// A flow is "low loss" at or below this rate.
    pub low_flow_rate: f64,
    /// Bimodality: high+low flow fractions needed to call a blackhole.
    pub bimodal_mass: f64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        Self {
            full_rate: 0.95,
            congestion_rate: 0.01,
            high_flow_rate: 0.9,
            low_flow_rate: 0.1,
            bimodal_mass: 0.9,
        }
    }
}

/// Classifies the loss pattern behind a suspect link from per-flow
/// samples of the paths it explains.
///
/// Returns `None` when there is no evidence (no flows with sent > 0).
pub fn classify_loss(samples: &[FlowSample], cfg: &ClassifyConfig) -> Option<LossClassification> {
    let observed: Vec<&FlowSample> = samples.iter().filter(|s| s.sent > 0).collect();
    if observed.is_empty() {
        return None;
    }
    let sent: u64 = observed.iter().map(|s| s.sent).sum();
    let lost: u64 = observed.iter().map(|s| s.lost).sum();
    let overall = lost as f64 / sent as f64;

    let n = observed.len() as f64;
    let high = observed
        .iter()
        .filter(|s| s.rate() >= cfg.high_flow_rate)
        .count() as f64
        / n;
    let low = observed
        .iter()
        .filter(|s| s.rate() <= cfg.low_flow_rate)
        .count() as f64
        / n;

    let loss_type = if overall >= cfg.full_rate {
        LossType::Full
    } else if overall <= cfg.congestion_rate {
        LossType::Congestion
    } else if high > 0.0 && low > 0.0 && high + low >= cfg.bimodal_mass {
        LossType::DeterministicPartial
    } else {
        LossType::RandomPartial
    };
    Some(LossClassification {
        loss_type,
        overall_rate: overall,
        high_loss_flows: high,
        low_loss_flows: low,
        flows: observed.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClassifyConfig {
        ClassifyConfig::default()
    }

    #[test]
    fn full_loss_is_classified() {
        let samples: Vec<FlowSample> = (0..16).map(|f| FlowSample::new(f, 10, 10)).collect();
        let c = classify_loss(&samples, &cfg()).unwrap();
        assert_eq!(c.loss_type, LossType::Full);
        assert!((c.overall_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blackhole_is_bimodal() {
        // Half the flows fully blackholed, half clean.
        let mut samples = Vec::new();
        for f in 0..8 {
            samples.push(FlowSample::new(f, 10, 10));
        }
        for f in 8..16 {
            samples.push(FlowSample::new(f, 10, 0));
        }
        let c = classify_loss(&samples, &cfg()).unwrap();
        assert_eq!(c.loss_type, LossType::DeterministicPartial);
        assert!((c.high_loss_flows - 0.5).abs() < 1e-12);
        assert!((c.low_loss_flows - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_partial_is_uniform_intermediate() {
        // Every flow loses ~30%.
        let samples: Vec<FlowSample> = (0..16).map(|f| FlowSample::new(f, 20, 6)).collect();
        let c = classify_loss(&samples, &cfg()).unwrap();
        assert_eq!(c.loss_type, LossType::RandomPartial);
    }

    #[test]
    fn low_rate_is_congestion() {
        let mut samples: Vec<FlowSample> = (0..99).map(|f| FlowSample::new(f, 100, 0)).collect();
        samples.push(FlowSample::new(99, 100, 50));
        let c = classify_loss(&samples, &cfg()).unwrap();
        assert_eq!(c.loss_type, LossType::Congestion);
    }

    #[test]
    fn empty_evidence_is_none() {
        assert!(classify_loss(&[], &cfg()).is_none());
        assert!(classify_loss(&[FlowSample::new(0, 0, 0)], &cfg()).is_none());
    }

    #[test]
    fn lost_clamps_to_sent() {
        let s = FlowSample::new(0, 5, 50);
        assert_eq!(s.lost, 5);
    }
}
