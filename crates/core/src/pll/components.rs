//! Component-decomposed parallel PLL: Observation 1 of §4.3 applied to
//! the localization stage (§5).
//!
//! The path/link incidence graph of one observed window splits into
//! connected components; losses in one component can only be explained by
//! that component's links, so the greedy cover decomposes into
//! independent per-component covers that run in parallel on a
//! [`JobPool`]. [`ComponentPll`] caches the skeleton (link→paths index,
//! component partition) per plan epoch exactly like
//! [`IncrementalPll`](super::IncrementalPll) — reused while the observed
//! path-id set is stable, patched per window for flipped lossy flags,
//! fully rebuilt on [`invalidate`](ComponentPll::invalidate) (new probe
//! matrix: plan epoch change, cycle refresh) — so steady-state windows
//! pay only the per-component greedy.
//!
//! # Why the merged cover equals the global greedy
//!
//! Component subproblems are *independent*: a link's hit ratio is a
//! per-window constant (explanation never rewrites observations), and a
//! pick in one component cannot change scores in another (they share no
//! observed paths). Within one component the global greedy's picks form a
//! strictly decreasing sequence of selection keys
//! `(consistent, explained_losses, hit_ratio, smaller-link-wins)` — each
//! pick only lowers the remaining candidates' scores — and the key is
//! recorded verbatim on every [`SuspectLink`]. The global greedy is
//! therefore exactly the descending merge of the per-component pick
//! sequences, and since keys are globally unique (the link id
//! participates), merging reduces to sorting the concatenated suspects by
//! key. The same holds for unexplained paths: each lossy observation
//! belongs to exactly one component (or to none, when its path id does
//! not resolve in the matrix — then nothing can ever explain it), so the
//! global unexplained list is the index-ordered union of the
//! per-component leftovers and those stray observations. The result is
//! bit-identical to [`localize`](super::localize) — property-tested in
//! this module and end-to-end (results + full ordered event streams) in
//! `tests/scheduler_equivalence.rs` and `tests/distributed_equivalence.rs`.

use std::collections::HashSet;
use std::sync::Arc;

use super::pll_impl::{greedy_scoped, Diagnosis, GreedyOutcome, ObservedMatrix, SuspectLink};
use super::{preprocess, PllConfig};
use crate::pmc::{JobPool, ProbeMatrix};
use crate::types::{LinkId, PathId, PathObservation};

/// Immutable per-window solve state shared by that window's
/// [`ComponentJob`]s.
#[derive(Debug)]
struct Snapshot {
    obs: Vec<PathObservation>,
    link_paths: Vec<Vec<u32>>,
    lossy_count: Vec<u32>,
    cfg: PllConfig,
}

/// One component's greedy cover as a self-contained, sendable work item:
/// run it on any thread (a [`JobPool`] worker, a scheduler's probe
/// worker, inline) and hand the [`ComponentVerdict`] back to
/// [`ComponentPll::complete`]. Jobs of one window share their snapshot.
#[derive(Clone, Debug)]
pub struct ComponentJob {
    shared: Arc<Snapshot>,
    /// The component's link indices, ascending.
    links: Vec<u32>,
    /// The component's observation indices, ascending.
    scope: Vec<u32>,
}

impl ComponentJob {
    /// Runs the component's greedy cover. Pure: no shared mutable state,
    /// any order and thread.
    pub fn run(&self) -> ComponentVerdict {
        let s = &self.shared;
        // The component's candidate hit list, ascending link order — the
        // restriction of what `localize` computes globally.
        let hit: Vec<(LinkId, f64)> = self
            .links
            .iter()
            .filter_map(|&li| {
                let lossy = *s.lossy_count.get(li as usize)?;
                if lossy == 0 {
                    return None;
                }
                let total = s.link_paths.get(li as usize)?.len();
                Some((LinkId(li), lossy as f64 / total as f64))
            })
            .collect();
        ComponentVerdict(greedy_scoped(
            &s.obs,
            &s.link_paths,
            &hit,
            &s.cfg,
            Some(&self.scope),
        ))
    }
}

/// The opaque result of one [`ComponentJob`]; collect every job's verdict
/// and feed them (any order) to [`ComponentPll::complete`].
#[derive(Debug)]
pub struct ComponentVerdict(GreedyOutcome);

impl ComponentVerdict {
    /// A verdict with no suspects and no unexplained paths — the
    /// identity of the merge. Lets executor plumbing produce a
    /// placeholder where a job slot is structurally unreachable.
    pub fn empty() -> Self {
        ComponentVerdict(GreedyOutcome {
            suspects: Vec::new(),
            unexplained: Vec::new(),
        })
    }
}

/// What [`ComponentPll::prepare`] decided about the window.
#[derive(Debug)]
pub enum ComponentPlan {
    /// The diagnosis is already final (cached verdict, or an all-healthy
    /// window) — no jobs to run and no [`complete`](ComponentPll::complete)
    /// call due.
    Ready(Diagnosis),
    /// Per-component jobs to execute — concurrently or not — before
    /// handing every verdict to [`complete`](ComponentPll::complete).
    Fanout(Vec<ComponentJob>),
}

/// Sentinel for an observation outside every component (its path id does
/// not resolve in the matrix, or the path covers no links).
const NO_COMP: u32 = u32::MAX;

/// One connected component of the observed path/link incidence.
#[derive(Clone, Debug)]
struct Component {
    /// Link indices of the component, ascending.
    links: Vec<u32>,
    /// Observation indices of the component, ascending.
    obs: Vec<u32>,
}

/// Cached cross-window component-parallel PLL state. One instance per
/// diagnoser; feed it every window in order and
/// [`invalidate`](ComponentPll::invalidate) it on matrix changes, exactly
/// like [`IncrementalPll`](super::IncrementalPll).
#[derive(Debug, Default)]
pub struct ComponentPll {
    /// Cached skeleton is usable (set after a full rebuild, cleared by
    /// [`invalidate`](ComponentPll::invalidate)).
    valid: bool,
    /// Pre-processed observation ids the skeleton was built for.
    path_ids: Vec<PathId>,
    /// Link → indices into the observation vector.
    link_paths: Vec<Vec<u32>>,
    /// Observation → indices of the links its path covers.
    obs_links: Vec<Vec<u32>>,
    /// Previous window's pre-processed observations.
    obs: Vec<PathObservation>,
    /// Previous window's per-observation lossy flags.
    lossy: Vec<bool>,
    /// Per-link count of lossy observed paths (hit-ratio numerators).
    lossy_count: Vec<u32>,
    /// The component partition, ascending by smallest link index.
    comps: Vec<Component>,
    /// Observation → component ordinal ([`NO_COMP`] for stray paths).
    comp_of_obs: Vec<u32>,
    /// Previous window's verdict (for the unchanged-window shortcut).
    verdict: Diagnosis,
    /// `prefer_consistent` of the window being prepared, for the merge in
    /// [`complete`](ComponentPll::complete).
    prefer_consistent: bool,
    full_rebuilds: u64,
    patched_windows: u64,
    reused_verdicts: u64,
}

impl ComponentPll {
    /// Fresh, empty state: the first window always rebuilds fully.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached skeleton and partition. Call whenever the probe
    /// matrix changes (plan epoch change, cycle refresh, any
    /// topology-event driven re-plan): a `LinkUp` can merge two
    /// components, and a stale two-component partition would silently
    /// split the greedy.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Windows that rebuilt the skeleton and partition from scratch.
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    /// Windows that patched the cached skeleton.
    pub fn patched_windows(&self) -> u64 {
        self.patched_windows
    }

    /// Windows that returned the cached verdict unchanged.
    pub fn reused_verdicts(&self) -> u64 {
        self.reused_verdicts
    }

    /// Components in the cached partition (0 before the first rebuild).
    pub fn num_components(&self) -> usize {
        self.comps.len()
    }

    /// Localizes one window by running per-component greedy covers on up
    /// to `workers` scoped threads — clamped to the host's cores, since
    /// the jobs are CPU-bound — and merging. Produces exactly what
    /// [`localize`](super::localize) would for the same inputs, for any
    /// worker count (1 runs inline on the caller's thread).
    pub fn localize(
        &mut self,
        matrix: &ProbeMatrix,
        observations: &[PathObservation],
        cfg: &PllConfig,
        workers: usize,
    ) -> Diagnosis {
        match self.prepare(matrix, observations, cfg) {
            ComponentPlan::Ready(d) => d,
            ComponentPlan::Fanout(jobs) => {
                let outcomes = JobPool::clamped(workers).run_indexed(jobs.len(), |i| {
                    jobs.get(i)
                        .map(ComponentJob::run)
                        .unwrap_or_else(ComponentVerdict::empty)
                });
                self.complete(outcomes)
            }
        }
    }

    /// Phase 1 of a window: preprocesses, reuses/patches/rebuilds the
    /// cached skeleton, and either finishes outright
    /// ([`ComponentPlan::Ready`]) or hands back the window's per-component
    /// jobs. Executing every job (any threads, any order) and passing the
    /// verdicts to [`complete`](ComponentPll::complete) finishes the
    /// window; [`localize`](ComponentPll::localize) is exactly that on a
    /// [`JobPool`]. Do not interleave another `prepare` before the
    /// matching `complete`.
    pub fn prepare(
        &mut self,
        matrix: &ProbeMatrix,
        observations: &[PathObservation],
        cfg: &PllConfig,
    ) -> ComponentPlan {
        let obs = preprocess(observations, cfg, &HashSet::new());
        let reusable = self.valid
            && self.link_paths.len() == matrix.num_links
            && self.path_ids.len() == obs.len()
            && self.path_ids.iter().zip(&obs).all(|(p, o)| *p == o.path);
        if !reusable {
            self.rebuild(matrix, obs, cfg);
            self.full_rebuilds += 1;
        } else if self.obs == obs {
            self.reused_verdicts += 1;
            return ComponentPlan::Ready(self.verdict.clone());
        } else {
            // Patch: flip the lossy counters of links on paths whose
            // lossy flag changed since the previous window. The partition
            // itself needs no patching — it depends only on the path-id
            // set, which the reuse key above pinned.
            for ((o, was), links) in obs
                .iter()
                .zip(self.lossy.iter_mut())
                .zip(self.obs_links.iter())
            {
                let is = o.is_lossy();
                if *was == is {
                    continue;
                }
                *was = is;
                for &li in links {
                    if let Some(c) = self.lossy_count.get_mut(li as usize) {
                        if is {
                            *c += 1;
                        } else {
                            *c -= 1;
                        }
                    }
                }
            }
            self.obs = obs;
            self.patched_windows += 1;
        }
        self.prefer_consistent = cfg.prefer_consistent;

        // Active components: at least one lossy observation. An
        // all-healthy window short-circuits to zero jobs here — without
        // touching the skeleton (it was patched above, never dropped).
        let active: Vec<&Component> = self
            .comps
            .iter()
            .filter(|c| {
                c.obs
                    .iter()
                    .any(|&oi| self.lossy.get(oi as usize).copied().unwrap_or(false))
            })
            .collect();
        if active.is_empty() {
            let unexplained_paths = self
                .stray()
                .filter_map(|oi| self.obs.get(oi as usize).map(|o| o.path))
                .collect();
            self.verdict = Diagnosis {
                suspects: Vec::new(),
                unexplained_paths,
            };
            return ComponentPlan::Ready(self.verdict.clone());
        }

        let shared = Arc::new(Snapshot {
            obs: self.obs.clone(),
            link_paths: self.link_paths.clone(),
            lossy_count: self.lossy_count.clone(),
            cfg: *cfg,
        });
        ComponentPlan::Fanout(
            active
                .iter()
                .map(|comp| ComponentJob {
                    shared: Arc::clone(&shared),
                    links: comp.links.clone(),
                    scope: comp.obs.clone(),
                })
                .collect(),
        )
    }

    /// Phase 2: merges every [`ComponentJob`]'s verdict of the preceding
    /// [`prepare`](ComponentPll::prepare) into the window's global
    /// diagnosis (order-insensitive — the merge sorts by the greedy's
    /// selection key) and caches it for the identical-window shortcut.
    pub fn complete(&mut self, outcomes: Vec<ComponentVerdict>) -> Diagnosis {
        let mut suspects: Vec<SuspectLink> = Vec::new();
        let mut unexplained: Vec<u32> = self.stray().collect();
        for ComponentVerdict(out) in outcomes {
            suspects.extend(out.suspects);
            unexplained.extend(out.unexplained);
        }
        // Merge = sort by the greedy's selection key, descending. Keys
        // strictly decrease within a component and are globally unique
        // (the link id participates), so this reproduces the exact pick
        // order of the global greedy (see the module docs).
        let prefer = self.prefer_consistent;
        suspects.sort_by(|a, b| {
            let ca = prefer && a.hit_ratio >= 1.0 - 1e-12;
            let cb = prefer && b.hit_ratio >= 1.0 - 1e-12;
            cb.cmp(&ca)
                .then_with(|| b.explained_losses.cmp(&a.explained_losses))
                .then_with(|| b.hit_ratio.total_cmp(&a.hit_ratio))
                .then_with(|| a.link.cmp(&b.link))
        });
        unexplained.sort_unstable();
        let unexplained_paths = unexplained
            .iter()
            .filter_map(|&oi| self.obs.get(oi as usize).map(|o| o.path))
            .collect();
        self.verdict = Diagnosis {
            suspects,
            unexplained_paths,
        };
        self.verdict.clone()
    }

    /// Lossy observations outside every component: unexplainable.
    fn stray(&self) -> impl Iterator<Item = u32> + '_ {
        self.lossy
            .iter()
            .zip(&self.comp_of_obs)
            .enumerate()
            .filter(|(_, (&lossy, &ci))| lossy && ci == NO_COMP)
            .map(|(oi, _)| oi as u32)
    }

    /// Rebuilds the skeleton and the component partition from scratch.
    fn rebuild(&mut self, matrix: &ProbeMatrix, obs: Vec<PathObservation>, cfg: &PllConfig) {
        // `obs` is already pre-processed; feeding it back through `build`
        // is exact (noise-normalized rows stay 0).
        let om = ObservedMatrix::build(matrix, &obs, cfg);

        // Invert link→obs into obs→links (the patch path walks it, and
        // every observation's link list is one union-find clique).
        let mut obs_links: Vec<Vec<u32>> = vec![Vec::new(); om.obs.len()];
        for (li, paths) in om.link_paths.iter().enumerate() {
            for &oi in paths {
                if let Some(ls) = obs_links.get_mut(oi as usize) {
                    ls.push(li as u32);
                }
            }
        }

        // Union-find over link indices; the smaller index becomes the
        // root, so a component's root is its smallest link (deterministic
        // partition order, matching `pmc::decompose`).
        let mut parent: Vec<u32> = (0..om.link_paths.len() as u32).collect();
        for links in &obs_links {
            let Some((&first, rest)) = links.split_first() else {
                continue;
            };
            for &l in rest {
                union(&mut parent, first, l);
            }
        }

        // Dense component ordinals, ascending by root (= smallest link).
        let mut roots: Vec<u32> = om
            .link_paths
            .iter()
            .enumerate()
            .filter(|(_, paths)| !paths.is_empty())
            .map(|(li, _)| find(&mut parent, li as u32))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        let comp_of_root = |r: u32, roots: &[u32]| -> u32 {
            roots.binary_search(&r).map_or(NO_COMP, |i| i as u32)
        };

        let mut comps: Vec<Component> = roots
            .iter()
            .map(|_| Component {
                links: Vec::new(),
                obs: Vec::new(),
            })
            .collect();
        for (li, paths) in om.link_paths.iter().enumerate() {
            if paths.is_empty() {
                continue;
            }
            let ci = comp_of_root(find(&mut parent, li as u32), &roots);
            if let Some(c) = comps.get_mut(ci as usize) {
                c.links.push(li as u32);
            }
        }
        let mut comp_of_obs: Vec<u32> = vec![NO_COMP; om.obs.len()];
        for (oi, links) in obs_links.iter().enumerate() {
            let Some(&first) = links.first() else {
                continue;
            };
            let ci = comp_of_root(find(&mut parent, first), &roots);
            if let Some(slot) = comp_of_obs.get_mut(oi) {
                *slot = ci;
            }
            if let Some(c) = comps.get_mut(ci as usize) {
                c.obs.push(oi as u32);
            }
        }

        self.path_ids = om.obs.iter().map(|o| o.path).collect();
        self.lossy = om.obs.iter().map(|o| o.is_lossy()).collect();
        self.lossy_count = om
            .link_paths
            .iter()
            .map(|paths| {
                paths
                    .iter()
                    .filter(|&&oi| om.obs.get(oi as usize).is_some_and(|o| o.is_lossy()))
                    .count() as u32
            })
            .collect();
        self.obs = om.obs;
        self.link_paths = om.link_paths;
        self.obs_links = obs_links;
        self.comps = comps;
        self.comp_of_obs = comp_of_obs;
        self.valid = true;
    }
}

fn find(parent: &mut [u32], x: u32) -> u32 {
    let mut root = x;
    while let Some(&p) = parent.get(root as usize) {
        if p == root {
            break;
        }
        root = p;
    }
    // Path compression.
    let mut cur = x;
    while cur != root {
        let Some(slot) = parent.get_mut(cur as usize) else {
            break;
        };
        let next = *slot;
        *slot = root;
        cur = next;
    }
    root
}

fn union(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra == rb {
        return;
    }
    // Deterministic: the smaller index becomes the root.
    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
    if let Some(slot) = parent.get_mut(hi as usize) {
        *slot = lo;
    }
}

/// Cheap per-window statistics of the lossy-path/link incidence:
/// `(lossy_paths, components)`, where `lossy_paths` counts the
/// pre-processed observations that stay lossy after noise filtering and
/// `components` counts the connected components their links induce — the
/// number of independent localization subproblems in the window. Costs
/// O(lossy incidence): an all-healthy window does no per-link work at
/// all. Lossy observations whose path id does not resolve in the matrix
/// count toward `lossy_paths` but induce no component (no links).
///
/// The count is a pure function of (matrix, observations, cfg), so every
/// driver — sequential, pipelined, distributed — reports the same value
/// for the same window regardless of the `parallel_components` knob.
pub fn lossy_components(
    matrix: &ProbeMatrix,
    observations: &[PathObservation],
    cfg: &PllConfig,
) -> (u64, u64) {
    let obs = preprocess(observations, cfg, &HashSet::new());
    let mut lossy_paths = 0u64;
    // Sparse union-find over link ids, smaller-root discipline (same as
    // `pmc::decompose`).
    let mut parent: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    fn find_sparse(parent: &mut std::collections::HashMap<u32, u32>, x: u32) -> u32 {
        let mut root = x;
        while let Some(&p) = parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        let mut cur = x;
        while cur != root {
            let next = parent.insert(cur, root).unwrap_or(root);
            cur = next;
        }
        root
    }
    for o in &obs {
        if !o.is_lossy() {
            continue;
        }
        lossy_paths += 1;
        let Some(path) = matrix.path(o.path) else {
            continue;
        };
        let Some((&first, rest)) = path.links().split_first() else {
            continue;
        };
        parent.entry(first.0).or_insert(first.0);
        for l in rest {
            let ra = find_sparse(&mut parent, first.0);
            parent.entry(l.0).or_insert(l.0);
            let rb = find_sparse(&mut parent, l.0);
            if ra != rb {
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent.insert(hi, lo);
            }
        }
    }
    let mut roots: Vec<u32> = {
        let keys: Vec<u32> = parent.keys().copied().collect();
        keys.into_iter()
            .map(|k| find_sparse(&mut parent, k))
            .collect()
    };
    roots.sort_unstable();
    roots.dedup();
    (lossy_paths, roots.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::super::localize;
    use super::*;
    use crate::types::ProbePath;
    use proptest::prelude::*;

    /// Two disjoint 2-link islands plus a stray single-link path:
    /// p0,p1 ∈ {0,1}; p2,p3 ∈ {2,3}; p4 = {4}.
    fn matrix() -> ProbeMatrix {
        let paths = vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(0)]),
            ProbePath::from_links(2, vec![LinkId(2), LinkId(3)]),
            ProbePath::from_links(3, vec![LinkId(3)]),
            ProbePath::from_links(4, vec![LinkId(4)]),
        ];
        ProbeMatrix::from_paths(5, paths)
    }

    fn obs(rows: &[(u32, u64, u64)]) -> Vec<PathObservation> {
        rows.iter()
            .map(|&(p, s, l)| PathObservation::new(PathId(p), s, l))
            .collect()
    }

    #[test]
    fn partition_splits_disjoint_islands() {
        let m = matrix();
        let mut c = ComponentPll::new();
        let w = obs(&[
            (0, 100, 100),
            (1, 100, 100),
            (2, 100, 0),
            (3, 100, 0),
            (4, 100, 0),
        ]);
        let d = c.localize(&m, &w, &PllConfig::default(), 4);
        assert_eq!(c.num_components(), 3);
        assert_eq!(d, localize(&m, &w, &PllConfig::default()));
        assert_eq!(d.suspect_links(), vec![LinkId(0)]);
    }

    #[test]
    fn multi_component_failures_merge_in_global_greedy_order() {
        // Both islands fail: island {2,3} explains more losses, so the
        // global greedy blames link 3 before link 0; concatenation by
        // component id would invert them.
        let m = matrix();
        let cfg = PllConfig::default();
        let w = obs(&[
            (0, 100, 40),
            (1, 100, 40),
            (2, 100, 90),
            (3, 100, 90),
            (4, 100, 0),
        ]);
        let seq = localize(&m, &w, &cfg);
        assert_eq!(
            seq.suspects.iter().map(|s| s.link).collect::<Vec<_>>(),
            vec![LinkId(3), LinkId(0)]
        );
        for workers in [1, 2, 8] {
            let mut c = ComponentPll::new();
            assert_eq!(c.localize(&m, &w, &cfg, workers), seq);
        }
    }

    #[test]
    fn all_healthy_window_short_circuits_without_invalidating() {
        let m = matrix();
        let cfg = PllConfig::default();
        let mut c = ComponentPll::new();
        let lossy = obs(&[(0, 100, 100), (1, 100, 100), (2, 100, 0)]);
        let clean = obs(&[(0, 100, 0), (1, 100, 0), (2, 100, 0)]);
        c.localize(&m, &lossy, &cfg, 4);
        let d = c.localize(&m, &clean, &cfg, 4);
        assert!(d.is_clean());
        assert_eq!(d, localize(&m, &clean, &cfg));
        // The clean window patched the cached skeleton, it did not
        // rebuild it.
        assert_eq!(c.full_rebuilds(), 1);
        assert_eq!(c.patched_windows(), 1);
    }

    #[test]
    fn unresolvable_lossy_paths_stay_unexplained() {
        let m = matrix();
        let cfg = PllConfig::default();
        let mut c = ComponentPll::new();
        let w = obs(&[(0, 100, 100), (1, 100, 100), (99, 100, 100)]);
        let d = c.localize(&m, &w, &cfg, 4);
        assert_eq!(d, localize(&m, &w, &cfg));
        assert_eq!(d.unexplained_paths, vec![PathId(99)]);
    }

    #[test]
    fn invalidate_forces_a_rebuild_with_the_new_partition() {
        // The same observations against a matrix where a new path
        // bridges the two islands: after invalidate the partition must
        // merge to a single component.
        let cfg = PllConfig::default();
        let mut c = ComponentPll::new();
        let w = obs(&[(0, 100, 100), (1, 100, 100), (2, 100, 0), (3, 100, 0)]);
        c.localize(&matrix(), &w, &cfg, 4);
        assert_eq!(c.num_components(), 2);

        let bridged = ProbeMatrix::from_paths(
            5,
            vec![
                ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
                ProbePath::from_links(1, vec![LinkId(0), LinkId(2)]),
                ProbePath::from_links(2, vec![LinkId(2), LinkId(3)]),
                ProbePath::from_links(3, vec![LinkId(3)]),
            ],
        );
        c.invalidate();
        let d = c.localize(&bridged, &w, &cfg, 4);
        assert_eq!(c.num_components(), 1);
        assert_eq!(c.full_rebuilds(), 2);
        assert_eq!(d, localize(&bridged, &w, &cfg));
    }

    #[test]
    fn lossy_components_counts_the_incidence() {
        let m = matrix();
        let cfg = PllConfig::default();
        let healthy = obs(&[(0, 100, 0), (1, 100, 0), (2, 100, 0)]);
        assert_eq!(lossy_components(&m, &healthy, &cfg), (0, 0));
        let both = obs(&[(0, 100, 40), (2, 100, 40), (4, 100, 40)]);
        assert_eq!(lossy_components(&m, &both, &cfg), (3, 3));
        let stray = obs(&[(99, 100, 40)]);
        assert_eq!(lossy_components(&m, &stray, &cfg), (1, 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random 12-link topologies under multi-window biased-random
        /// loss: parallel-component localization matches the sequential
        /// oracle for every worker count, in both greedy orders, with
        /// skeleton reuse across the windows of one run.
        #[test]
        fn matches_localize_across_windows_and_workers(
            paths in proptest::collection::vec(proptest::collection::vec(0u32..12, 1..4), 4..12),
            windows in proptest::collection::vec(proptest::collection::vec(0u64..3, 4..12), 1..5),
            workers in 1usize..5,
            consistent in 0u32..2,
        ) {
            let probe_paths: Vec<ProbePath> = paths
                .iter()
                .enumerate()
                .map(|(i, ls)| {
                    let mut ls: Vec<LinkId> = ls.iter().map(|&l| LinkId(l)).collect();
                    ls.sort_unstable();
                    ls.dedup();
                    ProbePath::from_links(i as u32, ls)
                })
                .collect();
            let m = ProbeMatrix::from_paths(12, probe_paths);
            let cfg = if consistent == 1 {
                PllConfig::default().consistency_first()
            } else {
                PllConfig::default()
            };
            let mut c = ComponentPll::new();
            for w in &windows {
                let window: Vec<PathObservation> = w
                    .iter()
                    .take(paths.len())
                    .enumerate()
                    .map(|(i, &sev)| PathObservation::new(PathId(i as u32), 100, sev * 40))
                    .collect();
                let par = c.localize(&m, &window, &cfg, workers);
                let seq = localize(&m, &window, &cfg);
                prop_assert_eq!(par, seq);
            }
        }
    }
}
