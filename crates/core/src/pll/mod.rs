//! Packet Loss Localization (PLL) — §5 of the paper — and the binary
//! network-tomography baselines it is compared against.
//!
//! Given the probe matrix and one window of end-to-end loss observations,
//! PLL finds the smallest set of faulty links that best explains the
//! observations, robustly to the two data-center loss patterns the paper
//! calls out: *full* packet loss and *partial* packet loss (where only a
//! subset of paths through a link see drops, e.g. packet blackholes). The
//! key device is a per-link **hit ratio** — the fraction of observed probe
//! paths through the link that were lossy — used to filter suspects before
//! the greedy cover, which classic tomography (Tomo) lacks.

mod classify;
pub mod components;
mod incremental;
mod localizer;
mod metrics;
mod omp;
mod pll_impl;
mod preprocess;
mod rate;
mod score_alg;
mod tomo;

pub use classify::{classify_loss, ClassifyConfig, FlowSample, LossClassification, LossType};
pub use components::{
    lossy_components, ComponentJob, ComponentPlan, ComponentPll, ComponentVerdict,
};
pub use incremental::IncrementalPll;
pub use localizer::{Localizer, OmpLocalizer, PllLocalizer, ScoreLocalizer, TomoLocalizer};
pub use metrics::{evaluate_diagnosis, LocalizationMetrics};
pub use omp::{localize_omp, OmpConfig};
pub use pll_impl::{localize, Diagnosis, SuspectLink};
pub use preprocess::preprocess;
pub use score_alg::localize_score;
pub use tomo::localize_tomo;

use serde::{Deserialize, Serialize};

/// Configuration of the PLL algorithm and its pre-processing stage.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PllConfig {
    /// Minimum fraction of lossy paths through a link for the link to be a
    /// suspect (the paper's default is 0.6).
    pub hit_ratio_threshold: f64,
    /// Paths with a loss ratio below this are treated as clean — links have
    /// a normal background loss rate of 1e-4..1e-5 that must not raise
    /// alarms (§5.1; the paper filters at 1e-3).
    pub loss_ratio_filter: f64,
    /// Paths with fewer lost packets than this are treated as clean.
    pub min_loss_count: u64,
    /// Greedy selection order. `false` (the paper-faithful default)
    /// ranks candidates purely by explained losses, using the hit ratio
    /// as an eligibility filter. `true` promotes *fully consistent*
    /// links — hit ratio exactly 1, i.e. every observed path through the
    /// link is lossy — ahead of any partially consistent candidate,
    /// which cuts residual false positives when observations are
    /// noiseless (evaluated by the Table 4 sweep in
    /// `tests/accuracy_table4.rs` before being adopted as a default).
    pub prefer_consistent: bool,
    /// Run localization through [`IncrementalPll`]: cache the
    /// link-paths skeleton across windows and re-score only the links
    /// whose paths flipped between lossy and clean, falling back to a
    /// full rebuild on plan epoch changes, cycle refreshes, or any
    /// change to the observed path-id set. Produces exactly the same
    /// diagnosis as the full run (property-tested); off by default.
    pub incremental: bool,
}

impl Default for PllConfig {
    fn default() -> Self {
        Self {
            hit_ratio_threshold: 0.6,
            loss_ratio_filter: 1e-3,
            min_loss_count: 1,
            prefer_consistent: false,
            incremental: false,
        }
    }
}

impl PllConfig {
    /// Overrides the hit-ratio threshold.
    pub fn with_hit_ratio(mut self, t: f64) -> Self {
        self.hit_ratio_threshold = t;
        self
    }

    /// Switches the greedy to consistency-first selection (see
    /// [`PllConfig::prefer_consistent`]).
    pub fn consistency_first(mut self) -> Self {
        self.prefer_consistent = true;
        self
    }

    /// Enables incremental cross-window localization (see
    /// [`PllConfig::incremental`]).
    pub fn incremental(mut self) -> Self {
        self.incremental = true;
        self
    }
}
