//! Per-link loss-rate estimation.

/// Estimates the loss rate of a blamed link from the (sent, lost) counters
/// of the paths it explains.
///
/// Under the attribution made by the greedy — each explained path's losses
/// happened on this link — the maximum-likelihood estimate of a Bernoulli
/// drop probability is total lost over total sent.
pub(crate) fn estimate_rate(samples: &[(u64, u64)]) -> f64 {
    let sent: u64 = samples.iter().map(|&(s, _)| s).sum();
    if sent == 0 {
        return 0.0;
    }
    let lost: u64 = samples.iter().map(|&(_, l)| l).sum();
    (lost as f64 / sent as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_estimate() {
        let r = estimate_rate(&[(100, 10), (300, 50)]);
        assert!((r - 60.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_sent_are_zero() {
        assert_eq!(estimate_rate(&[]), 0.0);
        assert_eq!(estimate_rate(&[(0, 0)]), 0.0);
    }

    #[test]
    fn full_loss_is_one() {
        assert_eq!(estimate_rate(&[(50, 50)]), 1.0);
    }
}
