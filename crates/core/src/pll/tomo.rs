//! The Tomo baseline (NetDiagnoser, CoNEXT'07).
//!
//! Classic binary tomography: greedily pick the link lying on the most
//! still-unexplained *failed paths* (minimum-hitting-set heuristic), with
//! no hit-ratio filtering — which is exactly what breaks down under the
//! partial-loss patterns of data centers (§5.2): a blackhole makes only a
//! subset of the paths through a link lossy, and clean paths through a
//! good link do not prevent Tomo from blaming it.

use super::pll_impl::{Diagnosis, ObservedMatrix, SuspectLink};
use super::rate::estimate_rate;
use super::PllConfig;
use crate::pmc::ProbeMatrix;
use crate::types::{LinkId, PathObservation};

/// Localizes losses with the Tomo greedy (no hit-ratio filter; path-count
/// scores).
pub fn localize_tomo(
    matrix: &ProbeMatrix,
    observations: &[PathObservation],
    cfg: &PllConfig,
) -> Diagnosis {
    let om = ObservedMatrix::build(matrix, observations, cfg);
    let mut unexplained: Vec<bool> = om.obs.iter().map(|o| o.is_lossy()).collect();
    let mut remaining: usize = unexplained.iter().filter(|&&b| b).count();
    let mut suspects = Vec::new();

    while remaining > 0 {
        let mut best: Option<(usize, LinkId)> = None;
        for &l in &om.candidate_links {
            let covered = om.link_paths[l.index()]
                .iter()
                .filter(|&&oi| unexplained[oi as usize])
                .count();
            if covered == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bc, bl)) => (covered, std::cmp::Reverse(l)) > (bc, std::cmp::Reverse(bl)),
            };
            if better {
                best = Some((covered, l));
            }
        }
        let Some((covered, link)) = best else { break };

        let mut samples = Vec::new();
        let mut losses = 0u64;
        for &oi in &om.link_paths[link.index()] {
            let oi = oi as usize;
            if unexplained[oi] {
                unexplained[oi] = false;
                remaining -= 1;
                losses += om.obs[oi].lost;
                samples.push((om.obs[oi].sent, om.obs[oi].lost));
            }
        }
        suspects.push(SuspectLink {
            link,
            estimated_loss_rate: estimate_rate(&samples),
            hit_ratio: om.hit_ratio(link),
            explained_paths: covered as u32,
            explained_losses: losses,
        });
    }

    Diagnosis {
        suspects,
        unexplained_paths: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{PathId, ProbePath};

    fn matrix() -> ProbeMatrix {
        let paths = vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(0), LinkId(2)]),
            ProbePath::from_links(2, vec![LinkId(2)]),
        ];
        ProbeMatrix::from_paths(3, paths)
    }

    #[test]
    fn tomo_localizes_full_loss() {
        let obs = vec![
            PathObservation::new(PathId(0), 100, 100),
            PathObservation::new(PathId(1), 100, 100),
            PathObservation::new(PathId(2), 100, 0),
        ];
        let d = localize_tomo(&matrix(), &obs, &PllConfig::default());
        assert_eq!(d.suspect_links(), vec![LinkId(0)]);
    }

    #[test]
    fn tomo_overblames_under_partial_loss() {
        // Only p0 lossy (a blackhole on link 0 that hits only p0's flows).
        // Tomo happily blames link 0 or 1 even though their hit ratios are
        // 0.5 — no filtering.
        let obs = vec![
            PathObservation::new(PathId(0), 100, 50),
            PathObservation::new(PathId(1), 100, 0),
            PathObservation::new(PathId(2), 100, 0),
        ];
        let d = localize_tomo(&matrix(), &obs, &PllConfig::default());
        assert_eq!(d.suspects.len(), 1);
    }
}
