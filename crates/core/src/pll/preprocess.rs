//! Data pre-processing (§5.1): outlier removal and noise filtering.

use std::collections::HashSet;

use super::PllConfig;
use crate::types::{PathId, PathObservation};

/// Cleans one window of observations before localization.
///
/// * Observations from `excluded` paths (e.g. probes from servers the
///   watchdog flagged as down or rebooting) are dropped entirely — they
///   carry no evidence either way.
/// * Paths whose loss is below the noise thresholds are normalized to
///   zero losses: a regular 1e-4..1e-5 background loss rate is not a
///   failure and must not feed the localizer.
/// * Observations with `sent == 0` are dropped.
pub fn preprocess(
    observations: &[PathObservation],
    cfg: &PllConfig,
    excluded: &HashSet<PathId>,
) -> Vec<PathObservation> {
    let mut out = Vec::with_capacity(observations.len());
    for o in observations {
        if o.sent == 0 || excluded.contains(&o.path) {
            continue;
        }
        let noisy_only = o.lost < cfg.min_loss_count || o.loss_ratio() < cfg.loss_ratio_filter;
        out.push(PathObservation {
            path: o.path,
            sent: o.sent,
            lost: if noisy_only { 0 } else { o.lost },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excluded_paths_are_dropped() {
        let obs = vec![
            PathObservation::new(PathId(0), 100, 50),
            PathObservation::new(PathId(1), 100, 50),
        ];
        let mut excl = HashSet::new();
        excl.insert(PathId(0));
        let got = preprocess(&obs, &PllConfig::default(), &excl);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].path, PathId(1));
    }

    #[test]
    fn background_noise_is_normalized_to_clean() {
        let obs = vec![PathObservation::new(PathId(0), 100_000, 5)];
        // 5e-5 loss ratio is background noise, below the 1e-3 filter.
        let got = preprocess(&obs, &PllConfig::default(), &HashSet::new());
        assert_eq!(got[0].lost, 0);
        assert_eq!(got[0].sent, 100_000);
    }

    #[test]
    fn real_loss_is_kept() {
        let obs = vec![PathObservation::new(PathId(0), 100, 30)];
        let got = preprocess(&obs, &PllConfig::default(), &HashSet::new());
        assert_eq!(got[0].lost, 30);
    }

    #[test]
    fn zero_sent_is_dropped() {
        let obs = vec![PathObservation::new(PathId(0), 0, 0)];
        let got = preprocess(&obs, &PllConfig::default(), &HashSet::new());
        assert!(got.is_empty());
    }

    #[test]
    fn min_loss_count_filters_single_losses() {
        let cfg = PllConfig {
            min_loss_count: 3,
            ..PllConfig::default()
        };
        let obs = vec![
            PathObservation::new(PathId(0), 10, 2),
            PathObservation::new(PathId(1), 10, 3),
        ];
        let got = preprocess(&obs, &cfg, &HashSet::new());
        assert_eq!(got[0].lost, 0);
        assert_eq!(got[1].lost, 3);
    }
}
