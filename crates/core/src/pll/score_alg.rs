//! The SCORE baseline (Kompella et al., NSDI'05).
//!
//! Risk-model fault localization: every link is a risk group (the set of
//! observed paths through it); the greedy repeatedly picks the group with
//! the highest *hit ratio* (failed ∩ group / group), breaking ties by how
//! many still-unexplained failed paths it covers, until every failed path
//! is covered or no group passes the confidence threshold.

use super::pll_impl::{Diagnosis, ObservedMatrix, SuspectLink};
use super::rate::estimate_rate;
use super::PllConfig;
use crate::pmc::ProbeMatrix;
use crate::types::{LinkId, PathObservation};

/// Localizes losses with the SCORE greedy (hit-ratio-first ordering).
pub fn localize_score(
    matrix: &ProbeMatrix,
    observations: &[PathObservation],
    cfg: &PllConfig,
) -> Diagnosis {
    let om = ObservedMatrix::build(matrix, observations, cfg);
    let mut unexplained: Vec<bool> = om.obs.iter().map(|o| o.is_lossy()).collect();
    let mut remaining: usize = unexplained.iter().filter(|&&b| b).count();
    let mut suspects = Vec::new();

    let hit: Vec<(LinkId, f64)> = om
        .candidate_links
        .iter()
        .map(|&l| (l, om.hit_ratio(l)))
        .collect();

    while remaining > 0 {
        let mut best: Option<(f64, usize, LinkId)> = None;
        for &(l, h) in &hit {
            if h < cfg.hit_ratio_threshold {
                continue;
            }
            let covered = om.link_paths[l.index()]
                .iter()
                .filter(|&&oi| unexplained[oi as usize])
                .count();
            if covered == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bh, bc, bl)) => {
                    (h, covered, std::cmp::Reverse(l)) > (bh, bc, std::cmp::Reverse(bl))
                }
            };
            if better {
                best = Some((h, covered, l));
            }
        }
        let Some((h, covered, link)) = best else {
            break;
        };

        let mut samples = Vec::new();
        let mut losses = 0u64;
        for &oi in &om.link_paths[link.index()] {
            let oi = oi as usize;
            if unexplained[oi] {
                unexplained[oi] = false;
                remaining -= 1;
                losses += om.obs[oi].lost;
                samples.push((om.obs[oi].sent, om.obs[oi].lost));
            }
        }
        suspects.push(SuspectLink {
            link,
            estimated_loss_rate: estimate_rate(&samples),
            hit_ratio: h,
            explained_paths: covered as u32,
            explained_losses: losses,
        });
    }

    let unexplained_paths = om
        .obs
        .iter()
        .enumerate()
        .filter(|(oi, _)| unexplained[*oi])
        .map(|(_, o)| o.path)
        .collect();
    Diagnosis {
        suspects,
        unexplained_paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{PathId, ProbePath};

    fn matrix() -> ProbeMatrix {
        let paths = vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(0), LinkId(2)]),
            ProbePath::from_links(2, vec![LinkId(2)]),
            ProbePath::from_links(3, vec![LinkId(1)]),
        ];
        ProbeMatrix::from_paths(3, paths)
    }

    #[test]
    fn prefers_high_hit_ratio_over_high_coverage() {
        // Link 0 covers two lossy paths but has hit ratio 1.0; link 2 has
        // hit ratio 0.5 (p2 clean). SCORE picks link 0 and stops.
        let obs = vec![
            PathObservation::new(PathId(0), 100, 60),
            PathObservation::new(PathId(1), 100, 55),
            PathObservation::new(PathId(2), 100, 0),
            PathObservation::new(PathId(3), 100, 0),
        ];
        let d = localize_score(&matrix(), &obs, &PllConfig::default());
        assert_eq!(d.suspect_links(), vec![LinkId(0)]);
    }

    #[test]
    fn threshold_leaves_losses_unexplained() {
        let obs = vec![
            PathObservation::new(PathId(0), 100, 60),
            PathObservation::new(PathId(1), 100, 0),
            PathObservation::new(PathId(2), 100, 0),
            PathObservation::new(PathId(3), 100, 0),
        ];
        let d = localize_score(&matrix(), &obs, &PllConfig::default());
        assert!(d.suspects.is_empty());
        assert_eq!(d.unexplained_paths, vec![PathId(0)]);
    }
}
