//! The strawman greedy: every remaining candidate is re-scored in every
//! iteration (the O(m²) baseline of Table 2).

use std::time::Instant;

use super::state::SelectionState;
use super::{check_deadline, PmcConfig, PmcError, SubSolution};
use crate::types::{LinkId, ProbePath};

/// Runs the strawman greedy over a materialized candidate set.
pub(crate) fn run(
    universe: Vec<LinkId>,
    candidates: Vec<ProbePath>,
    cfg: &PmcConfig,
    deadline: Option<Instant>,
) -> Result<SubSolution, PmcError> {
    let state = SelectionState::new(&universe, cfg)?;
    complete(state, candidates, cfg, deadline)
}

/// Continues the strawman greedy from an existing selection state — the
/// completion half of a seeded re-solve (`resolve_subproblem_seeded`
/// pre-selects the surviving previous solution, then repairs from here).
pub(crate) fn complete(
    mut state: SelectionState,
    candidates: Vec<ProbePath>,
    cfg: &PmcConfig,
    deadline: Option<Instant>,
) -> Result<SubSolution, PmcError> {
    // detlint::allow(determinism, reason = "PMC solver timeout clock; deadlines only abort, never alter a completed plan")
    let start = Instant::now();
    let mut alive: Vec<Option<ProbePath>> = candidates
        .into_iter()
        .map(|p| if p.is_empty() { None } else { Some(p) })
        .collect();

    while !state.targets_met() {
        check_deadline(deadline, start)?;
        let mut best: Option<(i64, usize)> = None;
        let mut evals = 0usize;
        for (i, slot) in alive.iter_mut().enumerate() {
            let Some(p) = slot.as_ref() else { continue };
            let e = state.evaluate(p)?;
            evals += 1;
            if evals.is_multiple_of(4096) {
                check_deadline(deadline, start)?;
            }
            if !e.useful(cfg.beta) {
                // A useless path can never become useful again (its links
                // are fully covered and its incident link sets can no
                // longer split); drop it permanently.
                *slot = None;
                continue;
            }
            if best.is_none_or(|(s, _)| e.score < s) {
                best = Some((e.score, i));
            }
        }
        match best {
            Some((_, i)) => {
                let p = alive[i].take().expect("best candidate vanished");
                state.select(&p)?;
            }
            None => break,
        }
    }

    let targets_met = state.targets_met();
    let coverage = state.min_coverage();
    let cells = state.cells();
    Ok(SubSolution {
        paths: state.into_selected(),
        targets_met,
        coverage,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn links(n: u32) -> Vec<LinkId> {
        (0..n).map(LinkId).collect()
    }

    fn path(id: u32, ls: &[u32]) -> ProbePath {
        ProbePath::from_links(id, ls.iter().map(|&l| LinkId(l)).collect())
    }

    #[test]
    fn selects_minimal_cover_for_disjoint_links() {
        // Four links; two disjoint 2-link paths suffice for 1-coverage and
        // are preferred over four 1-link paths.
        let candidates = vec![
            path(0, &[0, 1]),
            path(1, &[2, 3]),
            path(2, &[0]),
            path(3, &[1]),
            path(4, &[2]),
            path(5, &[3]),
        ];
        let sol = run(
            links(4),
            candidates,
            &PmcConfig::coverage(1).strawman(),
            None,
        )
        .unwrap();
        assert!(sol.targets_met);
        assert_eq!(sol.paths.len(), 2);
    }

    #[test]
    fn identifiability_forces_extra_splits() {
        // Links 0,1 can only be told apart with a path covering exactly
        // one of them.
        let candidates = vec![path(0, &[0, 1]), path(1, &[0])];
        let sol = run(
            links(2),
            candidates,
            &PmcConfig::identifiable(1).strawman(),
            None,
        )
        .unwrap();
        assert!(sol.targets_met);
        assert_eq!(sol.paths.len(), 2);
    }

    #[test]
    fn stops_when_no_useful_candidate_remains() {
        // Identifiability of links 0 and 1 is impossible: they always
        // appear together.
        let candidates = vec![path(0, &[0, 1]), path(1, &[0, 1])];
        let sol = run(
            links(2),
            candidates,
            &PmcConfig::identifiable(1).strawman(),
            None,
        )
        .unwrap();
        assert!(!sol.targets_met);
        // One path gives coverage; the duplicate adds nothing once α = 1.
        assert_eq!(sol.paths.len(), 1);
    }
}
