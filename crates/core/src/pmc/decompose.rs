//! Problem decomposition, Observation 1 of §4.3.
//!
//! Build the bipartite path–link graph implicitly via a union–find over
//! links: every path unions the links it covers; connected components of
//! links (with their paths) become independent subproblems that can be
//! solved in parallel. In a k-ary Fattree the inter-switch links split into
//! k/2 components, one per aggregation-switch column.

use std::collections::HashMap;

use crate::types::{LinkId, ProbePath};

/// One independent PMC subproblem.
#[derive(Clone, Debug)]
pub struct Subproblem {
    /// Sorted link universe of the subproblem.
    pub universe: Vec<LinkId>,
    /// Candidate paths entirely within the universe.
    pub candidates: Vec<ProbePath>,
}

impl Subproblem {
    /// Wraps a candidate set as a single subproblem (no decomposition);
    /// the universe is inferred from the links the candidates cover.
    pub fn whole(candidates: Vec<ProbePath>) -> Self {
        let mut universe: Vec<LinkId> = candidates
            .iter()
            .flat_map(|p| p.links().iter().copied())
            .collect();
        universe.sort_unstable();
        universe.dedup();
        Self {
            universe,
            candidates,
        }
    }
}

struct UnionFind {
    parent: HashMap<u32, u32>,
}

impl UnionFind {
    fn new() -> Self {
        Self {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Deterministic: smaller id becomes the root.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(hi, lo);
        }
    }
}

/// Splits a candidate set into independent subproblems.
///
/// Paths covering no links are dropped. Components are returned in
/// ascending order of their smallest link id, so decomposition is fully
/// deterministic.
pub fn decompose(candidates: Vec<ProbePath>) -> Vec<Subproblem> {
    let mut uf = UnionFind::new();
    for p in &candidates {
        let ls = p.links();
        if ls.is_empty() {
            continue;
        }
        let first = ls[0].0;
        uf.find(first);
        for l in &ls[1..] {
            uf.union(first, l.0);
        }
    }

    // Map component roots to dense indices ordered by root id (the root is
    // always the smallest link id in the component).
    let mut roots: Vec<u32> = {
        let keys: Vec<u32> = uf.parent.keys().copied().collect();
        let mut rs: Vec<u32> = keys.into_iter().map(|k| uf.find(k)).collect();
        rs.sort_unstable();
        rs.dedup();
        rs
    };
    roots.sort_unstable();
    let root_index: HashMap<u32, usize> = roots.iter().enumerate().map(|(i, &r)| (r, i)).collect();

    let mut subs: Vec<Subproblem> = roots
        .iter()
        .map(|_| Subproblem {
            universe: Vec::new(),
            candidates: Vec::new(),
        })
        .collect();

    // Assign links to component universes.
    let link_ids: Vec<u32> = uf.parent.keys().copied().collect();
    let mut sorted_links = link_ids;
    sorted_links.sort_unstable();
    for l in sorted_links {
        let r = uf.find(l);
        subs[root_index[&r]].universe.push(LinkId(l));
    }

    for p in candidates {
        if p.links().is_empty() {
            continue;
        }
        let r = uf.find(p.links()[0].0);
        subs[root_index[&r]].candidates.push(p);
    }
    subs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(id: u32, ls: &[u32]) -> ProbePath {
        ProbePath::from_links(id, ls.iter().map(|&l| LinkId(l)).collect())
    }

    #[test]
    fn disjoint_paths_split_into_components() {
        let subs = decompose(vec![path(0, &[0, 1]), path(1, &[2, 3]), path(2, &[1, 0])]);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].universe, vec![LinkId(0), LinkId(1)]);
        assert_eq!(subs[0].candidates.len(), 2);
        assert_eq!(subs[1].universe, vec![LinkId(2), LinkId(3)]);
        assert_eq!(subs[1].candidates.len(), 1);
    }

    #[test]
    fn overlapping_paths_merge() {
        let subs = decompose(vec![path(0, &[0, 1]), path(1, &[1, 2]), path(2, &[2, 3])]);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].universe.len(), 4);
        assert_eq!(subs[0].candidates.len(), 3);
    }

    #[test]
    fn empty_paths_are_dropped() {
        let subs = decompose(vec![path(0, &[]), path(1, &[5])]);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].candidates.len(), 1);
    }

    #[test]
    fn whole_infers_universe() {
        let sp = Subproblem::whole(vec![path(0, &[3, 1]), path(1, &[2])]);
        assert_eq!(sp.universe, vec![LinkId(1), LinkId(2), LinkId(3)]);
    }

    #[test]
    fn deterministic_component_order() {
        let a = decompose(vec![path(0, &[9, 8]), path(1, &[0, 1]), path(2, &[4])]);
        let b = decompose(vec![path(2, &[4]), path(0, &[8, 9]), path(1, &[1, 0])]);
        let ua: Vec<_> = a.iter().map(|s| s.universe.clone()).collect();
        let ub: Vec<_> = b.iter().map(|s| s.universe.clone()).collect();
        assert_eq!(ua, ub);
    }
}
