//! Lazy score updates (CELF-style), Observation 2 of §4.3.
//!
//! Path scores are non-decreasing as the selection proceeds, so a stale
//! score is a lower bound on the true score. We keep a min-heap keyed by
//! (possibly stale) scores, re-evaluate only the top entry, and accept it
//! if its fresh score is still no larger than the next entry's stale key —
//! in which case it is a true minimum. With virtual links (β ≥ 2) rare
//! corner cases can violate monotonicity; the loop then degrades into a
//! near-greedy heuristic, while the achieved (α, β) targets remain exactly
//! verified by the selection state.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use super::provider::{CandidateProvider, ExhaustiveProvider};
use super::state::SelectionState;
use super::{check_deadline, PmcConfig, PmcError, SubSolution};
use crate::types::{LinkId, ProbePath};

struct Entry {
    score: i64,
    order: u32,
    path: ProbePath,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.order == other.order
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: BinaryHeap is a max-heap, we want the smallest score
        // (and, on ties, the earliest inserted path) on top.
        other
            .score
            .cmp(&self.score)
            .then_with(|| other.order.cmp(&self.order))
    }
}

/// Runs the lazy greedy over a materialized candidate set.
pub(crate) fn run(
    universe: Vec<LinkId>,
    candidates: Vec<ProbePath>,
    cfg: &PmcConfig,
    deadline: Option<Instant>,
) -> Result<SubSolution, PmcError> {
    run_with_provider(
        ExhaustiveProvider::with_universe(universe, candidates),
        cfg,
        deadline,
    )
}

/// Runs the lazy greedy, pulling candidate batches on demand.
pub(crate) fn run_with_provider<P: CandidateProvider>(
    mut provider: P,
    cfg: &PmcConfig,
    deadline: Option<Instant>,
) -> Result<SubSolution, PmcError> {
    // detlint::allow(determinism, reason = "PMC solver timeout clock; deadlines only abort, never alter a completed plan")
    let start = Instant::now();
    let universe = provider.universe().to_vec();
    let mut state = SelectionState::new(&universe, cfg)?;
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut order = 0u32;
    let mut exhausted = false;
    let mut pulled = 0u64;
    // Cap on how many candidates may be pulled ahead of need: keeps peak
    // memory bounded on astronomically large providers while letting the
    // greedy see enough variety to stay close to the exhaustive solution.
    let pull_budget = (universe.len() as u64 * 64).max(1 << 16);
    // Best (lowest) fresh score seen in the most recently pulled batch; as
    // long as fresh rounds keep producing scores at this level, a pooled
    // candidate scoring worse should not be committed before pulling more.
    let mut batch_min = i64::MAX;

    while !state.targets_met() {
        check_deadline(deadline, start)?;

        if heap.is_empty() {
            if exhausted {
                break;
            }
            if !pull_batch(
                &mut provider,
                &mut state,
                &mut heap,
                &mut order,
                &mut pulled,
                &mut batch_min,
                cfg,
                deadline,
                start,
            )? {
                exhausted = true;
            }
            continue;
        }

        let top = heap.pop().expect("heap checked non-empty");
        let e = state.evaluate(&top.path)?;
        if !e.useful(cfg.beta) {
            // Permanently useless (see greedy.rs); drop it.
            continue;
        }

        // Pull-ahead: if the best pooled candidate scores worse than what
        // fresh provider rounds have recently offered, fetch more rounds
        // before committing (bounded by the pull budget). This keeps the
        // incremental greedy close to the exhaustive one without ever
        // materializing the full candidate set.
        if e.score > batch_min && !exhausted && pulled < pull_budget {
            heap.push(Entry {
                score: e.score,
                order: top.order,
                path: top.path,
            });
            if !pull_batch(
                &mut provider,
                &mut state,
                &mut heap,
                &mut order,
                &mut pulled,
                &mut batch_min,
                cfg,
                deadline,
                start,
            )? {
                exhausted = true;
            }
            continue;
        }

        let next_key = heap.peek().map(|t| t.score);
        if next_key.is_none_or(|k| e.score <= k) {
            state.select(&top.path)?;
        } else {
            heap.push(Entry {
                score: e.score,
                order: top.order,
                path: top.path,
            });
        }
    }

    let targets_met = state.targets_met();
    let coverage = state.min_coverage();
    let cells = state.cells();
    Ok(SubSolution {
        paths: state.into_selected(),
        targets_met,
        coverage,
        cells,
    })
}

/// Pulls one batch from the provider into the heap; returns false when the
/// provider is exhausted.
#[allow(clippy::too_many_arguments)]
fn pull_batch<P: CandidateProvider>(
    provider: &mut P,
    state: &mut SelectionState,
    heap: &mut BinaryHeap<Entry>,
    order: &mut u32,
    pulled: &mut u64,
    batch_min: &mut i64,
    cfg: &PmcConfig,
    deadline: Option<Instant>,
    start: Instant,
) -> Result<bool, PmcError> {
    let batch = provider.next_batch();
    if batch.is_empty() {
        *batch_min = i64::MAX;
        return Ok(false);
    }
    let mut evals = 0usize;
    let mut min_score = i64::MAX;
    for p in batch {
        if p.is_empty() {
            continue;
        }
        let e = state.evaluate(&p)?;
        evals += 1;
        if evals.is_multiple_of(4096) {
            check_deadline(deadline, start)?;
        }
        if e.useful(cfg.beta) {
            min_score = min_score.min(e.score);
            heap.push(Entry {
                score: e.score,
                order: *order,
                path: p,
            });
            *order += 1;
            *pulled += 1;
        }
    }
    *batch_min = min_score;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn links(n: u32) -> Vec<LinkId> {
        (0..n).map(LinkId).collect()
    }

    fn path(id: u32, ls: &[u32]) -> ProbePath {
        ProbePath::from_links(id, ls.iter().map(|&l| LinkId(l)).collect())
    }

    #[test]
    fn lazy_matches_strawman_on_line_graph() {
        // Chain candidates over 6 links: nested prefixes plus singletons.
        let mut candidates = Vec::new();
        let mut id = 0;
        for i in 1..=6u32 {
            candidates.push(path(id, &(0..i).collect::<Vec<_>>()));
            id += 1;
        }
        for i in 0..6u32 {
            candidates.push(path(id, &[i]));
            id += 1;
        }
        let lazy = run(
            links(6),
            candidates.clone(),
            &PmcConfig::identifiable(1),
            None,
        )
        .unwrap();
        let straw = super::super::greedy::run(
            links(6),
            candidates,
            &PmcConfig::identifiable(1).strawman(),
            None,
        )
        .unwrap();
        assert!(lazy.targets_met);
        assert!(straw.targets_met);
        assert_eq!(lazy.paths.len(), straw.paths.len());
    }

    #[test]
    fn provider_batches_are_pulled_on_demand() {
        struct TwoBatches {
            universe: Vec<LinkId>,
            stage: u32,
        }
        impl CandidateProvider for TwoBatches {
            fn universe(&self) -> &[LinkId] {
                &self.universe
            }
            fn next_batch(&mut self) -> Vec<ProbePath> {
                self.stage += 1;
                match self.stage {
                    1 => vec![ProbePath::from_links(0, vec![LinkId(0), LinkId(1)])],
                    2 => vec![ProbePath::from_links(1, vec![LinkId(0)])],
                    _ => Vec::new(),
                }
            }
        }
        let sol = run_with_provider(
            TwoBatches {
                universe: links(2),
                stage: 0,
            },
            &PmcConfig::identifiable(1),
            None,
        )
        .unwrap();
        assert!(sol.targets_met);
        assert_eq!(sol.paths.len(), 2);
    }

    #[test]
    fn exhausted_provider_yields_best_effort() {
        let sol = run(
            links(3),
            vec![path(0, &[0, 1])],
            &PmcConfig::identifiable(1),
            None,
        )
        .unwrap();
        assert!(!sol.targets_met);
        assert_eq!(sol.paths.len(), 1);
    }

    #[test]
    fn heap_orders_by_score_then_insertion() {
        let mut h = BinaryHeap::new();
        h.push(Entry {
            score: 5,
            order: 0,
            path: path(0, &[0]),
        });
        h.push(Entry {
            score: -1,
            order: 1,
            path: path(1, &[1]),
        });
        h.push(Entry {
            score: -1,
            order: 2,
            path: path(2, &[2]),
        });
        let first = h.pop().unwrap();
        assert_eq!(first.score, -1);
        assert_eq!(first.order, 1);
    }
}
