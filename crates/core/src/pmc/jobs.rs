//! Cell-granular PMC job pool.
//!
//! The distributed controller shards subproblem re-solves across a
//! bounded worker pool: each touched plan cell becomes one [`CellJob`],
//! the pool runs them on up to [`JobPool::workers`] scoped threads, and
//! the solutions come back in job order. This is the same work-queue
//! driver as [`run_indexed_parallel`](super::run_indexed_parallel) — one
//! atomic cursor, scoped threads, slot-per-job results — with the worker
//! count made explicit so callers (the agent tier's controller, benches
//! pinning a core count) can bound the solve fan-out instead of
//! inheriting host parallelism.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use super::{resolve_subproblem, PmcConfig, PmcError, SubSolution};
use crate::types::{LinkId, ProbePath};

/// One cell-granular re-solve: a subproblem's universe and candidates
/// plus the exclusion set the delta imposed on it.
#[derive(Clone, Debug)]
pub struct CellJob {
    /// The plan-cell ordinal this job re-solves (carried through to the
    /// [`CellSolution`] so sharded results splice back positionally).
    pub cell: usize,
    /// The cell's link universe.
    pub universe: Vec<LinkId>,
    /// The cell's candidate paths.
    pub candidates: Vec<ProbePath>,
    /// Links the delta removed from this cell.
    pub excluded: HashSet<LinkId>,
}

/// A solved [`CellJob`].
#[derive(Clone, Debug)]
pub struct CellSolution {
    /// The originating job's cell ordinal.
    pub cell: usize,
    /// The re-solved selection for that cell.
    pub solution: SubSolution,
}

/// A bounded pool of re-solve workers.
///
/// Purely a *capacity*: the pool owns no threads between calls (workers
/// are scoped per batch), so it is `Copy`-cheap to embed in configs and
/// never leaks OS resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobPool {
    workers: usize,
}

impl JobPool {
    /// A pool of exactly `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn host() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// A pool of at most `workers` threads, further clamped to the
    /// host's available parallelism. For CPU-bound jobs, spawning more
    /// workers than cores only adds scheduling overhead; deterministic
    /// jobs make every pool size observably identical
    /// ([`run_indexed`](Self::run_indexed)), so the clamp never changes
    /// a result — only wall clock.
    pub fn clamped(workers: usize) -> Self {
        Self::new(workers.min(Self::host().workers()))
    }

    /// The pool implied by a [`PmcConfig`]: its explicit
    /// [`workers`](PmcConfig::workers) bound, or host parallelism.
    pub fn from_config(cfg: &PmcConfig) -> Self {
        cfg.workers.map_or_else(Self::host, Self::new)
    }

    /// The worker bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `n` indexed jobs on up to `workers` scoped threads, results
    /// in index order. With one worker (or at most one job) the jobs run
    /// inline on the caller's thread. Each index runs exactly once, so
    /// deterministic jobs make every pool size observably identical.
    pub fn run_indexed<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let threads = self.workers.min(n);
        if threads <= 1 {
            return (0..n).map(job).collect();
        }

        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *results[i].lock().expect("result slot poisoned") = Some(job(i));
                });
            }
        })
        .expect("worker thread panicked");

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("missing job result")
            })
            .collect()
    }

    /// Re-solves a batch of cell jobs, solutions in job order. Each job
    /// runs the exact [`resolve_subproblem`] procedure with a per-cell
    /// deadline budget, so any pool size (including 1) produces
    /// bit-identical selections — only wall-clock differs.
    pub fn solve_cells(
        &self,
        jobs: &[CellJob],
        cfg: &PmcConfig,
    ) -> Result<Vec<CellSolution>, PmcError> {
        self.run_indexed(jobs.len(), |i| {
            let j = &jobs[i];
            resolve_subproblem(&j.universe, &j.candidates, &j.excluded, cfg).map(|solution| {
                CellSolution {
                    cell: j.cell,
                    solution,
                }
            })
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(id: u32, ls: &[u32]) -> ProbePath {
        ProbePath::from_links(id, ls.iter().map(|&l| LinkId(l)).collect())
    }

    fn jobs() -> Vec<CellJob> {
        (0..6u32)
            .map(|c| {
                let base = c * 2;
                CellJob {
                    cell: c as usize,
                    universe: vec![LinkId(base), LinkId(base + 1)],
                    candidates: vec![
                        path(c * 3, &[base, base + 1]),
                        path(c * 3 + 1, &[base]),
                        path(c * 3 + 2, &[base + 1]),
                    ],
                    excluded: if c % 2 == 0 {
                        [LinkId(base)].into_iter().collect()
                    } else {
                        HashSet::new()
                    },
                }
            })
            .collect()
    }

    #[test]
    fn every_pool_size_solves_identically() {
        let cfg = PmcConfig::identifiable(1);
        let jobs = jobs();
        let one = JobPool::new(1).solve_cells(&jobs, &cfg).unwrap();
        for workers in [2, 4, 64] {
            let many = JobPool::new(workers).solve_cells(&jobs, &cfg).unwrap();
            assert_eq!(one.len(), many.len());
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.cell, b.cell);
                assert_eq!(a.solution.targets_met, b.solution.targets_met);
                let la: Vec<_> = a
                    .solution
                    .paths
                    .iter()
                    .map(|p| p.links().to_vec())
                    .collect();
                let lb: Vec<_> = b
                    .solution
                    .paths
                    .iter()
                    .map(|p| p.links().to_vec())
                    .collect();
                assert_eq!(la, lb);
            }
        }
    }

    #[test]
    fn pool_sizes_clamp_and_configs_resolve() {
        assert_eq!(JobPool::new(0).workers(), 1);
        assert!(JobPool::host().workers() >= 1);
        assert_eq!(JobPool::clamped(0).workers(), 1);
        assert_eq!(
            JobPool::clamped(usize::MAX).workers(),
            JobPool::host().workers()
        );
        let bounded = PmcConfig {
            workers: Some(3),
            ..PmcConfig::default()
        };
        assert_eq!(JobPool::from_config(&bounded).workers(), 3);
        assert_eq!(JobPool::from_config(&PmcConfig::default()), JobPool::host());
    }

    #[test]
    fn run_indexed_is_order_preserving_at_any_width() {
        for workers in [1, 3, 16] {
            let out = JobPool::new(workers).run_indexed(40, |i| i * 2);
            assert_eq!(out, (0..40).map(|i| i * 2).collect::<Vec<_>>());
        }
        assert!(JobPool::new(4).run_indexed(0, |i| i).is_empty());
    }
}
