//! Greedy selection state: link-set partition refinement plus coverage
//! weights and the path score of eq. (1).

use std::collections::HashMap;

use super::virtual_links::ExtendedUniverse;
use super::{PmcConfig, PmcError};
use crate::types::{LinkId, ProbePath};

/// A partition of extended-link elements into "link sets", refined by each
/// selected path (§4.2: a selected path splits every set into the elements
/// on the path and those not on it).
#[derive(Clone, Debug)]
struct Partition {
    /// Element → cell id.
    cell_of: Vec<u32>,
    /// Cell id → number of elements currently in the cell.
    cell_size: Vec<u64>,
    /// Number of non-empty cells.
    num_cells: u64,
    /// Scratch: per-cell stamp for distinct-cell counting.
    stamp: Vec<u32>,
    /// Scratch: per-cell incident-element count for split prediction.
    inc_count: Vec<u64>,
    /// Current stamp round.
    round: u32,
}

impl Partition {
    fn new(num_elements: u64) -> Self {
        let n = num_elements as usize;
        Self {
            cell_of: vec![0; n],
            cell_size: vec![num_elements],
            num_cells: if n == 0 { 0 } else { 1 },
            stamp: vec![0],
            inc_count: vec![0],
            round: 0,
        }
    }

    #[inline]
    fn num_cells(&self) -> u64 {
        self.num_cells
    }

    #[inline]
    fn is_discrete(&self, num_elements: u64) -> bool {
        self.num_cells == num_elements
    }

    /// Counts, without modifying the partition, how many distinct cells the
    /// incident elements touch and how many of those cells would actually
    /// split (contain both incident and non-incident elements).
    fn probe(&mut self, incident: &[u64]) -> (u64, u64) {
        self.round += 1;
        let round = self.round;
        let mut touched = 0u64;
        for &e in incident {
            let c = self.cell_of[e as usize] as usize;
            if self.stamp[c] != round {
                self.stamp[c] = round;
                self.inc_count[c] = 0;
                touched += 1;
            }
            self.inc_count[c] += 1;
        }
        let mut splits = 0u64;
        // Second pass over distinct cells via the stamped counts.
        for &e in incident {
            let c = self.cell_of[e as usize] as usize;
            if self.stamp[c] == round {
                if self.inc_count[c] < self.cell_size[c] {
                    splits += 1;
                }
                // Consume the stamp so each cell is judged once.
                self.stamp[c] = round.wrapping_sub(1);
            }
        }
        self.round += 1; // Invalidate any stale consumed stamps.
        (touched, splits)
    }

    /// Refines the partition by the incident-element set of a selected
    /// path, returning the number of cells that split.
    fn refine(&mut self, incident: &[u64]) -> u64 {
        let mut buddy: HashMap<u32, u32> = HashMap::new();
        for &e in incident {
            let c = self.cell_of[e as usize];
            let b = *buddy.entry(c).or_insert_with(|| {
                let id = self.cell_size.len() as u32;
                self.cell_size.push(0);
                self.stamp.push(0);
                self.inc_count.push(0);
                id
            });
            self.cell_size[c as usize] -= 1;
            self.cell_size[b as usize] += 1;
            self.cell_of[e as usize] = b;
        }
        let mut splits = 0;
        for (&c, _) in buddy.iter() {
            if self.cell_size[c as usize] > 0 {
                splits += 1;
            }
        }
        self.num_cells += splits;
        splits
    }
}

/// Evaluation of a candidate path against the current selection state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eval {
    /// The paper's score (eq. (1)): Σ w\[link\] − #link-sets-on-path.
    /// Lower is better.
    pub score: i64,
    /// Number of link sets the path would split if selected.
    pub split_gain: u64,
    /// Number of the path's physical links still below α coverage.
    pub coverage_gain: u32,
}

impl Eval {
    /// True if selecting the path makes progress toward the configured
    /// targets (splits a set when identifiability is sought, or raises an
    /// under-covered link).
    #[inline]
    pub fn useful(&self, beta: u32) -> bool {
        self.coverage_gain > 0 || (beta >= 1 && self.split_gain > 0)
    }
}

/// Mutable state of one subproblem's greedy selection.
pub struct SelectionState {
    universe: ExtendedUniverse,
    partition: Partition,
    /// Per-local-link weight w\[link\]: number of selected paths covering it.
    w: Vec<u32>,
    alpha: u32,
    beta: u32,
    /// Number of links with w < α.
    under_covered: usize,
    /// Scratch bitmap for incident enumeration.
    in_path: Vec<bool>,
    /// Scratch buffer of incident elements.
    incident: Vec<u64>,
    /// Scratch buffer of local link indices.
    locals: Vec<u32>,
    selected: Vec<ProbePath>,
}

impl SelectionState {
    /// Creates the state for a subproblem over `universe_links`.
    pub fn new(universe_links: &[LinkId], cfg: &PmcConfig) -> Result<Self, PmcError> {
        let universe = ExtendedUniverse::new(universe_links, cfg.beta, cfg.max_extended_elements)?;
        let n = universe.num_links();
        let partition = Partition::new(universe.num_elements());
        Ok(Self {
            partition,
            w: vec![0; n],
            alpha: cfg.alpha,
            beta: cfg.beta,
            under_covered: if cfg.alpha == 0 { 0 } else { n },
            in_path: vec![false; n],
            incident: Vec::new(),
            locals: Vec::new(),
            universe,
            selected: Vec::new(),
        })
    }

    /// The extended universe of this subproblem.
    pub fn universe(&self) -> &ExtendedUniverse {
        &self.universe
    }

    /// True once both the coverage and identifiability targets hold.
    pub fn targets_met(&self) -> bool {
        self.under_covered == 0 && self.identifiability_met()
    }

    /// True once every extended link is alone in its cell (or β = 0).
    pub fn identifiability_met(&self) -> bool {
        self.beta == 0 || self.partition.is_discrete(self.universe.num_elements())
    }

    /// Current (cells, required-cells) pair, for progress reporting.
    pub fn cells(&self) -> (u64, u64) {
        (self.partition.num_cells(), self.universe.num_elements())
    }

    /// Minimum coverage achieved so far over the subproblem's links.
    pub fn min_coverage(&self) -> u32 {
        self.w.iter().copied().min().unwrap_or(0)
    }

    /// Paths selected so far.
    pub fn selected(&self) -> &[ProbePath] {
        &self.selected
    }

    /// Consumes the state, returning the selected paths.
    pub fn into_selected(self) -> Vec<ProbePath> {
        self.selected
    }

    fn load_locals(&mut self, path: &ProbePath) -> Result<(), PmcError> {
        self.locals.clear();
        for &l in path.links() {
            match self.universe.local(l) {
                Some(i) => self.locals.push(i),
                None => return Err(PmcError::UnknownLink { link: l }),
            }
        }
        self.locals.sort_unstable();
        Ok(())
    }

    fn load_incident(&mut self) {
        self.incident.clear();
        let incident = &mut self.incident;
        self.universe
            .for_each_incident(&self.locals, &mut self.in_path, |e| incident.push(e));
    }

    /// Scores a candidate path against the current state.
    pub fn evaluate(&mut self, path: &ProbePath) -> Result<Eval, PmcError> {
        self.load_locals(path)?;
        self.load_incident();
        let (touched, splits) = self.partition.probe(&self.incident);
        let weight: i64 = self.locals.iter().map(|&l| self.w[l as usize] as i64).sum();
        let coverage_gain = self
            .locals
            .iter()
            .filter(|&&l| self.w[l as usize] < self.alpha)
            .count() as u32;
        Ok(Eval {
            score: weight - touched as i64,
            split_gain: if self.beta >= 1 { splits } else { 0 },
            coverage_gain,
        })
    }

    /// Selects a path: refines the partition and updates link weights.
    pub fn select(&mut self, path: &ProbePath) -> Result<(), PmcError> {
        self.load_locals(path)?;
        self.load_incident();
        self.partition.refine(&self.incident);
        for i in 0..self.locals.len() {
            let l = self.locals[i] as usize;
            self.w[l] += 1;
            if self.w[l] == self.alpha {
                self.under_covered -= 1;
            }
        }
        self.selected.push(path.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(alpha: u32, beta: u32) -> PmcConfig {
        PmcConfig::new(alpha, beta)
    }

    fn path(id: u32, links: &[u32]) -> ProbePath {
        ProbePath::from_links(id, links.iter().map(|&l| LinkId(l)).collect())
    }

    #[test]
    fn initial_score_is_minus_one() {
        let links: Vec<LinkId> = (0..3).map(LinkId).collect();
        let mut st = SelectionState::new(&links, &cfg(1, 1)).unwrap();
        let e = st.evaluate(&path(0, &[0, 1])).unwrap();
        // One big cell touched, zero weight.
        assert_eq!(e.score, -1);
        assert_eq!(e.split_gain, 1);
        assert_eq!(e.coverage_gain, 2);
    }

    #[test]
    fn fig3_partition_reaches_discreteness() {
        // Links l0,l1,l2; paths p1={0,1}, p2={0,2}, p3={2}.
        let links: Vec<LinkId> = (0..3).map(LinkId).collect();
        let mut st = SelectionState::new(&links, &cfg(1, 1)).unwrap();
        st.select(&path(0, &[0, 1])).unwrap();
        assert!(!st.identifiability_met());
        st.select(&path(1, &[0, 2])).unwrap();
        // After p1, p2: cells {l0}, {l1}, {l2}? p1 splits {012} into
        // {01},{2}; p2 splits {01} into {0},{1} and {2} stays ({2} is
        // entirely on p2 → moves wholesale, no split).
        assert!(st.identifiability_met());
        assert!(st.targets_met());
    }

    #[test]
    fn selecting_same_path_twice_gives_no_split_gain() {
        let links: Vec<LinkId> = (0..3).map(LinkId).collect();
        let mut st = SelectionState::new(&links, &cfg(1, 1)).unwrap();
        let p = path(0, &[0, 1]);
        st.select(&p).unwrap();
        let e = st.evaluate(&p).unwrap();
        assert_eq!(e.split_gain, 0);
        assert_eq!(e.coverage_gain, 0);
        // Weight is now 1 per link; both links share a single cell.
        assert_eq!(e.score, 2 - 1);
    }

    #[test]
    fn coverage_target_tracks_under_covered() {
        let links: Vec<LinkId> = (0..2).map(LinkId).collect();
        let mut st = SelectionState::new(&links, &cfg(2, 0)).unwrap();
        let p = path(0, &[0, 1]);
        assert!(!st.targets_met());
        st.select(&p).unwrap();
        assert!(!st.targets_met());
        st.select(&p).unwrap();
        assert!(st.targets_met());
        assert_eq!(st.min_coverage(), 2);
    }

    #[test]
    fn beta_two_requires_distinguishing_pairs() {
        // Two links, candidates {0}, {1}, {0,1}: with paths {0} and {1}
        // the pair {0,1} is distinguished from both singles, since
        // paths({0,1}) = {p0,p1}.
        let links: Vec<LinkId> = (0..2).map(LinkId).collect();
        let mut st = SelectionState::new(&links, &cfg(1, 2)).unwrap();
        st.select(&path(0, &[0])).unwrap();
        st.select(&path(1, &[1])).unwrap();
        assert!(st.identifiability_met(), "cells: {:?}", st.cells());
    }

    #[test]
    fn unknown_link_is_reported() {
        let links: Vec<LinkId> = (0..2).map(LinkId).collect();
        let mut st = SelectionState::new(&links, &cfg(1, 1)).unwrap();
        let err = st.evaluate(&path(0, &[5])).unwrap_err();
        assert!(matches!(err, PmcError::UnknownLink { .. }));
    }

    #[test]
    fn probe_does_not_mutate_partition() {
        let links: Vec<LinkId> = (0..4).map(LinkId).collect();
        let mut st = SelectionState::new(&links, &cfg(1, 2)).unwrap();
        let before = st.cells();
        let _ = st.evaluate(&path(0, &[0, 2])).unwrap();
        let _ = st.evaluate(&path(1, &[1, 3])).unwrap();
        assert_eq!(st.cells(), before);
    }
}
