//! Independent verification of probe-matrix properties.
//!
//! Construction certifies (α, β) through its partition state; this module
//! re-checks the claims directly from the matrix definition — every
//! failure set of size ≤ β must induce a distinct set of lossy paths — so
//! tests can cross-validate the two implementations against each other.
//!
//! Verification decomposes the matrix into link-connected components
//! first: a failure set spanning several components induces per-component
//! observations that are distinguishable independently, so β-identifiability
//! of the whole matrix reduces to β-identifiability of each component (the
//! same argument the paper uses when it observes that the composed probe
//! matrix achieves β′ > β overall, §6.4).

use std::collections::{HashMap, HashSet};

use super::decompose::decompose;
use super::ProbeMatrix;
use crate::types::LinkId;

/// Summary of verified matrix properties.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Number of probe paths (matrix rows).
    pub num_paths: usize,
    /// Number of physical links (matrix columns).
    pub num_links: usize,
    /// Verified coverage: minimum paths-per-link over all links.
    pub coverage: u32,
    /// Verified identifiability level (≤ the requested check level).
    pub identifiability: u32,
}

/// Verifies coverage and identifiability up to `beta`.
pub fn verify(matrix: &ProbeMatrix, beta: u32) -> VerifyReport {
    VerifyReport {
        num_paths: matrix.paths.len(),
        num_links: matrix.num_links,
        coverage: min_coverage(matrix),
        identifiability: max_identifiability(matrix, beta),
    }
}

/// Minimum number of probe paths over any link of the universe.
pub fn min_coverage(matrix: &ProbeMatrix) -> u32 {
    let mut counts = vec![0u32; matrix.num_links];
    for p in &matrix.paths {
        for l in p.links() {
            counts[l.index()] += 1;
        }
    }
    counts.into_iter().min().unwrap_or(0)
}

/// 64-bit FNV-1a over a u32 stream.
fn fnv64(seed: u64, stream: impl Iterator<Item = u32>) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for v in stream {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// 128-bit signature of a sorted path-id set (two independent FNV seeds).
fn signature(ids: &[u32]) -> (u64, u64) {
    (
        fnv64(0, ids.iter().copied()),
        fnv64(0x9e37_79b9_7f4a_7c15, ids.iter().copied()),
    )
}

/// Signature of the merged union of two sorted id sets.
fn union2(a: &[u32], b: &[u32]) -> (u64, u64) {
    let merged = MergeIter::new(a, b);
    let v: Vec<u32> = merged.collect();
    signature(&v)
}

fn union3(a: &[u32], b: &[u32], c: &[u32]) -> (u64, u64) {
    let ab: Vec<u32> = MergeIter::new(a, b).collect();
    let v: Vec<u32> = MergeIter::new(&ab, c).collect();
    signature(&v)
}

/// Merge-dedup iterator over two sorted slices.
struct MergeIter<'a> {
    a: &'a [u32],
    b: &'a [u32],
}

impl<'a> MergeIter<'a> {
    fn new(a: &'a [u32], b: &'a [u32]) -> Self {
        Self { a, b }
    }
}

impl Iterator for MergeIter<'_> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        match (self.a.first(), self.b.first()) {
            (None, None) => None,
            (Some(&x), None) => {
                self.a = &self.a[1..];
                Some(x)
            }
            (None, Some(&y)) => {
                self.b = &self.b[1..];
                Some(y)
            }
            (Some(&x), Some(&y)) => {
                if x < y {
                    self.a = &self.a[1..];
                    Some(x)
                } else if y < x {
                    self.b = &self.b[1..];
                    Some(y)
                } else {
                    self.a = &self.a[1..];
                    self.b = &self.b[1..];
                    Some(x)
                }
            }
        }
    }
}

/// Largest j ≤ `up_to` such that the matrix is j-identifiable.
///
/// Level 0 means that not even all single-link failures can be told apart
/// (some link is uncovered, or two links lie on exactly the same paths).
/// The check is exact up to hash collisions on 128-bit signatures.
pub fn max_identifiability(matrix: &ProbeMatrix, up_to: u32) -> u32 {
    if up_to == 0 {
        return 0;
    }
    if !matrix.uncoverable.is_empty() {
        return 0;
    }

    // Per-component verification (see module docs for the reduction).
    let comps = decompose(matrix.paths.clone());

    // Links never covered at all → not even 1-identifiable. (Components
    // only contain covered links, so compare against the universe size.)
    let covered: usize = comps.iter().map(|c| c.universe.len()).sum();
    if covered < matrix.num_links {
        return 0;
    }

    let mut achieved = up_to.min(3);
    for comp in &comps {
        // Dense path numbering within the component.
        let link_pos: HashMap<LinkId, usize> = comp
            .universe
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i))
            .collect();
        let mut sigs: Vec<Vec<u32>> = vec![Vec::new(); comp.universe.len()];
        for (pi, p) in comp.candidates.iter().enumerate() {
            for l in p.links() {
                sigs[link_pos[l]].push(pi as u32);
            }
        }
        for s in &mut sigs {
            s.sort_unstable();
            s.dedup();
        }

        // Level 1: all single-link signatures distinct and non-empty.
        let mut seen: HashSet<(u64, u64)> = HashSet::new();
        let mut ok = true;
        for s in &sigs {
            if s.is_empty() || !seen.insert(signature(s)) {
                ok = false;
                break;
            }
        }
        if !ok {
            return 0;
        }

        let n = sigs.len();
        // Level 2: all pair unions distinct among themselves and from
        // singles.
        if achieved >= 2 {
            let mut ok2 = true;
            'outer2: for i in 0..n {
                for j in (i + 1)..n {
                    if !seen.insert(union2(&sigs[i], &sigs[j])) {
                        ok2 = false;
                        break 'outer2;
                    }
                }
            }
            if !ok2 {
                achieved = 1;
            }
        }

        // Level 3: all triple unions distinct as well.
        if achieved >= 3 {
            let mut ok3 = true;
            'outer3: for i in 0..n {
                for j in (i + 1)..n {
                    for k in (j + 1)..n {
                        if !seen.insert(union3(&sigs[i], &sigs[j], &sigs[k])) {
                            ok3 = false;
                            break 'outer3;
                        }
                    }
                }
            }
            if !ok3 {
                achieved = achieved.min(2);
            }
        }
    }
    achieved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProbePath;

    fn matrix(num_links: usize, paths: Vec<Vec<u32>>) -> ProbeMatrix {
        let paths = paths
            .into_iter()
            .enumerate()
            .map(|(i, ls)| ProbePath::from_links(i as u32, ls.into_iter().map(LinkId).collect()))
            .collect();
        ProbeMatrix::from_paths(num_links, paths)
    }

    #[test]
    fn uncovered_link_gives_zero() {
        let m = matrix(2, vec![vec![0]]);
        assert_eq!(max_identifiability(&m, 2), 0);
        assert_eq!(min_coverage(&m), 0);
    }

    #[test]
    fn identical_columns_give_zero() {
        let m = matrix(2, vec![vec![0, 1], vec![0, 1]]);
        assert_eq!(max_identifiability(&m, 1), 0);
    }

    #[test]
    fn fig3_full_matrix_is_one_identifiable() {
        // p1={0,1}, p2={0,2}, p3={2}: 1-identifiable but not 2 (the
        // {0,2}/{1,2} ambiguity from §4.1).
        let m = matrix(3, vec![vec![0, 1], vec![0, 2], vec![2]]);
        assert_eq!(max_identifiability(&m, 3), 1);
        assert_eq!(min_coverage(&m), 1);
    }

    #[test]
    fn singletons_matrix_is_fully_identifiable() {
        // One dedicated path per link distinguishes every subset.
        let m = matrix(4, vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(max_identifiability(&m, 3), 3);
    }

    #[test]
    fn components_verify_independently() {
        // Two disjoint Fig.3-style components, each 1-identifiable.
        let m = matrix(
            6,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![2],
                vec![3, 4],
                vec![3, 5],
                vec![5],
            ],
        );
        assert_eq!(max_identifiability(&m, 2), 1);
    }

    #[test]
    fn verify_bundles_everything() {
        let m = matrix(3, vec![vec![0, 1], vec![0, 2], vec![2]]);
        let r = verify(&m, 2);
        assert_eq!(r.num_paths, 3);
        assert_eq!(r.num_links, 3);
        assert_eq!(r.coverage, 1);
        assert_eq!(r.identifiability, 1);
    }

    #[test]
    fn merge_iter_dedups() {
        let a = [1u32, 3, 5];
        let b = [1u32, 2, 5, 9];
        let v: Vec<u32> = MergeIter::new(&a, &b).collect();
        assert_eq!(v, vec![1, 2, 3, 5, 9]);
    }
}
