//! Probe Matrix Construction (PMC) — §4 of the paper.
//!
//! Given a set of candidate probe paths (rows of the routing matrix `R`)
//! over a universe of physical links, PMC greedily selects a minimal set of
//! paths forming a probe matrix `P` that achieves:
//!
//! * **α-coverage** — every physical link lies on at least α selected paths;
//! * **β-identifiability** — any simultaneous failure of at most β links
//!   produces a distinct set of lossy paths, so failures can be localized
//!   from end-to-end observations alone.
//!
//! β-identifiability is reduced to 1-identifiability over an *extended*
//! link universe that adds a virtual link for every combination of 2..β
//! physical links (Fig. 3 of the paper); the greedy then refines a partition
//! of extended links until every extended link lies in its own cell.
//!
//! The module implements the strawman greedy (O(m²) rescoring) and the three
//! published optimizations: problem decomposition ([`decompose`]), lazy
//! score updates à la CELF ([`Strategy::Lazy`]), and symmetry reduction via
//! incremental [`CandidateProvider`]s that never materialize the full path
//! set (providers are implemented by `detector-topology`).

mod decompose;
mod greedy;
mod jobs;
mod lazy;
mod parallel;
mod provider;
mod state;
mod verify;
mod virtual_links;

pub use decompose::{decompose, Subproblem};
pub use jobs::{CellJob, CellSolution, JobPool};
pub use parallel::{
    construct_decomposed_parallel, resolve_subproblems_parallel, run_indexed_parallel,
};
pub use provider::{CandidateProvider, ExcludingProvider, ExhaustiveProvider};
pub use state::{Eval, SelectionState};
pub use verify::{max_identifiability, min_coverage, verify, VerifyReport};
pub use virtual_links::ExtendedUniverse;

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::types::{LinkId, PathId, ProbePath};

/// Selection strategy for the greedy loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Re-score every remaining candidate each iteration (the paper's
    /// strawman, O(m²) score updates).
    Strawman,
    /// Lazy score updates with a min-heap (CELF-style, Observation 2).
    Lazy,
}

/// Configuration for probe matrix construction.
#[derive(Clone, Debug)]
pub struct PmcConfig {
    /// Minimum number of selected paths that must cover each physical link.
    pub alpha: u32,
    /// Identifiability level: simultaneous failures of up to `beta` links
    /// must be distinguishable. Supported values: 0..=3 (the paper finds
    /// β ≥ 3 computationally impractical at scale, §4.4).
    pub beta: u32,
    /// Greedy variant.
    pub strategy: Strategy,
    /// Split the problem into independent subproblems first (Observation 1).
    pub decompose: bool,
    /// Solve decomposed subproblems on multiple threads.
    pub parallel: bool,
    /// Worker bound for parallel solves (`None` = host parallelism).
    /// The distributed controller sets this to shard cell re-solves over
    /// a fixed-size [`JobPool`] instead of whatever the host reports.
    pub workers: Option<usize>,
    /// Abort with [`PmcError::Timeout`] if construction exceeds this budget.
    pub timeout: Option<Duration>,
    /// Upper bound on the extended-universe size (#physical + #virtual
    /// links) per subproblem; guards against infeasible β on large inputs.
    pub max_extended_elements: u64,
    /// Churn-minimizing incremental re-solves: seed each cell re-solve
    /// with the surviving paths of its previous solution
    /// ([`resolve_subproblem_seeded`]), so a topology delta repairs the
    /// plan instead of recomputing it and the dispatched pinglist diff
    /// stays proportional to the delta. Off by default: the unseeded
    /// re-solve keeps the "patched ≡ from-scratch" guarantee, while the
    /// seeded one trades canonical path sets (healed at the next full
    /// cycle refresh) for minimal dispatch bytes.
    pub stable_patch: bool,
}

impl PmcConfig {
    /// Coverage-only configuration: α-coverage, no identifiability target.
    pub fn coverage(alpha: u32) -> Self {
        Self {
            alpha,
            beta: 0,
            ..Self::default()
        }
    }

    /// β-identifiability with 1-coverage (the paper's (1, β) settings).
    pub fn identifiable(beta: u32) -> Self {
        Self {
            alpha: 1,
            beta,
            ..Self::default()
        }
    }

    /// Full (α, β) configuration.
    pub fn new(alpha: u32, beta: u32) -> Self {
        Self {
            alpha,
            beta,
            ..Self::default()
        }
    }

    /// Uses the strawman strategy without decomposition (for benchmarks).
    pub fn strawman(mut self) -> Self {
        self.strategy = Strategy::Strawman;
        self.decompose = false;
        self.parallel = false;
        self
    }

    /// Sets a wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Bounds parallel solves to `workers` threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Enables churn-minimizing (seeded) incremental re-solves.
    pub fn with_stable_patch(mut self) -> Self {
        self.stable_patch = true;
        self
    }
}

impl Default for PmcConfig {
    fn default() -> Self {
        Self {
            alpha: 1,
            beta: 1,
            strategy: Strategy::Lazy,
            decompose: true,
            parallel: true,
            workers: None,
            timeout: None,
            max_extended_elements: 64_000_000,
            stable_patch: false,
        }
    }
}

/// Errors from probe matrix construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PmcError {
    /// The wall-clock budget was exceeded.
    Timeout {
        /// Time spent before giving up.
        elapsed: Duration,
    },
    /// β > 3 is not supported (combinatorial blow-up; the paper reports the
    /// same limitation).
    BetaTooLarge {
        /// Requested identifiability level.
        beta: u32,
    },
    /// The extended universe would exceed `max_extended_elements`.
    UniverseTooLarge {
        /// Number of extended elements that would be required.
        required: u64,
        /// The configured limit.
        limit: u64,
    },
    /// A candidate path referenced a link outside the declared universe.
    UnknownLink {
        /// The offending link.
        link: LinkId,
    },
}

impl core::fmt::Display for PmcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PmcError::Timeout { elapsed } => {
                write!(f, "PMC timed out after {elapsed:?}")
            }
            PmcError::BetaTooLarge { beta } => {
                write!(f, "identifiability level {beta} not supported (max 3)")
            }
            PmcError::UniverseTooLarge { required, limit } => {
                write!(
                    f,
                    "extended universe needs {required} elements, limit is {limit}"
                )
            }
            PmcError::UnknownLink { link } => {
                write!(f, "candidate path references unknown link {link}")
            }
        }
    }
}

impl std::error::Error for PmcError {}

/// What a constructed probe matrix actually achieved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Achieved {
    /// Minimum number of selected paths over any physical link that appears
    /// in at least one candidate (0 if some link is uncoverable).
    pub coverage: u32,
    /// Identifiability level certified by construction: equals the
    /// requested β when every extended link ended in its own partition
    /// cell in every subproblem, otherwise the best certified lower level.
    pub identifiability: u32,
    /// True when the requested (α, β) targets were fully met.
    pub targets_met: bool,
}

/// How a [`ProbeMatrix`] resolves a [`PathId`] to its row.
///
/// Constructed matrices re-number their rows densely, so the id *is* the
/// row index. Incrementally maintained plans instead allocate each
/// subproblem a stable [`PathIdRange`](crate::types::PathIdRange) and
/// leave gaps between cells (headroom), so a row lookup goes through an
/// explicit id → row map. Consumers never see the difference: both forms
/// answer [`ProbeMatrix::path`] / [`ProbeMatrix::row_of`].
#[derive(Clone, Debug)]
enum PathIndex {
    /// `paths[i].id == PathId(i)`: the id is the row index.
    Dense,
    /// Segmented (sparse-within-range) ids: explicit id → row map.
    Sparse(HashMap<PathId, u32>),
}

/// A constructed probe matrix: the selected probe paths plus metadata.
#[derive(Clone, Debug)]
pub struct ProbeMatrix {
    /// Size of the physical link universe (links are `0..num_links`).
    pub num_links: usize,
    /// Selected probe paths. Ids are unique but not necessarily dense:
    /// [`ProbeMatrix::from_paths`] re-numbers from 0 while
    /// [`ProbeMatrix::from_segmented`] keeps the caller's (range-based)
    /// ids. Resolve an id with [`ProbeMatrix::path`] instead of indexing
    /// `paths` by `id.index()`.
    pub paths: Vec<ProbePath>,
    /// Targets achieved by the construction.
    pub achieved: Achieved,
    /// Links of the universe that no candidate path covered (these can
    /// never be monitored by this candidate set).
    pub uncoverable: Vec<LinkId>,
    /// Resolves path ids to rows (dense or segmented).
    index: PathIndex,
}

impl ProbeMatrix {
    /// Builds a probe matrix directly from externally selected paths
    /// (used by the baseline systems, whose "selection" is all-pairs).
    /// Paths are re-numbered densely from 0.
    pub fn from_paths(num_links: usize, paths: Vec<ProbePath>) -> Self {
        let paths: Vec<ProbePath> = paths
            .into_iter()
            .enumerate()
            .map(|(i, p)| p.with_id(PathId(i as u32)))
            .collect();
        Self::assemble(num_links, paths, PathIndex::Dense)
    }

    /// Builds a probe matrix from paths that keep their own (segmented)
    /// ids — the incremental planner's assembly path, where each plan
    /// cell numbers its paths inside a stable
    /// [`PathIdRange`](crate::types::PathIdRange) and the ranges leave
    /// headroom gaps between cells. Ids must be unique; row order is the
    /// caller's path order (cell order, not id order — a re-based cell's
    /// range may sort after a later cell's).
    pub fn from_segmented(num_links: usize, paths: Vec<ProbePath>) -> Self {
        let mut index: HashMap<PathId, u32> = HashMap::with_capacity(paths.len());
        for (row, p) in paths.iter().enumerate() {
            let prev = index.insert(p.id, row as u32);
            debug_assert!(prev.is_none(), "duplicate path id {}", p.id);
        }
        Self::assemble(num_links, paths, PathIndex::Sparse(index))
    }

    fn assemble(num_links: usize, paths: Vec<ProbePath>, index: PathIndex) -> Self {
        let mut covered = vec![false; num_links];
        for p in &paths {
            for l in p.links() {
                if l.index() < num_links {
                    covered[l.index()] = true;
                }
            }
        }
        let uncoverable = (0..num_links)
            .filter(|&i| !covered[i])
            .map(|i| LinkId(i as u32))
            .collect();
        Self {
            num_links,
            paths,
            achieved: Achieved {
                coverage: 0,
                identifiability: 0,
                targets_met: false,
            },
            uncoverable,
            index,
        }
    }

    /// The row index of the path with id `id`, if deployed.
    pub fn row_of(&self, id: PathId) -> Option<usize> {
        match &self.index {
            PathIndex::Dense => (id.index() < self.paths.len()).then(|| id.index()),
            PathIndex::Sparse(map) => map.get(&id).map(|&row| row as usize),
        }
    }

    /// The path with id `id`, if deployed. Unknown ids (e.g. counters
    /// reported against a pre-re-base pinglist) resolve to `None` —
    /// segmented allocation never reuses a retired id within a run, so a
    /// stale id can be dropped but can never alias another path.
    pub fn path(&self, id: PathId) -> Option<&ProbePath> {
        self.row_of(id).map(|row| &self.paths[row])
    }

    /// Overrides the achieved targets (used by external constructors, e.g.
    /// the symmetry-reduction driver in `detector-topology`, which certify
    /// properties through their own reasoning).
    pub fn with_achieved(mut self, achieved: Achieved) -> Self {
        self.achieved = achieved;
        self
    }

    /// Number of selected paths (rows of the matrix).
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Iterates over the paths covering `link`.
    pub fn paths_through(&self, link: LinkId) -> impl Iterator<Item = &ProbePath> {
        self.paths.iter().filter(move |p| p.covers(link))
    }

    /// Builds the link → path-ids index used by the localization algorithms.
    pub fn link_index(&self) -> Vec<Vec<PathId>> {
        let mut idx = vec![Vec::new(); self.num_links];
        for p in &self.paths {
            for l in p.links() {
                idx[l.index()].push(p.id);
            }
        }
        idx
    }
}

/// Result of solving one subproblem (used internally and by providers).
#[derive(Clone, Debug)]
pub struct SubSolution {
    /// Selected paths (ids are meaningless until merged).
    pub paths: Vec<ProbePath>,
    /// True when both the α and β targets were met for this subproblem.
    pub targets_met: bool,
    /// Minimum coverage achieved over the subproblem's links.
    pub coverage: u32,
    /// Number of partition cells at the end vs the number needed.
    pub cells: (u64, u64),
}

/// Constructs a probe matrix from a materialized candidate set.
///
/// `num_links` is the size of the physical-link universe; every link id in
/// `candidates` must be `< num_links`. Links that appear in no candidate are
/// reported as [`ProbeMatrix::uncoverable`] rather than treated as errors,
/// mirroring the controller's behaviour of pruning failed links from the
/// routing matrix (§6.1, footnote 4).
///
/// # Examples
///
/// ```
/// use detector_core::pmc::{construct, PmcConfig};
/// use detector_core::types::{LinkId, ProbePath};
///
/// let candidates = vec![
///     ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
///     ProbePath::from_links(1, vec![LinkId(0)]),
/// ];
/// let m = construct(2, candidates, &PmcConfig::identifiable(1)).unwrap();
/// assert_eq!(m.achieved.identifiability, 1);
/// assert_eq!(m.num_paths(), 2);
/// ```
pub fn construct(
    num_links: usize,
    candidates: Vec<ProbePath>,
    cfg: &PmcConfig,
) -> Result<ProbeMatrix, PmcError> {
    // detlint::allow(determinism, reason = "PMC solver timeout deadline; deadlines only abort, never alter a completed plan")
    let deadline = cfg.timeout.map(|t| Instant::now() + t);
    for p in &candidates {
        if let Some(l) = p.links().iter().find(|l| l.index() >= num_links) {
            return Err(PmcError::UnknownLink { link: *l });
        }
    }

    let mut covered = vec![false; num_links];
    for p in &candidates {
        for l in p.links() {
            covered[l.index()] = true;
        }
    }
    let uncoverable: Vec<LinkId> = (0..num_links)
        .filter(|&i| !covered[i])
        .map(|i| LinkId(i as u32))
        .collect();

    let subproblems = if cfg.decompose {
        decompose(candidates)
    } else {
        vec![Subproblem::whole(candidates)]
    };

    let solutions: Vec<SubSolution> = if cfg.parallel && subproblems.len() > 1 {
        construct_decomposed_parallel(subproblems, cfg, deadline)?
    } else {
        let mut out = Vec::with_capacity(subproblems.len());
        for sp in subproblems {
            out.push(solve_subproblem(sp.universe, sp.candidates, cfg, deadline)?);
        }
        out
    };

    Ok(merge_solutions(num_links, uncoverable, solutions, cfg))
}

/// Constructs the selection for a single subproblem whose candidates are
/// produced incrementally by `provider` (the symmetry-reduction path).
///
/// The provider's universe defines the links that must be covered and
/// identified; the loop pulls candidate batches until the (α, β) targets
/// are met or the provider is exhausted.
pub fn construct_with_provider<P: CandidateProvider>(
    provider: P,
    cfg: &PmcConfig,
) -> Result<SubSolution, PmcError> {
    // detlint::allow(determinism, reason = "PMC solver timeout deadline; deadlines only abort, never alter a completed plan")
    let deadline = cfg.timeout.map(|t| Instant::now() + t);
    lazy::run_with_provider(provider, cfg, deadline)
}

/// Re-solves one subproblem with part of its universe excluded — the
/// incremental re-plan path (§4's "recompute quickly when the network
/// changes"): a failed or drained link leaves the coverage universe, every
/// candidate crossing it is dropped, and the greedy re-runs over the
/// survivors. Untouched subproblems keep their solutions, so a topology
/// delta costs one bounded re-solve instead of a whole-matrix recompute.
///
/// The result is identical to solving the same restricted subproblem from
/// scratch: the greedy is deterministic and the restriction depends only
/// on `(universe, candidates, excluded)`, not on any previous solution.
///
/// # Examples
///
/// ```
/// use std::collections::HashSet;
/// use detector_core::pmc::{resolve_subproblem, PmcConfig};
/// use detector_core::types::{LinkId, ProbePath};
///
/// let universe = vec![LinkId(0), LinkId(1), LinkId(2)];
/// let candidates = vec![
///     ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
///     ProbePath::from_links(1, vec![LinkId(1)]),
///     ProbePath::from_links(2, vec![LinkId(2)]),
/// ];
/// let dead: HashSet<LinkId> = [LinkId(0)].into_iter().collect();
/// let sol = resolve_subproblem(&universe, &candidates, &dead, &PmcConfig::identifiable(1)).unwrap();
/// // Links 1 and 2 stay covered and identifiable without crossing link 0.
/// assert!(sol.targets_met);
/// assert!(sol.paths.iter().all(|p| !p.covers(LinkId(0))));
/// ```
pub fn resolve_subproblem(
    universe: &[LinkId],
    candidates: &[ProbePath],
    excluded: &std::collections::HashSet<LinkId>,
    cfg: &PmcConfig,
) -> Result<SubSolution, PmcError> {
    // detlint::allow(determinism, reason = "PMC solver timeout deadline; deadlines only abort, never alter a completed plan")
    let deadline = cfg.timeout.map(|t| Instant::now() + t);
    let universe: Vec<LinkId> = universe
        .iter()
        .copied()
        .filter(|l| !excluded.contains(l))
        .collect();
    let candidates: Vec<ProbePath> = candidates
        .iter()
        .filter(|p| !p.links().iter().any(|l| excluded.contains(l)))
        .cloned()
        .collect();
    solve_subproblem(universe, candidates, cfg, deadline)
}

/// Re-solves one subproblem with part of its universe excluded, *seeded*
/// with the previous solution's surviving paths — the churn-minimizing
/// re-plan used under [`PmcConfig::stable_patch`].
///
/// Every seed path that avoids the excluded links and still makes progress
/// toward the targets is pre-selected, in its stored order; the greedy then
/// repairs only what the delta actually broke, completing from
/// `candidates`. The result covers and identifies exactly what an unseeded
/// [`resolve_subproblem`] would (same `targets_met` attainability — the
/// full candidate pool is still on the table), but its path set stays as
/// close to `seed` as the targets allow, so the dispatched pinglist diff
/// is proportional to the topology delta instead of the cell size. The
/// price is a possibly non-minimal path count; the periodic full refresh
/// (the paper's 600 s cycle) rebuilds the canonical solution from scratch.
///
/// Deterministic: depends only on `(universe, candidates, excluded, seed)`
/// and their stored orders.
///
/// # Examples
///
/// ```
/// use std::collections::HashSet;
/// use detector_core::pmc::{resolve_subproblem_seeded, PmcConfig};
/// use detector_core::types::{LinkId, ProbePath};
///
/// let universe = vec![LinkId(0), LinkId(1), LinkId(2)];
/// let candidates = vec![
///     ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
///     ProbePath::from_links(1, vec![LinkId(1)]),
///     ProbePath::from_links(2, vec![LinkId(2)]),
/// ];
/// let seed = vec![candidates[1].clone(), candidates[2].clone()];
/// let dead: HashSet<LinkId> = [LinkId(0)].into_iter().collect();
/// let cfg = PmcConfig::coverage(1).with_stable_patch();
/// let sol = resolve_subproblem_seeded(&universe, &candidates, &dead, &seed, &cfg).unwrap();
/// // The surviving seed already covers links 1 and 2: nothing churns.
/// assert!(sol.targets_met);
/// assert_eq!(sol.paths, seed);
/// ```
pub fn resolve_subproblem_seeded(
    universe: &[LinkId],
    candidates: &[ProbePath],
    excluded: &std::collections::HashSet<LinkId>,
    seed: &[ProbePath],
    cfg: &PmcConfig,
) -> Result<SubSolution, PmcError> {
    // detlint::allow(determinism, reason = "PMC solver timeout deadline; deadlines only abort, never alter a completed plan")
    let deadline = cfg.timeout.map(|t| Instant::now() + t);
    let universe: Vec<LinkId> = universe
        .iter()
        .copied()
        .filter(|l| !excluded.contains(l))
        .collect();
    let candidates: Vec<ProbePath> = candidates
        .iter()
        .filter(|p| !p.links().iter().any(|l| excluded.contains(l)))
        .cloned()
        .collect();
    let mut state = SelectionState::new(&universe, cfg)?;
    for p in seed {
        if p.is_empty() || p.links().iter().any(|l| excluded.contains(l)) {
            continue;
        }
        if state.evaluate(p)?.useful(cfg.beta) {
            state.select(p)?;
        }
    }
    greedy::complete(state, candidates, cfg, deadline)
}

/// Merges per-subproblem solutions into a dense probe matrix.
pub(crate) fn merge_solutions(
    num_links: usize,
    uncoverable: Vec<LinkId>,
    solutions: Vec<SubSolution>,
    cfg: &PmcConfig,
) -> ProbeMatrix {
    let mut paths = Vec::new();
    let mut targets_met = uncoverable.is_empty();
    let mut coverage = u32::MAX;
    for sol in solutions {
        targets_met &= sol.targets_met;
        coverage = coverage.min(sol.coverage);
        paths.extend(sol.paths);
    }
    if coverage == u32::MAX {
        coverage = 0;
    }
    let paths: Vec<ProbePath> = paths
        .into_iter()
        .enumerate()
        .map(|(i, p)| p.with_id(PathId(i as u32)))
        .collect();
    let identifiability = if targets_met { cfg.beta } else { 0 };
    ProbeMatrix {
        num_links,
        paths,
        achieved: Achieved {
            coverage,
            identifiability,
            targets_met,
        },
        uncoverable,
        index: PathIndex::Dense,
    }
}

/// Solves one materialized subproblem with the configured strategy.
pub(crate) fn solve_subproblem(
    universe: Vec<LinkId>,
    candidates: Vec<ProbePath>,
    cfg: &PmcConfig,
    deadline: Option<Instant>,
) -> Result<SubSolution, PmcError> {
    match cfg.strategy {
        Strategy::Strawman => greedy::run(universe, candidates, cfg, deadline),
        Strategy::Lazy => lazy::run(universe, candidates, cfg, deadline),
    }
}

pub(crate) fn check_deadline(deadline: Option<Instant>, start: Instant) -> Result<(), PmcError> {
    if let Some(d) = deadline {
        // detlint::allow(determinism, reason = "PMC solver timeout check; deadlines only abort, never alter a completed plan")
        if Instant::now() > d {
            return Err(PmcError::Timeout {
                elapsed: start.elapsed(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_candidates() -> Vec<ProbePath> {
        // The routing matrix of Fig. 3: p1 = {l1, l2}, p2 = {l1, l3},
        // p3 = {l3}.
        vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(0), LinkId(2)]),
            ProbePath::from_links(2, vec![LinkId(2)]),
        ]
    }

    #[test]
    fn fig3_one_identifiable_needs_all_three_paths() {
        let m = construct(3, fig3_candidates(), &PmcConfig::identifiable(1)).unwrap();
        // p1 and p2 alone are 1-identifiable for links l1/l2/l3? No: l3 and
        // l1 have distinct sets {p2} vs {p1,p2}, l2 = {p1}; actually the
        // pair {p1, p2} distinguishes all three links, but coverage of l2
        // requires p1 and of l3 requires p2 or p3. The greedy may pick any
        // 1-identifiable subset; verify the property rather than the count.
        assert!(m.achieved.targets_met);
        assert_eq!(max_identifiability(&m, 1), 1);
    }

    #[test]
    fn fig3_two_identifiability_is_impossible() {
        // The paper notes {l1,l3} and {l2,l3} produce identical
        // observations over the full matrix, so β = 2 must fail.
        let m = construct(3, fig3_candidates(), &PmcConfig::identifiable(2)).unwrap();
        assert!(!m.achieved.targets_met);
        assert_eq!(m.achieved.identifiability, 0);
        // Even so, the matrix should still be 1-identifiable in practice.
        assert_eq!(max_identifiability(&m, 2), 1);
    }

    #[test]
    fn uncoverable_links_are_reported() {
        let m = construct(4, fig3_candidates(), &PmcConfig::coverage(1)).unwrap();
        assert_eq!(m.uncoverable, vec![LinkId(3)]);
        assert!(!m.achieved.targets_met);
    }

    #[test]
    fn coverage_two_selects_more_paths() {
        let candidates = vec![
            ProbePath::from_links(0, vec![LinkId(0)]),
            ProbePath::from_links(1, vec![LinkId(0)]),
            ProbePath::from_links(2, vec![LinkId(0)]),
        ];
        let m = construct(1, candidates, &PmcConfig::coverage(2)).unwrap();
        assert_eq!(m.num_paths(), 2);
        assert_eq!(m.achieved.coverage, 2);
        assert!(m.achieved.targets_met);
    }

    #[test]
    fn strawman_and_lazy_agree_on_targets() {
        let candidates = fig3_candidates();
        let lazy = construct(3, candidates.clone(), &PmcConfig::identifiable(1)).unwrap();
        let straw = construct(3, candidates, &PmcConfig::identifiable(1).strawman()).unwrap();
        assert_eq!(lazy.achieved.targets_met, straw.achieved.targets_met);
        assert_eq!(min_coverage(&lazy), min_coverage(&straw));
    }

    #[test]
    fn beta_four_is_rejected() {
        let err = construct(3, fig3_candidates(), &PmcConfig::identifiable(4)).unwrap_err();
        assert_eq!(err, PmcError::BetaTooLarge { beta: 4 });
    }

    #[test]
    fn unknown_link_is_rejected() {
        let err = construct(1, fig3_candidates(), &PmcConfig::coverage(1)).unwrap_err();
        assert!(matches!(err, PmcError::UnknownLink { .. }));
    }

    #[test]
    fn timeout_fires_on_zero_budget() {
        // A zero timeout must abort before any real work happens.
        let cfg = PmcConfig::identifiable(1).with_timeout(Duration::from_secs(0));
        // Build a candidate set big enough that the loop checks the clock.
        let candidates: Vec<ProbePath> = (0..2000u32)
            .map(|i| ProbePath::from_links(i, vec![LinkId(i % 97), LinkId((i * 7 + 1) % 97)]))
            .collect();
        let res = construct(97, candidates, &cfg);
        assert!(matches!(res, Err(PmcError::Timeout { .. })));
    }

    #[test]
    fn segmented_matrix_resolves_sparse_ids() {
        // Two "cells" with ranges 0..4 and 8..12, partially filled: the
        // ids are sparse overall but resolve through the index layer.
        let paths = vec![
            ProbePath::from_links(0, vec![LinkId(0)]),
            ProbePath::from_links(1, vec![LinkId(1)]),
            ProbePath::from_links(8, vec![LinkId(2)]),
            ProbePath::from_links(9, vec![LinkId(0), LinkId(2)]),
        ];
        let m = ProbeMatrix::from_segmented(3, paths);
        assert_eq!(m.num_paths(), 4);
        assert_eq!(m.row_of(PathId(8)), Some(2));
        assert_eq!(m.path(PathId(9)).unwrap().links(), &[LinkId(0), LinkId(2)]);
        // Ids in the headroom gap (and retired ids) resolve to nothing.
        assert_eq!(m.row_of(PathId(2)), None);
        assert_eq!(m.path(PathId(4)), None);
        assert!(m.uncoverable.is_empty());
        // The link index speaks segmented ids too.
        let idx = m.link_index();
        assert_eq!(idx[2], vec![PathId(8), PathId(9)]);
    }

    #[test]
    fn dense_matrix_id_lookup_is_positional() {
        let m = construct(3, fig3_candidates(), &PmcConfig::identifiable(1)).unwrap();
        for (row, p) in m.paths.iter().enumerate() {
            assert_eq!(m.row_of(p.id), Some(row));
            assert_eq!(m.path(p.id), Some(p));
        }
        assert_eq!(m.path(PathId(m.num_paths() as u32)), None);
    }

    #[test]
    fn link_index_matches_paths() {
        let m = construct(3, fig3_candidates(), &PmcConfig::identifiable(1)).unwrap();
        let idx = m.link_index();
        for (l, paths) in idx.iter().enumerate() {
            for pid in paths {
                assert!(m.paths[pid.index()].covers(LinkId(l as u32)));
            }
        }
    }

    #[test]
    fn seeded_resolve_keeps_a_sufficient_seed_verbatim() {
        // Singles cover every link; the unseeded greedy would prefer the
        // pair {0,1} (one path, two links), but a seed that already meets
        // the targets must survive untouched.
        let universe = vec![LinkId(0), LinkId(1), LinkId(2)];
        let pair = ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]);
        let singles: Vec<ProbePath> = (0..3)
            .map(|l| ProbePath::from_links(1 + l, vec![LinkId(l)]))
            .collect();
        let mut candidates = vec![pair];
        candidates.extend(singles.iter().cloned());
        let cfg = PmcConfig::coverage(1).with_stable_patch();
        let sol = resolve_subproblem_seeded(
            &universe,
            &candidates,
            &std::collections::HashSet::new(),
            &singles,
            &cfg,
        )
        .unwrap();
        assert!(sol.targets_met);
        assert_eq!(sol.paths, singles);
    }

    #[test]
    fn seeded_resolve_repairs_only_what_the_exclusion_broke() {
        let universe = vec![LinkId(0), LinkId(1), LinkId(2)];
        let seed = vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(2)]),
        ];
        let candidates = vec![
            seed[0].clone(),
            seed[1].clone(),
            ProbePath::from_links(2, vec![LinkId(1)]),
        ];
        let dead: std::collections::HashSet<LinkId> = [LinkId(0)].into_iter().collect();
        let cfg = PmcConfig::coverage(1).with_stable_patch();
        let sol = resolve_subproblem_seeded(&universe, &candidates, &dead, &seed, &cfg).unwrap();
        assert!(sol.targets_met);
        // The surviving seed path stays; the dead pair is replaced by the
        // one candidate that restores link 1's coverage.
        assert_eq!(sol.paths, vec![seed[1].clone(), candidates[2].clone()]);
    }

    #[test]
    fn seeded_resolve_matches_unseeded_attainability() {
        let candidates = fig3_candidates();
        let universe = vec![LinkId(0), LinkId(1), LinkId(2)];
        let cfg = PmcConfig::identifiable(1).with_stable_patch();
        for dead_link in 0..3u32 {
            let dead: std::collections::HashSet<LinkId> = [LinkId(dead_link)].into_iter().collect();
            let unseeded =
                resolve_subproblem(&universe, &candidates, &dead, &PmcConfig::identifiable(1))
                    .unwrap();
            // Seed with the pristine full solve of the same cell.
            let pristine = resolve_subproblem(
                &universe,
                &candidates,
                &std::collections::HashSet::new(),
                &PmcConfig::identifiable(1),
            )
            .unwrap();
            let seeded =
                resolve_subproblem_seeded(&universe, &candidates, &dead, &pristine.paths, &cfg)
                    .unwrap();
            assert_eq!(seeded.targets_met, unseeded.targets_met, "link {dead_link}");
            assert!(
                seeded.coverage >= unseeded.coverage.min(1),
                "link {dead_link}"
            );
            assert!(seeded.paths.iter().all(|p| !p.covers(LinkId(dead_link))));
        }
    }
}
