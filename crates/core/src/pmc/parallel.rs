//! Parallel subproblem driver.
//!
//! The paper solves decomposed subproblems "in parallel" on a 10-core
//! server; we do the same with scoped threads pulling indexed jobs from
//! a shared work queue ([`run_indexed_parallel`]). Results are returned
//! in job order, so the parallel path is observably identical to the
//! sequential one. The same driver powers the incremental planner's
//! multi-cell patch re-solves in `detector-system`.

use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Instant;

use super::decompose::Subproblem;
use super::{solve_subproblem, JobPool, PmcConfig, PmcError, SubSolution};
use crate::types::{LinkId, ProbePath};

/// Runs `n` indexed jobs on up to `available_parallelism` scoped
/// threads, returning results in index order. With one core (or one
/// job) the jobs run inline. `job(i)` must be safe to call from any
/// thread; each index is executed exactly once, so deterministic jobs
/// make the parallel run observably identical to a sequential loop.
/// Sugar for [`JobPool::host`] + [`JobPool::run_indexed`]; use a
/// [`JobPool`] directly to bound the worker count.
pub fn run_indexed_parallel<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    JobPool::host().run_indexed(n, job)
}

/// Solves `subproblems` on the pool [`PmcConfig::workers`] implies
/// (host parallelism unless bounded).
pub fn construct_decomposed_parallel(
    subproblems: Vec<Subproblem>,
    cfg: &PmcConfig,
    deadline: Option<Instant>,
) -> Result<Vec<SubSolution>, PmcError> {
    let n = subproblems.len();
    // Job closures take ownership of their subproblem through the slot.
    let work: Vec<Mutex<Option<Subproblem>>> = subproblems
        .into_iter()
        .map(|s| Mutex::new(Some(s)))
        .collect();
    let out = JobPool::from_config(cfg).run_indexed(n, |i| {
        let sp = work[i]
            .lock()
            .expect("work queue poisoned")
            .take()
            .expect("subproblem taken twice");
        solve_subproblem(sp.universe, sp.candidates, cfg, deadline)
    });
    out.into_iter().collect()
}

/// Re-solves many subproblems with per-subproblem exclusions on multiple
/// threads — the batched form of
/// [`resolve_subproblem`](super::resolve_subproblem). Each `(universe,
/// candidates, excluded)` triple is restricted exactly as
/// `resolve_subproblem` restricts it, then the batch rides
/// [`construct_decomposed_parallel`]; results come back in input order
/// and each solve is deterministic, so a *successful* batch is exactly
/// what re-solving the same cells one by one would produce. Timeout
/// semantics differ: the batch shares one wall-clock budget from
/// `cfg.timeout` (like a from-scratch decomposed build), whereas
/// one-by-one re-solves restart the budget per cell — a batch can time
/// out where N sequential calls would each squeak by. (The incremental
/// planner's patch path therefore drives its cells through
/// [`run_indexed_parallel`] with per-cell budgets instead.)
pub fn resolve_subproblems_parallel(
    work: Vec<(&[LinkId], &[ProbePath], &HashSet<LinkId>)>,
    cfg: &PmcConfig,
) -> Result<Vec<SubSolution>, PmcError> {
    // detlint::allow(determinism, reason = "PMC solver timeout deadline; deadlines only abort, never alter a completed plan")
    let deadline = cfg.timeout.map(|t| Instant::now() + t);
    let restricted: Vec<Subproblem> = work
        .into_iter()
        .map(|(universe, candidates, excluded)| Subproblem {
            universe: universe
                .iter()
                .copied()
                .filter(|l| !excluded.contains(l))
                .collect(),
            candidates: candidates
                .iter()
                .filter(|p| !p.links().iter().any(|l| excluded.contains(l)))
                .cloned()
                .collect(),
        })
        .collect();
    construct_decomposed_parallel(restricted, cfg, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn path(id: u32, ls: &[u32]) -> ProbePath {
        ProbePath::from_links(id, ls.iter().map(|&l| LinkId(l)).collect())
    }

    #[test]
    fn parallel_matches_sequential() {
        // 8 disjoint two-link components.
        let mut candidates = Vec::new();
        for c in 0..8u32 {
            let base = c * 2;
            candidates.push(path(c * 3, &[base, base + 1]));
            candidates.push(path(c * 3 + 1, &[base]));
            candidates.push(path(c * 3 + 2, &[base + 1]));
        }
        let subs = super::super::decompose(candidates);
        assert_eq!(subs.len(), 8);
        let cfg = PmcConfig::identifiable(1);
        let par = construct_decomposed_parallel(subs.clone(), &cfg, None).unwrap();
        let mut seq = Vec::new();
        for sp in subs {
            seq.push(solve_subproblem(sp.universe, sp.candidates, &cfg, None).unwrap());
        }
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(seq.iter()) {
            assert_eq!(a.targets_met, b.targets_met);
            assert_eq!(a.paths.len(), b.paths.len());
            let la: Vec<_> = a.paths.iter().map(|p| p.links().to_vec()).collect();
            let lb: Vec<_> = b.paths.iter().map(|p| p.links().to_vec()).collect();
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let cfg = PmcConfig::identifiable(1);
        let out = construct_decomposed_parallel(Vec::new(), &cfg, None).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn indexed_driver_preserves_order_and_runs_each_job_once() {
        let calls = AtomicUsize::new(0);
        let out = run_indexed_parallel(64, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            i * i
        });
        assert_eq!(calls.load(Ordering::SeqCst), 64);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
        assert!(run_indexed_parallel(0, |i| i).is_empty());
    }

    #[test]
    fn batched_resolve_matches_one_by_one() {
        // 6 disjoint two-link components, each losing a different link.
        let mut subs = Vec::new();
        for c in 0..6u32 {
            let base = c * 2;
            let candidates = vec![
                path(c * 3, &[base, base + 1]),
                path(c * 3 + 1, &[base]),
                path(c * 3 + 2, &[base + 1]),
            ];
            let universe = vec![LinkId(base), LinkId(base + 1)];
            let excluded: HashSet<LinkId> = if c % 2 == 0 {
                [LinkId(base)].into_iter().collect()
            } else {
                HashSet::new()
            };
            subs.push((universe, candidates, excluded));
        }
        let cfg = PmcConfig::identifiable(1);
        let work: Vec<(&[LinkId], &[ProbePath], &HashSet<LinkId>)> = subs
            .iter()
            .map(|(u, c, e)| (u.as_slice(), c.as_slice(), e))
            .collect();
        let batched = resolve_subproblems_parallel(work, &cfg).unwrap();
        for ((universe, candidates, excluded), got) in subs.iter().zip(&batched) {
            let want =
                super::super::resolve_subproblem(universe, candidates, excluded, &cfg).unwrap();
            assert_eq!(got.targets_met, want.targets_met);
            let la: Vec<_> = got.paths.iter().map(|p| p.links().to_vec()).collect();
            let lb: Vec<_> = want.paths.iter().map(|p| p.links().to_vec()).collect();
            assert_eq!(la, lb);
        }
    }
}
