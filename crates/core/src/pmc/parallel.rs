//! Parallel subproblem driver.
//!
//! The paper solves decomposed subproblems "in parallel" on a 10-core
//! server; we do the same with scoped threads pulling subproblems from a
//! shared work queue. Results are returned in subproblem order, so the
//! parallel path is observably identical to the sequential one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use super::decompose::Subproblem;
use super::{solve_subproblem, PmcConfig, PmcError, SubSolution};

/// Solves `subproblems` on up to `available_parallelism` threads.
pub fn construct_decomposed_parallel(
    subproblems: Vec<Subproblem>,
    cfg: &PmcConfig,
    deadline: Option<Instant>,
) -> Result<Vec<SubSolution>, PmcError> {
    let n = subproblems.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        let mut out = Vec::with_capacity(n);
        for sp in subproblems {
            out.push(solve_subproblem(sp.universe, sp.candidates, cfg, deadline)?);
        }
        return Ok(out);
    }

    let work: Vec<Mutex<Option<Subproblem>>> = subproblems
        .into_iter()
        .map(|s| Mutex::new(Some(s)))
        .collect();
    let results: Vec<Mutex<Option<Result<SubSolution, PmcError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let sp = work[i]
                    .lock()
                    .expect("work queue poisoned")
                    .take()
                    .expect("subproblem taken twice");
                let res = solve_subproblem(sp.universe, sp.candidates, cfg, deadline);
                *results[i].lock().expect("result slot poisoned") = Some(res);
            });
        }
    })
    .expect("worker thread panicked");

    let mut out = Vec::with_capacity(n);
    for slot in results {
        let res = slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("missing subproblem result");
        out.push(res?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{LinkId, ProbePath};

    fn path(id: u32, ls: &[u32]) -> ProbePath {
        ProbePath::from_links(id, ls.iter().map(|&l| LinkId(l)).collect())
    }

    #[test]
    fn parallel_matches_sequential() {
        // 8 disjoint two-link components.
        let mut candidates = Vec::new();
        for c in 0..8u32 {
            let base = c * 2;
            candidates.push(path(c * 3, &[base, base + 1]));
            candidates.push(path(c * 3 + 1, &[base]));
            candidates.push(path(c * 3 + 2, &[base + 1]));
        }
        let subs = super::super::decompose(candidates);
        assert_eq!(subs.len(), 8);
        let cfg = PmcConfig::identifiable(1);
        let par = construct_decomposed_parallel(subs.clone(), &cfg, None).unwrap();
        let mut seq = Vec::new();
        for sp in subs {
            seq.push(solve_subproblem(sp.universe, sp.candidates, &cfg, None).unwrap());
        }
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(seq.iter()) {
            assert_eq!(a.targets_met, b.targets_met);
            assert_eq!(a.paths.len(), b.paths.len());
            let la: Vec<_> = a.paths.iter().map(|p| p.links().to_vec()).collect();
            let lb: Vec<_> = b.paths.iter().map(|p| p.links().to_vec()).collect();
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let cfg = PmcConfig::identifiable(1);
        let out = construct_decomposed_parallel(Vec::new(), &cfg, None).unwrap();
        assert!(out.is_empty());
    }
}
