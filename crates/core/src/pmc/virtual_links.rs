//! Extended link universe: physical links plus virtual links.
//!
//! To achieve β-identifiability, the paper extends the routing matrix with
//! a *virtual link* for every combination of 2..β physical links; the
//! column of a virtual link is the OR of its constituents' columns
//! (Fig. 3). A probe matrix is β-identifiable exactly when every extended
//! link (physical or virtual) ends up with a distinct set of covering
//! paths, which the greedy certifies by refining a partition of extended
//! links into singleton cells.
//!
//! Virtual links are never materialized: an extended link is an integer
//! *element id* computed from the combinatorial number system, and this
//! module enumerates, for a given path, exactly the element ids whose
//! columns contain that path (its *incident* elements: every subset with at
//! least one constituent on the path).

use std::collections::HashMap;

use super::PmcError;
use crate::types::LinkId;

/// The extended universe of one subproblem: a dense local numbering of the
/// physical links plus implicit virtual links up to size β.
#[derive(Clone, Debug)]
pub struct ExtendedUniverse {
    /// Dense local index → global link id.
    links: Vec<LinkId>,
    /// Global link id → dense local index.
    index: HashMap<LinkId, u32>,
    beta: u32,
    n: u64,
    /// Element ids `[n, pairs_end)` are pairs.
    pairs_end: u64,
    /// Element ids `[pairs_end, total)` are triples.
    total: u64,
    /// `triple_prefix[i]` = number of triples whose smallest member is < i.
    triple_prefix: Vec<u64>,
}

#[inline]
fn c2(n: u64) -> u64 {
    n * n.saturating_sub(1) / 2
}

#[inline]
fn c3(n: u64) -> u64 {
    if n < 3 {
        0
    } else {
        n * (n - 1) * (n - 2) / 6
    }
}

impl ExtendedUniverse {
    /// Builds the extended universe over `universe` for identifiability
    /// level `beta` (0..=3), rejecting configurations whose element count
    /// exceeds `cap`.
    pub fn new(universe: &[LinkId], beta: u32, cap: u64) -> Result<Self, PmcError> {
        if beta > 3 {
            return Err(PmcError::BetaTooLarge { beta });
        }
        let links: Vec<LinkId> = universe.to_vec();
        let n = links.len() as u64;
        let pairs = if beta >= 2 { c2(n) } else { 0 };
        let triples = if beta >= 3 { c3(n) } else { 0 };
        let total = n + pairs + triples;
        if total > cap {
            return Err(PmcError::UniverseTooLarge {
                required: total,
                limit: cap,
            });
        }
        let index: HashMap<LinkId, u32> = links
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as u32))
            .collect();
        let triple_prefix = if beta >= 3 {
            // triple_prefix[i] = Σ_{a<i} C(n-1-a, 2).
            let mut pre = Vec::with_capacity(n as usize + 1);
            let mut acc = 0u64;
            pre.push(0);
            for a in 0..n {
                acc += c2(n - 1 - a);
                pre.push(acc);
            }
            pre
        } else {
            Vec::new()
        };
        Ok(Self {
            links,
            index,
            beta,
            n,
            pairs_end: n + pairs,
            total,
            triple_prefix,
        })
    }

    /// Number of physical links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.n as usize
    }

    /// Total number of extended elements (physical + virtual links).
    #[inline]
    pub fn num_elements(&self) -> u64 {
        self.total
    }

    /// The identifiability level this universe encodes.
    #[inline]
    pub fn beta(&self) -> u32 {
        self.beta
    }

    /// Maps a global link id to its dense local index.
    #[inline]
    pub fn local(&self, link: LinkId) -> Option<u32> {
        self.index.get(&link).copied()
    }

    /// Maps a dense local index back to the global link id.
    #[inline]
    pub fn global(&self, local: u32) -> LinkId {
        self.links[local as usize]
    }

    /// All global links of this universe in local order.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Element id of the pair `{i, j}` with `i < j` (local indices).
    #[inline]
    pub fn pair_element(&self, i: u64, j: u64) -> u64 {
        debug_assert!(i < j && j < self.n);
        // Pairs with smaller member < i precede: Σ_{a<i} (n-1-a).
        let before = i * (self.n - 1) - i * i.saturating_sub(1) / 2;
        self.n + before + (j - i - 1)
    }

    /// Element id of the triple `{i, j, k}` with `i < j < k`.
    #[inline]
    pub fn triple_element(&self, i: u64, j: u64, k: u64) -> u64 {
        debug_assert!(i < j && j < k && k < self.n);
        let base = self.pairs_end;
        let at_i = self.triple_prefix[i as usize];
        // Within fixed i, pairs (j, k) over the (n - i - 1)-element suffix.
        let m = self.n - i - 1;
        let jj = j - i - 1;
        let kk = k - i - 1;
        let pair_rank = jj * (m - 1) - jj * jj.saturating_sub(1) / 2 + (kk - jj - 1);
        base + at_i + pair_rank
    }

    /// Calls `f` with every extended element *incident* to a path, i.e.
    /// every subset of size 1..=β containing at least one of the path's
    /// links.
    ///
    /// `locals` must be the path's links as sorted, de-duplicated local
    /// indices; `in_path` is a caller-owned scratch bitmap of length
    /// [`Self::num_links`] that must be all-false on entry and is restored
    /// to all-false before returning.
    pub fn for_each_incident(&self, locals: &[u32], in_path: &mut [bool], mut f: impl FnMut(u64)) {
        debug_assert_eq!(in_path.len(), self.n as usize);
        for &l in locals {
            in_path[l as usize] = true;
        }

        // Singles.
        for &l in locals {
            f(l as u64);
        }

        if self.beta >= 2 {
            // Pairs with exactly one member on the path.
            for &l in locals {
                let i = l as u64;
                for x in 0..self.n {
                    if in_path[x as usize] {
                        continue;
                    }
                    let (a, b) = if x < i { (x, i) } else { (i, x) };
                    f(self.pair_element(a, b));
                }
            }
            // Pairs with both members on the path.
            for (ai, &a) in locals.iter().enumerate() {
                for &b in &locals[ai + 1..] {
                    f(self.pair_element(a as u64, b as u64));
                }
            }
        }

        if self.beta >= 3 {
            // Triples with exactly one member on the path.
            for &l in locals {
                let i = l as u64;
                for x in 0..self.n {
                    if in_path[x as usize] {
                        continue;
                    }
                    for y in (x + 1)..self.n {
                        if in_path[y as usize] {
                            continue;
                        }
                        let mut t = [i, x, y];
                        t.sort_unstable();
                        f(self.triple_element(t[0], t[1], t[2]));
                    }
                }
            }
            // Triples with exactly two members on the path.
            for (ai, &a) in locals.iter().enumerate() {
                for &b in &locals[ai + 1..] {
                    for x in 0..self.n {
                        if in_path[x as usize] {
                            continue;
                        }
                        let mut t = [a as u64, b as u64, x];
                        t.sort_unstable();
                        f(self.triple_element(t[0], t[1], t[2]));
                    }
                }
            }
            // Triples fully on the path.
            for (ai, &a) in locals.iter().enumerate() {
                for (bi, &b) in locals.iter().enumerate().skip(ai + 1) {
                    for &c in &locals[bi + 1..] {
                        f(self.triple_element(a as u64, b as u64, c as u64));
                    }
                }
            }
        }

        for &l in locals {
            in_path[l as usize] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(n: u32, beta: u32) -> ExtendedUniverse {
        let links: Vec<LinkId> = (0..n).map(LinkId).collect();
        ExtendedUniverse::new(&links, beta, u64::MAX).unwrap()
    }

    #[test]
    fn element_counts() {
        assert_eq!(universe(5, 0).num_elements(), 5);
        assert_eq!(universe(5, 1).num_elements(), 5);
        assert_eq!(universe(5, 2).num_elements(), 5 + 10);
        assert_eq!(universe(5, 3).num_elements(), 5 + 10 + 10);
    }

    #[test]
    fn pair_elements_are_a_bijection() {
        let u = universe(7, 2);
        let mut seen = vec![false; u.num_elements() as usize];
        for i in 0..7u64 {
            seen[i as usize] = true;
        }
        for i in 0..7u64 {
            for j in (i + 1)..7 {
                let e = u.pair_element(i, j) as usize;
                assert!(!seen[e], "duplicate element for pair ({i},{j})");
                seen[e] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn triple_elements_are_a_bijection() {
        let u = universe(9, 3);
        let mut seen = vec![false; u.num_elements() as usize];
        let n = 9u64;
        for i in 0..n {
            seen[i as usize] = true;
        }
        for i in 0..n {
            for j in (i + 1)..n {
                seen[u.pair_element(i, j) as usize] = true;
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    let e = u.triple_element(i, j, k) as usize;
                    assert!(!seen[e], "duplicate element for ({i},{j},{k})");
                    seen[e] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn incident_enumeration_matches_naive() {
        // Compare against a brute-force enumeration of all subsets.
        let n = 8u64;
        for beta in 1..=3u32 {
            let u = universe(n as u32, beta);
            let locals = vec![1u32, 4, 6];
            let mut scratch = vec![false; n as usize];
            let mut got: Vec<u64> = Vec::new();
            u.for_each_incident(&locals, &mut scratch, |e| got.push(e));
            got.sort_unstable();

            let on_path = |x: u64| locals.contains(&(x as u32));
            let mut want: Vec<u64> = Vec::new();
            for i in 0..n {
                if on_path(i) {
                    want.push(i);
                }
            }
            if beta >= 2 {
                for i in 0..n {
                    for j in (i + 1)..n {
                        if on_path(i) || on_path(j) {
                            want.push(u.pair_element(i, j));
                        }
                    }
                }
            }
            if beta >= 3 {
                for i in 0..n {
                    for j in (i + 1)..n {
                        for k in (j + 1)..n {
                            if on_path(i) || on_path(j) || on_path(k) {
                                want.push(u.triple_element(i, j, k));
                            }
                        }
                    }
                }
            }
            want.sort_unstable();
            assert_eq!(got, want, "beta={beta}");
            assert!(scratch.iter().all(|&b| !b), "scratch must be restored");
        }
    }

    #[test]
    fn cap_is_enforced() {
        let links: Vec<LinkId> = (0..100).map(LinkId).collect();
        let err = ExtendedUniverse::new(&links, 2, 1000).unwrap_err();
        assert!(matches!(err, PmcError::UniverseTooLarge { .. }));
    }

    #[test]
    fn beta_above_three_rejected() {
        let links: Vec<LinkId> = (0..4).map(LinkId).collect();
        let err = ExtendedUniverse::new(&links, 4, u64::MAX).unwrap_err();
        assert_eq!(err, PmcError::BetaTooLarge { beta: 4 });
    }

    #[test]
    fn local_global_round_trip() {
        let links = vec![LinkId(10), LinkId(20), LinkId(30)];
        let u = ExtendedUniverse::new(&links, 1, u64::MAX).unwrap();
        for (i, &l) in links.iter().enumerate() {
            assert_eq!(u.local(l), Some(i as u32));
            assert_eq!(u.global(i as u32), l);
        }
        assert_eq!(u.local(LinkId(99)), None);
    }
}
