//! Incremental candidate providers (the symmetry-reduction interface,
//! Observation 3 of §4.3).
//!
//! For large data centers the full candidate path set cannot be
//! materialized (a 64-radix Fattree has ~4.3 × 10⁹ ToR-pair paths). The
//! topology crate instead exposes *providers* that generate candidates in
//! symmetric "rounds" — orbit tilings under the topology's automorphism
//! group — and the lazy greedy pulls further rounds only while its (α, β)
//! targets are unmet.

use crate::types::{LinkId, ProbePath};

/// A source of candidate probe paths for one PMC subproblem.
pub trait CandidateProvider {
    /// The physical-link universe the candidates range over. Every link in
    /// the universe must be coverable by some candidate for the coverage
    /// target to be attainable.
    fn universe(&self) -> &[LinkId];

    /// Returns the next batch of candidates; an empty batch signals
    /// exhaustion (the provider will not be polled again).
    fn next_batch(&mut self) -> Vec<ProbePath>;

    /// Optional estimate of how many candidates remain.
    fn remaining_hint(&self) -> Option<u64> {
        None
    }
}

impl<T: CandidateProvider + ?Sized> CandidateProvider for Box<T> {
    fn universe(&self) -> &[LinkId] {
        (**self).universe()
    }

    fn next_batch(&mut self) -> Vec<ProbePath> {
        (**self).next_batch()
    }

    fn remaining_hint(&self) -> Option<u64> {
        (**self).remaining_hint()
    }
}

/// Provider over a fully materialized candidate set, handed out in chunks.
#[derive(Clone, Debug)]
pub struct ExhaustiveProvider {
    universe: Vec<LinkId>,
    pending: std::vec::IntoIter<ProbePath>,
    batch_size: usize,
}

impl ExhaustiveProvider {
    /// Builds a provider whose universe is inferred from the candidates.
    pub fn new(candidates: Vec<ProbePath>) -> Self {
        let mut universe: Vec<LinkId> = candidates
            .iter()
            .flat_map(|p| p.links().iter().copied())
            .collect();
        universe.sort_unstable();
        universe.dedup();
        Self::with_universe(universe, candidates)
    }

    /// Builds a provider over an explicit universe.
    pub fn with_universe(universe: Vec<LinkId>, candidates: Vec<ProbePath>) -> Self {
        let n = candidates.len();
        Self {
            universe,
            pending: candidates.into_iter(),
            batch_size: n.max(1),
        }
    }

    /// Limits how many candidates are handed out per batch (used in tests
    /// and to bound peak heap size).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }
}

impl CandidateProvider for ExhaustiveProvider {
    fn universe(&self) -> &[LinkId] {
        &self.universe
    }

    fn next_batch(&mut self) -> Vec<ProbePath> {
        self.pending.by_ref().take(self.batch_size).collect()
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.pending.len() as u64)
    }
}

/// A provider adapter that removes a set of excluded (failed/drained)
/// links from a subproblem: the excluded links leave the coverage
/// universe and every candidate crossing one is dropped.
///
/// This is the provider-side half of the incremental re-plan path: when a
/// topology delta hits a symmetric component, the planner re-solves just
/// that component with a fresh base provider wrapped in an
/// `ExcludingProvider` instead of recomputing the whole matrix.
pub struct ExcludingProvider<P> {
    inner: P,
    universe: Vec<LinkId>,
    excluded: std::collections::HashSet<LinkId>,
}

impl<P: CandidateProvider> ExcludingProvider<P> {
    /// Wraps `inner`, excluding `excluded` from its universe and
    /// candidate stream.
    pub fn new(inner: P, excluded: std::collections::HashSet<LinkId>) -> Self {
        let universe = inner
            .universe()
            .iter()
            .copied()
            .filter(|l| !excluded.contains(l))
            .collect();
        Self {
            inner,
            universe,
            excluded,
        }
    }
}

impl<P: CandidateProvider> CandidateProvider for ExcludingProvider<P> {
    fn universe(&self) -> &[LinkId] {
        &self.universe
    }

    fn next_batch(&mut self) -> Vec<ProbePath> {
        // An empty batch signals exhaustion to the greedy loop, so keep
        // pulling while filtering leaves nothing (a batch may cross the
        // excluded links entirely).
        loop {
            let mut batch = self.inner.next_batch();
            if batch.is_empty() {
                return batch;
            }
            batch.retain(|p| !p.links().iter().any(|l| self.excluded.contains(l)));
            if !batch.is_empty() {
                return batch;
            }
        }
    }

    fn remaining_hint(&self) -> Option<u64> {
        // Upper bound: the inner provider's estimate counts candidates
        // that may be filtered out.
        self.inner.remaining_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(id: u32, ls: &[u32]) -> ProbePath {
        ProbePath::from_links(id, ls.iter().map(|&l| LinkId(l)).collect())
    }

    #[test]
    fn infers_universe() {
        let p = ExhaustiveProvider::new(vec![path(0, &[3, 1]), path(1, &[7])]);
        assert_eq!(p.universe(), &[LinkId(1), LinkId(3), LinkId(7)]);
    }

    #[test]
    fn batches_respect_size() {
        let mut p = ExhaustiveProvider::new(vec![path(0, &[0]), path(1, &[1]), path(2, &[2])])
            .with_batch_size(2);
        assert_eq!(p.remaining_hint(), Some(3));
        assert_eq!(p.next_batch().len(), 2);
        assert_eq!(p.remaining_hint(), Some(1));
        assert_eq!(p.next_batch().len(), 1);
        assert!(p.next_batch().is_empty());
    }

    #[test]
    fn excluding_provider_shrinks_universe_and_filters_candidates() {
        let inner = ExhaustiveProvider::new(vec![
            path(0, &[0, 1]),
            path(1, &[1, 2]),
            path(2, &[2]),
            path(3, &[0, 2]),
        ]);
        let excluded: std::collections::HashSet<LinkId> = [LinkId(1)].into_iter().collect();
        let mut p = ExcludingProvider::new(inner, excluded);
        assert_eq!(p.universe(), &[LinkId(0), LinkId(2)]);
        let mut got = Vec::new();
        loop {
            let b = p.next_batch();
            if b.is_empty() {
                break;
            }
            got.extend(b);
        }
        // Paths crossing link 1 are gone.
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|p| !p.covers(LinkId(1))));
    }

    #[test]
    fn excluding_provider_skips_fully_filtered_batches() {
        // Batch size 1 forces batches that filtering empties entirely;
        // the adapter must keep pulling instead of reporting exhaustion.
        let inner = ExhaustiveProvider::new(vec![path(0, &[1]), path(1, &[1]), path(2, &[0])])
            .with_batch_size(1);
        let excluded: std::collections::HashSet<LinkId> = [LinkId(1)].into_iter().collect();
        let mut p = ExcludingProvider::new(inner, excluded);
        let first = p.next_batch();
        assert_eq!(first.len(), 1);
        assert!(first[0].covers(LinkId(0)));
        assert!(p.next_batch().is_empty());
    }
}
