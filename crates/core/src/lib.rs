//! # detector-core
//!
//! Core algorithms of the deTector monitoring system (Peng et al.,
//! USENIX ATC 2017): probe-matrix construction (PMC, §4 of the paper) and
//! packet-loss localization (PLL, §5), together with the localization
//! baselines the paper compares against (Tomo, SCORE, OMP).
//!
//! The algorithms in this crate are *pure*: they operate on abstract probe
//! paths (sets of link identifiers) and end-to-end loss observations, and
//! know nothing about concrete data-center topologies. Topology generators
//! live in `detector-topology`; the packet-level simulator used for the
//! paper's evaluation lives in `detector-simnet`.
//!
//! # Examples
//!
//! Construct a 1-identifiable probe matrix over a toy 3-link network and
//! localize a full loss on one link:
//!
//! ```
//! use detector_core::pmc::{construct, PmcConfig};
//! use detector_core::pll::{localize, PllConfig};
//! use detector_core::types::{LinkId, PathObservation, ProbePath};
//!
//! // Three candidate paths over links 0, 1, 2 (Fig. 3 of the paper).
//! let candidates = vec![
//!     ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
//!     ProbePath::from_links(1, vec![LinkId(0), LinkId(2)]),
//!     ProbePath::from_links(2, vec![LinkId(2)]),
//! ];
//! let matrix = construct(3, candidates, &PmcConfig::identifiable(1)).unwrap();
//! assert!(matrix.achieved.identifiability >= 1);
//!
//! // Observe losses consistent with link 0 being bad.
//! let obs: Vec<PathObservation> = matrix
//!     .paths
//!     .iter()
//!     .map(|p| {
//!         let lost = if p.links().contains(&LinkId(0)) { 100 } else { 0 };
//!         PathObservation::new(p.id, 100, lost)
//!     })
//!     .collect();
//! let diagnosis = localize(&matrix, &obs, &PllConfig::default());
//! assert_eq!(diagnosis.suspect_links(), vec![LinkId(0)]);
//! ```

pub mod json;
pub mod pll;
pub mod pmc;
pub mod types;

pub use pll::{localize, Diagnosis, Localizer, PllConfig, PllLocalizer};
pub use pmc::{construct, PmcConfig, ProbeMatrix};
pub use types::{LinkId, NodeId, PathId, PathObservation, ProbePath};
