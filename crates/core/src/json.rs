//! Minimal JSON tree, writer and parser.
//!
//! The build environment vendors `serde` as a no-op shim (see
//! `shims/README.md`), so deriving `Serialize` produces no actual
//! serialization code. Machine-readable output — the JSON-lines event
//! sink, bench tables — therefore goes through this small self-contained
//! module instead: a [`Json`] value tree, a `Display`-based writer and a
//! strict parser, enough for line-oriented result records and their
//! round-trip tests. When the registry returns and real serde replaces
//! the shim, [`ToJson`] impls can be swapped for `#[derive(Serialize)]`
//! without touching call sites that only consume the rendered text.

use std::fmt;

/// A JSON value.
///
/// Integers and floats are kept apart so `u64` counters render without a
/// fractional part and round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (no exponent, no fraction).
    Int(i64),
    /// A floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Types that can render themselves as a [`Json`] tree.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl Json {
    /// An object from key/value pairs (helper for `ToJson` impls).
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A `u64` as a JSON number (saturates at `i64::MAX`, far beyond any
    /// counter this system produces).
    pub fn uint(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer (used by delta counters that can go
    /// negative, e.g. `probes_delta` in plan-update records).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|v| u32::try_from(v).ok())
    }

    /// The value as a float (accepts integer literals too).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (strict: one value, no trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError {
                pos: p.pos,
                what: "trailing characters after value",
            });
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest representation that parses
                    // back to the same f64 (Ryu), so floats round-trip.
                    write!(f, "{x}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Object(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A parse failure: byte offset plus a static description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &'static str) -> JsonError {
        JsonError {
            pos: self.pos,
            what,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our
                            // records; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or(self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or(self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            // Digit strings beyond i64 (e.g. f64::MAX rendered without an
            // exponent) degrade to the nearest float, like serde_json's
            // arbitrary-precision fallback.
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Int(-42), "-42"),
            (Json::Str("a\"b\\c\nd".into()), "\"a\\\"b\\\\c\\nd\""),
        ] {
            assert_eq!(v.to_string(), s);
            assert_eq!(Json::parse(s).unwrap(), v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.6, 1e-4, 2.5e17, -0.071428573, f64::MAX] {
            let s = Json::Float(x).to_string();
            assert_eq!(Json::parse(&s).unwrap().as_f64(), Some(x), "{s}");
        }
    }

    #[test]
    fn integral_floats_survive_via_as_f64() {
        // Float(1.0) prints as "1" and parses back as Int(1); as_f64
        // bridges the two representations.
        let s = Json::Float(1.0).to_string();
        assert_eq!(Json::parse(&s).unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj(vec![
            ("window", Json::uint(3)),
            (
                "suspects",
                Json::Array(vec![Json::obj(vec![
                    ("link", Json::uint(7)),
                    ("rate", Json::Float(0.25)),
                ])]),
            ),
            ("clean", Json::Bool(false)),
            ("note", Json::Null),
        ]);
        let s = v.to_string();
        assert_eq!(Json::parse(&s).unwrap(), v);
        assert_eq!(
            s,
            r#"{"window":3,"suspects":[{"link":7,"rate":0.25}],"clean":false,"note":null}"#
        );
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse(r#"{"a":[1,2],"b":"x","c":0.5,"d":true}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"\\q\"", "\"x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
    }
}
