//! # detector-ingest
//!
//! The streaming ingest plane: per-path `(sent, lost)` counters
//! aggregate into striped, cache-padded atomic shards as pinger reports
//! arrive, so a window's observation set exists the moment its last
//! report lands — no per-window `Vec<PingerReport>` assembly between
//! collection and diagnosis.
//!
//! Three pieces:
//!
//! * [`IngestPlane`] — the sharded counter store with per-window lanes:
//!   diagnosis [`seal`](IngestPlane::seal)s a frozen, sorted snapshot of
//!   window `w` (bit-identical to what `ReportStore::window_observations`
//!   would aggregate from the same reports) while the next window keeps
//!   accumulating in its own lane; [`retract`](IngestPlane::retract)
//!   forfeits a crashed agent's partial window exactly.
//! * [`SpaceSaving`] — top-K heavy-hitter tracking of the lossiest paths
//!   with the classic space-saving guarantee: any path whose true loss
//!   weight exceeds the k-th tracked count is tracked.
//! * [`prefilter`] — reduces a sealed window to the observations that
//!   can influence PLL's verdict (lossy paths plus all paths sharing a
//!   link with one), provably without changing the diagnosis.
//!
//! The runtime seam is `detector-system`'s `Diagnoser`, which owns a
//! plane and feeds every driver — sequential `step()`, `run_pipelined`
//! and `run_distributed` — through it, emitting per-window
//! `RuntimeEvent::IngestStats`.

mod plane;
mod prefilter;
mod topk;

pub use plane::{IngestConfig, IngestPlane, SealedWindow};
pub use prefilter::{prefilter, Prefiltered};
pub use topk::{SpaceSaving, TopKEntry};
