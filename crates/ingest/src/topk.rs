//! Space-saving top-K heavy-hitter tracking (Metwally et al.), used to
//! keep the lossiest paths of a window in O(K) memory.
//!
//! The tracker maintains at most `K` `(path, count, overestimate)`
//! entries. Offering a tracked path adds to its count; offering an
//! untracked path when the tracker is full evicts the minimum-count
//! entry and inherits its count as the newcomer's *overestimate*. This
//! yields the classic guarantees:
//!
//! * every tracked count is an upper bound on the path's true weight,
//!   over by at most the entry's `overestimate`;
//! * any path whose true weight exceeds [`SpaceSaving::min_count`] (the
//!   smallest tracked count, the "k-th tracked path's guaranteed
//!   bound") is tracked — it can never have been evicted last, because
//!   its counter would have exceeded the minimum.
//!
//! Eviction ties are broken toward the smallest path id, so a fixed
//! offer sequence always produces the same tracked set — the ingest
//! plane feeds offers in sorted path order precisely so the per-window
//! `topk_hits` statistic is reproducible across schedulers.
//!
//! # Window boundaries
//!
//! A tracker's lifetime is **one sealed window**: [`crate::prefilter`]
//! constructs a fresh `SpaceSaving` per call and the diagnoser calls it
//! once per window, so counts, overestimates and the saturation flag
//! never accumulate across windows. That per-window reset is what the
//! pre-filter's exactness argument rests on — an unsaturated tracker
//! holds *exactly this window's* distinct lossy paths, and a heavy
//! hitter from window *w* contributes nothing to window *w + 1*'s
//! offered set (`topk_window_state_never_leaks_across_windows` in
//! `tests/properties.rs` pins this). Carrying one tracker across
//! windows would instead inflate `min_count` with stale weight and
//! silently mis-report `topk_hits`.

use std::collections::HashMap;

use detector_core::types::PathId;

/// One tracked heavy hitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopKEntry {
    /// The tracked path.
    pub path: PathId,
    /// Upper bound on the path's true offered weight.
    pub count: u64,
    /// How much of `count` may be inherited from evicted strangers:
    /// `count - overestimate` is a guaranteed lower bound.
    pub overestimate: u64,
}

/// A space-saving top-K tracker over path loss weights.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<TopKEntry>,
    index: HashMap<PathId, usize>,
    evictions: u64,
}

impl SpaceSaving {
    /// A tracker holding at most `capacity` paths (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            evictions: 0,
        }
    }

    /// Maximum number of tracked paths.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently tracked paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True once an offer has evicted a tracked path: tracked counts may
    /// now overestimate, and untracked paths may have non-zero weight.
    /// While `false`, the tracked set is exactly the offered set.
    pub fn saturated(&self) -> bool {
        self.evictions > 0
    }

    /// Offers `weight` for `path`. Zero weights are ignored (a clean
    /// path is not a heavy hitter).
    pub fn offer(&mut self, path: PathId, weight: u64) {
        if weight == 0 {
            return;
        }
        if let Some(&i) = self.index.get(&path) {
            self.entries[i].count += weight;
            return;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(path, self.entries.len());
            self.entries.push(TopKEntry {
                path,
                count: weight,
                overestimate: 0,
            });
            return;
        }
        // Full: evict the minimum-count entry (smallest path id on ties)
        // and inherit its count as the newcomer's overestimate.
        let mut min = 0usize;
        for (i, e) in self.entries.iter().enumerate() {
            let m = &self.entries[min];
            if (e.count, e.path) < (m.count, m.path) {
                min = i;
            }
        }
        let evicted = self.entries[min];
        self.index.remove(&evicted.path);
        self.index.insert(path, min);
        self.entries[min] = TopKEntry {
            path,
            count: evicted.count + weight,
            overestimate: evicted.count,
        };
        self.evictions += 1;
    }

    /// The smallest tracked count — the guaranteed bound: any path whose
    /// true offered weight exceeds this is tracked. Zero while the
    /// tracker has spare capacity (then *every* offered path is
    /// tracked).
    pub fn min_count(&self) -> u64 {
        if self.entries.len() < self.capacity {
            return 0;
        }
        self.entries.iter().map(|e| e.count).min().unwrap_or(0)
    }

    /// True when `path` is currently tracked.
    pub fn contains(&self, path: PathId) -> bool {
        self.index.contains_key(&path)
    }

    /// Tracked entries sorted by descending count (ascending path id on
    /// ties): the window's heavy hitters, heaviest first.
    pub fn ranked(&self) -> Vec<TopKEntry> {
        let mut v = self.entries.clone();
        v.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.path.cmp(&b.path)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_tracks_exactly() {
        let mut t = SpaceSaving::new(4);
        t.offer(PathId(3), 10);
        t.offer(PathId(1), 5);
        t.offer(PathId(3), 2);
        assert!(!t.saturated());
        assert_eq!(t.len(), 2);
        assert_eq!(t.min_count(), 0);
        assert!(t.contains(PathId(3)));
        assert!(t.contains(PathId(1)));
        let r = t.ranked();
        assert_eq!(r[0].path, PathId(3));
        assert_eq!(r[0].count, 12);
        assert_eq!(r[0].overestimate, 0);
    }

    #[test]
    fn zero_weight_is_ignored() {
        let mut t = SpaceSaving::new(2);
        t.offer(PathId(0), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn eviction_inherits_the_minimum_count() {
        let mut t = SpaceSaving::new(2);
        t.offer(PathId(0), 10);
        t.offer(PathId(1), 3);
        t.offer(PathId(2), 1); // Evicts path 1 (count 3).
        assert!(t.saturated());
        assert!(t.contains(PathId(2)));
        assert!(!t.contains(PathId(1)));
        let e = t
            .ranked()
            .into_iter()
            .find(|e| e.path == PathId(2))
            .unwrap();
        assert_eq!(e.count, 4);
        assert_eq!(e.overestimate, 3);
    }

    #[test]
    fn heavy_path_is_never_evicted() {
        // The guarantee: true weight > min_count implies tracked.
        let mut t = SpaceSaving::new(3);
        t.offer(PathId(9), 100);
        for i in 0..50u32 {
            t.offer(PathId(i), 1);
        }
        assert!(t.contains(PathId(9)));
        let e = t
            .ranked()
            .into_iter()
            .find(|e| e.path == PathId(9))
            .unwrap();
        assert!(e.count >= 100);
    }

    #[test]
    fn eviction_ties_break_toward_smallest_path_id() {
        let mut t = SpaceSaving::new(2);
        t.offer(PathId(5), 2);
        t.offer(PathId(3), 2);
        t.offer(PathId(7), 1); // Both at count 2: path 3 is evicted.
        assert!(!t.contains(PathId(3)));
        assert!(t.contains(PathId(5)));
        assert!(t.contains(PathId(7)));
    }
}
