//! The sharded, lock-free ingest plane.
//!
//! Per-path `(sent, lost)` counters accumulate into striped atomic
//! shards as reports arrive: a path hashes to `shard = hash(PathId) % N`
//! and claims an open-addressing slot inside that shard with a single
//! key CAS; counter updates are plain `fetch_add`s. Shards are
//! cache-line padded so folds on different shards never contend on a
//! line.
//!
//! Windows are **lanes**: `window % lanes` selects a bank of shards
//! tagged with the window id, so diagnosis [`seal`](IngestPlane::seal)s
//! a frozen snapshot of window `w` while folds for `w + 1` accumulate in
//! the next lane (the per-window epoch swap). A lane still owned by an
//! unsealed older window — more in-flight windows than lanes — routes
//! the whole report through a mutex-guarded overflow map instead, as
//! does a shard whose table fills up: the fast path is lock-free, the
//! slow path is merely correct.
//!
//! Sealing drains the lane into a `Vec<PathObservation>` sorted by path
//! id — byte-for-byte the aggregation `ReportStore::window_observations`
//! produces from the same reports — and resets the lane for reuse.
//!
//! Concurrency contract: any number of threads may [`fold`]
//! (IngestPlane::fold) and [`retract`](IngestPlane::retract)
//! concurrently; [`seal`](IngestPlane::seal)ing window `w` must not race
//! folds *into `w`* (the schedulers seal only after every report of the
//! window was collected — younger windows may keep folding).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use detector_core::types::{PathId, PathObservation};
use parking_lot::Mutex;

/// Lane tag meaning "no window owns this lane".
const UNCLAIMED: u64 = u64::MAX;

/// Slot key meaning "empty"; occupied slots store `path.0 + 1`.
const EMPTY: u64 = 0;

/// Sizing of the ingest plane.
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Striped shards per lane; a path's counters live in
    /// `hash(path) % shards`.
    pub shards: usize,
    /// Open-addressing slots per shard (rounded up to a power of two).
    /// A full shard overflows into the mutex-guarded slow path, so this
    /// is a performance knob, not a capacity limit.
    pub slots_per_shard: usize,
    /// Concurrent window banks. With the schedulers' in-order sealing,
    /// `pipeline depth + 1` lanes suffice; extra in-flight windows fall
    /// back to the overflow map.
    pub lanes: usize,
    /// Heavy-hitter tracker capacity for the top-K pre-filter.
    pub topk: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            slots_per_shard: 1024,
            lanes: 8,
            topk: 64,
        }
    }
}

/// One atomic counter cell. The key is claimed by CAS exactly once per
/// window; `sent`/`lost` then take relaxed adds from any thread.
struct Slot {
    key: AtomicU64,
    sent: AtomicU64,
    lost: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            key: AtomicU64::new(EMPTY),
            sent: AtomicU64::new(0),
            lost: AtomicU64::new(0),
        }
    }
}

/// Pads a shard to its own cache lines so neighbouring shards' counter
/// traffic cannot false-share.
#[repr(align(128))]
struct CachePadded<T>(T);

struct Shard {
    slots: Box<[Slot]>,
    /// Index mask; `slots.len()` is a power of two.
    mask: usize,
    /// Key-claim CASes lost to a concurrent claimer — the contention
    /// signal surfaced per window as `IngestStats::shard_contention`.
    contention: AtomicU64,
}

impl Shard {
    fn new(slots: usize) -> Self {
        let n = slots.next_power_of_two().max(2);
        Self {
            slots: (0..n).map(|_| Slot::empty()).collect(),
            mask: n - 1,
            contention: AtomicU64::new(0),
        }
    }
}

struct Lane {
    /// Window owning this bank, or [`UNCLAIMED`].
    tag: AtomicU64,
    /// Reports folded (minus retracted) into this bank.
    reports: AtomicU64,
    /// Retractions (entries or report counts) the bank could not absorb
    /// because nothing that large was ever folded — see
    /// [`SealedWindow::retract_mismatch`].
    mismatch: AtomicU64,
    shards: Box<[CachePadded<Shard>]>,
}

/// Slow-path storage for one window: whole reports that found their lane
/// owned by another window, plus single entries that found their shard
/// full.
#[derive(Default)]
struct OverflowWindow {
    reports: u64,
    mismatch: u64,
    paths: HashMap<PathId, (u64, u64)>,
}

/// A frozen, drained window snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SealedWindow {
    /// Aggregated per-path counters, sorted by path id — the exact
    /// shape `ReportStore::window_observations` hands to diagnosis.
    pub observations: Vec<PathObservation>,
    /// Reports folded into the window (retractions subtracted).
    pub reports: u64,
    /// Key-claim CAS retries observed while the window accumulated.
    /// Execution-schedule dependent: zero under single-threaded folding,
    /// anything under concurrency — event normalization zeroes it.
    pub shard_contention: u64,
    /// Retractions the window could not absorb: a retracted entry (or
    /// report count) exceeding what was folded — a duplicate crash
    /// notification, a double retract — subtracts only what is there
    /// (saturating, never wrapping) and counts the shortfall here.
    /// Always zero when every retract undoes exactly one prior fold.
    pub retract_mismatch: u64,
}

impl SealedWindow {
    /// Distinct paths that recorded at least one loss.
    pub fn distinct_lossy(&self) -> usize {
        self.observations.iter().filter(|o| o.is_lossy()).count()
    }
}

/// The sharded ingest plane. See the module docs for the design.
pub struct IngestPlane {
    cfg: IngestConfig,
    lanes: Box<[Lane]>,
    overflow: Mutex<HashMap<u64, OverflowWindow>>,
    /// Retractions against windows with no ledger state at all —
    /// retract-after-seal. They cannot surface in any
    /// [`SealedWindow::retract_mismatch`] (the window is gone), so they
    /// accumulate here for [`orphaned_retracts`]
    /// (IngestPlane::orphaned_retracts).
    orphans: AtomicU64,
}

impl IngestPlane {
    /// Builds a plane with explicit sizing.
    pub fn new(cfg: IngestConfig) -> Self {
        let cfg = IngestConfig {
            shards: cfg.shards.max(1),
            slots_per_shard: cfg.slots_per_shard.next_power_of_two().max(2),
            lanes: cfg.lanes.max(1),
            topk: cfg.topk.max(1),
        };
        let lanes = (0..cfg.lanes)
            .map(|_| Lane {
                tag: AtomicU64::new(UNCLAIMED),
                reports: AtomicU64::new(0),
                mismatch: AtomicU64::new(0),
                shards: (0..cfg.shards)
                    .map(|_| CachePadded(Shard::new(cfg.slots_per_shard)))
                    .collect(),
            })
            .collect();
        Self {
            cfg,
            lanes,
            overflow: Mutex::new(HashMap::new()),
            orphans: AtomicU64::new(0),
        }
    }

    /// Builds a plane sized for roughly `paths` distinct paths per
    /// window: enough slot headroom that the lock-free fast path almost
    /// never overflows.
    pub fn for_paths(paths: usize) -> Self {
        let cfg = IngestConfig::default();
        let per_shard = (2 * paths.max(1)).div_ceil(cfg.shards).max(64);
        Self::new(IngestConfig {
            slots_per_shard: per_shard,
            ..cfg
        })
    }

    /// The sizing this plane was built with (normalized).
    pub fn config(&self) -> &IngestConfig {
        &self.cfg
    }

    /// Folds one report's path counters into window `window` and counts
    /// one report. Lock-free whenever the window owns its lane and the
    /// shards have room.
    pub fn fold<I>(&self, window: u64, entries: I)
    where
        I: IntoIterator<Item = (PathId, u64, u64)>,
    {
        match self.claim_lane(window) {
            Some(lane) => {
                lane.reports.fetch_add(1, Ordering::Relaxed);
                for (path, sent, lost) in entries {
                    // detlint::allow(panic_path, reason = "shard_of is modulo cfg.shards, the lane's shard count")
                    let shard = &lane.shards[self.shard_of(path)].0;
                    if !Self::fold_slot(shard, path, sent, lost) {
                        // Shard table full: this entry rides the slow
                        // path.
                        self.fold_overflow(window, path, sent, lost, 0);
                    }
                }
            }
            None => {
                // Lane owned by an older unsealed window: the whole
                // report takes the slow path.
                let mut entries = entries.into_iter();
                match entries.next() {
                    Some((path, sent, lost)) => {
                        self.fold_overflow(window, path, sent, lost, 1);
                    }
                    None => self.fold_overflow(window, PathId(0), 0, 0, 1),
                }
                for (path, sent, lost) in entries {
                    self.fold_overflow(window, path, sent, lost, 0);
                }
            }
        }
    }

    /// Undoes a previous [`fold`](IngestPlane::fold) of the same report
    /// — the distributed controller retracts everything an agent sent in
    /// a window when that agent dies before its `WindowDone`, forfeiting
    /// the partial window exactly like the report-map path did.
    ///
    /// Retraction is *find-only* and *saturating*: it never claims a
    /// lane (a retract against a sealed window must not resurrect its
    /// ledger) and never subtracts below zero. An entry larger than what
    /// the window's ledgers hold — a duplicate crash notification, a
    /// retract-after-seal — removes what is there and counts the
    /// shortfall in [`SealedWindow::retract_mismatch`] (or
    /// [`orphaned_retracts`](IngestPlane::orphaned_retracts) when the
    /// window has no ledger state left at all). A retract that undoes
    /// exactly one prior un-sealed fold is always exact: counters land
    /// where the fold put them, cascading from the lane's slots into the
    /// overflow map when the fold's entries were split across both.
    pub fn retract<I>(&self, window: u64, entries: I)
    where
        I: IntoIterator<Item = (PathId, u64, u64)>,
    {
        // detlint::allow(panic_path, reason = "index is window modulo the lane count, which is nonzero")
        let lane = &self.lanes[(window % self.lanes.len() as u64) as usize];
        let lane = (lane.tag.load(Ordering::Acquire) == window).then_some(lane);

        // Un-count the report: prefer the lane's ledger, fall back to the
        // overflow window's. Seal sums both, so either decrement keeps
        // the window total exact.
        if lane.is_none_or(|l| !sub_one_saturating(&l.reports)) {
            let mut ov = self.overflow.lock();
            match ov.get_mut(&window) {
                Some(w) if w.reports > 0 => w.reports -= 1,
                Some(w) => w.mismatch += 1,
                None => match lane {
                    Some(l) => {
                        l.mismatch.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        self.orphans.fetch_add(1, Ordering::Relaxed);
                    }
                },
            }
        }

        for (path, sent, lost) in entries {
            let (mut sent, mut lost) = (sent, lost);
            if let Some(lane) = lane {
                // detlint::allow(panic_path, reason = "shard_of is modulo cfg.shards, the lane's shard count")
                let shard = &lane.shards[self.shard_of(path)].0;
                (sent, lost) = Self::retract_slot(shard, path, sent, lost);
            }
            if sent == 0 && lost == 0 {
                continue;
            }
            // Whatever the slots could not absorb cascades into the
            // overflow ledger; a residual shortfall is a mismatch.
            let mut ov = self.overflow.lock();
            match ov.get_mut(&window) {
                Some(w) => {
                    if let Some(e) = w.paths.get_mut(&path) {
                        let take = e.0.min(sent);
                        e.0 -= take;
                        sent -= take;
                        let take = e.1.min(lost);
                        e.1 -= take;
                        lost -= take;
                    }
                    if sent > 0 || lost > 0 {
                        w.mismatch += 1;
                    }
                }
                None => match lane {
                    Some(l) => {
                        l.mismatch.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        self.orphans.fetch_add(1, Ordering::Relaxed);
                    }
                },
            }
        }
    }

    /// Retractions against windows with no ledger state at all (their
    /// lane re-used or unclaimed and no overflow entry — in practice,
    /// retract-after-seal). Monotone over the plane's lifetime.
    pub fn orphaned_retracts(&self) -> u64 {
        self.orphans.load(Ordering::Relaxed)
    }

    /// Drains window `window` into a sorted snapshot and resets its lane
    /// for reuse. A window that never folded seals empty.
    pub fn seal(&self, window: u64) -> SealedWindow {
        let mut out = SealedWindow::default();
        // detlint::allow(panic_path, reason = "index is window modulo the lane count, which is nonzero")
        let lane = &self.lanes[(window % self.lanes.len() as u64) as usize];
        if lane.tag.load(Ordering::Acquire) == window {
            for shard in lane.shards.iter() {
                out.shard_contention += shard.0.contention.swap(0, Ordering::Relaxed);
                for slot in shard.0.slots.iter() {
                    let key = slot.key.swap(EMPTY, Ordering::AcqRel);
                    if key == EMPTY {
                        continue;
                    }
                    let sent = slot.sent.swap(0, Ordering::Relaxed);
                    let lost = slot.lost.swap(0, Ordering::Relaxed);
                    if sent == 0 && lost == 0 {
                        // Fully retracted: the aggregation never saw it.
                        continue;
                    }
                    let path = PathId((key - 1) as u32);
                    out.observations
                        .push(PathObservation::new(path, sent, lost));
                }
            }
            out.reports = lane.reports.swap(0, Ordering::Relaxed);
            out.retract_mismatch = lane.mismatch.swap(0, Ordering::Relaxed);
            lane.tag.store(UNCLAIMED, Ordering::Release);
        }
        if let Some(ov) = self.overflow.lock().remove(&window) {
            out.reports += ov.reports;
            out.retract_mismatch += ov.mismatch;
            for (path, (sent, lost)) in ov.paths {
                if sent == 0 && lost == 0 {
                    continue;
                }
                out.observations
                    .push(PathObservation::new(path, sent, lost));
            }
        }
        out.observations.sort_unstable_by_key(|o| o.path);
        // A path whose counters were split across the lane's slots and
        // the overflow map produced one row per ledger: coalesce them so
        // the snapshot matches a single-ledger aggregation exactly.
        out.observations.dedup_by(|dup, keep| {
            if dup.path == keep.path {
                keep.sent += dup.sent;
                keep.lost += dup.lost;
                true
            } else {
                false
            }
        });
        out
    }

    fn shard_of(&self, path: PathId) -> usize {
        (hash_path(path) % self.cfg.shards as u64) as usize
    }

    /// Claims the window's lane, or returns `None` when another window
    /// still owns it.
    fn claim_lane(&self, window: u64) -> Option<&Lane> {
        // detlint::allow(panic_path, reason = "index is window modulo the lane count, which is nonzero")
        let lane = &self.lanes[(window % self.lanes.len() as u64) as usize];
        loop {
            match lane.tag.load(Ordering::Acquire) {
                t if t == window => return Some(lane),
                UNCLAIMED => {
                    if lane
                        .tag
                        .compare_exchange(UNCLAIMED, window, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return Some(lane);
                    }
                    // Raced another claimer; re-read who won.
                }
                _ => return None,
            }
        }
    }

    /// Adds into the shard's open-addressing table. Returns `false` when
    /// the key is absent and the table is full.
    fn fold_slot(shard: &Shard, path: PathId, sent: u64, lost: u64) -> bool {
        let key = path.0 as u64 + 1;
        let mut i = (hash_path(path) >> 7) as usize & shard.mask;
        for _ in 0..shard.slots.len() {
            // detlint::allow(panic_path, reason = "i is masked by shard.mask = slots.len() - 1")
            let slot = &shard.slots[i];
            let mut k = slot.key.load(Ordering::Acquire);
            if k == EMPTY {
                match slot
                    .key
                    .compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => k = key,
                    Err(won) => {
                        shard.contention.fetch_add(1, Ordering::Relaxed);
                        k = won;
                    }
                }
            }
            if k == key {
                slot.sent.fetch_add(sent, Ordering::Relaxed);
                slot.lost.fetch_add(lost, Ordering::Relaxed);
                return true;
            }
            i = (i + 1) & shard.mask;
        }
        false
    }

    /// Subtracts as much of `(sent, lost)` from the path's slot as the
    /// slot holds — find-only probing, saturating at zero — and returns
    /// the shortfall still to be retracted elsewhere. A key that was
    /// never claimed here (empty probe hit or full scan) means the fold
    /// overflowed it: the full amount cascades.
    fn retract_slot(shard: &Shard, path: PathId, sent: u64, lost: u64) -> (u64, u64) {
        let key = path.0 as u64 + 1;
        let mut i = (hash_path(path) >> 7) as usize & shard.mask;
        for _ in 0..shard.slots.len() {
            // detlint::allow(panic_path, reason = "i is masked by shard.mask = slots.len() - 1")
            let slot = &shard.slots[i];
            let k = slot.key.load(Ordering::Acquire);
            if k == key {
                return (
                    sub_saturating(&slot.sent, sent),
                    sub_saturating(&slot.lost, lost),
                );
            }
            if k == EMPTY {
                return (sent, lost);
            }
            i = (i + 1) & shard.mask;
        }
        (sent, lost)
    }

    fn fold_overflow(&self, window: u64, path: PathId, sent: u64, lost: u64, report_delta: u64) {
        let mut ov = self.overflow.lock();
        let w = ov.entry(window).or_default();
        w.reports += report_delta;
        if sent == 0 && lost == 0 {
            return;
        }
        let e = w.paths.entry(path).or_insert((0, 0));
        e.0 += sent;
        e.1 += lost;
    }
}

/// Decrements the counter unless it is already zero; returns whether a
/// decrement happened.
fn sub_one_saturating(counter: &AtomicU64) -> bool {
    sub_saturating(counter, 1) == 0
}

/// Subtracts `min(counter, amount)` from the counter and returns the
/// shortfall (`amount` minus what was actually subtracted). Never wraps.
fn sub_saturating(counter: &AtomicU64, amount: u64) -> u64 {
    let mut cur = counter.load(Ordering::Relaxed);
    loop {
        let take = cur.min(amount);
        match counter.compare_exchange_weak(cur, cur - take, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return amount - take,
            Err(now) => cur = now,
        }
    }
}

/// SplitMix64-style avalanche of the path id: adjacent ids spread across
/// shards and probe positions.
fn hash_path(path: PathId) -> u64 {
    let mut x = path.0 as u64 ^ 0x9E37_79B9_7F4A_7C15;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn obs(o: &[(u32, u64, u64)]) -> Vec<PathObservation> {
        o.iter()
            .map(|&(p, s, l)| PathObservation::new(PathId(p), s, l))
            .collect()
    }

    #[test]
    fn folds_aggregate_and_seal_sorts_by_path() {
        let plane = IngestPlane::new(IngestConfig::default());
        plane.fold(0, vec![(PathId(5), 10, 2), (PathId(1), 4, 0)]);
        plane.fold(0, vec![(PathId(5), 6, 1), (PathId(9), 3, 3)]);
        let s = plane.seal(0);
        assert_eq!(s.reports, 2);
        assert_eq!(s.observations, obs(&[(1, 4, 0), (5, 16, 3), (9, 3, 3)]));
        assert_eq!(s.distinct_lossy(), 2);
    }

    #[test]
    fn sealing_resets_the_lane_for_reuse() {
        let plane = IngestPlane::new(IngestConfig {
            lanes: 2,
            ..IngestConfig::default()
        });
        plane.fold(0, vec![(PathId(1), 1, 0)]);
        assert_eq!(plane.seal(0).reports, 1);
        // Window 2 maps to the same lane as window 0.
        plane.fold(2, vec![(PathId(7), 5, 5)]);
        let s = plane.seal(2);
        assert_eq!(s.reports, 1);
        assert_eq!(s.observations, obs(&[(7, 5, 5)]));
        // Sealing an unfolded window is empty, not stale.
        assert_eq!(plane.seal(0), SealedWindow::default());
    }

    #[test]
    fn retract_undoes_a_fold_exactly() {
        let plane = IngestPlane::new(IngestConfig::default());
        let a = vec![(PathId(1), 10, 4), (PathId(2), 8, 0)];
        let b = vec![(PathId(1), 3, 1)];
        plane.fold(3, a.clone());
        plane.fold(3, b);
        plane.retract(3, a);
        let s = plane.seal(3);
        assert_eq!(s.reports, 1);
        assert_eq!(s.observations, obs(&[(1, 3, 1)]));
    }

    #[test]
    fn fully_retracted_window_seals_empty() {
        let plane = IngestPlane::new(IngestConfig::default());
        let r = vec![(PathId(4), 7, 7)];
        plane.fold(1, r.clone());
        plane.retract(1, r);
        let s = plane.seal(1);
        assert_eq!(s.reports, 0);
        assert!(s.observations.is_empty());
    }

    #[test]
    fn lane_collision_overflows_and_still_seals_exact() {
        // One lane: window 1 arrives while window 0 is unsealed.
        let plane = IngestPlane::new(IngestConfig {
            lanes: 1,
            ..IngestConfig::default()
        });
        plane.fold(0, vec![(PathId(1), 1, 1)]);
        plane.fold(1, vec![(PathId(2), 2, 0)]);
        plane.fold(1, vec![(PathId(2), 2, 2)]);
        let s0 = plane.seal(0);
        assert_eq!(s0.observations, obs(&[(1, 1, 1)]));
        let s1 = plane.seal(1);
        assert_eq!(s1.reports, 2);
        assert_eq!(s1.observations, obs(&[(2, 4, 2)]));
    }

    #[test]
    fn full_shard_overflows_without_losing_counts() {
        // 1 shard x 2 slots: the third distinct path must overflow.
        let plane = IngestPlane::new(IngestConfig {
            shards: 1,
            slots_per_shard: 2,
            ..IngestConfig::default()
        });
        let r: Vec<_> = (0..5u32).map(|p| (PathId(p), 10, u64::from(p))).collect();
        plane.fold(0, r.clone());
        plane.fold(0, r.clone());
        let s = plane.seal(0);
        assert_eq!(s.reports, 2);
        assert_eq!(
            s.observations,
            obs(&[(0, 20, 0), (1, 20, 2), (2, 20, 4), (3, 20, 6), (4, 20, 8)])
        );
        // Retract one copy: the overflow path subtracts exactly too.
        plane.fold(1, r.clone());
        plane.fold(1, r.clone());
        plane.retract(1, r);
        let s = plane.seal(1);
        assert_eq!(s.reports, 1);
        assert_eq!(
            s.observations,
            obs(&[(0, 10, 0), (1, 10, 1), (2, 10, 2), (3, 10, 3), (4, 10, 4)])
        );
    }

    #[test]
    fn double_retract_saturates_and_counts_the_mismatch() {
        let plane = IngestPlane::new(IngestConfig::default());
        let r = vec![(PathId(3), 9, 2)];
        plane.fold(0, r.clone());
        plane.retract(0, r.clone());
        // Duplicate crash notification: nothing left to subtract. The
        // old wrapping_sub turned these counters into ~u64::MAX.
        plane.retract(0, r);
        let s = plane.seal(0);
        assert_eq!(s.reports, 0);
        assert!(s.observations.is_empty());
        assert!(s.retract_mismatch > 0);
        assert_eq!(plane.orphaned_retracts(), 0);
    }

    #[test]
    fn retract_after_seal_is_orphaned_not_wrapped() {
        let plane = IngestPlane::new(IngestConfig::default());
        let r = vec![(PathId(6), 4, 1)];
        plane.fold(0, r.clone());
        assert_eq!(plane.seal(0).reports, 1);
        plane.retract(0, r);
        // The retract found no ledger: it must not claim the lane, must
        // not seed negative counters, and is visible as an orphan.
        assert_eq!(plane.orphaned_retracts(), 2); // 1 report + 1 entry
        let s = plane.seal(0);
        assert_eq!(s, SealedWindow::default());
        // Later traffic through the same lane is unaffected.
        plane.fold(8, vec![(PathId(6), 5, 0)]);
        let s = plane.seal(8);
        assert_eq!(s.observations, obs(&[(6, 5, 0)]));
        assert_eq!(s.retract_mismatch, 0);
    }

    #[test]
    fn retract_cascades_from_slots_into_overflow_exactly() {
        // 1 shard x 2 slots: paths 2.. of each report overflow, so a
        // retract must subtract from both ledgers to be exact.
        let plane = IngestPlane::new(IngestConfig {
            shards: 1,
            slots_per_shard: 2,
            ..IngestConfig::default()
        });
        let r: Vec<_> = (0..4u32).map(|p| (PathId(p), 6, 3)).collect();
        plane.fold(0, r.clone());
        plane.fold(0, r.clone());
        plane.retract(0, r);
        let s = plane.seal(0);
        assert_eq!(s.reports, 1);
        assert_eq!(s.retract_mismatch, 0);
        assert_eq!(
            s.observations,
            obs(&[(0, 6, 3), (1, 6, 3), (2, 6, 3), (3, 6, 3)])
        );
    }

    #[test]
    fn seal_coalesces_a_path_split_across_both_ledgers() {
        // lanes = 1: window 1's first report arrives while window 0
        // still owns the lane (overflow), its second after window 0
        // seals (lane slots). Same path, two ledgers, one row.
        let plane = IngestPlane::new(IngestConfig {
            lanes: 1,
            ..IngestConfig::default()
        });
        plane.fold(0, vec![(PathId(1), 1, 0)]);
        plane.fold(1, vec![(PathId(9), 10, 4)]);
        plane.seal(0);
        plane.fold(1, vec![(PathId(9), 5, 1)]);
        let s = plane.seal(1);
        assert_eq!(s.reports, 2);
        assert_eq!(s.observations, obs(&[(9, 15, 5)]));
    }

    #[test]
    fn concurrent_folds_agree_with_sequential_aggregation() {
        let plane = Arc::new(IngestPlane::for_paths(256));
        let threads = 8;
        let reports_each = 50;
        std::thread::scope(|s| {
            for t in 0..threads {
                let plane = Arc::clone(&plane);
                s.spawn(move || {
                    for r in 0..reports_each {
                        let entries: Vec<_> = (0..32u32)
                            .map(|p| (PathId(p * 7 + t), 3, u64::from((r + p) % 2)))
                            .collect();
                        plane.fold(5, entries);
                    }
                });
            }
        });
        let s = plane.seal(5);
        assert_eq!(s.reports, (threads * reports_each) as u64);
        let total_sent: u64 = s.observations.iter().map(|o| o.sent).sum();
        assert_eq!(total_sent, (threads * reports_each) as u64 * 32 * 3);
        // Every observation aggregated all its contributions.
        for o in &s.observations {
            assert_eq!(o.sent % 3, 0);
        }
    }

    #[test]
    fn sized_for_paths_keeps_fast_path_headroom() {
        let plane = IngestPlane::for_paths(10_000);
        assert!(plane.config().slots_per_shard * plane.config().shards >= 20_000);
    }
}
