//! Top-K pre-filtering of a sealed window before localization.
//!
//! PLL only ever blames links that lie on at least one lossy observed
//! path, and only ever needs, for each such link, *every* observed path
//! through it (the hit-ratio denominator). So a window's diagnosis is
//! exactly determined by the **keep set**: the lossy paths plus every
//! observed path sharing at least one link with a lossy path. Everything
//! else is clean evidence about links nobody suspects — dropping it
//! changes nothing, and on a healthy fabric it is almost the whole
//! window.
//!
//! The [`SpaceSaving`] tracker supplies the lossy set cheaply: fed every
//! lossy observation (in sorted path order, for determinism), an
//! unsaturated tracker holds *exactly* the distinct lossy paths —
//! `topk_hits` reports how many. A saturated tracker (more distinct
//! lossy paths than `K`) can no longer vouch for exactness, so the
//! filter falls back to a full scan of the sealed snapshot and reports
//! `topk_hits = 0`; the kept set is identical either way, only the fast
//! path differs.
//!
//! Lossiness here is the raw `lost > 0`, deliberately *wider* than
//! PLL's noise filter (`preprocess` may normalize small losses away):
//! keeping a superset of the post-filter lossy paths and their link
//! closures preserves exact equivalence — see
//! `filtered_diagnosis_is_exact` and the property tests.

use std::collections::HashSet;

use detector_core::pmc::ProbeMatrix;
use detector_core::types::{LinkId, PathObservation};

use crate::topk::SpaceSaving;

/// Outcome of pre-filtering one sealed window.
#[derive(Clone, Debug)]
pub struct Prefiltered {
    /// The kept observations, in the input (sorted-by-path) order.
    pub observations: Vec<PathObservation>,
    /// Lossy paths confirmed through the unsaturated top-K tracker; zero
    /// when the tracker saturated and the filter fell back to the full
    /// scan.
    pub topk_hits: u64,
    /// Observations dropped as irrelevant to any suspect link.
    pub dropped: usize,
}

/// Filters `observations` (sorted by path id, as
/// [`crate::SealedWindow`] produces them) down to the paths that can
/// influence PLL's verdict against `matrix`. `k` is the heavy-hitter
/// tracker capacity.
///
/// The tracker is constructed fresh on every call: its state — counts,
/// overestimates, saturation — is strictly per-window, so a heavy
/// hitter in one window can never leak weight into the next window's
/// offered set (see the window-boundary notes on [`SpaceSaving`]).
pub fn prefilter(matrix: &ProbeMatrix, observations: &[PathObservation], k: usize) -> Prefiltered {
    let mut tracker = SpaceSaving::new(k);
    for o in observations {
        tracker.offer(o.path, o.lost);
    }
    let topk_hits = if tracker.saturated() {
        0
    } else {
        tracker.len() as u64
    };

    // Links on any lossy path. Paths the matrix cannot resolve (retired
    // pre-re-base ids) contribute no links but are kept when lossy: they
    // surface as unexplained, exactly as without the filter.
    let mut suspect_links: HashSet<LinkId> = HashSet::new();
    for o in observations.iter().filter(|o| o.is_lossy()) {
        if let Some(path) = matrix.path(o.path) {
            suspect_links.extend(path.links());
        }
    }

    let mut kept = Vec::with_capacity(observations.len());
    for o in observations {
        let keep = o.is_lossy()
            || matrix
                .path(o.path)
                .is_some_and(|p| p.links().iter().any(|l| suspect_links.contains(l)));
        if keep {
            kept.push(*o);
        }
    }
    let dropped = observations.len() - kept.len();
    Prefiltered {
        observations: kept,
        topk_hits,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_core::pll::{localize, PllConfig};
    use detector_core::types::{PathId, ProbePath};

    /// p0={0,1}, p1={0,2}, p2={2,3}, p3={3}, p4={1}, p5={4}.
    fn matrix() -> ProbeMatrix {
        let paths = vec![
            ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
            ProbePath::from_links(1, vec![LinkId(0), LinkId(2)]),
            ProbePath::from_links(2, vec![LinkId(2), LinkId(3)]),
            ProbePath::from_links(3, vec![LinkId(3)]),
            ProbePath::from_links(4, vec![LinkId(1)]),
            ProbePath::from_links(5, vec![LinkId(4)]),
        ];
        ProbeMatrix::from_paths(5, paths)
    }

    fn obs(rows: &[(u32, u64, u64)]) -> Vec<PathObservation> {
        rows.iter()
            .map(|&(p, s, l)| PathObservation::new(PathId(p), s, l))
            .collect()
    }

    #[test]
    fn keeps_lossy_paths_and_their_link_neighbours() {
        // Only p0 lossy (links 0, 1): p1 shares link 0, p4 shares link
        // 1; p2/p3/p5 touch no suspect link and drop out.
        let o = obs(&[
            (0, 100, 40),
            (1, 100, 0),
            (2, 100, 0),
            (3, 100, 0),
            (4, 100, 0),
            (5, 100, 0),
        ]);
        let f = prefilter(&matrix(), &o, 8);
        let kept: Vec<u32> = f.observations.iter().map(|o| o.path.0).collect();
        assert_eq!(kept, vec![0, 1, 4]);
        assert_eq!(f.dropped, 3);
        assert_eq!(f.topk_hits, 1);
    }

    #[test]
    fn clean_window_drops_everything() {
        let o = obs(&[(0, 100, 0), (3, 100, 0)]);
        let f = prefilter(&matrix(), &o, 8);
        assert!(f.observations.is_empty());
        assert_eq!(f.topk_hits, 0);
        assert_eq!(f.dropped, 2);
    }

    #[test]
    fn saturated_tracker_falls_back_but_keeps_the_same_set() {
        let o = obs(&[
            (0, 100, 10),
            (1, 100, 10),
            (2, 100, 10),
            (3, 100, 10),
            (4, 100, 10),
            (5, 100, 0),
        ]);
        // k=2 saturates (5 distinct lossy paths).
        let small = prefilter(&matrix(), &o, 2);
        assert_eq!(small.topk_hits, 0);
        let large = prefilter(&matrix(), &o, 64);
        assert_eq!(large.topk_hits, 5);
        assert_eq!(small.observations, large.observations);
    }

    #[test]
    fn unresolvable_lossy_ids_are_kept() {
        let o = obs(&[(99, 100, 50), (3, 100, 0)]);
        let f = prefilter(&matrix(), &o, 8);
        let kept: Vec<u32> = f.observations.iter().map(|o| o.path.0).collect();
        assert_eq!(kept, vec![99]);
    }

    #[test]
    fn filtered_diagnosis_is_exact() {
        let cfg = PllConfig::default();
        let m = matrix();
        let o = obs(&[
            (0, 100, 30),
            (1, 100, 0),
            (2, 100, 35),
            (3, 100, 30),
            (4, 100, 25),
            (5, 100, 0),
        ]);
        let full = localize(&m, &o, &cfg);
        let f = prefilter(&m, &o, 8);
        let filtered = localize(&m, &f.observations, &cfg);
        assert_eq!(full, filtered);
    }
}
