//! Property tests for the ingest plane's three correctness claims:
//!
//! * the space-saving tracker's classic guarantee — no path whose true
//!   offered weight exceeds the k-th tracked count is ever missing;
//! * the top-K pre-filter never changes a diagnosis: PLL over the kept
//!   set equals PLL over the full window, for arbitrary matrices and
//!   observations (β-identifiable failure sets are a subset of this);
//! * fold/retract/seal agree with the naive per-window aggregation,
//!   including lane collisions (more in-flight windows than lanes) and
//!   full-shard overflow.

use std::collections::HashMap;

use detector_core::pll::{localize, PllConfig};
use detector_core::pmc::ProbeMatrix;
use detector_core::types::{LinkId, PathId, PathObservation, ProbePath};
use detector_ingest::{prefilter, IngestConfig, IngestPlane, SpaceSaving};
use proptest::prelude::*;

/// A matrix from raw link-id sets (empty sets are dropped; ids are
/// dense from 0 so every path resolves).
fn matrix_from(link_sets: &[Vec<u32>]) -> ProbeMatrix {
    let paths: Vec<ProbePath> = link_sets
        .iter()
        .enumerate()
        .map(|(i, links)| {
            ProbePath::from_links(i as u32, links.iter().map(|&l| LinkId(l % 24)).collect())
        })
        .collect();
    ProbeMatrix::from_paths(24, paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Space-saving guarantee: after any offer sequence, every path
    /// whose true total weight exceeds the smallest tracked count is
    /// tracked, and every tracked count brackets the truth:
    /// `count - overestimate <= true <= count`.
    #[test]
    fn space_saving_never_loses_a_heavy_hitter(
        offers in proptest::collection::vec((0u32..40, 0u64..25), 0..250),
        k in 1usize..12,
    ) {
        let mut tracker = SpaceSaving::new(k);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for &(path, weight) in &offers {
            tracker.offer(PathId(path), weight);
            if weight > 0 {
                *truth.entry(path).or_default() += weight;
            }
        }
        let bound = tracker.min_count();
        for (&path, &total) in &truth {
            prop_assert!(
                total <= bound || tracker.contains(PathId(path)),
                "path {path} has true weight {total} > bound {bound} but is untracked"
            );
        }
        for e in tracker.ranked() {
            let total = truth.get(&e.path.0).copied().unwrap_or(0);
            prop_assert!(e.count >= total, "count {} under-counts {total}", e.count);
            prop_assert!(
                e.count - e.overestimate <= total,
                "guaranteed floor {} exceeds true weight {total}",
                e.count - e.overestimate
            );
        }
        if !tracker.saturated() {
            // Unsaturated tracker == exact offered set, the property the
            // pre-filter's `topk_hits` statistic rests on.
            prop_assert_eq!(tracker.len(), truth.len());
        }
    }

    /// Pre-filter exactness: PLL over the kept observations equals PLL
    /// over the whole window — for any matrix shape, loss pattern and
    /// tracker capacity (saturated or not).
    #[test]
    fn prefiltered_diagnosis_equals_full_diagnosis(
        link_sets in proptest::collection::vec(
            proptest::collection::vec(0u32..24, 1..5), 1..30),
        raw_obs in proptest::collection::vec((0u8..2, 1u64..200, 0u64..200), 0..30),
        k in 1usize..16,
    ) {
        let matrix = matrix_from(&link_sets);
        // Observe a subset of paths, sorted by id as a sealed window is.
        let observations: Vec<PathObservation> = raw_obs
            .iter()
            .enumerate()
            .filter(|&(i, &(observed, _, _))| observed == 1 && i < matrix.num_paths())
            .map(|(i, &(_, sent, lost))| {
                PathObservation::new(PathId(i as u32), sent, lost.min(sent))
            })
            .collect();
        let cfg = PllConfig::default();
        let full = localize(&matrix, &observations, &cfg);
        let kept = prefilter(&matrix, &observations, k);
        let filtered = localize(&matrix, &kept.observations, &cfg);
        prop_assert_eq!(full, filtered, "k={} dropped {}", k, kept.dropped);
    }

    /// The plane is an exact aggregator: folds minus retracts, across
    /// colliding lanes and tiny over-full shards, seal to precisely the
    /// naive per-window totals.
    #[test]
    fn plane_seal_matches_naive_aggregation(
        reports in proptest::collection::vec(
            (0u64..6, 0u8..2,
             proptest::collection::vec((0u32..50, 1u64..100, 0u64..100), 1..8)),
            0..40),
        shards in 1usize..4,
        slots in 1usize..8,
        lanes in 1usize..4,
    ) {
        let plane = IngestPlane::new(IngestConfig {
            shards,
            slots_per_shard: slots,
            lanes,
            topk: 8,
        });
        type WindowTotals = (u64, HashMap<u32, (u64, u64)>);
        let mut naive: HashMap<u64, WindowTotals> = HashMap::new();
        for (window, keep, entries) in &reports {
            let entries: Vec<(PathId, u64, u64)> = entries
                .iter()
                .map(|&(p, s, l)| (PathId(p), s, l.min(s)))
                .collect();
            plane.fold(*window, entries.iter().copied());
            if *keep == 1 {
                let w = naive.entry(*window).or_default();
                w.0 += 1;
                for (p, s, l) in &entries {
                    let e = w.1.entry(p.0).or_default();
                    e.0 += s;
                    e.1 += l;
                }
            } else {
                // A dead agent's report: fold then retract, like the
                // distributed controller forfeiting a partial window.
                plane.retract(*window, entries.iter().copied());
            }
        }
        for window in 0..6u64 {
            let sealed = plane.seal(window);
            let (reports, paths) = naive.remove(&window).unwrap_or_default();
            prop_assert_eq!(sealed.reports, reports, "window {} report count", window);
            let mut expect: Vec<PathObservation> = paths
                .into_iter()
                .filter(|&(_, (s, l))| s > 0 || l > 0)
                .map(|(p, (s, l))| PathObservation::new(PathId(p), s, l))
                .collect();
            expect.sort_unstable_by_key(|o| o.path);
            prop_assert_eq!(sealed.observations, expect, "window {}", window);
        }
    }

    /// Window isolation of the top-K pre-filter: with folds for windows
    /// w and w+1 interleaved through the plane, each sealed window's
    /// pre-filter — kept set *and* `topk_hits` — equals the pre-filter
    /// of that window's naive totals alone. A heavy hitter offered in
    /// window w contributes nothing to window w+1's offered set: a path
    /// lossy only in w never appears in w+1's kept observations.
    #[test]
    fn topk_window_state_never_leaks_across_windows(
        link_sets in proptest::collection::vec(
            proptest::collection::vec(0u32..24, 1..5), 1..20),
        folds in proptest::collection::vec(
            (0u64..2, proptest::collection::vec((0u32..20, 1u64..100, 0u64..100), 1..6)),
            0..20),
        k in 1usize..8,
    ) {
        let matrix = matrix_from(&link_sets);
        let plane = IngestPlane::new(IngestConfig {
            shards: 2,
            slots_per_shard: 8,
            lanes: 2,
            topk: k,
        });
        let mut naive: HashMap<u64, HashMap<u32, (u64, u64)>> = HashMap::new();
        for (window, entries) in &folds {
            let entries: Vec<(PathId, u64, u64)> = entries
                .iter()
                .map(|&(p, s, l)| (PathId(p), s, l.min(s)))
                .collect();
            plane.fold(*window, entries.iter().copied());
            let w = naive.entry(*window).or_default();
            for (p, s, l) in &entries {
                let e = w.entry(p.0).or_default();
                e.0 += s;
                e.1 += l;
            }
        }
        for window in 0..2u64 {
            let sealed = plane.seal(window);
            let mut expect: Vec<PathObservation> = naive
                .remove(&window)
                .unwrap_or_default()
                .into_iter()
                .map(|(p, (s, l))| PathObservation::new(PathId(p), s, l))
                .collect();
            expect.sort_unstable_by_key(|o| o.path);
            let from_plane = prefilter(&matrix, &sealed.observations, k);
            let from_naive = prefilter(&matrix, &expect, k);
            prop_assert_eq!(
                &from_plane.observations,
                &from_naive.observations,
                "window {}'s kept set must come from its own folds only",
                window
            );
            prop_assert_eq!(
                from_plane.topk_hits,
                from_naive.topk_hits,
                "window {}'s tracker must start fresh",
                window
            );
            // Explicitly: nothing from the other window's fold stream
            // crosses the boundary.
            let own: std::collections::HashSet<u32> =
                expect.iter().map(|o| o.path.0).collect();
            for o in &from_plane.observations {
                prop_assert!(
                    own.contains(&o.path.0),
                    "path {} leaked into window {}",
                    o.path.0,
                    window
                );
            }
        }
    }
}
