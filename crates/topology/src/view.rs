//! The live-topology view: versioned network state driving incremental
//! probe-plan updates.
//!
//! The paper stresses (§4, Table 3) that the probe matrix must be
//! recomputed quickly when the network changes. The runtime therefore no
//! longer freezes an immutable snapshot at build time: it watches a
//! [`TopologyView`], a wrapper around a shared [`DcnTopology`] that keeps
//! the *operational* state — which links are administratively down, which
//! switches are drained — under a monotonically increasing `epoch`.
//! Changes arrive as [`TopologyEvent`]s; every applied event bumps the
//! epoch and yields a [`TopologyDelta`] naming exactly the links whose
//! up/down state flipped, which is what the incremental planner consumes
//! to re-solve only the affected PMC subproblems.
//!
//! The underlying graph stays immutable (link and node ids never change);
//! expansion scenarios are expressed by starting with a pod drained and
//! bringing it up with [`TopologyEvent::PodAdded`].
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use detector_topology::{Fattree, SharedTopology, TopologyEvent, TopologyView};
//!
//! let ft = Arc::new(Fattree::new(4).unwrap());
//! let link = ft.ea_link(0, 0, 0);
//! let mut view = TopologyView::new(ft as SharedTopology);
//! assert_eq!(view.epoch(), 0);
//! assert!(view.is_link_up(link));
//!
//! let delta = view.apply(&TopologyEvent::LinkDown { link });
//! assert_eq!(delta.epoch, 1);
//! assert_eq!(delta.went_down, vec![link]);
//! assert!(!view.is_link_up(link));
//!
//! let delta = view.apply(&TopologyEvent::LinkUp { link });
//! assert_eq!(delta.came_up, vec![link]);
//! assert!(view.is_link_up(link));
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use detector_core::json::{Json, ToJson};
use detector_core::types::{LinkId, NodeId};

use crate::graph::NodeKind;
use crate::DcnTopology;

/// A shared, thread-safe handle to a monitored topology.
///
/// The runtime owns its topology and shares it with the controller and the
/// live [`TopologyView`]; `Send + Sync` keeps the door open for the
/// async/overlapping-window scheduler.
pub type SharedTopology = Arc<dyn DcnTopology + Send + Sync>;

/// One operational change to the monitored network.
///
/// Events mutate a [`TopologyView`], never the underlying graph: ids stay
/// stable, so probe paths, link indices and reports remain comparable
/// across epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyEvent {
    /// A link failed or was administratively disabled (both directions).
    LinkDown {
        /// The affected link.
        link: LinkId,
    },
    /// A previously down link was repaired/re-enabled.
    LinkUp {
        /// The affected link.
        link: LinkId,
    },
    /// A switch was drained for maintenance: every link adjacent to it is
    /// unusable until [`TopologyEvent::SwitchUndrain`].
    SwitchDrain {
        /// The drained switch.
        switch: NodeId,
    },
    /// A drained switch returned to service.
    SwitchUndrain {
        /// The restored switch.
        switch: NodeId,
    },
    /// A whole pod was drained (all its aggregation and edge switches) —
    /// the inverse of [`TopologyEvent::PodAdded`]. On topologies without
    /// pods (VL2, BCube) this affects no switch but still bumps the epoch.
    PodDrained {
        /// Fattree pod number.
        pod: u32,
    },
    /// A pod came online — the expansion scenario: build the topology at
    /// its final size, drain the not-yet-installed pod, and apply
    /// `PodAdded` when it is racked. Undrains the pod's switches;
    /// explicitly downed links ([`TopologyEvent::LinkDown`]) stay down.
    PodAdded {
        /// Fattree pod number.
        pod: u32,
    },
}

impl TopologyEvent {
    /// Rebuilds an event from its [`ToJson`] representation.
    pub fn from_json(v: &Json) -> Option<TopologyEvent> {
        let get_u32 = |key: &str| v.get(key).and_then(Json::as_u32);
        match v.get("event")?.as_str()? {
            "link_down" => Some(TopologyEvent::LinkDown {
                link: LinkId(get_u32("link")?),
            }),
            "link_up" => Some(TopologyEvent::LinkUp {
                link: LinkId(get_u32("link")?),
            }),
            "switch_drain" => Some(TopologyEvent::SwitchDrain {
                switch: NodeId(get_u32("switch")?),
            }),
            "switch_undrain" => Some(TopologyEvent::SwitchUndrain {
                switch: NodeId(get_u32("switch")?),
            }),
            "pod_drained" => Some(TopologyEvent::PodDrained {
                pod: get_u32("pod")?,
            }),
            "pod_added" => Some(TopologyEvent::PodAdded {
                pod: get_u32("pod")?,
            }),
            _ => None,
        }
    }
}

impl ToJson for TopologyEvent {
    fn to_json(&self) -> Json {
        match self {
            TopologyEvent::LinkDown { link } => Json::obj(vec![
                ("event", Json::Str("link_down".into())),
                ("link", Json::uint(link.0 as u64)),
            ]),
            TopologyEvent::LinkUp { link } => Json::obj(vec![
                ("event", Json::Str("link_up".into())),
                ("link", Json::uint(link.0 as u64)),
            ]),
            TopologyEvent::SwitchDrain { switch } => Json::obj(vec![
                ("event", Json::Str("switch_drain".into())),
                ("switch", Json::uint(switch.0 as u64)),
            ]),
            TopologyEvent::SwitchUndrain { switch } => Json::obj(vec![
                ("event", Json::Str("switch_undrain".into())),
                ("switch", Json::uint(switch.0 as u64)),
            ]),
            TopologyEvent::PodDrained { pod } => Json::obj(vec![
                ("event", Json::Str("pod_drained".into())),
                ("pod", Json::uint(*pod as u64)),
            ]),
            TopologyEvent::PodAdded { pod } => Json::obj(vec![
                ("event", Json::Str("pod_added".into())),
                ("pod", Json::uint(*pod as u64)),
            ]),
        }
    }
}

/// What one applied [`TopologyEvent`] changed, link-wise.
///
/// The incremental planner re-solves exactly the subproblems whose
/// universes intersect `went_down ∪ came_up`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopologyDelta {
    /// The view's epoch after the event (every event bumps it, even a
    /// no-op such as downing an already-down link).
    pub epoch: u64,
    /// Links that became unusable, sorted ascending.
    pub went_down: Vec<LinkId>,
    /// Links that became usable again, sorted ascending.
    pub came_up: Vec<LinkId>,
}

impl TopologyDelta {
    /// Rebuilds a delta from its [`ToJson`] representation.
    pub fn from_json(v: &Json) -> Option<TopologyDelta> {
        let links = |key: &str| -> Option<Vec<LinkId>> {
            v.get(key)?
                .as_array()?
                .iter()
                .map(|l| l.as_u32().map(LinkId))
                .collect()
        };
        Some(TopologyDelta {
            epoch: v.get("epoch")?.as_u64()?,
            went_down: links("went_down")?,
            came_up: links("came_up")?,
        })
    }

    /// True when no link changed state (the event was redundant).
    pub fn is_empty(&self) -> bool {
        self.went_down.is_empty() && self.came_up.is_empty()
    }

    /// All changed links (down and up), sorted ascending.
    pub fn changed_links(&self) -> Vec<LinkId> {
        let mut all: Vec<LinkId> = self
            .went_down
            .iter()
            .chain(self.came_up.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all
    }
}

impl ToJson for TopologyDelta {
    fn to_json(&self) -> Json {
        let links =
            |ls: &[LinkId]| Json::Array(ls.iter().map(|l| Json::uint(l.0 as u64)).collect());
        Json::obj(vec![
            ("epoch", Json::uint(self.epoch)),
            ("went_down", links(&self.went_down)),
            ("came_up", links(&self.came_up)),
        ])
    }
}

/// A versioned, mutable view over a shared topology.
///
/// Wraps the immutable graph with the operational state that
/// [`TopologyEvent`]s mutate. `offline_links()` is the derived set the
/// planner and dispatcher consult: explicitly downed links plus every
/// link adjacent to a drained switch.
#[derive(Clone)]
pub struct TopologyView {
    topo: SharedTopology,
    epoch: u64,
    down_links: HashSet<LinkId>,
    drained: HashSet<NodeId>,
    /// Derived: `down_links ∪ links adjacent to drained switches`.
    offline: HashSet<LinkId>,
}

impl TopologyView {
    /// A pristine view: epoch 0, every link up, no switch drained.
    pub fn new(topo: SharedTopology) -> Self {
        Self {
            topo,
            epoch: 0,
            down_links: HashSet::new(),
            drained: HashSet::new(),
            offline: HashSet::new(),
        }
    }

    /// The monitored topology.
    pub fn topology(&self) -> &dyn DcnTopology {
        self.topo.as_ref()
    }

    /// A shared handle to the monitored topology.
    pub fn shared(&self) -> SharedTopology {
        Arc::clone(&self.topo)
    }

    /// The current epoch: 0 at construction, +1 per applied event.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Links explicitly taken down by [`TopologyEvent::LinkDown`].
    pub fn down_links(&self) -> &HashSet<LinkId> {
        &self.down_links
    }

    /// Switches currently drained.
    pub fn drained_switches(&self) -> &HashSet<NodeId> {
        &self.drained
    }

    /// Every unusable link: explicitly down, or adjacent to a drained
    /// switch.
    pub fn offline_links(&self) -> &HashSet<LinkId> {
        &self.offline
    }

    /// True when the link is usable in the current epoch.
    pub fn is_link_up(&self, link: LinkId) -> bool {
        !self.offline.contains(&link)
    }

    /// True when the switch is drained.
    pub fn is_drained(&self, switch: NodeId) -> bool {
        self.drained.contains(&switch)
    }

    /// The aggregation/edge switches of a Fattree pod (empty on
    /// topologies without pods).
    pub fn pod_switches(&self, pod: u32) -> Vec<NodeId> {
        pod_switches(self.topo.as_ref(), pod)
    }

    /// Applies one event: bumps the epoch and returns the link-state
    /// delta. Redundant events (downing a down link) yield an empty delta
    /// but still advance the epoch, so event streams stay totally ordered.
    pub fn apply(&mut self, event: &TopologyEvent) -> TopologyDelta {
        match event {
            TopologyEvent::LinkDown { link } => {
                self.down_links.insert(*link);
            }
            TopologyEvent::LinkUp { link } => {
                self.down_links.remove(link);
            }
            TopologyEvent::SwitchDrain { switch } => {
                self.drained.insert(*switch);
            }
            TopologyEvent::SwitchUndrain { switch } => {
                self.drained.remove(switch);
            }
            TopologyEvent::PodDrained { pod } => {
                self.drained.extend(self.pod_switches(*pod));
            }
            TopologyEvent::PodAdded { pod } => {
                for s in self.pod_switches(*pod) {
                    self.drained.remove(&s);
                }
            }
        }
        self.epoch += 1;
        self.refresh_offline()
    }

    /// Recomputes the derived offline set and diffs it against the
    /// previous one.
    fn refresh_offline(&mut self) -> TopologyDelta {
        let graph = self.topo.graph();
        let mut offline = self.down_links.clone();
        for &s in &self.drained {
            for &(_, l) in graph.neighbors(s) {
                offline.insert(l);
            }
        }
        let mut went_down: Vec<LinkId> = offline.difference(&self.offline).copied().collect();
        let mut came_up: Vec<LinkId> = self.offline.difference(&offline).copied().collect();
        went_down.sort_unstable();
        came_up.sort_unstable();
        self.offline = offline;
        TopologyDelta {
            epoch: self.epoch,
            went_down,
            came_up,
        }
    }
}

impl core::fmt::Debug for TopologyView {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TopologyView")
            .field("topology", &self.topo.name())
            .field("epoch", &self.epoch)
            .field("down_links", &self.down_links.len())
            .field("drained", &self.drained.len())
            .finish()
    }
}

/// The aggregation/edge switches of a Fattree pod (empty on topologies
/// without pods).
pub fn pod_switches(topo: &dyn DcnTopology, pod: u32) -> Vec<NodeId> {
    topo.graph()
        .nodes()
        .iter()
        .filter(|n| {
            matches!(
                n.kind,
                NodeKind::AggSwitch { pod: p, .. } | NodeKind::EdgeSwitch { pod: p, .. }
                if p == pod
            )
        })
        .map(|n| n.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fattree, Vl2};

    fn view(k: u32) -> (Arc<Fattree>, TopologyView) {
        let ft = Arc::new(Fattree::new(k).unwrap());
        let v = TopologyView::new(ft.clone() as SharedTopology);
        (ft, v)
    }

    #[test]
    fn epoch_advances_even_on_redundant_events() {
        let (ft, mut v) = view(4);
        let link = ft.ea_link(0, 0, 0);
        let d1 = v.apply(&TopologyEvent::LinkDown { link });
        assert_eq!(d1.epoch, 1);
        assert_eq!(d1.went_down, vec![link]);
        let d2 = v.apply(&TopologyEvent::LinkDown { link });
        assert_eq!(d2.epoch, 2);
        assert!(d2.is_empty());
    }

    #[test]
    fn switch_drain_takes_adjacent_links_down() {
        let (ft, mut v) = view(4);
        let agg = ft.agg(0, 0);
        let d = v.apply(&TopologyEvent::SwitchDrain { switch: agg });
        // agg(0,0) has 2 edge links + 2 core links in a 4-ary Fattree.
        assert_eq!(d.went_down.len(), 4);
        for l in &d.went_down {
            assert!(!v.is_link_up(*l));
        }
        let d = v.apply(&TopologyEvent::SwitchUndrain { switch: agg });
        assert_eq!(d.came_up.len(), 4);
        assert!(v.offline_links().is_empty());
    }

    #[test]
    fn link_down_survives_an_overlapping_drain_cycle() {
        let (ft, mut v) = view(4);
        let link = ft.ea_link(0, 0, 0); // edge(0,0) ↔ agg(0,0)
        v.apply(&TopologyEvent::LinkDown { link });
        v.apply(&TopologyEvent::SwitchDrain {
            switch: ft.agg(0, 0),
        });
        // Undraining must not resurrect the explicitly downed link.
        let d = v.apply(&TopologyEvent::SwitchUndrain {
            switch: ft.agg(0, 0),
        });
        assert!(!d.came_up.contains(&link));
        assert!(!v.is_link_up(link));
    }

    #[test]
    fn pod_events_cover_the_pods_switch_links() {
        let (_ft, mut v) = view(4);
        let d = v.apply(&TopologyEvent::PodDrained { pod: 1 });
        // Pod 1: 2 aggs (2 EA + 2 AC links each) + 2 edges (EA links
        // already counted + 2 server links each): 4 EA + 4 AC + 4 server.
        assert_eq!(d.went_down.len(), 12);
        assert_eq!(v.drained_switches().len(), 4);
        let d = v.apply(&TopologyEvent::PodAdded { pod: 1 });
        assert_eq!(d.came_up.len(), 12);
        assert!(v.offline_links().is_empty());
    }

    #[test]
    fn pod_events_are_noops_on_podless_topologies() {
        let vl = Arc::new(Vl2::new(4, 4, 2).unwrap());
        let mut v = TopologyView::new(vl as SharedTopology);
        let d = v.apply(&TopologyEvent::PodDrained { pod: 0 });
        assert!(d.is_empty());
        assert_eq!(d.epoch, 1);
    }

    #[test]
    fn events_round_trip_through_json() {
        let cases = [
            TopologyEvent::LinkDown { link: LinkId(7) },
            TopologyEvent::LinkUp { link: LinkId(7) },
            TopologyEvent::SwitchDrain { switch: NodeId(3) },
            TopologyEvent::SwitchUndrain { switch: NodeId(3) },
            TopologyEvent::PodDrained { pod: 2 },
            TopologyEvent::PodAdded { pod: 2 },
        ];
        for ev in cases {
            let text = ev.to_json().to_string();
            let parsed = TopologyEvent::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, ev);
        }
    }

    #[test]
    fn deltas_round_trip_through_json() {
        let cases = [
            TopologyDelta::default(),
            TopologyDelta {
                epoch: 9,
                went_down: vec![LinkId(3), LinkId(17)],
                came_up: vec![LinkId(4)],
            },
        ];
        for d in cases {
            let text = d.to_json().to_string();
            let parsed = TopologyDelta::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, d);
        }
    }

    #[test]
    fn changed_links_merges_both_directions() {
        let (ft, mut v) = view(4);
        v.apply(&TopologyEvent::LinkDown {
            link: ft.ea_link(0, 0, 0),
        });
        let mut d = v.apply(&TopologyEvent::LinkUp {
            link: ft.ea_link(0, 0, 0),
        });
        d.went_down = vec![ft.ea_link(1, 0, 0)];
        let all = d.changed_links();
        assert_eq!(all.len(), 2);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
    }
}
