//! The concrete DCN graph: typed nodes, undirected links, adjacency.

use detector_core::types::{LinkId, NodeId};
use serde::{Deserialize, Serialize};

/// What a node is and where it sits in its topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Fattree core switch, in column `group`, position `index`.
    CoreSwitch {
        /// Core group (connects to aggregation switch `group` of each pod).
        group: u32,
        /// Index within the group.
        index: u32,
    },
    /// Fattree aggregation switch `index` of pod `pod`.
    AggSwitch {
        /// Pod number.
        pod: u32,
        /// Position within the pod (the "column" it belongs to).
        index: u32,
    },
    /// Fattree edge (ToR) switch `index` of pod `pod`.
    EdgeSwitch {
        /// Pod number.
        pod: u32,
        /// Position within the pod.
        index: u32,
    },
    /// VL2 intermediate switch.
    IntSwitch {
        /// Index among intermediate switches.
        index: u32,
    },
    /// VL2 aggregation switch.
    VlAggSwitch {
        /// Index among aggregation switches.
        index: u32,
    },
    /// VL2 top-of-rack switch.
    TorSwitch {
        /// ToR index.
        index: u32,
    },
    /// BCube level-`level` switch.
    BcubeSwitch {
        /// BCube level (0..=k).
        level: u32,
        /// Index within the level.
        index: u32,
    },
    /// A server (BCube servers route; Fattree/VL2 servers only host
    /// pingers/responders).
    Server {
        /// Global server index within its topology.
        index: u32,
    },
}

impl NodeKind {
    /// True for any switch kind.
    pub fn is_switch(&self) -> bool {
        !matches!(self, NodeKind::Server { .. })
    }
}

/// A node of the DCN graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Dense node id.
    pub id: NodeId,
    /// Typed position.
    pub kind: NodeKind,
}

/// Which tier of the fabric a link belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkTier {
    /// Fattree edge ↔ aggregation.
    EdgeAgg,
    /// Fattree aggregation ↔ core.
    AggCore,
    /// VL2 ToR ↔ aggregation.
    TorAgg,
    /// VL2 aggregation ↔ intermediate.
    AggInt,
    /// Server ↔ its ToR/edge switch.
    ServerTor,
    /// BCube server ↔ level-n switch.
    Bcube {
        /// BCube level of the switch end.
        level: u32,
    },
}

/// An undirected link of the DCN graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Dense link id. Probe links (inter-switch, or all links for BCube)
    /// come first; server access links follow.
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Fabric tier.
    pub tier: LinkTier,
}

/// A concrete hop-by-hop route (nodes in visit order plus the traversed
/// links, one per hop, *not* de-duplicated).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed links, `nodes.len() - 1` of them.
    pub links: Vec<LinkId>,
}

impl Route {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// A generated data-center network graph.
#[derive(Clone, Debug)]
pub struct Dcn {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    num_switches: usize,
}

impl Dcn {
    /// Builds a graph from nodes and links (internal to the generators).
    pub(crate) fn build(nodes: Vec<Node>, links: Vec<Link>) -> Self {
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for l in &links {
            adjacency[l.a.index()].push((l.b, l.id));
            adjacency[l.b.index()].push((l.a, l.id));
        }
        let num_switches = nodes.iter().filter(|n| n.kind.is_switch()).count();
        Self {
            nodes,
            links,
            adjacency,
            num_switches,
        }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes (switches + servers) — the paper's Table 2 column.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links (including server access links).
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.nodes.len() - self.num_switches
    }

    /// The node's typed descriptor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The link's descriptor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Neighbors of a node with the connecting link.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[id.index()]
    }

    /// The link between two adjacent nodes, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency[a.index()]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, l)| *l)
    }

    /// Resolves a node sequence into a [`Route`], failing if two
    /// consecutive nodes are not adjacent.
    pub fn route_from_nodes(&self, nodes: Vec<NodeId>) -> Option<Route> {
        let mut links = Vec::with_capacity(nodes.len().saturating_sub(1));
        for w in nodes.windows(2) {
            links.push(self.link_between(w[0], w[1])?);
        }
        Some(Route { nodes, links })
    }

    /// All servers attached to a switch (its ServerTor/Bcube links).
    pub fn servers_under(&self, switch: NodeId) -> Vec<NodeId> {
        self.adjacency[switch.index()]
            .iter()
            .filter(|(n, _)| !self.node(*n).kind.is_switch())
            .map(|(n, _)| *n)
            .collect()
    }

    /// The switch a server hangs off (its unique switch neighbor for
    /// Fattree/VL2; the level-0 switch for BCube).
    pub fn switch_of(&self, server: NodeId) -> Option<NodeId> {
        self.adjacency[server.index()]
            .iter()
            .find(|(n, _)| self.node(*n).kind.is_switch())
            .map(|(n, _)| *n)
    }

    /// Checks structural invariants (used by tests): link endpoints exist,
    /// adjacency is symmetric, ids are dense.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id.index() != i {
                return Err(format!("node {i} has id {}", n.id));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.id.index() != i {
                return Err(format!("link {i} has id {}", l.id));
            }
            if l.a.index() >= self.nodes.len() || l.b.index() >= self.nodes.len() {
                return Err(format!("link {i} has dangling endpoint"));
            }
            if l.a == l.b {
                return Err(format!("link {i} is a self-loop"));
            }
        }
        for (ni, adj) in self.adjacency.iter().enumerate() {
            for (peer, link) in adj {
                let l = self.link(*link);
                let here = NodeId(ni as u32);
                if !(l.a == here && l.b == *peer || l.b == here && l.a == *peer) {
                    return Err(format!("adjacency of n{ni} disagrees with link {link}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dcn {
        // n0 -l0- n1 -l1- n2, server n3 under n2 via l2.
        let nodes = vec![
            Node {
                id: NodeId(0),
                kind: NodeKind::EdgeSwitch { pod: 0, index: 0 },
            },
            Node {
                id: NodeId(1),
                kind: NodeKind::AggSwitch { pod: 0, index: 0 },
            },
            Node {
                id: NodeId(2),
                kind: NodeKind::EdgeSwitch { pod: 0, index: 1 },
            },
            Node {
                id: NodeId(3),
                kind: NodeKind::Server { index: 0 },
            },
        ];
        let links = vec![
            Link {
                id: LinkId(0),
                a: NodeId(0),
                b: NodeId(1),
                tier: LinkTier::EdgeAgg,
            },
            Link {
                id: LinkId(1),
                a: NodeId(1),
                b: NodeId(2),
                tier: LinkTier::EdgeAgg,
            },
            Link {
                id: LinkId(2),
                a: NodeId(2),
                b: NodeId(3),
                tier: LinkTier::ServerTor,
            },
        ];
        Dcn::build(nodes, links)
    }

    #[test]
    fn adjacency_and_lookup() {
        let g = tiny();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_switches(), 3);
        assert_eq!(g.num_servers(), 1);
        assert_eq!(g.link_between(NodeId(0), NodeId(1)), Some(LinkId(0)));
        assert_eq!(g.link_between(NodeId(0), NodeId(2)), None);
        g.check_invariants().unwrap();
    }

    #[test]
    fn route_from_nodes_resolves_links() {
        let g = tiny();
        let r = g
            .route_from_nodes(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
            .unwrap();
        assert_eq!(r.links, vec![LinkId(0), LinkId(1), LinkId(2)]);
        assert_eq!(r.hops(), 3);
        assert!(g.route_from_nodes(vec![NodeId(0), NodeId(3)]).is_none());
    }

    #[test]
    fn servers_and_switch_of() {
        let g = tiny();
        assert_eq!(g.servers_under(NodeId(2)), vec![NodeId(3)]);
        assert_eq!(g.switch_of(NodeId(3)), Some(NodeId(2)));
    }
}
