//! # detector-topology
//!
//! Data-center network topologies for the deTector reproduction: the three
//! families the paper evaluates — **Fattree** \[9\], **VL2** \[22\] and
//! **BCube** \[24\] — with full node/link enumeration, ECMP path sets, and
//! the symmetry-aware candidate providers that make PMC tractable at scale
//! (Observation 3 of §4.3).
//!
//! # Examples
//!
//! Build a 4-ary Fattree (the paper's testbed topology, 20 switches) and
//! construct a (3, 1) probe matrix through the symmetry driver:
//!
//! ```
//! use detector_core::pmc::PmcConfig;
//! use detector_topology::{construct_symmetric, DcnTopology, Fattree};
//!
//! let ft = Fattree::new(4).unwrap();
//! assert_eq!(ft.graph().num_switches(), 20);
//! let matrix = construct_symmetric(&ft, &PmcConfig::new(3, 1)).unwrap();
//! assert!(matrix.achieved.targets_met);
//! ```

mod bcube;
mod fattree;
mod graph;
mod symmetric;
mod view;
mod vl2;

pub use bcube::BCube;
pub use fattree::Fattree;
pub use graph::{Dcn, Link, LinkTier, Node, NodeKind, Route};
pub use symmetric::{construct_symmetric, BaseComponent, SymmetryPlan};
pub use view::{pod_switches, SharedTopology, TopologyDelta, TopologyEvent, TopologyView};
pub use vl2::Vl2;

use detector_core::types::{NodeId, ProbePath};

/// Errors from topology construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A dimension parameter was invalid (zero, odd where evenness is
    /// required, or too large to index).
    BadParameter {
        /// Which parameter was rejected.
        what: &'static str,
    },
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TopologyError::BadParameter { what } => write!(f, "bad topology parameter: {what}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Common interface of the three DCN families.
pub trait DcnTopology {
    /// Human-readable name, e.g. `Fattree(8)`.
    fn name(&self) -> String;

    /// The underlying graph.
    fn graph(&self) -> &Dcn;

    /// Size of the probe-link universe (the links the probe matrix must
    /// cover; link ids `0..probe_links()`). For Fattree and VL2 these are
    /// the inter-switch links (§3.1); for BCube, all links (servers act as
    /// switches, §4.4 footnote).
    fn probe_links(&self) -> usize;

    /// Number of "original paths" as counted in Table 2: ordered
    /// probe-endpoint pairs times their ECMP fan-out.
    fn original_path_count(&self) -> u128;

    /// The probe endpoints between which candidate paths run (ToR switches
    /// for Fattree/VL2, servers for BCube).
    fn probe_endpoints(&self) -> Vec<NodeId>;

    /// Materializes every candidate path (unordered endpoint pairs — the
    /// reverse path covers the same undirected links). Only feasible for
    /// small instances; large instances must use [`Self::symmetry`].
    fn enumerate_candidates(&self) -> Vec<ProbePath>;

    /// ECMP route between two *servers* for a given flow hash, as the
    /// production network (and thus Pingmesh/NetNORAD probes) would route
    /// it.
    fn ecmp_route(&self, src: NodeId, dst: NodeId, flow_hash: u64) -> Route;

    /// Number of equal-cost paths between two servers (the ECMP fan-out
    /// a baseline prober must cover).
    fn ecmp_fanout(&self, src: NodeId, dst: NodeId) -> u64;

    /// The symmetry plan: base candidate providers (one per isomorphism
    /// class of decomposed components) plus the replication maps that
    /// expand a base solution to the full network.
    fn symmetry(&self) -> SymmetryPlan;

    /// Every distinct ECMP route between two servers (what a baseline
    /// localizer like Netbouncer must sweep). The default enumerates the
    /// hash space up to [`Self::ecmp_fanout`], which all built-in
    /// topologies decode as a mixed radix, and de-duplicates.
    fn all_ecmp_routes(&self, src: NodeId, dst: NodeId) -> Vec<Route> {
        let fanout = self.ecmp_fanout(src, dst);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for h in 0..fanout {
            let r = self.ecmp_route(src, dst, h);
            if seen.insert(r.nodes.clone()) {
                out.push(r);
            }
        }
        out
    }
}
