//! k-ary Fattree topology (Al-Fares et al., SIGCOMM'08) — the paper's
//! testbed (k = 4) and simulation (k = 18, 48) topology.
//!
//! Layout for radix k (h = k/2): h² core switches in h *groups* (group g
//! connects to aggregation switch g of every pod), k pods of h aggregation
//! and h edge (ToR) switches, and h servers per edge switch.
//!
//! The inter-switch links decompose into h independent components, one per
//! aggregation column/core group (Observation 1 of §4.3), and the
//! components are pairwise isomorphic under the rotation that renames the
//! group index — which is exactly what the symmetry plan exploits: PMC
//! solves group 0 and the solution is replicated to the other h groups.

use detector_core::pmc::CandidateProvider;
use detector_core::types::{LinkId, NodeId, ProbePath};

use crate::graph::{Dcn, Link, LinkTier, Node, NodeKind, Route};
use crate::symmetric::{BaseComponent, SymmetryPlan};
use crate::{DcnTopology, TopologyError};

/// Integer dimensions of a k-ary Fattree (shared by the provider and the
/// replication closures, which must be `'static`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Dims {
    k: u32,
    /// k / 2.
    h: u32,
}

impl Dims {
    fn new(k: u32) -> Self {
        Self { k, h: k / 2 }
    }

    // -- Node ids: cores, then aggs, then edges, then servers. --

    fn core(&self, group: u32, idx: u32) -> NodeId {
        NodeId(group * self.h + idx)
    }

    fn agg(&self, pod: u32, idx: u32) -> NodeId {
        NodeId(self.h * self.h + pod * self.h + idx)
    }

    fn edge(&self, pod: u32, idx: u32) -> NodeId {
        NodeId(self.h * self.h + self.k * self.h + pod * self.h + idx)
    }

    fn server(&self, pod: u32, edge: u32, s: u32) -> NodeId {
        NodeId(self.h * self.h + 2 * self.k * self.h + (pod * self.h + edge) * self.h + s)
    }

    // -- Link ids: edge–agg, then agg–core, then server links. --

    /// Edge(pod, e) ↔ Agg(pod, g).
    fn ea_link(&self, pod: u32, e: u32, g: u32) -> LinkId {
        LinkId(pod * self.h * self.h + e * self.h + g)
    }

    /// Agg(pod, g) ↔ Core(g, c).
    fn ac_link(&self, pod: u32, g: u32, c: u32) -> LinkId {
        LinkId(self.k * self.h * self.h + pod * self.h * self.h + g * self.h + c)
    }

    /// Edge(pod, e) ↔ Server(pod, e, s).
    fn server_link(&self, pod: u32, e: u32, s: u32) -> LinkId {
        LinkId(2 * self.k * self.h * self.h + (pod * self.h + e) * self.h + s)
    }

    /// Number of inter-switch (probe) links: k³/2.
    fn probe_links(&self) -> usize {
        2 * (self.k * self.h * self.h) as usize
    }

    /// Re-homes a group-0 path onto `group`: aggregation and core nodes
    /// and edge–agg / agg–core links get their group index replaced.
    fn map_path_to_group(&self, path: &ProbePath, group: u32) -> ProbePath {
        if group == 0 {
            return path.clone();
        }
        let nodes: Vec<NodeId> = path
            .nodes()
            .iter()
            .map(|&n| {
                let v = n.0;
                let hh = self.h * self.h;
                if v < hh {
                    // Core(group0, c) — group is v / h, must be 0.
                    debug_assert_eq!(v / self.h, 0, "path not in group 0");
                    self.core(group, v % self.h)
                } else if v < hh + self.k * self.h {
                    // Agg(pod, idx) — idx must be 0.
                    let rel = v - hh;
                    debug_assert_eq!(rel % self.h, 0, "path not in group 0");
                    self.agg(rel / self.h, group)
                } else {
                    n
                }
            })
            .collect();
        let links: Vec<LinkId> = path
            .links()
            .iter()
            .map(|&l| self.map_link_to_group(l, group))
            .collect();
        ProbePath::from_route(path.id.0, nodes, links)
    }

    /// Re-homes a group-0 probe link onto `group` (the link-level
    /// restriction of [`Self::map_path_to_group`]).
    fn map_link_to_group(&self, l: LinkId, group: u32) -> LinkId {
        if group == 0 {
            return l;
        }
        let v = l.0;
        let khh = self.k * self.h * self.h;
        if v < khh {
            let pod = v / (self.h * self.h);
            let rem = v % (self.h * self.h);
            debug_assert_eq!(rem % self.h, 0, "EA link not in group 0");
            self.ea_link(pod, rem / self.h, group)
        } else {
            debug_assert!(v < 2 * khh, "server link in probe path");
            let rel = v - khh;
            let pod = rel / (self.h * self.h);
            let rem = rel % (self.h * self.h);
            debug_assert_eq!(rem / self.h, 0, "AC link not in group 0");
            self.ac_link(pod, group, rem % self.h)
        }
    }

    /// ToR-pair probe path through (group g, core c). For intra-pod pairs
    /// the path goes up to the core and back through the same aggregation
    /// switch.
    fn tor_path(
        &self,
        id: u32,
        (p1, e1): (u32, u32),
        (p2, e2): (u32, u32),
        g: u32,
        c: u32,
    ) -> ProbePath {
        if p1 == p2 {
            let nodes = vec![
                self.edge(p1, e1),
                self.agg(p1, g),
                self.core(g, c),
                self.agg(p1, g),
                self.edge(p1, e2),
            ];
            let links = vec![
                self.ea_link(p1, e1, g),
                self.ac_link(p1, g, c),
                self.ea_link(p1, e2, g),
            ];
            ProbePath::from_route(id, nodes, links)
        } else {
            let nodes = vec![
                self.edge(p1, e1),
                self.agg(p1, g),
                self.core(g, c),
                self.agg(p2, g),
                self.edge(p2, e2),
            ];
            let links = vec![
                self.ea_link(p1, e1, g),
                self.ac_link(p1, g, c),
                self.ac_link(p2, g, c),
                self.ea_link(p2, e2, g),
            ];
            ProbePath::from_route(id, nodes, links)
        }
    }
}

/// A k-ary Fattree network.
#[derive(Clone, Debug)]
pub struct Fattree {
    dims: Dims,
    graph: Dcn,
}

impl Fattree {
    /// Builds a k-ary Fattree; k must be even and ≥ 4.
    pub fn new(k: u32) -> Result<Self, TopologyError> {
        if k < 4 || !k.is_multiple_of(2) {
            return Err(TopologyError::BadParameter {
                what: "k must be even and >= 4",
            });
        }
        if k > 128 {
            return Err(TopologyError::BadParameter {
                what: "k > 128 is not supported",
            });
        }
        let dims = Dims::new(k);
        let h = dims.h;

        let mut nodes = Vec::new();
        for group in 0..h {
            for idx in 0..h {
                nodes.push(Node {
                    id: dims.core(group, idx),
                    kind: NodeKind::CoreSwitch { group, index: idx },
                });
            }
        }
        for pod in 0..k {
            for idx in 0..h {
                nodes.push(Node {
                    id: dims.agg(pod, idx),
                    kind: NodeKind::AggSwitch { pod, index: idx },
                });
            }
        }
        for pod in 0..k {
            for idx in 0..h {
                nodes.push(Node {
                    id: dims.edge(pod, idx),
                    kind: NodeKind::EdgeSwitch { pod, index: idx },
                });
            }
        }
        let mut server_index = 0;
        for pod in 0..k {
            for e in 0..h {
                for s in 0..h {
                    debug_assert_eq!(
                        dims.server(pod, e, s).0,
                        dims.server(0, 0, 0).0 + server_index
                    );
                    nodes.push(Node {
                        id: dims.server(pod, e, s),
                        kind: NodeKind::Server {
                            index: server_index,
                        },
                    });
                    server_index += 1;
                }
            }
        }

        let mut links = Vec::new();
        for pod in 0..k {
            for e in 0..h {
                for g in 0..h {
                    links.push(Link {
                        id: dims.ea_link(pod, e, g),
                        a: dims.edge(pod, e),
                        b: dims.agg(pod, g),
                        tier: LinkTier::EdgeAgg,
                    });
                }
            }
        }
        for pod in 0..k {
            for g in 0..h {
                for c in 0..h {
                    links.push(Link {
                        id: dims.ac_link(pod, g, c),
                        a: dims.agg(pod, g),
                        b: dims.core(g, c),
                        tier: LinkTier::AggCore,
                    });
                }
            }
        }
        for pod in 0..k {
            for e in 0..h {
                for s in 0..h {
                    links.push(Link {
                        id: dims.server_link(pod, e, s),
                        a: dims.edge(pod, e),
                        b: dims.server(pod, e, s),
                        tier: LinkTier::ServerTor,
                    });
                }
            }
        }

        Ok(Self {
            dims,
            graph: Dcn::build(nodes, links),
        })
    }

    /// The radix k.
    pub fn k(&self) -> u32 {
        self.dims.k
    }

    /// k / 2 — pods have this many aggregation/edge switches, and the
    /// probe problem decomposes into this many groups.
    pub fn half(&self) -> u32 {
        self.dims.h
    }

    /// Edge switch (ToR) node id.
    pub fn edge(&self, pod: u32, idx: u32) -> NodeId {
        self.dims.edge(pod, idx)
    }

    /// Aggregation switch node id.
    pub fn agg(&self, pod: u32, idx: u32) -> NodeId {
        self.dims.agg(pod, idx)
    }

    /// Core switch node id.
    pub fn core(&self, group: u32, idx: u32) -> NodeId {
        self.dims.core(group, idx)
    }

    /// Server node id.
    pub fn server(&self, pod: u32, edge: u32, s: u32) -> NodeId {
        self.dims.server(pod, edge, s)
    }

    /// Edge–aggregation link id.
    pub fn ea_link(&self, pod: u32, e: u32, g: u32) -> LinkId {
        self.dims.ea_link(pod, e, g)
    }

    /// Aggregation–core link id.
    pub fn ac_link(&self, pod: u32, g: u32, c: u32) -> LinkId {
        self.dims.ac_link(pod, g, c)
    }

    /// Server access link id.
    pub fn server_link(&self, pod: u32, e: u32, s: u32) -> LinkId {
        self.dims.server_link(pod, e, s)
    }

    /// The candidate provider for one aggregation group's component.
    pub fn group_provider(&self, group: u32) -> FattreeGroupProvider {
        FattreeGroupProvider::new(self.dims, group)
    }

    /// Maps a group-0 probe path to its isomorphic image in `group`.
    pub fn map_path_to_group(&self, path: &ProbePath, group: u32) -> ProbePath {
        self.dims.map_path_to_group(path, group)
    }

    /// Maps a group-0 probe link to its isomorphic image in `group`.
    pub fn map_link_to_group(&self, link: LinkId, group: u32) -> LinkId {
        self.dims.map_link_to_group(link, group)
    }

    fn server_coords(&self, server: NodeId) -> (u32, u32, u32) {
        let base = self.dims.server(0, 0, 0).0;
        let rel = server.0 - base;
        let h = self.dims.h;
        (rel / (h * h), (rel / h) % h, rel % h)
    }
}

impl DcnTopology for Fattree {
    fn name(&self) -> String {
        format!("Fattree({})", self.dims.k)
    }

    fn graph(&self) -> &Dcn {
        &self.graph
    }

    fn probe_links(&self) -> usize {
        self.dims.probe_links()
    }

    fn original_path_count(&self) -> u128 {
        // Ordered ToR pairs × (k/2)² ECMP paths (matches Table 2 exactly
        // for Fattree(12/24/72)).
        let t = (self.dims.k * self.dims.h) as u128;
        let h = self.dims.h as u128;
        t * (t - 1) * h * h
    }

    fn probe_endpoints(&self) -> Vec<NodeId> {
        let mut v = Vec::new();
        for pod in 0..self.dims.k {
            for e in 0..self.dims.h {
                v.push(self.dims.edge(pod, e));
            }
        }
        v
    }

    fn enumerate_candidates(&self) -> Vec<ProbePath> {
        let k = self.dims.k;
        let h = self.dims.h;
        let tors: Vec<(u32, u32)> = (0..k).flat_map(|p| (0..h).map(move |e| (p, e))).collect();
        let mut out = Vec::new();
        let mut id = 0;
        for (i, &(p1, e1)) in tors.iter().enumerate() {
            for &(p2, e2) in &tors[i + 1..] {
                for g in 0..h {
                    for c in 0..h {
                        out.push(self.dims.tor_path(id, (p1, e1), (p2, e2), g, c));
                        id += 1;
                    }
                }
            }
        }
        out
    }

    fn ecmp_route(&self, src: NodeId, dst: NodeId, flow_hash: u64) -> Route {
        let (p1, e1, _) = self.server_coords(src);
        let (p2, e2, _) = self.server_coords(dst);
        let h = self.dims.h;
        let nodes = if p1 == p2 && e1 == e2 {
            vec![src, self.dims.edge(p1, e1), dst]
        } else if p1 == p2 {
            let g = (flow_hash % h as u64) as u32;
            vec![
                src,
                self.dims.edge(p1, e1),
                self.dims.agg(p1, g),
                self.dims.edge(p1, e2),
                dst,
            ]
        } else {
            let g = (flow_hash % h as u64) as u32;
            let c = ((flow_hash / h as u64) % h as u64) as u32;
            vec![
                src,
                self.dims.edge(p1, e1),
                self.dims.agg(p1, g),
                self.dims.core(g, c),
                self.dims.agg(p2, g),
                self.dims.edge(p2, e2),
                dst,
            ]
        };
        self.graph
            .route_from_nodes(nodes)
            .expect("generated ECMP route must be connected")
    }

    fn ecmp_fanout(&self, src: NodeId, dst: NodeId) -> u64 {
        let (p1, e1, _) = self.server_coords(src);
        let (p2, e2, _) = self.server_coords(dst);
        let h = self.dims.h as u64;
        if p1 == p2 && e1 == e2 {
            1
        } else if p1 == p2 {
            h
        } else {
            h * h
        }
    }

    fn symmetry(&self) -> SymmetryPlan {
        let dims = self.dims;
        SymmetryPlan {
            num_probe_links: dims.probe_links(),
            bases: vec![BaseComponent {
                provider: Box::new(self.group_provider(0)),
                replicas: dims.h,
                replicate: Box::new(move |p, g| dims.map_path_to_group(p, g)),
                replicate_link: Box::new(move |l, g| dims.map_link_to_group(l, g)),
            }],
        }
    }
}

/// Round-based candidate provider for one Fattree aggregation group.
///
/// Candidates are emitted in *rounds*: an inter-pod round fixes a
/// round-robin pod pairing and a (e1, e2, core) tuple and yields k/2
/// pairwise link-disjoint paths (an orbit tiling under the pod/ToR/core
/// permutation symmetry); intra-pod rounds yield one up-and-back core path
/// per pod. Over its full enumeration the provider produces every
/// candidate path of the component exactly once, so PMC with this provider
/// explores the same search space as the exhaustive enumeration — just
/// lazily.
#[derive(Clone, Debug)]
pub struct FattreeGroupProvider {
    dims: Dims,
    group: u32,
    universe: Vec<LinkId>,
    /// Perfect-tiling phases emitted before the generic enumeration: phase
    /// t's h rounds cover every EA and every AC link of the component
    /// exactly once with k²/4 pairwise link-disjoint paths.
    tiling_next: u64,
    tiling_total: u64,
    inter_next: u64,
    inter_total: u64,
    intra_next: u64,
    intra_total: u64,
    rounds_per_batch: u64,
    next_id: u32,
}

impl FattreeGroupProvider {
    fn new(dims: Dims, group: u32) -> Self {
        let k = dims.k as u64;
        let h = dims.h as u64;
        let mut universe = Vec::with_capacity((k * h * 2) as usize);
        for pod in 0..dims.k {
            for e in 0..dims.h {
                universe.push(dims.ea_link(pod, e, group));
            }
        }
        for pod in 0..dims.k {
            for c in 0..dims.h {
                universe.push(dims.ac_link(pod, group, c));
            }
        }
        Self {
            dims,
            group,
            universe,
            tiling_next: 0,
            // h phases of h rounds each: the (j, c) combinations are
            // exhausted after h phases (further phases would repeat
            // identical paths), supporting α-coverage up to h by tiling.
            tiling_total: h * h,
            inter_next: 0,
            inter_total: (k - 1) * h * h * h,
            intra_next: 0,
            intra_total: h * (h - 1) * h,
            rounds_per_batch: 4 * h,
            next_id: 0,
        }
    }

    /// Emits tiling round `r` (phase t = r / h, slot j = r % h): pods are
    /// paired by the circle method with pairing index j mod (k−1), pod p
    /// probes from ToR (p + j) mod h through core (j + t) mod h — within a
    /// phase each pod sees every ToR index and every core exactly once, so
    /// the phase tiles the component; successive phases re-use the same
    /// pod/ToR structure and only rotate the core, exactly the minimal
    /// diversity a coverage-only (β = 0) greedy needs. Identifiability
    /// pressure (β ≥ 1) draws further, structurally different candidates
    /// from the product enumeration that follows the tiling phases.
    fn tiling_round(&mut self, r: u64, out: &mut Vec<ProbePath>) {
        let k = self.dims.k as u64;
        let h = self.dims.h as u64;
        let t = r / h;
        let j = r % h;
        let c = ((j + t) % h) as u32;
        let m = k - 1;
        let pr = j % m;
        let e_of = |pod: u64| -> u32 { ((pod + j) % h) as u32 };

        let p_a = k - 1;
        let p_b = pr;
        self.push_inter(p_a as u32, e_of(p_a), p_b as u32, e_of(p_b), c, out);
        for i in 1..(k / 2) {
            let a = (pr + i) % m;
            let b = (pr + m - i) % m;
            self.push_inter(a as u32, e_of(a), b as u32, e_of(b), c, out);
        }
    }

    /// Emits the inter-pod round `r`: pods paired by the circle method,
    /// (e1, e2, c) decoded from the round index.
    fn inter_round(&mut self, r: u64, out: &mut Vec<ProbePath>) {
        let k = self.dims.k as u64;
        let h = self.dims.h as u64;
        let c = (r % h) as u32;
        let e1 = ((r / h) % h) as u32;
        let off = ((r / (h * h)) % h) as u32;
        let e2 = (e1 + off) % self.dims.h;
        let pr = (r / (h * h * h)) % (k - 1);

        // Circle method: pod k-1 is fixed, the rest rotate.
        let m = k - 1;
        let pair = |x: u64| -> u64 { (pr + m - x % m) % m };
        // Pair 0: (k-1, pr); pair i: ((pr + i) mod m, (pr + m - i) mod m).
        let p_a = (self.dims.k - 1) as u64;
        let p_b = pr;
        self.push_inter(p_a as u32, e1, p_b as u32, e2, c, out);
        for i in 1..(k / 2) {
            let a = (pr + i) % m;
            let b = pair(i);
            self.push_inter(a as u32, e1, b as u32, e2, c, out);
        }
    }

    fn push_inter(&mut self, p1: u32, e1: u32, p2: u32, e2: u32, c: u32, out: &mut Vec<ProbePath>) {
        let id = self.next_id;
        self.next_id += 1;
        out.push(self.dims.tor_path(id, (p1, e1), (p2, e2), self.group, c));
    }

    /// Emits the intra-pod round `r`: one up-and-back path per pod.
    fn intra_round(&mut self, r: u64, out: &mut Vec<ProbePath>) {
        let h = self.dims.h as u64;
        let c = (r % h) as u32;
        let e1 = ((r / h) % h) as u32;
        let off = 1 + ((r / (h * h)) % (h - 1)) as u32;
        let e2 = (e1 + off) % self.dims.h;
        for pod in 0..self.dims.k {
            let id = self.next_id;
            self.next_id += 1;
            out.push(self.dims.tor_path(id, (pod, e1), (pod, e2), self.group, c));
        }
    }
}

impl CandidateProvider for FattreeGroupProvider {
    fn universe(&self) -> &[LinkId] {
        &self.universe
    }

    fn next_batch(&mut self) -> Vec<ProbePath> {
        let mut out = Vec::new();
        // Tiling phases first: disjoint, perfectly covering rounds.
        if self.tiling_next < self.tiling_total {
            let h = self.dims.h as u64;
            for _ in 0..h {
                if self.tiling_next >= self.tiling_total {
                    break;
                }
                let r = self.tiling_next;
                self.tiling_next += 1;
                self.tiling_round(r, &mut out);
            }
            return out;
        }
        // Then the generic full enumeration, interleaving 3 inter-pod
        // rounds per intra-pod round.
        for _ in 0..self.rounds_per_batch {
            for _ in 0..3 {
                if self.inter_next < self.inter_total {
                    let r = self.inter_next;
                    self.inter_next += 1;
                    self.inter_round(r, &mut out);
                }
            }
            if self.intra_next < self.intra_total {
                let r = self.intra_next;
                self.intra_next += 1;
                self.intra_round(r, &mut out);
            }
        }
        out
    }

    fn remaining_hint(&self) -> Option<u64> {
        let k = self.dims.k as u64;
        let tiling = (self.tiling_total - self.tiling_next) * (k / 2);
        let inter = (self.inter_total - self.inter_next) * (k / 2);
        let intra = (self.intra_total - self.intra_next) * k;
        Some(tiling + inter + intra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_core::pmc::{construct, verify, PmcConfig};

    #[test]
    fn counts_match_paper_formulas() {
        // Table 2: Fattree(12) has 612 nodes, 1296 links, 184,032 paths.
        let ft = Fattree::new(12).unwrap();
        assert_eq!(ft.graph().num_nodes(), 612);
        assert_eq!(ft.graph().num_links(), 1296);
        assert_eq!(ft.original_path_count(), 184_032);
        assert_eq!(ft.probe_links(), 864);

        // Fattree(24): 4,176 nodes, 10,368 links, 11,902,464 paths.
        let ft = Fattree::new(24).unwrap();
        assert_eq!(ft.graph().num_nodes(), 4_176);
        assert_eq!(ft.graph().num_links(), 10_368);
        assert_eq!(ft.original_path_count(), 11_902_464);
    }

    #[test]
    fn fattree72_paths_match_table2() {
        // Dimensions only — no graph construction needed for the count,
        // but building the graph is cheap enough to verify node counts too.
        let ft = Fattree::new(72).unwrap();
        assert_eq!(ft.graph().num_nodes(), 99_792);
        assert_eq!(ft.graph().num_links(), 279_936);
        assert_eq!(ft.original_path_count(), 8_703_770_112);
    }

    #[test]
    fn graph_invariants_hold() {
        for k in [4, 6, 8] {
            let ft = Fattree::new(k).unwrap();
            ft.graph().check_invariants().unwrap();
            // Every switch has exactly k ports in use... edges: h servers +
            // h aggs; aggs: h edges + h cores; cores: k pods.
            for n in ft.graph().nodes() {
                let deg = ft.graph().neighbors(n.id).len() as u32;
                match n.kind {
                    NodeKind::CoreSwitch { .. } => assert_eq!(deg, k),
                    NodeKind::AggSwitch { .. } | NodeKind::EdgeSwitch { .. } => {
                        assert_eq!(deg, k)
                    }
                    NodeKind::Server { .. } => assert_eq!(deg, 1),
                    _ => panic!("unexpected node kind in fattree"),
                }
            }
        }
    }

    #[test]
    fn rejects_bad_radix() {
        assert!(Fattree::new(3).is_err());
        assert!(Fattree::new(2).is_err());
        assert!(Fattree::new(5).is_err());
    }

    #[test]
    fn enumerated_paths_are_valid_routes() {
        let ft = Fattree::new(4).unwrap();
        let paths = ft.enumerate_candidates();
        // Unordered ToR pairs × (k/2)²: C(8,2) × 4 = 112.
        assert_eq!(paths.len(), 112);
        for p in &paths {
            let r = ft
                .graph()
                .route_from_nodes(p.nodes().to_vec())
                .expect("candidate path must be routable");
            let mut links: Vec<LinkId> = r.links.clone();
            links.sort_unstable();
            links.dedup();
            assert_eq!(links.as_slice(), p.links());
        }
    }

    #[test]
    fn ecmp_routes_are_valid_and_respect_fanout() {
        let ft = Fattree::new(4).unwrap();
        let s1 = ft.server(0, 0, 0);
        let s2 = ft.server(2, 1, 1);
        let mut distinct = std::collections::HashSet::new();
        for hash in 0..64u64 {
            let r = ft.ecmp_route(s1, s2, hash);
            assert_eq!(r.nodes.first(), Some(&s1));
            assert_eq!(r.nodes.last(), Some(&s2));
            ft.graph()
                .route_from_nodes(r.nodes.clone())
                .expect("ECMP route must be connected");
            distinct.insert(r.nodes.clone());
        }
        assert_eq!(distinct.len() as u64, ft.ecmp_fanout(s1, s2));
        assert_eq!(ft.ecmp_fanout(s1, s2), 4);
        assert_eq!(ft.ecmp_fanout(s1, ft.server(0, 1, 0)), 2);
        assert_eq!(ft.ecmp_fanout(s1, ft.server(0, 0, 1)), 1);
    }

    #[test]
    fn group_provider_universe_is_one_component() {
        let ft = Fattree::new(6).unwrap();
        let p = ft.group_provider(0);
        // k pods × h edges + k pods × h cores = k²: 36 links for k=6.
        assert_eq!(p.universe().len(), 36);
    }

    #[test]
    fn provider_enumerates_only_group_links() {
        let ft = Fattree::new(4).unwrap();
        let mut p = ft.group_provider(1);
        let uni: std::collections::HashSet<LinkId> = p.universe().iter().copied().collect();
        let mut total = 0;
        loop {
            let batch = p.next_batch();
            if batch.is_empty() {
                break;
            }
            for path in &batch {
                total += 1;
                for l in path.links() {
                    assert!(uni.contains(l), "path escapes its group component");
                }
                ft.graph()
                    .route_from_nodes(path.nodes().to_vec())
                    .expect("provider path must be routable");
            }
        }
        assert!(total > 0);
    }

    #[test]
    fn replication_maps_are_isomorphisms() {
        let ft = Fattree::new(6).unwrap();
        let mut p = ft.group_provider(0);
        let batch = p.next_batch();
        for path in batch.iter().take(40) {
            for g in 0..ft.half() {
                let mapped = ft.map_path_to_group(path, g);
                // Same shape.
                assert_eq!(mapped.links().len(), path.links().len());
                // Still a valid route.
                ft.graph()
                    .route_from_nodes(mapped.nodes().to_vec())
                    .expect("mapped path must be routable");
                // And it lives in group g's component.
                let uni: std::collections::HashSet<LinkId> =
                    ft.group_provider(g).universe().iter().copied().collect();
                for l in mapped.links() {
                    assert!(uni.contains(l));
                }
            }
        }
    }

    #[test]
    fn provider_enumerates_exactly_the_component_candidates() {
        // Drain the group-0 provider completely and compare its distinct
        // link sets against the exhaustive enumeration restricted to the
        // component: the symmetric search space must be the same, just
        // lazily generated (tiling phases re-emit product paths, so only
        // the de-duplicated sets can be compared).
        for k in [4u32, 6] {
            let ft = Fattree::new(k).unwrap();
            let mut provider = ft.group_provider(0);
            let mut provided: std::collections::HashSet<Vec<LinkId>> =
                std::collections::HashSet::new();
            loop {
                let batch = provider.next_batch();
                if batch.is_empty() {
                    break;
                }
                for p in batch {
                    provided.insert(p.links().to_vec());
                }
            }
            let uni: std::collections::HashSet<LinkId> =
                ft.group_provider(0).universe().iter().copied().collect();
            let exhaustive: std::collections::HashSet<Vec<LinkId>> = ft
                .enumerate_candidates()
                .into_iter()
                .filter(|p| p.links().iter().all(|l| uni.contains(l)))
                .map(|p| p.links().to_vec())
                .collect();
            assert_eq!(provided, exhaustive, "k={k}");
        }
    }

    #[test]
    fn pmc_on_enumerated_fattree4_is_identifiable() {
        let ft = Fattree::new(4).unwrap();
        let m = construct(
            ft.probe_links(),
            ft.enumerate_candidates(),
            &PmcConfig::identifiable(1),
        )
        .unwrap();
        assert!(m.achieved.targets_met);
        let rep = verify(&m, 2);
        assert_eq!(rep.identifiability, 1);
        assert!(rep.coverage >= 1);
    }
}
