//! VL2 topology (Greenberg et al., SIGCOMM'09).
//!
//! VL2(Dₐ, Dᵢ, s): Dₐ/2 intermediate switches, Dᵢ aggregation switches in
//! a complete bipartite graph with the intermediates, Dₐ·Dᵢ/4 ToRs each
//! dual-homed to one aggregation *pair*, and `s` servers per ToR. Because
//! every intermediate switch reaches every aggregation switch, the probe
//! problem does **not** decompose (the paper observes the same in
//! Table 2), so the symmetry plan has a single base component whose
//! provider enumerates ToR pairings round-robin.

use detector_core::pmc::CandidateProvider;
use detector_core::types::{LinkId, NodeId, ProbePath};

use crate::graph::{Dcn, Link, LinkTier, Node, NodeKind, Route};
use crate::symmetric::{BaseComponent, SymmetryPlan};
use crate::{DcnTopology, TopologyError};

#[derive(Clone, Copy, Debug)]
struct Dims {
    da: u32,
    di: u32,
    sp: u32,
    /// Intermediate switches: da/2.
    ints: u32,
    /// Aggregation switches: di.
    aggs: u32,
    /// ToRs: da·di/4.
    tors: u32,
}

impl Dims {
    fn new(da: u32, di: u32, sp: u32) -> Self {
        Self {
            da,
            di,
            sp,
            ints: da / 2,
            aggs: di,
            tors: da * di / 4,
        }
    }

    // -- Node ids: ints, aggs, tors, servers. --

    fn int(&self, i: u32) -> NodeId {
        NodeId(i)
    }

    fn agg(&self, a: u32) -> NodeId {
        NodeId(self.ints + a)
    }

    fn tor(&self, t: u32) -> NodeId {
        NodeId(self.ints + self.aggs + t)
    }

    fn server(&self, t: u32, s: u32) -> NodeId {
        NodeId(self.ints + self.aggs + self.tors + t * self.sp + s)
    }

    /// The aggregation pair a ToR is homed to.
    fn agg_pair(&self, t: u32) -> u32 {
        t % (self.aggs / 2)
    }

    /// The aggregation switch on `side` (0/1) of ToR `t`'s pair.
    fn tor_agg(&self, t: u32, side: u32) -> u32 {
        2 * self.agg_pair(t) + side
    }

    // -- Link ids: ToR–agg, then agg–int, then server links. --

    fn ta_link(&self, t: u32, side: u32) -> LinkId {
        LinkId(t * 2 + side)
    }

    fn ai_link(&self, a: u32, i: u32) -> LinkId {
        LinkId(2 * self.tors + a * self.ints + i)
    }

    fn server_link(&self, t: u32, s: u32) -> LinkId {
        LinkId(2 * self.tors + self.aggs * self.ints + t * self.sp + s)
    }

    fn probe_links(&self) -> usize {
        (2 * self.tors + self.aggs * self.ints) as usize
    }

    /// Probe path between two ToRs via (up side, intermediate, down side).
    fn tor_path(&self, id: u32, t1: u32, t2: u32, u: u32, i: u32, d: u32) -> ProbePath {
        let a1 = self.tor_agg(t1, u);
        let a2 = self.tor_agg(t2, d);
        let nodes = vec![
            self.tor(t1),
            self.agg(a1),
            self.int(i),
            self.agg(a2),
            self.tor(t2),
        ];
        let mut links = vec![self.ta_link(t1, u), self.ai_link(a1, i)];
        if a2 != a1 {
            links.push(self.ai_link(a2, i));
        }
        links.push(self.ta_link(t2, d));
        ProbePath::from_route(id, nodes, links)
    }
}

/// A VL2 network.
#[derive(Clone, Debug)]
pub struct Vl2 {
    dims: Dims,
    graph: Dcn,
}

impl Vl2 {
    /// Builds VL2(da, di, servers_per_tor); `da` and `di` must be even and
    /// ≥ 4 / ≥ 2 respectively.
    pub fn new(da: u32, di: u32, servers_per_tor: u32) -> Result<Self, TopologyError> {
        if da < 4 || !da.is_multiple_of(2) {
            return Err(TopologyError::BadParameter {
                what: "da must be even and >= 4",
            });
        }
        if di < 2 || !di.is_multiple_of(2) {
            return Err(TopologyError::BadParameter {
                what: "di must be even and >= 2",
            });
        }
        if servers_per_tor == 0 {
            return Err(TopologyError::BadParameter {
                what: "servers_per_tor must be >= 1",
            });
        }
        let dims = Dims::new(da, di, servers_per_tor);

        let mut nodes = Vec::new();
        for i in 0..dims.ints {
            nodes.push(Node {
                id: dims.int(i),
                kind: NodeKind::IntSwitch { index: i },
            });
        }
        for a in 0..dims.aggs {
            nodes.push(Node {
                id: dims.agg(a),
                kind: NodeKind::VlAggSwitch { index: a },
            });
        }
        for t in 0..dims.tors {
            nodes.push(Node {
                id: dims.tor(t),
                kind: NodeKind::TorSwitch { index: t },
            });
        }
        for t in 0..dims.tors {
            for s in 0..dims.sp {
                nodes.push(Node {
                    id: dims.server(t, s),
                    kind: NodeKind::Server {
                        index: t * dims.sp + s,
                    },
                });
            }
        }

        let mut links = Vec::new();
        for t in 0..dims.tors {
            for side in 0..2 {
                links.push(Link {
                    id: dims.ta_link(t, side),
                    a: dims.tor(t),
                    b: dims.agg(dims.tor_agg(t, side)),
                    tier: LinkTier::TorAgg,
                });
            }
        }
        for a in 0..dims.aggs {
            for i in 0..dims.ints {
                links.push(Link {
                    id: dims.ai_link(a, i),
                    a: dims.agg(a),
                    b: dims.int(i),
                    tier: LinkTier::AggInt,
                });
            }
        }
        for t in 0..dims.tors {
            for s in 0..dims.sp {
                links.push(Link {
                    id: dims.server_link(t, s),
                    a: dims.tor(t),
                    b: dims.server(t, s),
                    tier: LinkTier::ServerTor,
                });
            }
        }

        Ok(Self {
            dims,
            graph: Dcn::build(nodes, links),
        })
    }

    /// ToR switch node id.
    pub fn tor(&self, t: u32) -> NodeId {
        self.dims.tor(t)
    }

    /// Server node id.
    pub fn server(&self, t: u32, s: u32) -> NodeId {
        self.dims.server(t, s)
    }

    /// Number of ToRs.
    pub fn num_tors(&self) -> u32 {
        self.dims.tors
    }

    fn server_coords(&self, server: NodeId) -> (u32, u32) {
        let base = self.dims.server(0, 0).0;
        let rel = server.0 - base;
        (rel / self.dims.sp, rel % self.dims.sp)
    }
}

impl DcnTopology for Vl2 {
    fn name(&self) -> String {
        format!("VL2({},{},{})", self.dims.da, self.dims.di, self.dims.sp)
    }

    fn graph(&self) -> &Dcn {
        &self.graph
    }

    fn probe_links(&self) -> usize {
        self.dims.probe_links()
    }

    fn original_path_count(&self) -> u128 {
        // Ordered ToR pairs × (2 up-aggs × da/2 intermediates × 2
        // down-aggs). Matches Table 2 for VL2(40,24,40) and
        // VL2(140,120,100); the VL2(20,12,20) row of the paper is exactly
        // half (an unordered count) — see EXPERIMENTS.md.
        let t = self.dims.tors as u128;
        let fanout = 4 * self.dims.ints as u128;
        t * (t - 1) * fanout
    }

    fn probe_endpoints(&self) -> Vec<NodeId> {
        (0..self.dims.tors).map(|t| self.dims.tor(t)).collect()
    }

    fn enumerate_candidates(&self) -> Vec<ProbePath> {
        let d = &self.dims;
        let mut out = Vec::new();
        let mut id = 0;
        for t1 in 0..d.tors {
            for t2 in (t1 + 1)..d.tors {
                for u in 0..2 {
                    for i in 0..d.ints {
                        for dn in 0..2 {
                            out.push(d.tor_path(id, t1, t2, u, i, dn));
                            id += 1;
                        }
                    }
                }
            }
        }
        out
    }

    fn ecmp_route(&self, src: NodeId, dst: NodeId, flow_hash: u64) -> Route {
        let (t1, _) = self.server_coords(src);
        let (t2, _) = self.server_coords(dst);
        let d = &self.dims;
        let nodes = if t1 == t2 {
            vec![src, d.tor(t1), dst]
        } else {
            let u = (flow_hash % 2) as u32;
            let i = ((flow_hash / 2) % d.ints as u64) as u32;
            let dn = ((flow_hash / (2 * d.ints as u64)) % 2) as u32;
            vec![
                src,
                d.tor(t1),
                d.agg(d.tor_agg(t1, u)),
                d.int(i),
                d.agg(d.tor_agg(t2, dn)),
                d.tor(t2),
                dst,
            ]
        };
        self.graph
            .route_from_nodes(nodes)
            .expect("generated ECMP route must be connected")
    }

    fn ecmp_fanout(&self, src: NodeId, dst: NodeId) -> u64 {
        let (t1, _) = self.server_coords(src);
        let (t2, _) = self.server_coords(dst);
        if t1 == t2 {
            1
        } else {
            4 * self.dims.ints as u64
        }
    }

    fn symmetry(&self) -> SymmetryPlan {
        SymmetryPlan {
            num_probe_links: self.dims.probe_links(),
            bases: vec![BaseComponent {
                provider: Box::new(Vl2Provider::new(self.dims)),
                replicas: 1,
                replicate: Box::new(|p, _| p.clone()),
                replicate_link: Box::new(|l, _| l),
            }],
        }
    }
}

/// Round-based candidate provider for the (single) VL2 component.
#[derive(Clone, Debug)]
pub struct Vl2Provider {
    dims: Dims,
    universe: Vec<LinkId>,
    next_round: u64,
    total_rounds: u64,
    rounds_per_batch: u64,
    next_id: u32,
}

impl Vl2Provider {
    fn new(dims: Dims) -> Self {
        let mut universe = Vec::with_capacity(dims.probe_links());
        for t in 0..dims.tors {
            for side in 0..2 {
                universe.push(dims.ta_link(t, side));
            }
        }
        for a in 0..dims.aggs {
            for i in 0..dims.ints {
                universe.push(dims.ai_link(a, i));
            }
        }
        // Pairings over T ToRs via the circle method; T may be odd, in
        // which case one ToR sits out per round (a "bye").
        let t = dims.tors as u64;
        let pairings = if t.is_multiple_of(2) { t - 1 } else { t };
        Self {
            dims,
            universe,
            next_round: 0,
            total_rounds: pairings * 4 * dims.ints as u64,
            rounds_per_batch: 4 * dims.ints as u64,
            next_id: 0,
        }
    }

    fn emit_round(&mut self, r: u64, out: &mut Vec<ProbePath>) {
        let d = self.dims;
        let ints = d.ints as u64;
        let i = (r % ints) as u32;
        let u = ((r / ints) % 2) as u32;
        let dn = ((r / (2 * ints)) % 2) as u32;
        let t = d.tors as u64;
        let (m, fixed) = if t.is_multiple_of(2) {
            (t - 1, Some(t - 1))
        } else {
            (t, None)
        };
        let pr = (r / (4 * ints)) % m;

        if let Some(f) = fixed {
            let id = self.next_id;
            self.next_id += 1;
            out.push(d.tor_path(id, f as u32, pr as u32, u, i, dn));
        }
        for x in 1..=(m - 1) / 2 {
            let a = (pr + x) % m;
            let b = (pr + m - x) % m;
            let id = self.next_id;
            self.next_id += 1;
            out.push(d.tor_path(id, a as u32, b as u32, u, i, dn));
        }
    }
}

impl CandidateProvider for Vl2Provider {
    fn universe(&self) -> &[LinkId] {
        &self.universe
    }

    fn next_batch(&mut self) -> Vec<ProbePath> {
        let mut out = Vec::new();
        for _ in 0..self.rounds_per_batch {
            if self.next_round >= self.total_rounds {
                break;
            }
            let r = self.next_round;
            self.next_round += 1;
            self.emit_round(r, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_core::pmc::{max_identifiability, min_coverage, PmcConfig};

    #[test]
    fn counts_match_paper_formulas() {
        // Table 2: VL2(40,24,40): 9,884 nodes, 10,560 links, 4,588,800
        // ordered paths.
        let v = Vl2::new(40, 24, 40).unwrap();
        assert_eq!(v.graph().num_nodes(), 9_884);
        assert_eq!(v.graph().num_links(), 10_560);
        assert_eq!(v.original_path_count(), 4_588_800);

        // VL2(20,12,20): 1,282 nodes, 1,440 links; the paper's path count
        // (70,800) is our ordered count divided by two.
        let v = Vl2::new(20, 12, 20).unwrap();
        assert_eq!(v.graph().num_nodes(), 1_282);
        assert_eq!(v.graph().num_links(), 1_440);
        assert_eq!(v.original_path_count(), 2 * 70_800);
    }

    #[test]
    fn vl2_large_matches_table2() {
        let v = Vl2::new(140, 120, 100).unwrap();
        assert_eq!(v.graph().num_nodes(), 424_390);
        assert_eq!(v.graph().num_links(), 436_800);
        assert_eq!(v.original_path_count(), 4_938_024_000);
    }

    #[test]
    fn graph_invariants_hold() {
        let v = Vl2::new(4, 4, 2).unwrap();
        v.graph().check_invariants().unwrap();
        // ToRs: 4·4/4 = 4, each with 2 uplinks; aggs 4; ints 2.
        assert_eq!(v.num_tors(), 4);
        assert_eq!(v.probe_links(), 4 * 2 + 4 * 2);
    }

    #[test]
    fn candidates_are_valid_routes() {
        let v = Vl2::new(4, 4, 2).unwrap();
        let paths = v.enumerate_candidates();
        // C(4,2) unordered pairs × 2·2·2 = 6 × 8 = 48.
        assert_eq!(paths.len(), 48);
        for p in &paths {
            v.graph()
                .route_from_nodes(p.nodes().to_vec())
                .expect("candidate must be routable");
        }
    }

    #[test]
    fn ecmp_fanout_and_routes() {
        let v = Vl2::new(4, 4, 2).unwrap();
        let s1 = v.server(0, 0);
        let s2 = v.server(3, 1);
        assert_eq!(v.ecmp_fanout(s1, s2), 8);
        let mut distinct = std::collections::HashSet::new();
        for h in 0..64u64 {
            let r = v.ecmp_route(s1, s2, h);
            v.graph().route_from_nodes(r.nodes.clone()).unwrap();
            distinct.insert(r.nodes);
        }
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn provider_enumerates_exactly_the_candidates() {
        let v = Vl2::new(4, 4, 2).unwrap();
        let mut provider = match v.symmetry().bases.pop() {
            Some(b) => b.provider,
            None => panic!("vl2 must have one base component"),
        };
        let mut provided: std::collections::HashSet<Vec<LinkId>> = std::collections::HashSet::new();
        loop {
            let batch = provider.next_batch();
            if batch.is_empty() {
                break;
            }
            for p in batch {
                provided.insert(p.links().to_vec());
            }
        }
        let exhaustive: std::collections::HashSet<Vec<LinkId>> = v
            .enumerate_candidates()
            .into_iter()
            .map(|p| p.links().to_vec())
            .collect();
        assert_eq!(provided, exhaustive);
    }

    #[test]
    fn provider_reaches_identifiability() {
        let v = Vl2::new(4, 4, 2).unwrap();
        let m = construct_symmetric_helper(&v, &PmcConfig::identifiable(1));
        assert!(m.achieved.targets_met);
        assert!(min_coverage(&m) >= 1);
        assert_eq!(max_identifiability(&m, 1), 1);
    }

    fn construct_symmetric_helper(v: &Vl2, cfg: &PmcConfig) -> detector_core::pmc::ProbeMatrix {
        crate::construct_symmetric(v, cfg).unwrap()
    }
}
