//! BCube topology (Guo et al., SIGCOMM'09).
//!
//! BCube(n, k) is server-centric: n^(k+1) servers addressed by k+1 base-n
//! digits, and k+1 levels of n^k switches; the level-ℓ switch `w` connects
//! the n servers whose digit string with digit ℓ removed equals `w`.
//! Servers forward packets, so — as the paper does in §4.4 — we treat
//! servers as switches and the probe universe is *all* links. Between any
//! two servers BCube's BuildPathSet yields k+1 parallel paths, one per
//! starting correction level.

use detector_core::pmc::CandidateProvider;
use detector_core::types::{LinkId, NodeId, ProbePath};

use crate::graph::{Dcn, Link, LinkTier, Node, NodeKind, Route};
use crate::symmetric::{BaseComponent, SymmetryPlan};
use crate::{DcnTopology, TopologyError};

#[derive(Clone, Copy, Debug)]
struct Dims {
    n: u32,
    k: u32,
    /// Servers: n^(k+1).
    servers: u32,
    /// Switches per level: n^k.
    per_level: u32,
    /// Levels: k+1.
    levels: u32,
}

impl Dims {
    fn new(n: u32, k: u32) -> Option<Self> {
        let levels = k + 1;
        let per_level = (n as u64).checked_pow(k)?;
        let servers = per_level.checked_mul(n as u64)?;
        if servers > 1 << 22 {
            return None;
        }
        Some(Self {
            n,
            k,
            servers: servers as u32,
            per_level: per_level as u32,
            levels,
        })
    }

    fn pow(&self, l: u32) -> u32 {
        self.n.pow(l)
    }

    fn digit(&self, s: u32, l: u32) -> u32 {
        (s / self.pow(l)) % self.n
    }

    fn set_digit(&self, s: u32, l: u32, v: u32) -> u32 {
        let p = self.pow(l);
        s - self.digit(s, l) * p + v * p
    }

    /// Removes digit `l` from the server address (switch index).
    fn strip(&self, s: u32, l: u32) -> u32 {
        let low = s % self.pow(l);
        let high = s / self.pow(l + 1);
        high * self.pow(l) + low
    }

    fn switch(&self, level: u32, w: u32) -> NodeId {
        NodeId(level * self.per_level + w)
    }

    fn server_node(&self, s: u32) -> NodeId {
        NodeId(self.levels * self.per_level + s)
    }

    /// The level-`l` link of server `s` (to switch (l, strip(s, l))).
    fn link(&self, level: u32, s: u32) -> LinkId {
        LinkId(level * self.servers + s)
    }

    fn probe_links(&self) -> usize {
        (self.levels * self.servers) as usize
    }

    /// BuildPathSet path from `src` to `dst` starting digit-correction at
    /// `start` (0 ≤ start ≤ k). Returns (nodes, hop links).
    fn path_nodes(&self, src: u32, dst: u32, start: u32) -> (Vec<NodeId>, Vec<LinkId>) {
        debug_assert_ne!(src, dst);
        let mut nodes = vec![self.server_node(src)];
        let mut links = Vec::new();
        let mut cur = src;

        let hop = |cur: &mut u32,
                   level: u32,
                   to: u32,
                   nodes: &mut Vec<NodeId>,
                   links: &mut Vec<LinkId>| {
            let sw = self.switch(level, self.strip(*cur, level));
            nodes.push(sw);
            links.push(self.link(level, *cur));
            nodes.push(self.server_node(to));
            links.push(self.link(level, to));
            *cur = to;
        };

        // Correction order: start, start-1, ..., 0, k, ..., start+1.
        let order: Vec<u32> = (0..self.levels)
            .map(|i| (start + self.levels - i) % self.levels)
            .collect();

        let detour = self.digit(src, start) == self.digit(dst, start);
        if detour {
            // Alt path: leave via level `start` to a neighbor, correct the
            // other digits, then come back to the true digit at the end.
            let nd = (self.digit(src, start) + 1) % self.n;
            let c0 = self.set_digit(src, start, nd);
            hop(&mut cur, start, c0, &mut nodes, &mut links);
        }
        for &l in order.iter().skip(if detour { 1 } else { 0 }) {
            if l == start && detour {
                continue;
            }
            if self.digit(cur, l) != self.digit(dst, l) {
                let next = self.set_digit(cur, l, self.digit(dst, l));
                hop(&mut cur, l, next, &mut nodes, &mut links);
            }
        }
        if detour {
            // Final correction of the detoured digit.
            let next = self.set_digit(cur, start, self.digit(dst, start));
            debug_assert_eq!(next, dst);
            hop(&mut cur, start, next, &mut nodes, &mut links);
        }
        debug_assert_eq!(cur, dst);
        (nodes, links)
    }

    fn server_path(&self, id: u32, src: u32, dst: u32, start: u32) -> ProbePath {
        let (nodes, links) = self.path_nodes(src, dst, start);
        ProbePath::from_route(id, nodes, links)
    }
}

/// A BCube(n, k) network.
#[derive(Clone, Debug)]
pub struct BCube {
    dims: Dims,
    graph: Dcn,
}

impl BCube {
    /// Builds BCube(n, k); n ≥ 2, k ≥ 1, and n^(k+1) servers must fit in
    /// 2²² (the paper's largest instance, BCube(8,4), has 32,768).
    pub fn new(n: u32, k: u32) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::BadParameter {
                what: "n must be >= 2",
            });
        }
        if k < 1 {
            return Err(TopologyError::BadParameter {
                what: "k must be >= 1",
            });
        }
        let dims = Dims::new(n, k).ok_or(TopologyError::BadParameter {
            what: "n^(k+1) too large",
        })?;

        let mut nodes = Vec::new();
        for level in 0..dims.levels {
            for w in 0..dims.per_level {
                nodes.push(Node {
                    id: dims.switch(level, w),
                    kind: NodeKind::BcubeSwitch { level, index: w },
                });
            }
        }
        for s in 0..dims.servers {
            nodes.push(Node {
                id: dims.server_node(s),
                kind: NodeKind::Server { index: s },
            });
        }

        let mut links = Vec::new();
        for level in 0..dims.levels {
            for s in 0..dims.servers {
                links.push(Link {
                    id: dims.link(level, s),
                    a: dims.server_node(s),
                    b: dims.switch(level, dims.strip(s, level)),
                    tier: LinkTier::Bcube { level },
                });
            }
        }

        Ok(Self {
            dims,
            graph: Dcn::build(nodes, links),
        })
    }

    /// Server node id from its address.
    pub fn server(&self, s: u32) -> NodeId {
        self.dims.server_node(s)
    }

    /// Number of servers.
    pub fn num_servers(&self) -> u32 {
        self.dims.servers
    }

    /// Number of parallel paths (k+1).
    pub fn levels(&self) -> u32 {
        self.dims.levels
    }

    fn server_addr(&self, node: NodeId) -> u32 {
        node.0 - self.dims.levels * self.dims.per_level
    }
}

impl DcnTopology for BCube {
    fn name(&self) -> String {
        format!("BCube({},{})", self.dims.n, self.dims.k)
    }

    fn graph(&self) -> &Dcn {
        &self.graph
    }

    fn probe_links(&self) -> usize {
        self.dims.probe_links()
    }

    fn original_path_count(&self) -> u128 {
        let n = self.dims.servers as u128;
        n * (n - 1) * self.dims.levels as u128
    }

    fn probe_endpoints(&self) -> Vec<NodeId> {
        (0..self.dims.servers)
            .map(|s| self.dims.server_node(s))
            .collect()
    }

    fn enumerate_candidates(&self) -> Vec<ProbePath> {
        let d = &self.dims;
        let mut out = Vec::new();
        let mut id = 0;
        for s1 in 0..d.servers {
            for s2 in (s1 + 1)..d.servers {
                for start in 0..d.levels {
                    out.push(d.server_path(id, s1, s2, start));
                    id += 1;
                }
            }
        }
        out
    }

    fn ecmp_route(&self, src: NodeId, dst: NodeId, flow_hash: u64) -> Route {
        let s1 = self.server_addr(src);
        let s2 = self.server_addr(dst);
        let start = (flow_hash % self.dims.levels as u64) as u32;
        let (nodes, links) = self.dims.path_nodes(s1, s2, start);
        Route { nodes, links }
    }

    fn ecmp_fanout(&self, _src: NodeId, _dst: NodeId) -> u64 {
        self.dims.levels as u64
    }

    fn symmetry(&self) -> SymmetryPlan {
        SymmetryPlan {
            num_probe_links: self.dims.probe_links(),
            bases: vec![BaseComponent {
                provider: Box::new(BcubeProvider::new(self.dims)),
                replicas: 1,
                replicate: Box::new(|p, _| p.clone()),
                replicate_link: Box::new(|l, _| l),
            }],
        }
    }
}

/// Round-based candidate provider for BCube: round (d, start) emits one
/// path per server towards the server `d` addresses away (mod N), starting
/// digit correction at level `start`.
#[derive(Clone, Debug)]
pub struct BcubeProvider {
    dims: Dims,
    universe: Vec<LinkId>,
    next_round: u64,
    total_rounds: u64,
    next_id: u32,
}

impl BcubeProvider {
    fn new(dims: Dims) -> Self {
        let universe = (0..dims.probe_links() as u32).map(LinkId).collect();
        Self {
            dims,
            universe,
            next_round: 0,
            total_rounds: (dims.servers as u64 - 1) * dims.levels as u64,
            next_id: 0,
        }
    }
}

impl CandidateProvider for BcubeProvider {
    fn universe(&self) -> &[LinkId] {
        &self.universe
    }

    fn next_batch(&mut self) -> Vec<ProbePath> {
        if self.next_round >= self.total_rounds {
            return Vec::new();
        }
        let r = self.next_round;
        self.next_round += 1;
        let d = &self.dims;
        let levels = d.levels as u64;
        let start = (r % levels) as u32;
        let dist = 1 + (r / levels) as u32;
        let mut out = Vec::with_capacity(d.servers as usize);
        for s in 0..d.servers {
            let dst = (s + dist) % d.servers;
            let id = self.next_id;
            self.next_id += 1;
            out.push(d.server_path(id, s, dst, start));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_core::pmc::{max_identifiability, min_coverage, PmcConfig};

    #[test]
    fn counts_match_paper_formulas() {
        // Table 2: BCube(4,2): 112 nodes, 192 links, 12,096 paths.
        let b = BCube::new(4, 2).unwrap();
        assert_eq!(b.graph().num_nodes(), 112);
        assert_eq!(b.graph().num_links(), 192);
        assert_eq!(b.original_path_count(), 12_096);

        // BCube(8,2): 704 nodes, 1,536 links, 784,896 paths.
        let b = BCube::new(8, 2).unwrap();
        assert_eq!(b.graph().num_nodes(), 704);
        assert_eq!(b.graph().num_links(), 1_536);
        assert_eq!(b.original_path_count(), 784_896);
    }

    #[test]
    fn bcube84_matches_table2() {
        let b = BCube::new(8, 4).unwrap();
        assert_eq!(b.graph().num_nodes(), 53_248);
        assert_eq!(b.graph().num_links(), 163_840);
        assert_eq!(b.original_path_count(), 5_368_545_280);
    }

    #[test]
    fn graph_invariants_hold() {
        let b = BCube::new(3, 1).unwrap();
        b.graph().check_invariants().unwrap();
        // Every server has k+1 = 2 links; every switch has n = 3.
        for n in b.graph().nodes() {
            let deg = b.graph().neighbors(n.id).len();
            match n.kind {
                NodeKind::Server { .. } => assert_eq!(deg, 2),
                NodeKind::BcubeSwitch { .. } => assert_eq!(deg, 3),
                _ => panic!("unexpected kind"),
            }
        }
    }

    #[test]
    fn paths_are_valid_and_digit_correcting() {
        let b = BCube::new(3, 2).unwrap();
        for (s1, s2) in [(0u32, 26u32), (1, 2), (4, 22), (0, 9)] {
            for start in 0..b.levels() {
                let p = b.dims.server_path(0, s1, s2, start);
                let r = b
                    .graph()
                    .route_from_nodes(p.nodes().to_vec())
                    .expect("BCube path must be routable");
                assert_eq!(r.nodes.first(), Some(&b.server(s1)));
                assert_eq!(r.nodes.last(), Some(&b.server(s2)));
            }
        }
    }

    #[test]
    fn parallel_paths_use_distinct_first_levels() {
        let b = BCube::new(4, 2).unwrap();
        // For servers differing in all digits, the k+1 paths are
        // link-disjoint (BCube's parallel-path property).
        let s1 = 0u32; // digits (0,0,0)
        let s2 = 21u32; // digits (1,1,1): 1 + 4 + 16.
        let mut all_links = std::collections::HashSet::new();
        for start in 0..b.levels() {
            let p = b.dims.server_path(0, s1, s2, start);
            for l in p.links() {
                assert!(all_links.insert(*l), "paths share link {l}");
            }
        }
    }

    #[test]
    fn ecmp_route_is_one_of_the_parallel_paths() {
        let b = BCube::new(4, 2).unwrap();
        let r = b.ecmp_route(b.server(5), b.server(40), 7);
        b.graph().route_from_nodes(r.nodes.clone()).unwrap();
        assert_eq!(b.ecmp_fanout(b.server(5), b.server(40)), 3);
    }

    #[test]
    fn provider_covers_all_unordered_candidates() {
        // The BCube provider emits *ordered* pairs (whose link sets differ
        // by correction direction), so it is a superset of the unordered
        // exhaustive enumeration.
        let b = BCube::new(3, 1).unwrap();
        let mut provider = match b.symmetry().bases.pop() {
            Some(base) => base.provider,
            None => panic!("bcube must have one base component"),
        };
        let mut provided: std::collections::HashSet<Vec<LinkId>> = std::collections::HashSet::new();
        loop {
            let batch = provider.next_batch();
            if batch.is_empty() {
                break;
            }
            for p in batch {
                provided.insert(p.links().to_vec());
            }
        }
        for p in b.enumerate_candidates() {
            assert!(
                provided.contains(p.links()),
                "missing candidate {:?}",
                p.links()
            );
        }
    }

    #[test]
    fn provider_reaches_identifiability_on_small_bcube() {
        // n = 3 is the smallest identifiable BCube: with n = 2 every
        // switch has exactly two links and every path through it uses
        // both, so their routing-matrix columns are identical.
        let b = BCube::new(3, 1).unwrap();
        let m = crate::construct_symmetric(&b, &PmcConfig::identifiable(1)).unwrap();
        assert!(m.achieved.targets_met, "achieved: {:?}", m.achieved);
        assert!(min_coverage(&m) >= 1);
        assert_eq!(max_identifiability(&m, 1), 1);
    }

    #[test]
    fn n2_bcube_is_fundamentally_unidentifiable() {
        use detector_core::pmc::construct;
        let b = BCube::new(2, 1).unwrap();
        // Exhaustive candidates and the symmetric provider must agree that
        // 1-identifiability is unattainable.
        let exhaustive = construct(
            b.probe_links(),
            b.enumerate_candidates(),
            &PmcConfig::identifiable(1),
        )
        .unwrap();
        let symmetric = crate::construct_symmetric(&b, &PmcConfig::identifiable(1)).unwrap();
        assert!(!exhaustive.achieved.targets_met);
        assert!(!symmetric.achieved.targets_met);
        assert_eq!(max_identifiability(&exhaustive, 1), 0);
    }
}
