//! Symmetry-reduced probe-matrix construction (Observation 3 of §4.3).
//!
//! A topology's automorphism group acts on its decomposed PMC components;
//! components in the same orbit are isomorphic, so PMC only needs to solve
//! one *base* component per orbit and replicate the solution through the
//! isomorphisms. Within a base component, candidates come from a
//! round-based [`CandidateProvider`] instead of a full enumeration, so the
//! greedy never materializes the astronomically large original path set.

use detector_core::pmc::{
    construct_with_provider, Achieved, CandidateProvider, PmcConfig, PmcError, ProbeMatrix,
};
use detector_core::types::{LinkId, ProbePath};

use crate::DcnTopology;

/// Maps a base-component path to a replica index (see
/// [`BaseComponent::replicate`]).
pub type ReplicateFn = Box<dyn Fn(&ProbePath, u32) -> ProbePath + Send + Sync>;

/// Maps a base-universe link to a replica index (see
/// [`BaseComponent::replicate_link`]).
pub type ReplicateLinkFn = Box<dyn Fn(LinkId, u32) -> LinkId + Send + Sync>;

/// One isomorphism class of components: a provider for the base component
/// plus the map that re-homes base paths onto each replica.
pub struct BaseComponent {
    /// Candidate source for the base component.
    pub provider: Box<dyn CandidateProvider + Send>,
    /// Number of isomorphic components, including the base itself.
    pub replicas: u32,
    /// Maps a base-component path to replica `r` (`r = 0` must be the
    /// identity).
    pub replicate: ReplicateFn,
    /// Maps a base-universe link to its image in replica `r` (`r = 0`
    /// must be the identity). This is the link-level restriction of
    /// [`Self::replicate`]; the incremental planner uses it to compute
    /// replica universes and to pull a replica's excluded links back into
    /// base coordinates for a per-replica re-solve.
    pub replicate_link: ReplicateLinkFn,
}

/// A topology's full symmetry plan.
pub struct SymmetryPlan {
    /// Size of the probe-link universe of the whole network.
    pub num_probe_links: usize,
    /// Base components covering, through their replicas, every probe link.
    pub bases: Vec<BaseComponent>,
}

/// Constructs a probe matrix using the topology's symmetry plan.
///
/// Each base component is solved with [`construct_with_provider`]; its
/// solution is replicated to all isomorphic components. The achieved
/// (α, β) level of a base carries over to its replicas because the
/// replication maps are link-relabeling isomorphisms; the returned matrix
/// additionally gets a direct coverage re-check over the whole universe.
///
/// # Examples
///
/// ```
/// use detector_core::pmc::PmcConfig;
/// use detector_topology::{construct_symmetric, DcnTopology, Fattree};
///
/// let ft = Fattree::new(6).unwrap();
/// let m = construct_symmetric(&ft, &PmcConfig::identifiable(1)).unwrap();
/// assert!(m.achieved.targets_met);
/// ```
pub fn construct_symmetric(
    topo: &dyn DcnTopology,
    cfg: &PmcConfig,
) -> Result<ProbeMatrix, PmcError> {
    let plan = topo.symmetry();
    let mut all_paths: Vec<ProbePath> = Vec::new();
    let mut targets_met = true;
    let mut coverage = u32::MAX;

    for base in plan.bases {
        let sol = construct_with_provider(base.provider, cfg)?;
        targets_met &= sol.targets_met;
        coverage = coverage.min(sol.coverage);
        for r in 0..base.replicas {
            for p in &sol.paths {
                all_paths.push((base.replicate)(p, r));
            }
        }
    }
    if coverage == u32::MAX {
        coverage = 0;
    }

    let matrix = ProbeMatrix::from_paths(plan.num_probe_links, all_paths);
    let targets_met = targets_met && matrix.uncoverable.is_empty();
    let achieved = Achieved {
        coverage,
        identifiability: if targets_met { cfg.beta } else { 0 },
        targets_met,
    };
    Ok(matrix.with_achieved(achieved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fattree;
    use detector_core::pmc::{max_identifiability, min_coverage};

    #[test]
    fn symmetric_fattree_matrix_is_verified_identifiable() {
        let ft = Fattree::new(6).unwrap();
        let m = construct_symmetric(&ft, &PmcConfig::identifiable(1)).unwrap();
        assert!(m.achieved.targets_met);
        assert!(m.uncoverable.is_empty());
        // Cross-check construction claims with the independent verifier.
        assert!(min_coverage(&m) >= 1);
        assert_eq!(max_identifiability(&m, 1), 1);
    }

    #[test]
    fn coverage_three_is_reached() {
        let ft = Fattree::new(4).unwrap();
        let m = construct_symmetric(&ft, &PmcConfig::new(3, 0)).unwrap();
        assert!(m.achieved.targets_met);
        assert!(min_coverage(&m) >= 3);
    }

    #[test]
    fn replicate_link_agrees_with_replicate_on_paths() {
        // The link-level map must be the restriction of the path-level
        // map: replicating a path and mapping its links individually give
        // the same link sets, for every topology family.
        use crate::{BCube, DcnTopology, Vl2};
        let topos: Vec<Box<dyn DcnTopology>> = vec![
            Box::new(Fattree::new(6).unwrap()),
            Box::new(Vl2::new(4, 4, 2).unwrap()),
            Box::new(BCube::new(2, 1).unwrap()),
        ];
        for topo in &topos {
            let plan = topo.symmetry();
            for base in plan.bases {
                let mut provider = base.provider;
                let batch = provider.next_batch();
                for p in batch.iter().take(20) {
                    for r in 0..base.replicas {
                        let mapped = (base.replicate)(p, r);
                        let mut via_links: Vec<_> = p
                            .links()
                            .iter()
                            .map(|&l| (base.replicate_link)(l, r))
                            .collect();
                        via_links.sort_unstable();
                        assert_eq!(mapped.links(), via_links.as_slice(), "{}", topo.name());
                    }
                }
            }
        }
    }

    #[test]
    fn selected_paths_are_far_fewer_than_original() {
        let ft = Fattree::new(8).unwrap();
        let m = construct_symmetric(&ft, &PmcConfig::identifiable(1)).unwrap();
        assert!(m.achieved.targets_met);
        let original = ft.original_path_count();
        assert!((m.num_paths() as u128) < original / 10);
    }
}
