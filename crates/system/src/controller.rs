//! The controller: incremental probe planning and pinglist dispatch
//! (§3.1), driven by the live [`TopologyView`].
//!
//! Earlier revisions froze the topology at construction and forced a
//! full PMC recompute on every change (`exclude_links` stripped paths
//! from a pristine matrix). The controller is now an *incremental
//! planner*: it owns a [`TopologyView`] whose [`TopologyEvent`]s produce
//! link-state deltas, and a partitioned [`ProbePlan`] that re-solves only
//! the subproblems the delta touches. Exclusion is just
//! [`TopologyEvent::LinkDown`] on the delta path — the bespoke
//! full-recompute branch is gone.

use std::collections::HashSet;
use std::time::Instant;

use detector_core::pmc::{PmcError, ProbeMatrix};
use detector_core::types::{LinkId, NodeId};
use detector_topology::{DcnTopology, TopologyEvent, TopologyView};

use crate::pinglist::{PingEntry, Pinglist};
use crate::planner::{ProbePlan, ReplanStats, EXHAUSTIVE_LIMIT};
use crate::{SharedTopology, SystemConfig};

/// Everything the controller dispatches for one cycle.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// The probe matrix of this cycle.
    pub matrix: ProbeMatrix,
    /// One pinglist per active pinger.
    pub pinglists: Vec<Pinglist>,
    /// Cycle number.
    pub version: u64,
}

impl Deployment {
    /// Total probe paths across pinglists (each matrix path appears in at
    /// least two pinglists for fault tolerance).
    pub fn total_assignments(&self) -> usize {
        self.pinglists.iter().map(|p| p.num_paths()).sum()
    }

    /// Carries version numbers over from a previous deployment for every
    /// pinglist whose assignment did not change, so pingers (which cache
    /// their bound routes by version) re-bind only the lists a re-plan
    /// actually touched. Returns the number of lists that *are*
    /// re-dispatched — lists whose assignment changed or whose pinger is
    /// new. With segmented path ids a single-cell delta leaves every
    /// other cell's entries bit-identical, so this count covers exactly
    /// the pinglists carrying paths of the touched cells.
    pub fn rebase_versions(&mut self, prev: &Deployment) -> usize {
        let mut redispatched = 0;
        for list in &mut self.pinglists {
            match prev.pinglists.iter().find(|l| l.pinger == list.pinger) {
                Some(old) if old.same_assignment(list) => list.version = old.version,
                _ => redispatched += 1,
            }
        }
        redispatched
    }
}

/// The outcome of applying one or more [`TopologyEvent`]s: what changed
/// and what the incremental re-plan cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanUpdate {
    /// The view's epoch after the event(s).
    pub epoch: u64,
    /// Links whose up/down state actually flipped.
    pub links_changed: usize,
    /// Change in the number of deployed probe paths (new − old).
    pub probes_delta: i64,
    /// Pinglists actually re-dispatched by the update (fresh versions; a
    /// single-cell delta re-dispatches only the lists carrying paths of
    /// the touched cell). Filled by the runtime's dispatch step —
    /// [`Detector::apply`](crate::Detector::apply) — since the
    /// controller itself does not own the deployed lists; 0 when no
    /// re-dispatch happened.
    pub lists_redispatched: usize,
    /// Entries that actually traveled: per-entry adds + removes across
    /// diffed lists, plus every entry of whole-list replacements. Filled
    /// by the dispatch step alongside `lists_redispatched`.
    pub entries_diffed: usize,
    /// Exact wire bytes of the dispatch under the per-entry diff
    /// protocol ([`crate::dispatch::DeploymentDiff::wire_bytes`]) —
    /// minimal re-dispatch measured on the wire, not in list counts.
    pub bytes_dispatched: u64,
    /// Wall-clock time of the whole update (replan + matrix assembly),
    /// microseconds.
    pub replan_micros: u64,
    /// Per-cell re-plan accounting.
    pub stats: ReplanStats,
}

/// The logical controller.
pub struct Controller {
    view: TopologyView,
    cfg: SystemConfig,
    version: u64,
    /// Below this many original paths the controller materializes the full
    /// candidate set (small testbeds); above it, the symmetry plan is used.
    exhaustive_limit: u128,
    /// The partitioned plan, built lazily on first use.
    plan: Option<ProbePlan>,
    /// Cached assembly of the plan's current solutions.
    matrix: Option<ProbeMatrix>,
}

impl Controller {
    /// A controller for `topo` with the given system configuration.
    pub fn new(topo: SharedTopology, cfg: SystemConfig) -> Self {
        Self {
            view: TopologyView::new(topo),
            cfg,
            version: 0,
            exhaustive_limit: EXHAUSTIVE_LIMIT,
            plan: None,
            matrix: None,
        }
    }

    /// Overrides the materialization threshold (tests and benches force
    /// the symmetric planner with 0).
    pub fn with_exhaustive_limit(mut self, limit: u128) -> Self {
        self.exhaustive_limit = limit;
        self
    }

    /// The monitored topology.
    pub fn topology(&self) -> &dyn DcnTopology {
        self.view.topology()
    }

    /// The live topology view (epoch, offline links, drained switches).
    pub fn view(&self) -> &TopologyView {
        &self.view
    }

    /// The view's current epoch.
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// Applies one topology event, incrementally patching the probe plan.
    pub fn apply_event(&mut self, event: &TopologyEvent) -> Result<PlanUpdate, PmcError> {
        self.apply_events(std::iter::once(*event))
    }

    /// Applies a batch of topology events as one re-plan: the view absorbs
    /// every event first, then the merged link-state delta patches the
    /// plan once.
    pub fn apply_events(
        &mut self,
        events: impl IntoIterator<Item = TopologyEvent>,
    ) -> Result<PlanUpdate, PmcError> {
        // detlint::allow(determinism, reason = "replan_micros stopwatch; measurement only, never branches")
        let t0 = Instant::now();
        let mut changed: HashSet<LinkId> = HashSet::new();
        for ev in events {
            let delta = self.view.apply(&ev);
            // A link that flips twice within the batch nets out below via
            // the offline-set comparison inside the plan.
            changed.extend(delta.went_down);
            changed.extend(delta.came_up);
        }
        let mut changed: Vec<LinkId> = changed.into_iter().collect();
        changed.sort_unstable();

        let old_paths = self.matrix.as_ref().map(|m| m.num_paths());
        let mut stats = ReplanStats::default();
        if !changed.is_empty() {
            if let Some(plan) = self.plan.as_mut() {
                match plan.apply(&changed, self.view.offline_links()) {
                    Ok(s) => {
                        stats = s;
                        self.matrix = Some(plan.matrix());
                    }
                    Err(e) => {
                        // The plan kept its previous consistent state
                        // (the patch is atomic) but the view has already
                        // advanced: drop the cached matrix so the next
                        // compute_matrix() re-syncs instead of serving
                        // paths over links the view knows are down.
                        self.matrix = None;
                        return Err(e);
                    }
                }
            }
            // With no plan yet, the first ensure_plan() builds against the
            // already-updated view; nothing to patch.
        }
        let probes_delta = match (old_paths, self.matrix.as_ref()) {
            (Some(old), Some(new)) => new.num_paths() as i64 - old as i64,
            _ => 0,
        };
        Ok(PlanUpdate {
            epoch: self.view.epoch(),
            links_changed: changed.len(),
            probes_delta,
            // Dispatch accounting is known only after pinglist dispatch.
            lists_redispatched: 0,
            entries_diffed: 0,
            bytes_dispatched: 0,
            replan_micros: t0.elapsed().as_micros() as u64,
            stats,
        })
    }

    /// Reports links as failed — sugar for a batch of
    /// [`TopologyEvent::LinkDown`]s on the delta path. The next
    /// deployment avoids scheduling any probe path across them while the
    /// rest of the fabric stays fully planned (§6.1, footnote 4).
    pub fn exclude_links(
        &mut self,
        links: impl IntoIterator<Item = LinkId>,
    ) -> Result<PlanUpdate, PmcError> {
        self.apply_events(
            links
                .into_iter()
                .map(|link| TopologyEvent::LinkDown { link }),
        )
    }

    /// Clears the failed-link set (links repaired): a batch of
    /// [`TopologyEvent::LinkUp`]s, which restores cached pristine
    /// subproblem solutions without re-solving.
    pub fn clear_excluded_links(&mut self) -> Result<PlanUpdate, PmcError> {
        let up: Vec<LinkId> = self.view.down_links().iter().copied().collect();
        self.apply_events(up.into_iter().map(|link| TopologyEvent::LinkUp { link }))
    }

    /// The currently excluded (explicitly downed) links.
    pub fn excluded_links(&self) -> &HashSet<LinkId> {
        self.view.down_links()
    }

    fn ensure_plan(&mut self) -> Result<&ProbePlan, PmcError> {
        if self.plan.is_none() {
            let plan = ProbePlan::with_options(
                self.view.shared(),
                &self.cfg.pmc,
                self.view.offline_links(),
                self.exhaustive_limit,
                self.cfg.id_headroom,
            )?;
            self.matrix = Some(plan.matrix());
            self.plan = Some(plan);
        }
        Ok(self.plan.as_ref().expect("plan built above"))
    }

    /// The partitioned probe plan, if one has been built — exposes the
    /// per-cell id ranges ([`ProbePlan::cell_ranges`]) so tests and
    /// operator tooling can reason about dispatch stability.
    pub fn probe_plan(&self) -> Option<&ProbePlan> {
        self.plan.as_ref()
    }

    /// The probe matrix for the current topology state (incrementally
    /// maintained; cached between changes). If a previous
    /// [`Controller::apply_events`] failed mid-patch, this re-syncs the
    /// plan to the view first (the plan diffs the offline sets itself).
    pub fn compute_matrix(&mut self) -> Result<ProbeMatrix, PmcError> {
        self.ensure_plan()?;
        if self.matrix.is_none() {
            let plan = self.plan.as_mut().expect("plan ensured above");
            plan.apply(&[], self.view.offline_links())?;
            self.matrix = Some(plan.matrix());
        }
        Ok(self.matrix.clone().expect("matrix assembled above"))
    }

    /// Recomputes the probe matrix from scratch for the *current* view
    /// state, ignoring the incremental plan. This is the equivalence
    /// oracle for the incremental path (and the "full recompute" arm of
    /// the `replan_latency` bench): by construction it runs the identical
    /// deterministic per-subproblem procedure, so its result must carry
    /// exactly the paths of [`Controller::compute_matrix`] after any
    /// event sequence, row for row. `PathId`s may differ: the standing
    /// plan keeps the id ranges it was born with (id *stability* across
    /// deltas is the point of segmented allocation), while a fresh plan
    /// derives its ranges from the current per-cell solution sizes.
    pub fn compute_matrix_from_scratch(&self) -> Result<ProbeMatrix, PmcError> {
        let plan = ProbePlan::with_options(
            self.view.shared(),
            &self.cfg.pmc,
            self.view.offline_links(),
            self.exhaustive_limit,
            self.cfg.id_headroom,
        )?;
        Ok(plan.matrix())
    }

    /// Computes the matrix and builds pinglists, excluding unhealthy
    /// servers from pinger duty (watchdog input, §3.2).
    pub fn build_deployment(
        &mut self,
        unhealthy: &HashSet<NodeId>,
    ) -> Result<Deployment, PmcError> {
        let matrix = self.compute_matrix()?;
        self.version += 1;
        let pinglists = self.assign(&matrix, unhealthy);
        Ok(Deployment {
            matrix,
            pinglists,
            version: self.version,
        })
    }

    /// Distributes matrix paths to pingers: ≥ 2 pingers per source ToR
    /// per path (fault tolerance), plus in-rack probes covering
    /// server–ToR links.
    fn assign(&self, matrix: &ProbeMatrix, unhealthy: &HashSet<NodeId>) -> Vec<Pinglist> {
        let graph = self.view.topology().graph();
        let offline = self.view.offline_links();
        let interval_us = (1_000_000.0 / self.cfg.probe_rate_pps) as u64;

        // Cell-affinity spread (opt-in, `SystemConfig::cell_affinity`):
        // paths of one plan cell share a spread key, so from a given ToR
        // they all land on the same pinger pair and a single-cell delta
        // touches at most two of that ToR's `pingers_per_tor` lists.
        // Ranges can leave base order after a re-base, so membership is a
        // positional scan (cell counts are small: h = k/2 for Fattree).
        let cell_ranges = if self.cfg.cell_affinity {
            self.plan.as_ref().map(ProbePlan::cell_ranges)
        } else {
            None
        };
        let spread_key = |pid: detector_core::types::PathId| -> usize {
            cell_ranges
                .as_deref()
                .and_then(|ranges| ranges.iter().position(|r| r.contains(pid)))
                .unwrap_or_else(|| pid.index())
        };

        // Pingers per ToR (probe endpoints are ToRs for Fattree/VL2). For
        // server-centric topologies (BCube) the endpoint *is* the pinger.
        let mut lists: Vec<Pinglist> = Vec::new();
        let mut list_index: std::collections::HashMap<NodeId, usize> =
            std::collections::HashMap::new();

        let mut list_for = |pinger: NodeId, lists: &mut Vec<Pinglist>| -> usize {
            *list_index.entry(pinger).or_insert_with(|| {
                lists.push(Pinglist {
                    version: self.version,
                    pinger,
                    entries: Vec::new(),
                    interval_us,
                    base_sport: self.cfg.base_sport,
                    port_range: self.cfg.port_range,
                    dport: self.cfg.dport,
                    stamp: 0, // Sealed below, once assembly is complete.
                });
                lists.len() - 1
            })
        };

        // A server can serve as pinger or responder only when it is
        // healthy and its access link is up (its ToR may be drained).
        let usable = |server: NodeId| -> bool {
            if unhealthy.contains(&server) {
                return false;
            }
            graph
                .switch_of(server)
                .and_then(|tor| graph.link_between(server, tor))
                .is_none_or(|l| !offline.contains(&l))
        };

        for path in &matrix.paths {
            let nodes = path.nodes();
            if nodes.is_empty() {
                continue;
            }
            let first = nodes[0];
            let last = *nodes.last().expect("non-empty path");
            let waypoint = {
                let mid = nodes[nodes.len() / 2];
                graph.node(mid).kind.is_switch().then_some(mid)
            };

            if graph.node(first).kind.is_switch() {
                // ToR-based endpoints: pick pingers under the source ToR
                // and a responder under the destination ToR.
                let pingers: Vec<NodeId> = graph
                    .servers_under(first)
                    .into_iter()
                    .filter(|&s| usable(s))
                    .take(self.cfg.pingers_per_tor)
                    .collect();
                if pingers.is_empty() {
                    continue;
                }
                let responders: Vec<NodeId> = graph
                    .servers_under(last)
                    .into_iter()
                    .filter(|&s| usable(s))
                    .collect();
                let Some(&responder) = responders.get(path.id.index() % responders.len().max(1))
                else {
                    continue;
                };
                let mut route = Vec::with_capacity(nodes.len() + 2);
                route.push(NodeId(0)); // Placeholder, replaced per pinger.
                route.extend_from_slice(nodes);
                route.push(responder);

                // At least two pingers per path.
                let take = pingers.len().clamp(1, 2);
                for j in 0..take {
                    let pinger = pingers[(spread_key(path.id) + j) % pingers.len()];
                    let mut r = route.clone();
                    r[0] = pinger;
                    let li = list_for(pinger, &mut lists);
                    lists[li].entries.push(PingEntry {
                        path: Some(path.id),
                        route: r,
                        responder,
                        waypoint,
                    });
                }
            } else {
                // Server-based endpoints (BCube): the first server pings.
                if !usable(first) {
                    continue;
                }
                let li = list_for(first, &mut lists);
                lists[li].entries.push(PingEntry {
                    path: Some(path.id),
                    route: nodes.to_vec(),
                    responder: last,
                    waypoint,
                });
            }
        }

        // In-rack probes: each pinger probes every other server under its
        // ToR to cover server–ToR links (§3.1).
        for list in &mut lists {
            let pinger = list.pinger;
            let Some(tor) = graph.switch_of(pinger) else {
                continue;
            };
            for peer in graph.servers_under(tor) {
                if peer == pinger || !usable(peer) {
                    continue;
                }
                list.entries.push(PingEntry {
                    path: None,
                    route: vec![pinger, tor, peer],
                    responder: peer,
                    waypoint: None,
                });
            }
        }
        lists.sort_by_key(|l| l.pinger);
        // Freeze each list's content stamp once, so per-window binding
        // checks compare two u64s instead of re-hashing every entry.
        for list in &mut lists {
            list.seal();
        }
        lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_topology::Fattree;
    use std::sync::Arc;

    fn deployment(k: u32) -> (Arc<Fattree>, Deployment) {
        let ft = Arc::new(Fattree::new(k).unwrap());
        let mut ctl = Controller::new(ft.clone(), SystemConfig::default());
        let d = ctl.build_deployment(&HashSet::new()).unwrap();
        (ft, d)
    }

    #[test]
    fn every_matrix_path_is_assigned_twice() {
        let (_ft, d) = deployment(4);
        // Ids are segmented (per-cell ranges with headroom), so count per
        // id instead of indexing a dense array.
        let mut counts: std::collections::HashMap<detector_core::types::PathId, usize> =
            std::collections::HashMap::new();
        for l in &d.pinglists {
            for e in &l.entries {
                if let Some(pid) = e.path {
                    *counts.entry(pid).or_default() += 1;
                }
            }
        }
        assert_eq!(counts.len(), d.matrix.num_paths());
        assert!(counts.values().all(|&c| c == 2), "counts: {counts:?}");
    }

    #[test]
    fn routes_start_at_pinger_and_end_at_responder() {
        let (ft, d) = deployment(4);
        for l in &d.pinglists {
            for e in &l.entries {
                assert_eq!(e.route[0], l.pinger);
                assert_eq!(*e.route.last().unwrap(), e.responder);
                // And the route must be walkable in the graph.
                ft.graph()
                    .route_from_nodes(e.route.clone())
                    .expect("pinglist route must be connected");
            }
        }
    }

    #[test]
    fn in_rack_probes_cover_rack_peers() {
        let (ft, d) = deployment(4);
        // Each pinger probes the one other server in its rack (k=4 ⇒ 2
        // servers per ToR).
        for l in &d.pinglists {
            let in_rack = l.entries.iter().filter(|e| e.path.is_none()).count();
            assert_eq!(in_rack, 1, "pinger {:?}", l.pinger);
        }
        let _ = ft;
    }

    #[test]
    fn unhealthy_servers_are_not_pingers() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut ctl = Controller::new(ft.clone(), SystemConfig::default());
        let mut bad = HashSet::new();
        // All servers of pod 0, rack 0 are sick.
        bad.insert(ft.server(0, 0, 0));
        bad.insert(ft.server(0, 0, 1));
        let d = ctl.build_deployment(&bad).unwrap();
        for l in &d.pinglists {
            assert!(!bad.contains(&l.pinger));
        }
    }

    #[test]
    fn version_increments_per_cycle() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut ctl = Controller::new(ft, SystemConfig::default());
        let d1 = ctl.build_deployment(&HashSet::new()).unwrap();
        let d2 = ctl.build_deployment(&HashSet::new()).unwrap();
        assert_eq!(d1.version + 1, d2.version);
    }

    #[test]
    fn excluded_links_are_never_probed() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut ctl = Controller::new(ft.clone(), SystemConfig::default());
        let dead = ft.ac_link(0, 0, 0);
        ctl.exclude_links([dead]).unwrap();
        let d = ctl.build_deployment(&HashSet::new()).unwrap();
        for p in &d.matrix.paths {
            assert!(!p.covers(dead), "path {} crosses the dead link", p.id);
        }
        // The dead link is reported uncoverable; its neighbors are still
        // monitored.
        assert!(d.matrix.uncoverable.contains(&dead));
        assert!(d.matrix.num_paths() > 0);
        let healthy = ft.ac_link(1, 0, 0);
        assert!(d.matrix.paths.iter().any(|p| p.covers(healthy)));
    }

    #[test]
    fn exclusion_rides_the_delta_path() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut ctl = Controller::new(ft.clone(), SystemConfig::default());
        // Build first so exclusion exercises the incremental patch.
        ctl.build_deployment(&HashSet::new()).unwrap();
        let dead = ft.ea_link(2, 1, 0);
        let up = ctl.exclude_links([dead]).unwrap();
        assert_eq!(up.epoch, 1);
        assert_eq!(up.links_changed, 1);
        assert_eq!(up.stats.cells_resolved, 1);
        assert_eq!(up.stats.cells_total, 2);

        // Clearing restores the pristine plan without re-solving.
        let up = ctl.clear_excluded_links().unwrap();
        assert_eq!(up.epoch, 2);
        assert_eq!(up.stats.cells_restored, 1);
        assert_eq!(up.stats.cells_resolved, 0);
        assert!(ctl.excluded_links().is_empty());
    }

    #[test]
    fn incremental_matrix_equals_from_scratch_after_events() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut ctl = Controller::new(ft.clone(), SystemConfig::default());
        ctl.build_deployment(&HashSet::new()).unwrap();
        ctl.apply_event(&TopologyEvent::SwitchDrain {
            switch: ft.agg(1, 1),
        })
        .unwrap();
        ctl.apply_event(&TopologyEvent::LinkDown {
            link: ft.ea_link(0, 0, 0),
        })
        .unwrap();
        let patched = ctl.compute_matrix().unwrap();
        let scratch = ctl.compute_matrix_from_scratch().unwrap();
        // Same paths row for row; ids may differ (the patched plan keeps
        // its birth ranges, the scratch plan derives fresh ones).
        assert_eq!(patched.num_paths(), scratch.num_paths());
        for (pa, pb) in patched.paths.iter().zip(&scratch.paths) {
            assert_eq!(pa.links(), pb.links());
            assert_eq!(pa.nodes(), pb.nodes());
        }
        assert_eq!(patched.achieved, scratch.achieved);
        assert_eq!(patched.uncoverable, scratch.uncoverable);
    }

    #[test]
    fn drained_tor_fields_no_pingers() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut ctl = Controller::new(ft.clone(), SystemConfig::default());
        let tor = ft.edge(0, 0);
        ctl.apply_event(&TopologyEvent::SwitchDrain { switch: tor })
            .unwrap();
        let d = ctl.build_deployment(&HashSet::new()).unwrap();
        for l in &d.pinglists {
            assert_ne!(ft.graph().switch_of(l.pinger), Some(tor));
            for e in &l.entries {
                assert!(!e.route.contains(&tor), "route crosses drained ToR");
            }
        }
    }

    #[test]
    fn rebase_keeps_versions_of_unchanged_lists() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut ctl = Controller::new(ft, SystemConfig::default());
        let d1 = ctl.build_deployment(&HashSet::new()).unwrap();
        let mut d2 = ctl.build_deployment(&HashSet::new()).unwrap();
        assert!(d2.pinglists.iter().all(|l| l.version == d2.version));
        let redispatched = d2.rebase_versions(&d1);
        // Nothing changed between the cycles, so every list keeps its
        // original version and nothing is re-dispatched.
        assert_eq!(redispatched, 0);
        assert!(d2.pinglists.iter().all(|l| l.version == d1.version));
    }

    #[test]
    fn cell_affinity_reduces_redispatch_with_wide_pinger_pools() {
        // The Fattree cell-partition smell: with `pingers_per_tor > 2`
        // the default spread (`path.id` keyed) scatters every cell over
        // the whole pinger pool, so a single-cell delta re-dispatches all
        // of a ToR's lists. The ToR-locality heuristic keys the spread on
        // the plan cell instead, pinning each cell to one pinger pair —
        // strictly fewer lists travel for the same delta.
        let ft = Arc::new(Fattree::new(8).unwrap());
        let dead = ft.ea_link(1, 1, 0);
        let redispatched = |affinity: bool| -> usize {
            let cfg = SystemConfig {
                pingers_per_tor: 4,
                cell_affinity: affinity,
                ..SystemConfig::default()
            };
            let mut ctl = Controller::new(ft.clone(), cfg);
            let d1 = ctl.build_deployment(&HashSet::new()).unwrap();
            ctl.apply_event(&TopologyEvent::LinkDown { link: dead })
                .unwrap();
            let mut d2 = ctl.build_deployment(&HashSet::new()).unwrap();
            d2.rebase_versions(&d1)
        };
        let baseline = redispatched(false);
        let affine = redispatched(true);
        assert!(
            affine < baseline,
            "cell affinity must shrink the re-dispatch ({affine} !< {baseline})"
        );
    }

    #[test]
    fn cell_affinity_is_a_noop_at_two_pingers_per_tor() {
        // The documented negative result for the default configuration:
        // with 2 pingers per ToR and 2 copies per path, both pingers get
        // every path regardless of the spread key — `(key + j) % 2` over
        // j ∈ {0, 1} hits both — so no heuristic keyed on the spread can
        // reduce `lists_redispatched`. The deployments are bit-identical.
        let ft = Arc::new(Fattree::new(4).unwrap());
        let build = |affinity: bool| {
            let cfg = SystemConfig::default().with_cell_affinity(affinity);
            let mut ctl = Controller::new(ft.clone(), cfg);
            ctl.build_deployment(&HashSet::new()).unwrap()
        };
        let plain = build(false);
        let affine = build(true);
        assert_eq!(plain.pinglists, affine.pinglists);
    }

    #[test]
    fn waypoint_is_a_switch() {
        let (ft, d) = deployment(4);
        for l in &d.pinglists {
            for e in &l.entries {
                if let Some(w) = e.waypoint {
                    assert!(ft.graph().node(w).kind.is_switch());
                }
            }
        }
    }
}
