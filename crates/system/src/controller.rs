//! The controller: probe-matrix computation and pinglist dispatch (§3.1).

use std::collections::HashSet;

use detector_core::pmc::{construct, PmcError, ProbeMatrix};
use detector_core::types::{LinkId, NodeId};
use detector_topology::{construct_symmetric, DcnTopology};

use crate::pinglist::{PingEntry, Pinglist};
use crate::{SharedTopology, SystemConfig};

/// Everything the controller dispatches for one cycle.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// The probe matrix of this cycle.
    pub matrix: ProbeMatrix,
    /// One pinglist per active pinger.
    pub pinglists: Vec<Pinglist>,
    /// Cycle number.
    pub version: u64,
}

impl Deployment {
    /// Total probe paths across pinglists (each matrix path appears in at
    /// least two pinglists for fault tolerance).
    pub fn total_assignments(&self) -> usize {
        self.pinglists.iter().map(|p| p.num_paths()).sum()
    }
}

/// The logical controller.
pub struct Controller {
    topo: SharedTopology,
    cfg: SystemConfig,
    version: u64,
    /// Below this many original paths the controller materializes the full
    /// candidate set (small testbeds); above it, the symmetry plan is used.
    exhaustive_limit: u128,
    /// Links reported failed: removed from the routing matrix so no probe
    /// path is scheduled across them (§6.1, footnote 4). Symmetry
    /// computation is unaffected — it pre-runs once on the pristine
    /// topology.
    excluded_links: HashSet<LinkId>,
}

impl Controller {
    /// A controller for `topo` with the given system configuration.
    pub fn new(topo: SharedTopology, cfg: SystemConfig) -> Self {
        Self {
            topo,
            cfg,
            version: 0,
            exhaustive_limit: 300_000,
            excluded_links: HashSet::new(),
        }
    }

    /// The monitored topology.
    pub fn topology(&self) -> &dyn DcnTopology {
        self.topo.as_ref()
    }

    /// Reports links as failed: the next deployment avoids scheduling any
    /// probe path across them (the diagnoser keeps monitoring the rest of
    /// the fabric while repair is under way).
    pub fn exclude_links(&mut self, links: impl IntoIterator<Item = LinkId>) {
        self.excluded_links.extend(links);
    }

    /// Clears the failed-link set (links repaired).
    pub fn clear_excluded_links(&mut self) {
        self.excluded_links.clear();
    }

    /// The currently excluded links.
    pub fn excluded_links(&self) -> &HashSet<LinkId> {
        &self.excluded_links
    }

    fn strip_excluded(&self, matrix: ProbeMatrix) -> ProbeMatrix {
        if self.excluded_links.is_empty() {
            return matrix;
        }
        let kept: Vec<_> = matrix
            .paths
            .into_iter()
            .filter(|p| !p.links().iter().any(|l| self.excluded_links.contains(l)))
            .collect();
        // Coverage/identifiability claims no longer hold around the dead
        // links; report them degraded rather than stale.
        ProbeMatrix::from_paths(matrix.num_links, kept).with_achieved(
            detector_core::pmc::Achieved {
                coverage: 0,
                identifiability: 0,
                targets_met: false,
            },
        )
    }

    /// Computes the probe matrix for the current topology state.
    pub fn compute_matrix(&self) -> Result<ProbeMatrix, PmcError> {
        if self.topo.original_path_count() <= self.exhaustive_limit {
            // Exhaustive: drop candidates over failed links *before*
            // selection, so the greedy still optimizes coverage and
            // identifiability of the healthy fabric.
            let candidates: Vec<_> = self
                .topo
                .enumerate_candidates()
                .into_iter()
                .filter(|p| !p.links().iter().any(|l| self.excluded_links.contains(l)))
                .collect();
            construct(self.topo.probe_links(), candidates, &self.cfg.pmc)
        } else {
            // Symmetric: construct on the pristine topology, then strip
            // paths that would cross failed links.
            Ok(self.strip_excluded(construct_symmetric(self.topo.as_ref(), &self.cfg.pmc)?))
        }
    }

    /// Computes the matrix and builds pinglists, excluding unhealthy
    /// servers from pinger duty (watchdog input, §3.2).
    pub fn build_deployment(
        &mut self,
        unhealthy: &HashSet<NodeId>,
    ) -> Result<Deployment, PmcError> {
        let matrix = self.compute_matrix()?;
        self.version += 1;
        let pinglists = self.assign(&matrix, unhealthy);
        Ok(Deployment {
            matrix,
            pinglists,
            version: self.version,
        })
    }

    /// Distributes matrix paths to pingers: ≥ 2 pingers per source ToR
    /// per path (fault tolerance), plus in-rack probes covering
    /// server–ToR links.
    fn assign(&self, matrix: &ProbeMatrix, unhealthy: &HashSet<NodeId>) -> Vec<Pinglist> {
        let graph = self.topo.graph();
        let interval_us = (1_000_000.0 / self.cfg.probe_rate_pps) as u64;

        // Pingers per ToR (probe endpoints are ToRs for Fattree/VL2). For
        // server-centric topologies (BCube) the endpoint *is* the pinger.
        let mut lists: Vec<Pinglist> = Vec::new();
        let mut list_index: std::collections::HashMap<NodeId, usize> =
            std::collections::HashMap::new();

        let mut list_for = |pinger: NodeId, lists: &mut Vec<Pinglist>| -> usize {
            *list_index.entry(pinger).or_insert_with(|| {
                lists.push(Pinglist {
                    version: self.version,
                    pinger,
                    entries: Vec::new(),
                    interval_us,
                    base_sport: self.cfg.base_sport,
                    port_range: self.cfg.port_range,
                    dport: self.cfg.dport,
                });
                lists.len() - 1
            })
        };

        for path in &matrix.paths {
            let nodes = path.nodes();
            if nodes.is_empty() {
                continue;
            }
            let first = nodes[0];
            let last = *nodes.last().expect("non-empty path");
            let waypoint = {
                let mid = nodes[nodes.len() / 2];
                graph.node(mid).kind.is_switch().then_some(mid)
            };

            if graph.node(first).kind.is_switch() {
                // ToR-based endpoints: pick pingers under the source ToR
                // and a responder under the destination ToR.
                let pingers: Vec<NodeId> = graph
                    .servers_under(first)
                    .into_iter()
                    .filter(|s| !unhealthy.contains(s))
                    .take(self.cfg.pingers_per_tor)
                    .collect();
                if pingers.is_empty() {
                    continue;
                }
                let responders: Vec<NodeId> = graph
                    .servers_under(last)
                    .into_iter()
                    .filter(|s| !unhealthy.contains(s))
                    .collect();
                let Some(&responder) = responders.get(path.id.index() % responders.len().max(1))
                else {
                    continue;
                };
                let mut route = Vec::with_capacity(nodes.len() + 2);
                route.push(NodeId(0)); // Placeholder, replaced per pinger.
                route.extend_from_slice(nodes);
                route.push(responder);

                // At least two pingers per path.
                let take = pingers.len().clamp(1, 2);
                for j in 0..take {
                    let pinger = pingers[(path.id.index() + j) % pingers.len()];
                    let mut r = route.clone();
                    r[0] = pinger;
                    let li = list_for(pinger, &mut lists);
                    lists[li].entries.push(PingEntry {
                        path: Some(path.id),
                        route: r,
                        responder,
                        waypoint,
                    });
                }
            } else {
                // Server-based endpoints (BCube): the first server pings.
                if unhealthy.contains(&first) {
                    continue;
                }
                let li = list_for(first, &mut lists);
                lists[li].entries.push(PingEntry {
                    path: Some(path.id),
                    route: nodes.to_vec(),
                    responder: last,
                    waypoint,
                });
            }
        }

        // In-rack probes: each pinger probes every other server under its
        // ToR to cover server–ToR links (§3.1).
        for list in &mut lists {
            let pinger = list.pinger;
            let Some(tor) = graph.switch_of(pinger) else {
                continue;
            };
            for peer in graph.servers_under(tor) {
                if peer == pinger || unhealthy.contains(&peer) {
                    continue;
                }
                list.entries.push(PingEntry {
                    path: None,
                    route: vec![pinger, tor, peer],
                    responder: peer,
                    waypoint: None,
                });
            }
        }
        lists.sort_by_key(|l| l.pinger);
        lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_topology::Fattree;
    use std::sync::Arc;

    fn deployment(k: u32) -> (Arc<Fattree>, Deployment) {
        let ft = Arc::new(Fattree::new(k).unwrap());
        let mut ctl = Controller::new(ft.clone(), SystemConfig::default());
        let d = ctl.build_deployment(&HashSet::new()).unwrap();
        (ft, d)
    }

    #[test]
    fn every_matrix_path_is_assigned_twice() {
        let (_ft, d) = deployment(4);
        let mut counts = vec![0usize; d.matrix.num_paths()];
        for l in &d.pinglists {
            for e in &l.entries {
                if let Some(pid) = e.path {
                    counts[pid.index()] += 1;
                }
            }
        }
        assert!(counts.iter().all(|&c| c == 2), "counts: {counts:?}");
    }

    #[test]
    fn routes_start_at_pinger_and_end_at_responder() {
        let (ft, d) = deployment(4);
        for l in &d.pinglists {
            for e in &l.entries {
                assert_eq!(e.route[0], l.pinger);
                assert_eq!(*e.route.last().unwrap(), e.responder);
                // And the route must be walkable in the graph.
                ft.graph()
                    .route_from_nodes(e.route.clone())
                    .expect("pinglist route must be connected");
            }
        }
    }

    #[test]
    fn in_rack_probes_cover_rack_peers() {
        let (ft, d) = deployment(4);
        // Each pinger probes the one other server in its rack (k=4 ⇒ 2
        // servers per ToR).
        for l in &d.pinglists {
            let in_rack = l.entries.iter().filter(|e| e.path.is_none()).count();
            assert_eq!(in_rack, 1, "pinger {:?}", l.pinger);
        }
        let _ = ft;
    }

    #[test]
    fn unhealthy_servers_are_not_pingers() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut ctl = Controller::new(ft.clone(), SystemConfig::default());
        let mut bad = HashSet::new();
        // All servers of pod 0, rack 0 are sick.
        bad.insert(ft.server(0, 0, 0));
        bad.insert(ft.server(0, 0, 1));
        let d = ctl.build_deployment(&bad).unwrap();
        for l in &d.pinglists {
            assert!(!bad.contains(&l.pinger));
        }
    }

    #[test]
    fn version_increments_per_cycle() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut ctl = Controller::new(ft, SystemConfig::default());
        let d1 = ctl.build_deployment(&HashSet::new()).unwrap();
        let d2 = ctl.build_deployment(&HashSet::new()).unwrap();
        assert_eq!(d1.version + 1, d2.version);
    }

    #[test]
    fn excluded_links_are_never_probed() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut ctl = Controller::new(ft.clone(), SystemConfig::default());
        let dead = ft.ac_link(0, 0, 0);
        ctl.exclude_links([dead]);
        let d = ctl.build_deployment(&HashSet::new()).unwrap();
        for p in &d.matrix.paths {
            assert!(!p.covers(dead), "path {} crosses the dead link", p.id);
        }
        // The dead link is reported uncoverable; its neighbors are still
        // monitored.
        assert!(d.matrix.uncoverable.contains(&dead));
        assert!(d.matrix.num_paths() > 0);
        let healthy = ft.ac_link(1, 0, 0);
        assert!(d.matrix.paths.iter().any(|p| p.covers(healthy)));
    }

    #[test]
    fn waypoint_is_a_switch() {
        let (ft, d) = deployment(4);
        for l in &d.pinglists {
            for e in &l.entries {
                if let Some(w) = e.waypoint {
                    assert!(ft.graph().node(w).kind.is_switch());
                }
            }
        }
    }
}
