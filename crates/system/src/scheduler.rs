//! The pipelined scheduler: overlapping probe, collection and diagnosis
//! stages across windows.
//!
//! The paper's controller runs its 30-second windows strictly in
//! sequence — probe, collect, diagnose, repeat. At production scale the
//! three stages are independent for *different* windows: window N+1's
//! probes can transmit while window N's reports are still being
//! diagnosed. [`Detector::run_pipelined`] exploits exactly that, as a
//! three-stage pipeline over `crossbeam` channels and scoped worker
//! threads:
//!
//! ```text
//!             ┌────────────────────┐   WindowMeta (bounded, depth)
//!  script ──▶ │  dispatch stage    │ ───────────────────────────────┐
//!  (churn,    │  (caller thread)   │   BatchJob                     │
//!   health)   │  replans, refreshes│ ──────────────┐                ▼
//!             │  cycles, seeds     │               ▼        ┌──────────────┐
//!             └────────────────────┘      ┌──────────────┐  │ diagnosis    │
//!                                         │ probe stage  │  │ stage        │
//!                                         │ (N workers,  │  │ (1 thread)   │
//!                                         │ PingerBatch) │─▶│ ingests,     │
//!                                         └──────────────┘  │ runs PLL,    │
//!                                           BatchDone       │ emits events │
//!                                                           └──────────────┘
//! ```
//!
//! * The **dispatch stage** (the calling thread) walks windows in order:
//!   it applies the window's scripted [`ScriptAction`]s (topology churn
//!   through the incremental re-planner, watchdog health marks),
//!   performs the cycle refresh on exactly the boundaries sequential
//!   [`Detector::step`] would, draws the window's master seed, and ships
//!   one [`PingerBatch`] job per healthy pinger.
//! * The **probe stage** is a pool of workers pulling batch jobs from a
//!   shared channel; each runs a server's whole pinglist for the window
//!   with its own RNG stream ([`batch_seed`](crate::batch_seed)) and posts the report.
//! * The **diagnosis stage** assembles each window's reports (stashing
//!   early arrivals from younger windows), ingests them in pinglist
//!   order, runs PLL, and emits the window's [`RuntimeEvent`]s.
//!
//! Windows in flight are bounded by [`PipelineConfig::depth`] via the
//! bounded meta channel, so a slow diagnosis stage back-pressures the
//! dispatcher instead of letting probes run unboundedly ahead.
//!
//! **Equivalence.** The pipelined run produces *exactly* the event
//! stream and [`WindowResult`]s of driving [`Detector::step`] over the
//! same script (the sequential oracle, [`Detector::run_scripted`]):
//! per-server probe outcomes are a pure function of the window's master
//! seed ([`batch_seed`](crate::batch_seed)), replans/refreshes happen at the same window
//! boundaries, the diagnosis stage snapshots the watchdog as of each
//! window's dispatch, and all events are emitted from one thread in
//! window order. The only permitted difference is the wall-clock
//! `replan_micros` field of `PlanUpdated`. This is property-tested in
//! `tests/scheduler_equivalence.rs`.
//!
//! One precondition: the *timing* of the [`DataPlane`] window hooks
//! differs. The dispatcher fires `window_started(N+1)` while window N's
//! batches may still be probing (that is the overlap), and
//! `window_finished` fires from the diagnosis stage. A data plane whose
//! hooks mutate probe behavior — e.g. `tests/scheduler_soak.rs`'s
//! `ChurnFabric`, which applies fabric churn in `window_started` — is
//! therefore **outside** the equivalence guarantee at depth > 1: probes
//! of an in-flight window can observe a younger window's fabric state.
//! Equivalence holds for any data plane whose probe outcomes are a pure
//! function of `(route, flow, rng)` between hook calls, which includes
//! the plain `Fabric`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use detector_core::pmc::{PmcError, ProbeMatrix};
use detector_core::types::NodeId;
use detector_topology::TopologyEvent;
use rand::rngs::SmallRng;
use rand::Rng;

use detector_core::pll::{ComponentJob, ComponentVerdict};

use crate::controller::Controller;
use crate::dataplane::DataPlane;
use crate::diagnoser::DiagStep;
use crate::dispatch::{rebase_pairs, DispatchStats};
use crate::events::{RuntimeEvent, WindowResult};
use crate::pinger::PingerBatch;
use crate::report::PingerReport;
use crate::runtime::{bound_batch, install_dispatched, Detector};
use crate::watchdog::Watchdog;
use crate::SystemConfig;

/// One scripted action, applied at the start of its window (before that
/// window's probes are dispatched), in push order within the window.
#[derive(Clone, Debug, PartialEq)]
pub enum ScriptAction {
    /// Apply a topology event through the incremental re-planner (what
    /// [`Detector::apply`] does between sequential windows).
    Topology(TopologyEvent),
    /// Mark a server unhealthy (management-plane watchdog signal): it is
    /// dropped from pinger duty and its reports are excluded.
    MarkUnhealthy(NodeId),
    /// Clear a server's unhealthy mark.
    MarkHealthy(NodeId),
}

/// A windowed script of runtime actions — churn and pinger failures —
/// consumed by both [`Detector::run_scripted`] (the sequential oracle)
/// and [`Detector::run_pipelined`]. Window indices are **relative to the
/// start of the run** (0 = before the first window of the run).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Script {
    /// `(window, action)` pairs, sorted by window (stable within one).
    actions: Vec<(u64, ScriptAction)>,
}

impl Script {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an action firing before `window` (builder style). Actions
    /// pushed for the same window keep their push order.
    pub fn at(mut self, window: u64, action: ScriptAction) -> Self {
        self.actions.push((window, action));
        // Stable sort: same-window actions keep push order.
        self.actions.sort_by_key(|(w, _)| *w);
        self
    }

    /// Adds a topology event firing before `window`.
    pub fn topology(self, window: u64, event: TopologyEvent) -> Self {
        self.at(window, ScriptAction::Topology(event))
    }

    /// Marks `server` unhealthy before `window`.
    pub fn mark_unhealthy(self, window: u64, server: NodeId) -> Self {
        self.at(window, ScriptAction::MarkUnhealthy(server))
    }

    /// Clears `server`'s unhealthy mark before `window`.
    pub fn mark_healthy(self, window: u64, server: NodeId) -> Self {
        self.at(window, ScriptAction::MarkHealthy(server))
    }

    /// Builds a script from `(window, TopologyEvent)` pairs — e.g. the
    /// entries of a `detector_simnet::ChurnSchedule`.
    pub fn from_topology_events(events: impl IntoIterator<Item = (u64, TopologyEvent)>) -> Self {
        events
            .into_iter()
            .fold(Self::new(), |s, (w, ev)| s.topology(w, ev))
    }

    /// The actions due before the run's `window`-th window.
    pub fn due(&self, window: u64) -> impl Iterator<Item = &ScriptAction> {
        self.actions
            .iter()
            .filter(move |(w, _)| *w == window)
            .map(|(_, a)| a)
    }

    /// Total number of scripted actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when no action is scripted.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Shape of the pipeline: how wide the probe stage fans out and how many
/// windows may be in flight at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Worker threads in the probe stage (each runs whole
    /// [`PingerBatch`]es). Clamped to ≥ 1.
    pub probe_workers: usize,
    /// Maximum windows in flight across the stages (the bounded meta
    /// channel's capacity). 1 degenerates to lock-step; ≥ 2 overlaps
    /// window N's diagnosis with window N+1's probing. Clamped to ≥ 1.
    pub depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self {
            probe_workers: cores.clamp(1, 8),
            depth: 2,
        }
    }
}

impl PipelineConfig {
    /// A pipeline with `probe_workers` workers and the default depth.
    pub fn with_workers(probe_workers: usize) -> Self {
        Self {
            probe_workers,
            ..Self::default()
        }
    }
}

/// Why a pipelined run failed.
#[derive(Debug)]
pub enum PipelineError {
    /// A scripted topology event failed to re-plan; windows dispatched
    /// before the failure were completed and their events emitted, but
    /// the run's results are discarded.
    Replan(PmcError),
    /// A pipeline stage panicked or disconnected unexpectedly.
    Stage(&'static str),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Replan(e) => write!(f, "scripted re-plan failed: {e}"),
            PipelineError::Stage(s) => write!(f, "pipeline stage failure: {s}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<PmcError> for PipelineError {
    fn from(e: PmcError) -> Self {
        PipelineError::Replan(e)
    }
}

/// One probe-stage work item: a server's batch for one window.
struct BatchJob {
    window: u64,
    /// The window's master seed; the batch derives its own stream from
    /// it ([`batch_seed`](crate::batch_seed)), exactly as sequential `step` does.
    window_seed: u64,
    batch: Arc<PingerBatch>,
}

/// Work shipped to the shared worker pool. The probe stage mostly runs
/// [`PingerBatch`]es, but when diagnosis fans out into per-component PLL
/// jobs (`DiagConfig::parallel_components > 1`), those ride the same
/// channel — the workers are the pipeline's only compute pool, so a
/// multi-failure window's components overlap with younger windows'
/// probing instead of queueing behind a dedicated thread.
enum WorkerJob {
    Probe(BatchJob),
    // No window/index tag: the collector drains one fan-out completely
    // before taking the next meta, and the verdict merge is
    // order-insensitive, so a bare verdict is unambiguous.
    Diag(ComponentJob),
}

/// One probe-stage completion. `report` is `None` when the batch
/// panicked (e.g. a `DataPlane::probe` implementation blew up): the
/// diagnosis stage turns that into a [`PipelineError::Stage`] instead of
/// waiting forever for a report that will never come.
struct BatchDone {
    window: u64,
    pinger: NodeId,
    report: Option<PingerReport>,
}

/// One worker completion; `Diag`'s payload is `None` on a panicked
/// component job, mirroring [`BatchDone::report`].
enum WorkerDone {
    Batch(BatchDone),
    Diag(Option<ComponentVerdict>),
}

/// Everything the diagnosis stage needs to finish one window, sent by
/// the dispatcher in window order.
struct WindowMeta {
    window: u64,
    start_s: u64,
    end_s: u64,
    /// Events to emit before `WindowStarted` (scripted `PlanUpdated`s).
    pre_events: Vec<RuntimeEvent>,
    /// `CycleRefreshed` payload, when this window sits on a boundary.
    cycle: Option<(u64, usize)>,
    /// New probe matrix for the diagnoser when the deployment changed.
    new_matrix: Option<ProbeMatrix>,
    /// Every pinger of the window's deployment in pinglist order, with
    /// its health at dispatch time (unhealthy ⇒ no report expected).
    roster: Vec<(NodeId, bool)>,
    /// Watchdog snapshot as of this window's dispatch, used to filter
    /// reports at diagnosis time exactly like sequential `step` does.
    watchdog: Watchdog,
    /// True for the trailing record sent when a scripted re-plan fails
    /// mid-window: only `pre_events` (the `PlanUpdated`s of the actions
    /// that *did* apply, matching what sequential `apply` would have
    /// emitted before erroring) and `new_matrix` are consumed; the
    /// window itself never runs.
    flush_only: bool,
}

impl Detector {
    /// Drives `windows` sequential [`step`](Detector::step)s, applying
    /// the script's due actions before each — the **sequential oracle**
    /// the pipelined runtime is proven equivalent to. Window indices in
    /// `script` are relative to the start of this run.
    pub fn run_scripted(
        &mut self,
        dataplane: &dyn DataPlane,
        windows: u64,
        script: &Script,
        rng: &mut SmallRng,
    ) -> Result<Vec<WindowResult>, PmcError> {
        let mut out = Vec::with_capacity(windows as usize);
        for i in 0..windows {
            for action in script.due(i) {
                match action {
                    ScriptAction::Topology(ev) => {
                        self.apply(ev)?;
                    }
                    ScriptAction::MarkUnhealthy(s) => self.watchdog.mark_unhealthy(*s),
                    ScriptAction::MarkHealthy(s) => self.watchdog.mark_healthy(*s),
                }
            }
            out.push(self.step(dataplane, rng));
        }
        Ok(out)
    }

    /// Runs `windows` windows through the pipelined scheduler: probe
    /// dispatch, report collection and diagnosis overlap across windows
    /// (dispatch / probe-worker / diagnosis stages; the `scheduler`
    /// module source documents the layout), while the
    /// emitted event stream and returned [`WindowResult`]s are identical
    /// to [`run_scripted`](Detector::run_scripted) over the same inputs
    /// — up to the wall-clock `replan_micros` field of `PlanUpdated`.
    ///
    /// The data plane must be `Sync`: probe-stage workers share it. The
    /// simulated `Fabric` qualifies ([`probe`](DataPlane::probe) takes
    /// `&self`).
    ///
    /// The equivalence guarantee assumes probe outcomes are a pure
    /// function of `(route, flow, rng)`: the [`DataPlane`] *window
    /// hooks* fire at pipeline timing (`window_started(N+1)` while
    /// window N may still be probing), so a data plane that mutates its
    /// own probe behavior from those hooks diverges from the sequential
    /// oracle at depth > 1 (see the module docs).
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use detector_simnet::Fabric;
    /// use detector_system::{Detector, PipelineConfig, Script, SystemConfig};
    /// use detector_topology::Fattree;
    /// use rand::SeedableRng;
    ///
    /// let ft = Arc::new(Fattree::new(4).unwrap());
    /// let mut run = Detector::new(ft.clone(), SystemConfig::default()).unwrap();
    /// let fabric = Fabric::quiet(ft.as_ref());
    /// let mut rng = <rand::rngs::SmallRng as SeedableRng>::seed_from_u64(1);
    /// let results = run
    ///     .run_pipelined(&fabric, 3, &Script::new(), &PipelineConfig::default(), &mut rng)
    ///     .unwrap();
    /// assert_eq!(results.len(), 3);
    /// assert!(results.iter().all(|w| w.diagnosis.suspects.is_empty()));
    /// ```
    pub fn run_pipelined(
        &mut self,
        dataplane: &(dyn DataPlane + Sync),
        windows: u64,
        script: &Script,
        pipeline: &PipelineConfig,
        rng: &mut SmallRng,
    ) -> Result<Vec<WindowResult>, PipelineError> {
        if windows == 0 {
            return Ok(Vec::new());
        }
        let workers = pipeline.probe_workers.max(1);
        let depth = pipeline.depth.max(1);

        // Disjoint field borrows: the dispatcher (this thread) owns the
        // planning state, the diagnosis stage owns the diagnoser and the
        // sinks.
        let cfg: &SystemConfig = &self.cfg;
        let graph = self.topo.graph();
        let controller: &mut Controller = &mut self.controller;
        let deployment = &mut self.deployment;
        let diagnoser = &mut self.diagnoser;
        let watchdog = &mut self.watchdog;
        let clock = &mut self.clock;
        let window_counter = &mut self.window;
        let sinks = &mut self.sinks;
        let bound = &mut self.bound;

        let (job_tx, job_rx) = channel::unbounded::<WorkerJob>();
        let (done_tx, done_rx) = channel::unbounded::<WorkerDone>();
        // The bounded meta channel is the pipeline-depth regulator: the
        // dispatcher blocks here once `depth` windows are in flight.
        let (meta_tx, meta_rx) = channel::bounded::<WindowMeta>(depth);

        let mut dispatch_err: Option<PmcError> = None;

        let run = crossbeam::thread::scope(|scope| {
            // Probe stage.
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move |_| {
                    while let Ok(job) = job_rx.recv() {
                        // A panicking DataPlane (or component job) must
                        // not strand the diagnosis stage waiting for a
                        // completion that will never come (the other
                        // workers would keep done_rx connected): catch
                        // it and let the collector surface a
                        // PipelineError::Stage instead.
                        let (done, panicked) = match job {
                            WorkerJob::Probe(job) => {
                                let report =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        job.batch.run_window(
                                            dataplane,
                                            cfg,
                                            job.window,
                                            job.window_seed,
                                        )
                                    }))
                                    .ok();
                                let panicked = report.is_none();
                                (
                                    WorkerDone::Batch(BatchDone {
                                        window: job.window,
                                        pinger: job.batch.server(),
                                        report,
                                    }),
                                    panicked,
                                )
                            }
                            WorkerJob::Diag(job) => {
                                let verdict =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        job.run()
                                    }))
                                    .ok();
                                let panicked = verdict.is_none();
                                (WorkerDone::Diag(verdict), panicked)
                            }
                        };
                        if done_tx.send(done).is_err() || panicked {
                            break; // Diagnosis stage gone, or this worker is compromised.
                        }
                    }
                });
            }
            // Keep disconnect tracking on the worker clones only.
            drop(job_rx);
            drop(done_tx);

            // Diagnosis stage. It holds its own sender clone so
            // per-component PLL jobs ride the same worker pool as probe
            // batches: when a window's diagnosis fans out, the
            // components run on whichever workers are idle between
            // probe batches, and the collector blocks only until the
            // verdicts drain back through `done_rx`. The clone drops
            // when the collector returns, so worker shutdown still
            // follows the dispatcher dropping `job_tx`.
            let diag_tx = job_tx.clone();
            let collector = scope.spawn(move |_| -> Result<Vec<WindowResult>, PipelineError> {
                let mut results = Vec::new();
                // Reports that arrived before their window's meta.
                let mut stash: HashMap<u64, HashMap<NodeId, PingerReport>> = HashMap::new();
                let mut emit = |ev: RuntimeEvent| {
                    for s in sinks.iter_mut() {
                        s.on_event(&ev);
                    }
                };
                for meta in meta_rx.iter() {
                    for ev in meta.pre_events {
                        emit(ev);
                    }
                    if let Some(matrix) = meta.new_matrix {
                        diagnoser.set_matrix(matrix);
                    }
                    if meta.flush_only {
                        continue;
                    }
                    emit(RuntimeEvent::WindowStarted {
                        window: meta.window,
                        start_s: meta.start_s,
                    });
                    if let Some((version, num_paths)) = meta.cycle {
                        emit(RuntimeEvent::CycleRefreshed {
                            window: meta.window,
                            version,
                            num_paths,
                        });
                    }

                    let expected = meta.roster.iter().filter(|(_, h)| *h).count();
                    let mut have = stash.remove(&meta.window).unwrap_or_default();
                    while have.len() < expected {
                        match done_rx.recv() {
                            Ok(WorkerDone::Batch(done)) => {
                                let Some(report) = done.report else {
                                    return Err(PipelineError::Stage(
                                        "probe worker panicked while probing",
                                    ));
                                };
                                if done.window == meta.window {
                                    have.insert(done.pinger, report);
                                } else {
                                    // A younger window's report outran
                                    // this window's stragglers.
                                    stash
                                        .entry(done.window)
                                        .or_default()
                                        .insert(done.pinger, report);
                                }
                            }
                            // Unreachable: a fan-out is fully drained
                            // below before the next meta is taken, so no
                            // verdict can still be in flight here.
                            Ok(WorkerDone::Diag(_)) => {}
                            Err(_) => {
                                return Err(PipelineError::Stage(
                                    "probe stage disconnected mid-window",
                                ))
                            }
                        }
                    }

                    let mut probes_sent = 0u64;
                    for (pinger, healthy) in &meta.roster {
                        if !healthy {
                            emit(RuntimeEvent::PingerUnhealthy {
                                window: meta.window,
                                pinger: *pinger,
                            });
                            continue;
                        }
                        let Some(report) = have.remove(pinger) else {
                            return Err(PipelineError::Stage(
                                "probe stage omitted a healthy pinger's report",
                            ));
                        };
                        let sent = report.total_sent();
                        probes_sent += sent;
                        emit(RuntimeEvent::ReportIngested {
                            window: meta.window,
                            pinger: *pinger,
                            probes_sent: sent,
                            num_paths: report.paths.len(),
                        });
                        diagnoser.ingest(report);
                    }

                    let event = match diagnoser.diagnose_prepare(meta.window, &meta.watchdog) {
                        DiagStep::Done(event) => event,
                        DiagStep::Fanout(pending, jobs) => {
                            // Per-component jobs ride the probe-worker
                            // channel; the merge is order-insensitive,
                            // so verdicts are collected in arrival
                            // order. Probe batches that land during the
                            // wait belong to younger windows — stash
                            // them exactly as the report loop does.
                            let total = jobs.len();
                            for job in jobs {
                                if diag_tx.send(WorkerJob::Diag(job)).is_err() {
                                    return Err(PipelineError::Stage(
                                        "probe stage gone before diagnosis fan-out",
                                    ));
                                }
                            }
                            let mut verdicts = Vec::with_capacity(total);
                            while verdicts.len() < total {
                                match done_rx.recv() {
                                    Ok(WorkerDone::Diag(Some(v))) => verdicts.push(v),
                                    Ok(WorkerDone::Diag(None)) => {
                                        return Err(PipelineError::Stage(
                                            "worker panicked in a component job",
                                        ))
                                    }
                                    Ok(WorkerDone::Batch(done)) => {
                                        let Some(report) = done.report else {
                                            return Err(PipelineError::Stage(
                                                "probe worker panicked while probing",
                                            ));
                                        };
                                        stash
                                            .entry(done.window)
                                            .or_default()
                                            .insert(done.pinger, report);
                                    }
                                    Err(_) => {
                                        return Err(PipelineError::Stage(
                                            "probe stage disconnected mid-diagnosis",
                                        ))
                                    }
                                }
                            }
                            diagnoser.diagnose_complete(pending, verdicts)
                        }
                    };
                    diagnoser.prune_before(meta.window.saturating_sub(20));
                    emit(RuntimeEvent::IngestStats {
                        window: meta.window,
                        reports: event.reports,
                        paths_active: event.num_observations as u64,
                        topk_hits: event.topk_hits,
                        shard_contention: event.shard_contention,
                        retract_mismatch: event.retract_mismatch,
                    });
                    emit(RuntimeEvent::DiagStats {
                        window: meta.window,
                        lossy_paths: event.lossy_paths,
                        components: event.components,
                        suspects: event.diagnosis.suspects.len() as u64,
                    });
                    let result = WindowResult {
                        window: meta.window,
                        start_s: meta.start_s,
                        probes_sent,
                        num_observations: event.num_observations,
                        diagnosis: event.diagnosis,
                    };
                    emit(RuntimeEvent::DiagnosisReady(result.clone()));
                    dataplane.window_finished(meta.window, meta.end_s);
                    results.push(result);
                }
                Ok(results)
            });

            // Dispatch stage (this thread).
            for i in 0..windows {
                let window = *window_counter;
                let start_s = clock.now_s();
                let mut pre_events = Vec::new();
                let mut new_matrix: Option<ProbeMatrix> = None;

                for action in script.due(i) {
                    match action {
                        ScriptAction::Topology(ev) => {
                            // Mirrors `Detector::apply`, with the
                            // diagnoser's matrix handoff deferred to the
                            // diagnosis stage via the meta record.
                            // detlint::allow(determinism, reason = "replan_micros stopwatch; measurement only, never branches")
                            let t0 = Instant::now();
                            let ranges_before = controller.probe_plan().map(|p| p.cell_ranges());
                            let update = match controller.apply_event(ev) {
                                Ok(u) => u,
                                Err(e) => {
                                    dispatch_err = Some(e);
                                    break;
                                }
                            };
                            let mut stats = DispatchStats::default();
                            if update.links_changed > 0 {
                                match controller.build_deployment(watchdog.unhealthy_set()) {
                                    Ok(dep) => {
                                        let ranges_after =
                                            controller.probe_plan().map(|p| p.cell_ranges());
                                        let rebases = rebase_pairs(
                                            ranges_before.as_deref(),
                                            ranges_after.as_deref(),
                                        );
                                        let (matrix, s) =
                                            install_dispatched(deployment, bound, dep, &rebases);
                                        new_matrix = Some(matrix);
                                        stats = s;
                                    }
                                    Err(e) => {
                                        dispatch_err = Some(e);
                                        break;
                                    }
                                }
                            }
                            pre_events.push(RuntimeEvent::PlanUpdated {
                                epoch: update.epoch,
                                links_changed: update.links_changed,
                                probes_delta: update.probes_delta,
                                lists_redispatched: stats.lists_redispatched,
                                entries_diffed: stats.entries_diffed,
                                bytes_dispatched: stats.bytes_dispatched,
                                replan_micros: t0.elapsed().as_micros() as u64,
                            });
                        }
                        ScriptAction::MarkUnhealthy(s) => watchdog.mark_unhealthy(*s),
                        ScriptAction::MarkHealthy(s) => watchdog.mark_healthy(*s),
                    }
                }
                if dispatch_err.is_some() {
                    // Actions before the failing one did apply (matching
                    // sequential `apply`, which emits each PlanUpdated
                    // before the next action can fail): flush their
                    // events and the installed matrix to the diagnosis
                    // stage instead of silently dropping them.
                    if !pre_events.is_empty() || new_matrix.is_some() {
                        let _ = meta_tx.send(WindowMeta {
                            window,
                            start_s,
                            end_s: start_s,
                            pre_events,
                            cycle: None,
                            new_matrix,
                            roster: Vec::new(),
                            watchdog: watchdog.clone(),
                            flush_only: true,
                        });
                    }
                    break;
                }

                // Cycle refresh: the same boundary condition as
                // sequential `step`.
                let mut cycle = None;
                if window > 0 && start_s.is_multiple_of(cfg.cycle_s) {
                    if let Ok(dep) = controller.build_deployment(watchdog.unhealthy_set()) {
                        let version = dep.version;
                        let (matrix, _) = install_dispatched(deployment, bound, dep, &[]);
                        new_matrix = Some(matrix);
                        cycle = Some((version, deployment.matrix.num_paths()));
                    }
                }

                dataplane.window_started(window, start_s);
                let window_seed: u64 = rng.gen();

                let mut roster = Vec::with_capacity(deployment.pinglists.len());
                let mut jobs = Vec::new();
                for list in &deployment.pinglists {
                    let healthy = watchdog.is_healthy(list.pinger);
                    roster.push((list.pinger, healthy));
                    if !healthy {
                        continue;
                    }
                    jobs.push(BatchJob {
                        window,
                        window_seed,
                        batch: bound_batch(bound, list, graph),
                    });
                }

                let meta = WindowMeta {
                    window,
                    start_s,
                    end_s: start_s + cfg.window_s,
                    pre_events,
                    cycle,
                    new_matrix,
                    roster,
                    watchdog: watchdog.clone(),
                    flush_only: false,
                };
                if meta_tx.send(meta).is_err() {
                    break; // Diagnosis stage is gone; surface its error below.
                }
                for job in jobs {
                    if job_tx.send(WorkerJob::Probe(job)).is_err() {
                        break;
                    }
                }
                clock.advance_s(cfg.window_s);
                *window_counter += 1;
            }

            // End of input: disconnect the stages and drain.
            drop(meta_tx);
            drop(job_tx);
            match collector.join() {
                Ok(r) => r,
                Err(_) => Err(PipelineError::Stage("diagnosis stage panicked")),
            }
        })
        .map_err(|_| PipelineError::Stage("probe worker panicked"))?;

        match dispatch_err {
            Some(e) => Err(PipelineError::Replan(e)),
            None => run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CollectingSink;
    use detector_simnet::{Fabric, LossDiscipline};
    use detector_topology::Fattree;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn detector(ft: &Arc<Fattree>, sink: Option<CollectingSink>) -> Detector {
        let mut b = Detector::builder(ft.clone());
        if let Some(s) = sink {
            b = b.sink(Box::new(s));
        }
        b.build().unwrap()
    }

    /// Normalizes a stream for cross-execution comparison.
    fn normalize(events: Vec<RuntimeEvent>) -> Vec<RuntimeEvent> {
        events.iter().map(RuntimeEvent::normalized).collect()
    }

    #[test]
    fn pipelined_matches_sequential_on_a_lossy_fabric() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut fabric = Fabric::new(ft.as_ref(), 11);
        fabric.set_discipline_both(
            ft.ac_link(1, 0, 0),
            LossDiscipline::RandomPartial { rate: 0.4 },
        );
        let script = Script::new()
            .topology(
                1,
                TopologyEvent::LinkDown {
                    link: ft.ea_link(0, 0, 0),
                },
            )
            .mark_unhealthy(2, ft.server(2, 0, 0))
            .topology(
                3,
                TopologyEvent::LinkUp {
                    link: ft.ea_link(0, 0, 0),
                },
            )
            .mark_healthy(4, ft.server(2, 0, 0));

        let seq_sink = CollectingSink::new();
        let mut seq = detector(&ft, Some(seq_sink.clone()));
        let mut rng = SmallRng::seed_from_u64(99);
        let seq_results = seq.run_scripted(&fabric, 5, &script, &mut rng).unwrap();

        let pipe_sink = CollectingSink::new();
        let mut pipe = detector(&ft, Some(pipe_sink.clone()));
        let mut rng = SmallRng::seed_from_u64(99);
        let pipe_results = pipe
            .run_pipelined(&fabric, 5, &script, &PipelineConfig::default(), &mut rng)
            .unwrap();

        assert_eq!(seq_results, pipe_results);
        assert_eq!(normalize(seq_sink.events()), normalize(pipe_sink.events()));
        // Both runs leave the detector in the same externally visible
        // state.
        assert_eq!(seq.now_s(), pipe.now_s());
        assert_eq!(seq.epoch(), pipe.epoch());
        assert_eq!(seq.matrix().paths, pipe.matrix().paths);
    }

    #[test]
    fn depth_one_pipeline_still_matches() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let fabric = Fabric::new(ft.as_ref(), 3);
        let mut seq = detector(&ft, None);
        let mut rng = SmallRng::seed_from_u64(5);
        let a = seq
            .run_scripted(&fabric, 3, &Script::new(), &mut rng)
            .unwrap();

        let mut pipe = detector(&ft, None);
        let mut rng = SmallRng::seed_from_u64(5);
        let cfgp = PipelineConfig {
            probe_workers: 1,
            depth: 1,
        };
        let b = pipe
            .run_pipelined(&fabric, 3, &Script::new(), &cfgp, &mut rng)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_run_is_a_noop() {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let fabric = Fabric::quiet(ft.as_ref());
        let mut run = detector(&ft, None);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = run
            .run_pipelined(
                &fabric,
                0,
                &Script::new(),
                &PipelineConfig::default(),
                &mut rng,
            )
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(run.now_s(), 0);
    }

    #[test]
    fn panicking_data_plane_errors_instead_of_hanging() {
        // A DataPlane::probe that blows up must surface as a
        // PipelineError::Stage; before the catch_unwind in the probe
        // worker this deadlocked the diagnosis stage (the surviving
        // workers kept the done channel connected while the panicked
        // batch's report never arrived).
        struct PanickingPlane;
        impl crate::DataPlane for PanickingPlane {
            fn probe(
                &self,
                _route: &detector_topology::Route,
                _flow: detector_simnet::FlowKey,
                _rng: &mut SmallRng,
            ) -> crate::ProbeOutcome {
                panic!("probe backend blew up");
            }
        }

        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut run = detector(&ft, None);
        let mut rng = SmallRng::seed_from_u64(2);
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // Silence expected worker panics.
        let res = run.run_pipelined(
            &PanickingPlane,
            3,
            &Script::new(),
            &PipelineConfig {
                probe_workers: 3,
                depth: 2,
            },
            &mut rng,
        );
        std::panic::set_hook(prev_hook);
        match res {
            Err(PipelineError::Stage(_)) => {}
            other => panic!("expected a stage error, got {other:?}"),
        }
    }

    #[test]
    fn script_orders_actions_within_a_window() {
        let link = detector_core::types::LinkId(4);
        let s = Script::new()
            .topology(2, TopologyEvent::LinkUp { link })
            .topology(0, TopologyEvent::LinkDown { link })
            .mark_unhealthy(2, NodeId(9));
        assert_eq!(s.len(), 3);
        let due: Vec<_> = s.due(2).collect();
        assert_eq!(
            due,
            vec![
                &ScriptAction::Topology(TopologyEvent::LinkUp { link }),
                &ScriptAction::MarkUnhealthy(NodeId(9)),
            ]
        );
        assert_eq!(s.due(1).count(), 0);
    }
}
