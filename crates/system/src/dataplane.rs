//! The data-plane seam: how probes reach the network.
//!
//! The runtime (§3.2) does not care *how* a source-routed probe is
//! transmitted — only whether its echo came back and how long it took.
//! [`DataPlane`] captures exactly that contract, so the same
//! controller/pinger/diagnoser pipeline runs against the deterministic
//! `detector-simnet` fabric today and a raw-socket backend (or a replay
//! of captured reports) tomorrow, without the runtime depending on a
//! concrete simulator.
//!
//! Deliberately, a [`ProbeOutcome`] carries **no** drop location: a real
//! network never tells the pinger where a packet died — that is the
//! diagnoser's job to infer. Keeping ground truth out of the interface
//! means nothing in the runtime can accidentally cheat.

pub mod udp;

use detector_simnet::{Fabric, FlowKey};
use detector_topology::Route;
use rand::rngs::SmallRng;

/// What the pinger observes for one request/response probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeOutcome {
    /// Did the echo arrive?
    pub delivered: bool,
    /// Round-trip time in microseconds (meaningless unless `delivered`).
    pub rtt_us: f64,
}

/// Wire-level identity of one probe, as the pinger knows it: which
/// window it belongs to, which probe-matrix path it exercises and where
/// it decapsulates. The simulated fabric ignores it (the parsed route is
/// the whole story there); socket-backed planes need it to build the
/// on-wire packet ([`encode_probe`](detector_simnet::encode_probe)) and
/// to key deterministic loss injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeTag {
    /// The reporting window the probe is sent in.
    pub window: u64,
    /// Wire path id (`PathId.0`); [`ProbeTag::IN_RACK`] for in-rack
    /// entries that exercise no matrix path.
    pub path_id: u32,
    /// Decapsulation waypoint node (`NodeId.0`); 0 = no encapsulation.
    pub waypoint: u32,
}

impl ProbeTag {
    /// Sentinel `path_id` for probes outside the probe matrix (in-rack
    /// reachability checks). Real path ids are dense from 0 and never
    /// reach it.
    pub const IN_RACK: u32 = u32::MAX;

    /// A tag for an untagged probe (direct [`DataPlane::probe`] calls):
    /// window 0, no path, no waypoint.
    pub const UNTAGGED: ProbeTag = ProbeTag {
        window: 0,
        path_id: ProbeTag::IN_RACK,
        waypoint: 0,
    };
}

/// Abstract probe transmission: the boundary between the deTector
/// runtime and the network (simulated or real).
pub trait DataPlane {
    /// Sends one source-routed probe along `route` and waits for the
    /// echo over the reversed route (§3.2's request/response exchange).
    fn probe(&self, route: &Route, flow: FlowKey, rng: &mut SmallRng) -> ProbeOutcome;

    /// [`probe`](DataPlane::probe) with the probe's wire identity
    /// attached. The pinger always calls this form; the default ignores
    /// the tag, so route/flow-driven planes (the simulated `Fabric`,
    /// test mocks) implement only `probe`. Socket-backed planes override
    /// it to encode the tag into the on-wire packet.
    fn probe_tagged(
        &self,
        _tag: ProbeTag,
        route: &Route,
        flow: FlowKey,
        rng: &mut SmallRng,
    ) -> ProbeOutcome {
        self.probe(route, flow, rng)
    }

    /// Hook invoked when the runtime opens a reporting window. Real
    /// backends use this to rotate capture buffers; the simulator
    /// ignores it.
    fn window_started(&self, _window: u64, _start_s: u64) {}

    /// Hook invoked after the runtime closes a reporting window.
    fn window_finished(&self, _window: u64, _end_s: u64) {}
}

/// The simulated fabric is the first (and reference) data plane.
impl DataPlane for Fabric<'_> {
    fn probe(&self, route: &Route, flow: FlowKey, rng: &mut SmallRng) -> ProbeOutcome {
        let rt = self.round_trip(route, flow, rng);
        ProbeOutcome {
            delivered: rt.success,
            rtt_us: rt.rtt_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_simnet::LossDiscipline;
    use detector_topology::{DcnTopology, Fattree};
    use rand::SeedableRng;

    #[test]
    fn fabric_probe_reports_delivery_without_ground_truth() {
        let ft = Fattree::new(4).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ea_link(0, 0, 0);
        fabric.set_discipline_both(bad, LossDiscipline::Full);
        let route = ft.ecmp_route(ft.server(0, 0, 0), ft.server(1, 0, 0), 0);
        assert!(route.links.contains(&bad));
        let mut rng = SmallRng::seed_from_u64(1);

        let dp: &dyn DataPlane = &fabric;
        let out = dp.probe(&route, FlowKey::udp(0, 4, 33_000, 53_533), &mut rng);
        assert!(!out.delivered);

        let clean = ft.ecmp_route(ft.server(2, 0, 0), ft.server(3, 0, 0), 0);
        let out = dp.probe(&clean, FlowKey::udp(8, 12, 33_000, 53_533), &mut rng);
        assert!(out.delivered);
        assert!(out.rtt_us > 0.0);
    }
}
