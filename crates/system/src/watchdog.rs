//! The watchdog service: server health tracking (§5.1, §6.1).
//!
//! Severe losses caused by sick pingers/responders (a server down or
//! rebooting mid-window) would flood the diagnoser with false alarms; the
//! watchdog flags such servers so the controller stops using them as
//! pingers and the diagnoser excludes their reports.

use std::collections::{HashMap, HashSet};

use detector_core::types::NodeId;

use crate::report::PingerReport;

/// Tracks server health from external signals and report anomalies.
#[derive(Clone, Debug, Default)]
pub struct Watchdog {
    unhealthy: HashSet<NodeId>,
    /// Consecutive all-lost windows per pinger.
    strikes: HashMap<NodeId, u32>,
    /// Windows of total loss before a pinger is declared sick.
    pub strike_limit: u32,
}

impl Watchdog {
    /// A watchdog with the default 2-window strike limit.
    pub fn new() -> Self {
        Self {
            strike_limit: 2,
            ..Default::default()
        }
    }

    /// Externally marks a server unhealthy (management-plane signal).
    pub fn mark_unhealthy(&mut self, server: NodeId) {
        self.unhealthy.insert(server);
    }

    /// Externally clears a server.
    pub fn mark_healthy(&mut self, server: NodeId) {
        self.unhealthy.remove(&server);
        self.strikes.remove(&server);
    }

    /// Is the server currently considered healthy?
    pub fn is_healthy(&self, server: NodeId) -> bool {
        !self.unhealthy.contains(&server)
    }

    /// The current unhealthy set (for the controller).
    pub fn unhealthy_set(&self) -> &HashSet<NodeId> {
        &self.unhealthy
    }

    /// Feeds one pinger report: a pinger whose probes *all* fail for
    /// `strike_limit` consecutive windows is flagged — losing every probe
    /// on every path points at the server, not the network.
    pub fn observe(&mut self, report: &PingerReport) {
        if report.all_lost() {
            let s = self.strikes.entry(report.pinger).or_insert(0);
            *s += 1;
            if *s >= self.strike_limit {
                self.unhealthy.insert(report.pinger);
            }
        } else {
            self.strikes.remove(&report.pinger);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PathCounters;
    use detector_core::types::PathId;

    fn report(pinger: u32, lost_all: bool) -> PingerReport {
        let mut r = PingerReport {
            pinger: NodeId(pinger),
            window: 0,
            ..Default::default()
        };
        r.paths.insert(
            PathId(0),
            PathCounters {
                sent: 10,
                lost: if lost_all { 10 } else { 1 },
                ..Default::default()
            },
        );
        r
    }

    #[test]
    fn two_all_lost_windows_flag_the_pinger() {
        let mut w = Watchdog::new();
        w.observe(&report(1, true));
        assert!(w.is_healthy(NodeId(1)));
        w.observe(&report(1, true));
        assert!(!w.is_healthy(NodeId(1)));
    }

    #[test]
    fn a_good_window_resets_strikes() {
        let mut w = Watchdog::new();
        w.observe(&report(1, true));
        w.observe(&report(1, false));
        w.observe(&report(1, true));
        assert!(w.is_healthy(NodeId(1)));
    }

    #[test]
    fn external_marks_override() {
        let mut w = Watchdog::new();
        w.mark_unhealthy(NodeId(5));
        assert!(!w.is_healthy(NodeId(5)));
        w.mark_healthy(NodeId(5));
        assert!(w.is_healthy(NodeId(5)));
    }
}
