//! The deTector runtime handle: an owned, event-driven monitoring loop
//! (§3.2's controller → pingers → diagnoser cycle).
//!
//! [`Detector`] owns its topology (`Arc<dyn DcnTopology>`), validates its
//! configuration at build time, and executes windows as an event stream:
//! every [`step`](Detector::step) emits typed [`RuntimeEvent`]s to the
//! registered [`EventSink`]s and returns the window's [`WindowResult`].
//! The network is reached only through the [`DataPlane`] seam, so the
//! same runtime drives the simulated fabric, a mock, or (eventually) a
//! real-packet backend.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use detector_core::pll::LossClassification;
use detector_core::pmc::{PmcError, ProbeMatrix};
use detector_core::types::{LinkId, NodeId};
use detector_topology::{Dcn, DcnTopology, TopologyEvent, TopologyView};
use rand::rngs::SmallRng;
use rand::Rng;

use detector_core::types::PathIdRange;

use crate::clock::SimClock;
use crate::controller::{Controller, Deployment, PlanUpdate};
use crate::dataplane::DataPlane;
use crate::diagnoser::Diagnoser;
use crate::dispatch::{rebase_and_diff, rebase_pairs, DispatchStats};
use crate::events::{EventSink, RuntimeEvent, WindowResult};
use crate::pinger::PingerBatch;
use crate::pinglist::Pinglist;
use crate::watchdog::Watchdog;
use crate::{ConfigError, SharedTopology, SystemConfig};

/// Why a [`Detector`] could not be built.
#[derive(Debug)]
pub enum BuildError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// Probe-matrix construction failed.
    Pmc(PmcError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Config(e) => write!(f, "invalid configuration: {e}"),
            BuildError::Pmc(e) => write!(f, "probe-matrix construction failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

impl From<PmcError> for BuildError {
    fn from(e: PmcError) -> Self {
        BuildError::Pmc(e)
    }
}

/// Builder for [`Detector`]: topology in, validated runtime out.
pub struct DetectorBuilder {
    topo: SharedTopology,
    cfg: SystemConfig,
    sinks: Vec<Box<dyn EventSink>>,
    offline: Vec<LinkId>,
}

impl DetectorBuilder {
    /// Replaces the configuration (defaults are §6.1's).
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Registers an event sink; sinks observe every [`RuntimeEvent`] in
    /// emission order. May be called repeatedly.
    pub fn sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Seeds the topology view with links that are already known to be
    /// down at boot (e.g. from an inventory system): the first probe
    /// plan is born with them excluded, and the view starts at epoch 1.
    pub fn offline_links(mut self, links: impl IntoIterator<Item = LinkId>) -> Self {
        self.offline.extend(links);
        self
    }

    /// Validates the configuration, computes the first probe matrix and
    /// pinglists, and returns the runtime handle.
    pub fn build(self) -> Result<Detector, BuildError> {
        self.cfg.validate()?;
        let mut controller = Controller::new(self.topo.clone(), self.cfg.clone());
        if !self.offline.is_empty() {
            // One batch: the view absorbs every seeded LinkDown before
            // the first (lazy) plan build, so the plan is born degraded
            // rather than built pristine and immediately patched.
            controller.apply_events(
                self.offline
                    .iter()
                    .map(|&link| TopologyEvent::LinkDown { link }),
            )?;
        }
        let watchdog = Watchdog::new();
        let deployment = controller.build_deployment(watchdog.unhealthy_set())?;
        let diagnoser =
            Diagnoser::new(deployment.matrix.clone(), self.cfg.pll).with_diag(self.cfg.diag);
        Ok(Detector {
            topo: self.topo,
            cfg: self.cfg,
            controller,
            deployment,
            diagnoser,
            watchdog,
            clock: SimClock::new(),
            window: 0,
            sinks: self.sinks,
            bound: HashMap::new(),
        })
    }
}

/// A running deTector deployment.
///
/// Owns the monitored topology; drive it window by window with
/// [`step`](Self::step) against any [`DataPlane`].
pub struct Detector {
    pub(crate) topo: SharedTopology,
    pub(crate) cfg: SystemConfig,
    pub(crate) controller: Controller,
    pub(crate) deployment: Deployment,
    pub(crate) diagnoser: Diagnoser,
    /// The watchdog, exposed for scenario scripting (e.g. killing a
    /// pinger server mid-run).
    pub watchdog: Watchdog,
    pub(crate) clock: SimClock,
    pub(crate) window: u64,
    pub(crate) sinks: Vec<Box<dyn EventSink>>,
    /// Bound pinger batches cached across windows, keyed by server;
    /// re-bound only when the dispatched pinglist's version changes
    /// (incremental re-plans keep untouched lists at their old version,
    /// see [`Deployment::rebase_versions`]). Batches are `Arc`-shared so
    /// the pipelined scheduler can ship them to probe workers without
    /// re-binding.
    pub(crate) bound: HashMap<NodeId, Arc<PingerBatch>>,
}

impl Detector {
    /// Starts building a detector for `topo`.
    pub fn builder(topo: SharedTopology) -> DetectorBuilder {
        DetectorBuilder {
            topo,
            cfg: SystemConfig::default(),
            sinks: Vec::new(),
            offline: Vec::new(),
        }
    }

    /// Builds a detector with no sinks — shorthand for
    /// `Detector::builder(topo).config(cfg).build()`.
    pub fn new(topo: SharedTopology, cfg: SystemConfig) -> Result<Self, BuildError> {
        Self::builder(topo).config(cfg).build()
    }

    /// Registers an additional event sink on a built detector.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// The probe matrix currently deployed.
    pub fn matrix(&self) -> &ProbeMatrix {
        &self.deployment.matrix
    }

    /// The monitored topology.
    pub fn topology(&self) -> &dyn DcnTopology {
        self.topo.as_ref()
    }

    /// A shared handle to the monitored topology.
    pub fn topology_arc(&self) -> SharedTopology {
        Arc::clone(&self.topo)
    }

    /// The live topology view (epoch, offline links, drained switches).
    pub fn view(&self) -> &TopologyView {
        self.controller.view()
    }

    /// The partitioned probe plan behind the current deployment: exposes
    /// the per-cell `PathId` ranges and the cells a delta would touch,
    /// so dispatch stability can be asserted from the outside.
    pub fn probe_plan(&self) -> Option<&crate::ProbePlan> {
        self.controller.probe_plan()
    }

    /// The topology view's current epoch.
    pub fn epoch(&self) -> u64 {
        self.controller.epoch()
    }

    /// The pinglists of the current deployment.
    pub fn pinglists(&self) -> &[Pinglist] {
        &self.deployment.pinglists
    }

    /// Applies a topology event between windows: the view absorbs it, the
    /// probe plan is incrementally patched (only the PMC subproblems the
    /// delta touches are re-solved), pinglists are re-dispatched — lists
    /// whose assignment is unchanged keep their version, so their pingers
    /// are not re-bound. Path ids are *segmented*: every plan cell owns a
    /// stable `PathId` range with headroom, so a delta that changes one
    /// cell's path count leaves every other cell's ids — and therefore
    /// the pinglists that carry only those cells' paths — bit-identical.
    /// A [`RuntimeEvent::PlanUpdated`] (carrying the re-dispatch count)
    /// is emitted to every sink.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use detector_system::{Detector, SystemConfig};
    /// use detector_topology::{Fattree, TopologyEvent};
    ///
    /// let ft = Arc::new(Fattree::new(4).unwrap());
    /// let mut run = Detector::new(ft.clone(), SystemConfig::default()).unwrap();
    /// let update = run
    ///     .apply(&TopologyEvent::LinkDown { link: ft.ea_link(0, 0, 0) })
    ///     .unwrap();
    /// assert_eq!(update.epoch, 1);
    /// assert_eq!(update.links_changed, 1);
    /// // No deployed path crosses the dead link any more.
    /// assert!(run.matrix().uncoverable.contains(&ft.ea_link(0, 0, 0)));
    /// ```
    pub fn apply(&mut self, event: &TopologyEvent) -> Result<PlanUpdate, PmcError> {
        // detlint::allow(determinism, reason = "replan_micros stopwatch; measurement only, never branches")
        let t0 = Instant::now();
        let ranges_before = self.controller.probe_plan().map(|p| p.cell_ranges());
        let mut update = self.controller.apply_event(event)?;
        if update.links_changed > 0 {
            let dep = self
                .controller
                .build_deployment(self.watchdog.unhealthy_set())?;
            // Cells whose id range moved (overflow re-base): the wire
            // diff broadcasts them so agents can retire the old ids.
            let ranges_after = self.controller.probe_plan().map(|p| p.cell_ranges());
            let rebases = rebase_pairs(ranges_before.as_deref(), ranges_after.as_deref());
            let stats = self.install_deployment(dep, &rebases);
            update.lists_redispatched = stats.lists_redispatched;
            update.entries_diffed = stats.entries_diffed;
            update.bytes_dispatched = stats.bytes_dispatched;
        }
        // Report the full replan latency: view update + plan patch +
        // matrix assembly + pinglist re-dispatch.
        update.replan_micros = t0.elapsed().as_micros() as u64;
        let ev = RuntimeEvent::PlanUpdated {
            epoch: update.epoch,
            links_changed: update.links_changed,
            probes_delta: update.probes_delta,
            lists_redispatched: update.lists_redispatched,
            entries_diffed: update.entries_diffed,
            bytes_dispatched: update.bytes_dispatched,
            replan_micros: update.replan_micros,
        };
        for s in self.sinks.iter_mut() {
            s.on_event(&ev);
        }
        Ok(update)
    }

    /// Installs a fresh deployment: rebases versions so unchanged lists
    /// keep their cached pinger bindings, points the diagnoser at the new
    /// matrix, and prunes bindings of servers no longer on pinger duty.
    /// Shared by [`Detector::apply`] and the cycle refresh in
    /// [`Detector::step`]. Returns the dispatch cost.
    fn install_deployment(
        &mut self,
        dep: Deployment,
        rebases: &[(PathIdRange, PathIdRange)],
    ) -> DispatchStats {
        let (matrix, stats) =
            install_dispatched(&mut self.deployment, &mut self.bound, dep, rebases);
        self.diagnoser.set_matrix(matrix);
        stats
    }

    /// Scheduled detection probes per window (before loss confirmations):
    /// pingers × rate × window.
    pub fn scheduled_probes_per_window(&self) -> u64 {
        self.deployment.pinglists.len() as u64
            * (self.cfg.probe_rate_pps * self.cfg.window_s as f64) as u64
    }

    /// Current simulated time, seconds.
    pub fn now_s(&self) -> u64 {
        self.clock.now_s()
    }

    /// Classifies the loss pattern behind a suspect link from a past
    /// window's per-flow counters (§7 — narrows the operator's diagnosis
    /// scope: link down vs blackhole vs random corruption vs congestion).
    pub fn classify_suspect(&self, window: u64, link: LinkId) -> Option<LossClassification> {
        self.diagnoser
            .classify_suspect(window, link, &self.watchdog)
    }

    /// Runs one window against `dataplane`: every healthy pinger probes
    /// its list, reports are ingested, and the diagnoser runs PLL.
    ///
    /// Event order per window: `WindowStarted`, then an optional
    /// `CycleRefreshed` (exactly on cycle boundaries), then one
    /// `PingerUnhealthy` or `ReportIngested` per pinger, and finally
    /// `DiagnosisReady` carrying the returned [`WindowResult`].
    ///
    /// Exactly one `u64` is drawn from `rng` per window (the window's
    /// master seed); each server's probe stream is a [`PingerBatch`] RNG
    /// derived from it via [`batch_seed`](crate::batch_seed). A window's
    /// outcome therefore does not depend on the order servers probe in —
    /// which is what lets [`run_pipelined`](Detector::run_pipelined)
    /// produce identical results while probing concurrently.
    pub fn step(&mut self, dataplane: &dyn DataPlane, rng: &mut SmallRng) -> WindowResult {
        let window = self.window;
        let start_s = self.clock.now_s();
        let emit = |ev: RuntimeEvent, sinks: &mut Vec<Box<dyn EventSink>>| {
            for s in sinks.iter_mut() {
                s.on_event(&ev);
            }
        };

        emit(
            RuntimeEvent::WindowStarted { window, start_s },
            &mut self.sinks,
        );
        dataplane.window_started(window, start_s);

        // Controller cycle boundary: recompute pinglists (topology or
        // health may have changed). The matrix itself is recomputed too,
        // matching §6.1's 10-minute refresh. cycle_s == 0 is rejected at
        // build time (ConfigError::ZeroCycle), so the boundary check is
        // well defined here.
        if window > 0 && start_s.is_multiple_of(self.cfg.cycle_s) {
            if let Ok(dep) = self
                .controller
                .build_deployment(self.watchdog.unhealthy_set())
            {
                let (version, num_paths) = (dep.version, dep.matrix.num_paths());
                self.install_deployment(dep, &[]);
                emit(
                    RuntimeEvent::CycleRefreshed {
                        window,
                        version,
                        num_paths,
                    },
                    &mut self.sinks,
                );
            }
        }

        let window_seed: u64 = rng.gen();
        let mut probes_sent = 0u64;
        let graph = self.topo.graph();
        for list in &self.deployment.pinglists {
            if !self.watchdog.is_healthy(list.pinger) {
                emit(
                    RuntimeEvent::PingerUnhealthy {
                        window,
                        pinger: list.pinger,
                    },
                    &mut self.sinks,
                );
                continue;
            }
            // Re-bind only when the dispatched list changed: an
            // incremental re-plan leaves untouched lists at their old
            // version.
            let batch = bound_batch(&mut self.bound, list, graph);
            let report = batch.run_window(dataplane, &self.cfg, window, window_seed);
            let sent = report.total_sent();
            probes_sent += sent;
            emit(
                RuntimeEvent::ReportIngested {
                    window,
                    pinger: list.pinger,
                    probes_sent: sent,
                    num_paths: report.paths.len(),
                },
                &mut self.sinks,
            );
            // Server health comes from the management plane (heartbeats),
            // not from dataplane loss: an all-lost report usually means the
            // pinger's rack uplink or ToR failed — precisely what the
            // diagnoser must see, not a reason to silence the pinger.
            // External health marks (watchdog.mark_unhealthy) still exclude
            // reports and pinger duty.
            self.diagnoser.ingest(report);
        }

        let event = self.diagnoser.diagnose(window, &self.watchdog);
        self.clock.advance_s(self.cfg.window_s);
        self.window += 1;
        // Keep a few windows of history, as the paper's database would.
        self.diagnoser.prune_before(window.saturating_sub(20));

        emit(
            RuntimeEvent::IngestStats {
                window,
                reports: event.reports,
                paths_active: event.num_observations as u64,
                topk_hits: event.topk_hits,
                shard_contention: event.shard_contention,
                retract_mismatch: event.retract_mismatch,
            },
            &mut self.sinks,
        );
        emit(
            RuntimeEvent::DiagStats {
                window,
                lossy_paths: event.lossy_paths,
                components: event.components,
                suspects: event.diagnosis.suspects.len() as u64,
            },
            &mut self.sinks,
        );
        let result = WindowResult {
            window,
            start_s,
            probes_sent,
            num_observations: event.num_observations,
            diagnosis: event.diagnosis,
        };
        emit(
            RuntimeEvent::DiagnosisReady(result.clone()),
            &mut self.sinks,
        );
        dataplane.window_finished(window, self.clock.now_s());
        result
    }
}

/// The shared deployment-installation protocol, minus the diagnoser
/// handoff (in the pipelined scheduler the diagnosis stage owns the
/// diagnoser, so the dispatcher calls this and ships the returned matrix
/// in the window's meta record): rebase pinglist versions so cached
/// batches stay valid, compute the wire diff and its cost, install, and
/// prune batches of servers no longer on pinger duty. Any change to the
/// install protocol must go through here (or through
/// [`rebase_and_diff`], which the distributed controller in
/// `detector-agent` shares) — sequential/pipelined/distributed
/// equivalence depends on every driver running the identical procedure.
pub(crate) fn install_dispatched(
    deployment: &mut Deployment,
    bound: &mut HashMap<NodeId, Arc<PingerBatch>>,
    mut dep: Deployment,
    rebases: &[(PathIdRange, PathIdRange)],
) -> (ProbeMatrix, DispatchStats) {
    let (_, stats) = rebase_and_diff(deployment, &mut dep, rebases);
    *deployment = dep;
    let active: HashSet<NodeId> = deployment.pinglists.iter().map(|l| l.pinger).collect();
    bound.retain(|k, _| active.contains(k));
    (deployment.matrix.clone(), stats)
}

/// The batch serving `list`, re-binding first iff the dispatched list
/// changed (§3.2's idempotent pinglist refresh). The binding cache is
/// keyed on (version, content stamp) so a refresh can never serve a
/// pre-re-base binding; going through the entry keeps insert-then-get a
/// single infallible operation. Shared by both drivers — see
/// [`install_dispatched`] on why they must stay identical.
pub(crate) fn bound_batch(
    bound: &mut HashMap<NodeId, Arc<PingerBatch>>,
    list: &Pinglist,
    graph: &Dcn,
) -> Arc<PingerBatch> {
    match bound.entry(list.pinger) {
        Entry::Occupied(mut e) => {
            if !e.get().bound_to(list) {
                e.insert(Arc::new(PingerBatch::bind(list.clone(), graph)));
            }
            Arc::clone(e.get())
        }
        Entry::Vacant(e) => Arc::clone(e.insert(Arc::new(PingerBatch::bind(list.clone(), graph)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_core::pll::evaluate_diagnosis;
    use detector_simnet::{Fabric, FailureGenerator, LossDiscipline};
    use detector_topology::Fattree;
    use rand::SeedableRng;

    fn detector(cfg: SystemConfig) -> Detector {
        Detector::new(Arc::new(Fattree::new(4).unwrap()), cfg).unwrap()
    }

    #[test]
    fn clean_fabric_produces_clean_diagnoses() {
        let ft = Fattree::new(4).unwrap();
        let mut run = detector(SystemConfig::default());
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..3 {
            let w = run.step(&fabric, &mut rng);
            assert!(w.diagnosis.suspects.is_empty(), "window {}", w.window);
            assert!(w.probes_sent > 0);
        }
    }

    #[test]
    fn full_link_failure_is_localized_within_one_window() {
        let ft = Fattree::new(4).unwrap();
        let mut run = detector(SystemConfig::default());
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ac_link(2, 1, 0);
        fabric.set_discipline_both(bad, LossDiscipline::Full);
        let mut rng = SmallRng::seed_from_u64(2);
        let w = run.step(&fabric, &mut rng);
        assert!(
            w.diagnosis.suspect_links().contains(&bad),
            "suspects: {:?}",
            w.diagnosis.suspect_links()
        );
    }

    #[test]
    fn random_scenarios_reach_high_accuracy() {
        let ft = Fattree::new(4).unwrap();
        let mut run = detector(SystemConfig::default());
        let mut rng = SmallRng::seed_from_u64(3);
        let gen = FailureGenerator::links_only().with_min_rate(0.05);
        let mut acc_sum = 0.0;
        let n = 10;
        for _ in 0..n {
            let mut fabric = Fabric::quiet(&ft);
            let scenario = gen.sample(&ft, 1, &mut rng);
            fabric.apply_scenario(&scenario);
            let w = run.step(&fabric, &mut rng);
            let m = evaluate_diagnosis(&w.diagnosis.suspect_links(), &scenario.ground_truth(&ft));
            acc_sum += m.accuracy;
        }
        let acc = acc_sum / n as f64;
        assert!(acc >= 0.7, "accuracy {acc}");
    }

    #[test]
    fn clock_advances_per_window() {
        let ft = Fattree::new(4).unwrap();
        let mut run = detector(SystemConfig::default());
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(run.now_s(), 0);
        run.step(&fabric, &mut rng);
        assert_eq!(run.now_s(), 30);
    }

    #[test]
    fn zero_cycle_is_rejected_at_build_time() {
        let topo: SharedTopology = Arc::new(Fattree::new(4).unwrap());
        let cfg = SystemConfig {
            cycle_s: 0,
            ..SystemConfig::default()
        };
        match Detector::new(topo, cfg).err() {
            Some(BuildError::Config(ConfigError::ZeroCycle)) => {}
            other => panic!("expected ConfigError::ZeroCycle, got {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_each_invalid_field() {
        let topo: SharedTopology = Arc::new(Fattree::new(4).unwrap());
        let cases: Vec<(SystemConfig, ConfigError)> = vec![
            (
                SystemConfig {
                    window_s: 0,
                    ..SystemConfig::default()
                },
                ConfigError::ZeroWindow,
            ),
            (
                SystemConfig {
                    probe_rate_pps: 0.0,
                    ..SystemConfig::default()
                },
                ConfigError::NonPositiveProbeRate,
            ),
            (
                SystemConfig {
                    probe_rate_pps: f64::NAN,
                    ..SystemConfig::default()
                },
                ConfigError::NonPositiveProbeRate,
            ),
            (
                SystemConfig {
                    dscp_classes: vec![],
                    ..SystemConfig::default()
                },
                ConfigError::NoDscpClasses,
            ),
            (
                SystemConfig {
                    pingers_per_tor: 0,
                    ..SystemConfig::default()
                },
                ConfigError::ZeroPingersPerTor,
            ),
            (
                SystemConfig {
                    timeout_us: 0.0,
                    ..SystemConfig::default()
                },
                ConfigError::NonPositiveTimeout,
            ),
        ];
        for (cfg, want) in cases {
            match Detector::new(Arc::clone(&topo), cfg).err() {
                Some(BuildError::Config(got)) => assert_eq!(got, want),
                other => panic!("expected {want:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn detector_is_owned_and_outlives_its_construction_scope() {
        // The borrow-bound MonitorRun<'a> forced callers to Box::leak
        // topologies; the owned handle must move freely.
        let run = {
            let topo: SharedTopology = Arc::new(Fattree::new(4).unwrap());
            Detector::new(topo, SystemConfig::default()).unwrap()
        };
        assert!(run.matrix().num_paths() > 0);
        assert_eq!(run.topology().graph().num_switches(), 20);
    }
}
