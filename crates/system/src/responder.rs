//! The responder: a stateless userspace echo service (§3.1).
//!
//! Runs on every server, listens on the probe port, and upon receiving a
//! probe adds a timestamp and sends it back; it retains no state — all
//! bookkeeping lives in the pingers. This module implements the packet
//! transformation faithfully over the `detector-simnet` wire format.

use bytes::Bytes;
use detector_simnet::{decode_probe, encode_probe, PacketError, ProbePacket};

/// The stateless responder.
#[derive(Clone, Copy, Debug, Default)]
pub struct Responder {
    /// The port the responder listens on; well-formed probes to other
    /// ports are stray traffic and are rejected with
    /// [`PacketError::WrongPort`] (socket-backed callers drop them
    /// silently rather than counting codec corruption).
    pub port: u16,
}

impl Responder {
    /// A responder listening on `port`.
    pub fn new(port: u16) -> Self {
        Self { port }
    }

    /// Processes one incoming probe: validates it, swaps the flow
    /// direction, stamps the receive time and returns the echo.
    pub fn echo(&self, wire: Bytes, now_us: u64) -> Result<Bytes, PacketError> {
        let probe = decode_probe(wire)?;
        if probe.flow.dport != self.port {
            // Stray but well-formed traffic: distinct from a codec error
            // so transports can silently drop it without inflating their
            // malformed-packet counters.
            return Err(PacketError::WrongPort);
        }
        let reply = ProbePacket {
            waypoint: 0, // Replies are routed natively, no encapsulation.
            flow: probe.flow.reversed(),
            seq: probe.seq,
            path_id: probe.path_id,
            timestamp_us: now_us,
        };
        Ok(encode_probe(&reply))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_simnet::FlowKey;

    fn probe(dport: u16) -> ProbePacket {
        ProbePacket {
            waypoint: 42,
            flow: FlowKey::udp(5, 9, 33001, dport),
            seq: 3,
            path_id: 17,
            timestamp_us: 1000,
        }
    }

    #[test]
    fn echo_reverses_flow_and_keeps_identity() {
        let r = Responder::new(53533);
        let wire = encode_probe(&probe(53533));
        let reply = r.echo(wire, 2000).unwrap();
        let p = decode_probe(reply).unwrap();
        assert_eq!(p.flow.src, 9);
        assert_eq!(p.flow.dst, 5);
        assert_eq!(p.flow.sport, 53533);
        assert_eq!(p.seq, 3);
        assert_eq!(p.path_id, 17);
        assert_eq!(p.timestamp_us, 2000);
        assert_eq!(p.waypoint, 0);
    }

    #[test]
    fn wrong_port_is_rejected() {
        let r = Responder::new(53533);
        let wire = encode_probe(&probe(99));
        assert_eq!(r.echo(wire, 0), Err(PacketError::WrongPort));
    }

    #[test]
    fn wrong_port_is_distinct_from_codec_corruption() {
        // Regression: a well-formed probe on the wrong port used to
        // surface as `Malformed`, which a socket transport would count
        // as wire-format corruption. Stray traffic must be `WrongPort`
        // (droppable) while a genuinely corrupt probe keeps its codec
        // error.
        let r = Responder::new(53533);
        let stray = r.echo(encode_probe(&probe(99)), 0).unwrap_err();
        assert_eq!(stray, PacketError::WrongPort);

        let mut raw = encode_probe(&probe(53533)).to_vec();
        let payload_off = 20 * 2 + 8; // outer IP + inner IP + UDP header.
        raw[payload_off] ^= 0xff;
        let corrupt = r.echo(Bytes::from(raw), 0).unwrap_err();
        assert_eq!(corrupt, PacketError::BadChecksum);
        assert_ne!(stray, corrupt);
    }

    #[test]
    fn corrupt_probe_is_rejected() {
        let r = Responder::new(53533);
        let garbage = Bytes::from(vec![0u8; 64]);
        assert!(r.echo(garbage, 0).is_err());
    }
}
