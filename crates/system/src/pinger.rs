//! The pinger: sends source-routed probes and aggregates window reports
//! (§3.1, §6.1), plus the batched per-server form the schedulers drive.

use detector_core::types::NodeId;
use detector_simnet::FlowKey;
use detector_topology::{Dcn, Route};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dataplane::{DataPlane, ProbeTag};
use crate::pinglist::Pinglist;
use crate::report::{PathCounters, PingerReport};
use crate::SystemConfig;

/// A pinger bound to its current pinglist.
pub struct Pinger {
    list: Pinglist,
    /// Resolved routes, one per pinglist entry.
    routes: Vec<Route>,
    /// [`Pinglist::stamp`] of the *dispatched* list (before any
    /// unresolvable entries were dropped) — half of the binding-cache
    /// key, see [`Pinger::bound_to`].
    stamp: u64,
}

impl Pinger {
    /// Binds a pinglist, resolving each entry's node route against the
    /// monitored topology's graph. Entries whose route cannot be resolved
    /// (e.g. stale after a topology change) are dropped, as a production
    /// pinger would on a dispatch error.
    pub fn bind(list: Pinglist, graph: &Dcn) -> Self {
        let stamp = list.stamp;
        let mut kept = Pinglist {
            entries: Vec::new(),
            ..list.clone()
        };
        let mut routes = Vec::new();
        for e in list.entries {
            if let Some(r) = graph.route_from_nodes(e.route.clone()) {
                routes.push(r);
                kept.entries.push(e);
            }
        }
        Self {
            list: kept,
            routes,
            stamp,
        }
    }

    /// The pinger server.
    pub fn server(&self) -> NodeId {
        self.list.pinger
    }

    /// The version of the bound pinglist. The runtime re-binds a pinger
    /// only when the dispatched list carries a newer version (an
    /// incremental re-plan leaves untouched lists at their old version).
    pub fn version(&self) -> u64 {
        self.list.version
    }

    /// True when this binding was made for exactly `list` — same version
    /// *and* same sealed content stamp (two `u64` compares; the stamp is
    /// frozen by [`Pinglist::seal`] at dispatch, not re-hashed here).
    /// The runtime keys its binding cache on this pair rather than the
    /// version alone, so a cycle refresh can never serve routes or
    /// `PathId`s from a pre-re-base binding even if a dispatch path
    /// ever re-minted a version number.
    pub fn bound_to(&self, list: &Pinglist) -> bool {
        self.list.version == list.version && self.stamp == list.stamp
    }

    /// Number of bound entries.
    pub fn num_entries(&self) -> usize {
        self.list.entries.len()
    }

    /// Runs one reporting window: loops over entries and source ports at
    /// the configured rate, confirms each loss with
    /// [`SystemConfig::confirm_probes`] same-content re-probes, and
    /// aggregates counters.
    pub fn run_window(
        &self,
        dataplane: &dyn DataPlane,
        cfg: &SystemConfig,
        window: u64,
        rng: &mut SmallRng,
    ) -> PingerReport {
        let mut report = PingerReport {
            pinger: self.list.pinger,
            window,
            ..Default::default()
        };
        if self.list.entries.is_empty() {
            return report;
        }
        let budget = (cfg.probe_rate_pps * cfg.window_s as f64) as u64;
        for i in 0..budget {
            let ei = (i as usize) % self.list.entries.len();
            let sweep = (i as usize) / self.list.entries.len();
            // detlint::allow(panic_path, reason = "ei is i % entries.len() with non-emptiness checked above")
            let entry = &self.list.entries[ei];
            // detlint::allow(panic_path, reason = "routes is built 1:1 with entries in bind(), so ei is in bounds")
            let route = &self.routes[ei];
            let sport = self
                .list
                .base_sport
                .wrapping_add((sweep % self.list.port_range.max(1) as usize) as u16);
            let mut flow = FlowKey::udp(
                self.list.pinger.0,
                entry.responder.0,
                sport,
                self.list.dport,
            );
            // Cycle QoS classes so class-specific failures (e.g. a
            // misconfigured priority queue) are exposed (§6.1).
            if !cfg.dscp_classes.is_empty() {
                // detlint::allow(panic_path, reason = "index is modulo len of a list checked non-empty")
                flow.dscp = cfg.dscp_classes[sweep % cfg.dscp_classes.len()];
            }

            let tag = ProbeTag {
                window,
                path_id: entry.path.map_or(ProbeTag::IN_RACK, |p| p.0),
                waypoint: entry.waypoint.map_or(0, |n| n.0),
            };
            let counters = match entry.path {
                Some(pid) => report.paths.entry(pid).or_default(),
                None => report.in_rack.entry(entry.responder).or_default(),
            };
            let lost = probe_once(dataplane, tag, route, flow, cfg, counters, rng);
            let mut flow_sent = 1u64;
            let mut flow_lost = u64::from(lost);
            if lost {
                // Confirm the loss pattern with same-content re-probes
                // (§3.1): deterministic drops stay lost, random drops may
                // get through — exactly the signal the diagnoser wants.
                for _ in 0..cfg.confirm_probes {
                    flow_sent += 1;
                    flow_lost +=
                        u64::from(probe_once(dataplane, tag, route, flow, cfg, counters, rng));
                }
            }
            // Per-flow counters feed the loss-type classifier (§7).
            if let Some(pid) = entry.path {
                let key = (pid, (flow.sport as u64) | ((flow.dscp as u64) << 16));
                let e = report.flows.entry(key).or_insert((0, 0));
                e.0 += flow_sent;
                e.1 += flow_lost;
            }
        }
        report
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the probe-RNG seed of one server's batch in one window from
/// the window's master seed. The derivation is a pure function of
/// `(window_seed, server)`, so a server's probe outcomes do not depend
/// on when — or on which thread — its batch runs: the property that
/// makes the pipelined scheduler bit-equivalent to sequential
/// [`Detector::step`](crate::Detector::step).
pub fn batch_seed(window_seed: u64, server: NodeId) -> u64 {
    splitmix64(window_seed ^ splitmix64(u64::from(server.0)))
}

/// A server's probing work for a window, batched: the bound pinglist
/// (routes resolved once at bind time, not per probe) plus per-window
/// RNG setup (one stream seeded per server-window via [`batch_seed`],
/// not one draw negotiated per probe dispatch).
///
/// Both runtime paths drive batches — [`Detector::step`] runs them
/// inline in pinglist order, `run_pipelined` ships them to probe-stage
/// workers — so the per-probe behaviour is one shared code path.
///
/// [`Detector::step`]: crate::Detector::step
pub struct PingerBatch {
    inner: Pinger,
}

impl PingerBatch {
    /// Binds a pinglist into a batch, resolving each entry's route once
    /// (see [`Pinger::bind`] for the dispatch-error semantics).
    pub fn bind(list: Pinglist, graph: &Dcn) -> Self {
        Self {
            inner: Pinger::bind(list, graph),
        }
    }

    /// The batch's pinger server.
    pub fn server(&self) -> NodeId {
        self.inner.server()
    }

    /// The version of the bound pinglist (half of the re-binding cache
    /// key; see [`PingerBatch::bound_to`]).
    pub fn version(&self) -> u64 {
        self.inner.version()
    }

    /// True when this binding was made for exactly `list` (version and
    /// content stamp both match) — the binding-cache validity check.
    pub fn bound_to(&self, list: &Pinglist) -> bool {
        self.inner.bound_to(list)
    }

    /// Number of bound entries.
    pub fn num_entries(&self) -> usize {
        self.inner.num_entries()
    }

    /// Runs one reporting window with the batch's own RNG stream derived
    /// from the window's master seed.
    pub fn run_window(
        &self,
        dataplane: &dyn DataPlane,
        cfg: &SystemConfig,
        window: u64,
        window_seed: u64,
    ) -> PingerReport {
        let mut rng = SmallRng::seed_from_u64(batch_seed(window_seed, self.server()));
        self.inner.run_window(dataplane, cfg, window, &mut rng)
    }
}

/// Sends one probe, updates counters, returns true on loss.
fn probe_once(
    dataplane: &dyn DataPlane,
    tag: ProbeTag,
    route: &Route,
    flow: FlowKey,
    cfg: &SystemConfig,
    counters: &mut PathCounters,
    rng: &mut SmallRng,
) -> bool {
    let out = dataplane.probe_tagged(tag, route, flow, rng);
    counters.sent += 1;
    let lost = !out.delivered || out.rtt_us > cfg.timeout_us;
    if lost {
        counters.lost += 1;
    } else {
        counters.rtt_sum_us += out.rtt_us;
        counters.rtt_max_us = counters.rtt_max_us.max(out.rtt_us);
    }
    lost
}

/// Resource-cost model of a pinger process (Fig. 4b).
///
/// We cannot measure a production pinger process from inside a simulator;
/// instead the model is calibrated to the paper's reported operating
/// point — ~0.4 % CPU, ~13 MB RSS and ~100 Kbps at 10–15 probes/s with
/// 850-byte probes — and extrapolates linearly in the probe rate (the
/// pinger's work per probe is constant).
#[derive(Clone, Copy, Debug)]
pub struct PingerCostModel {
    /// CPU percent per probe/s.
    pub cpu_pct_per_pps: f64,
    /// Base memory footprint, MB.
    pub mem_base_mb: f64,
    /// Memory per probe/s (buffers), MB.
    pub mem_mb_per_pps: f64,
    /// Probe wire size, bytes.
    pub probe_bytes: f64,
}

impl Default for PingerCostModel {
    fn default() -> Self {
        Self {
            cpu_pct_per_pps: 0.04,
            mem_base_mb: 12.0,
            mem_mb_per_pps: 0.1,
            probe_bytes: 850.0,
        }
    }
}

impl PingerCostModel {
    /// CPU utilization (percent of one core) at `pps` probes per second.
    pub fn cpu_percent(&self, pps: f64) -> f64 {
        self.cpu_pct_per_pps * pps
    }

    /// Memory footprint (MB) at `pps`.
    pub fn memory_mb(&self, pps: f64) -> f64 {
        self.mem_base_mb + self.mem_mb_per_pps * pps
    }

    /// Transmit bandwidth (Kbps) at `pps`.
    pub fn bandwidth_kbps(&self, pps: f64) -> f64 {
        pps * self.probe_bytes * 8.0 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pinglist::PingEntry;
    use detector_core::types::PathId;
    use detector_simnet::{Fabric, LossDiscipline};
    use detector_topology::{DcnTopology, Fattree};
    use rand::SeedableRng;

    fn setup(ft: &Fattree) -> (Pinglist, Fabric<'_>) {
        let pinger = ft.server(0, 0, 0);
        let responder = ft.server(1, 0, 0);
        let route = vec![
            pinger,
            ft.edge(0, 0),
            ft.agg(0, 0),
            ft.core(0, 0),
            ft.agg(1, 0),
            ft.edge(1, 0),
            responder,
        ];
        let mut list = Pinglist {
            version: 1,
            pinger,
            entries: vec![PingEntry {
                path: Some(PathId(0)),
                route,
                responder,
                waypoint: Some(ft.core(0, 0)),
            }],
            interval_us: 100_000,
            base_sport: 33000,
            port_range: 16,
            dport: 53533,
            stamp: 0,
        };
        list.seal();
        (list, Fabric::quiet(ft))
    }

    #[test]
    fn clean_window_counts_all_sent() {
        let ft = Fattree::new(4).unwrap();
        let (list, fabric) = setup(&ft);
        let pinger = Pinger::bind(list, ft.graph());
        let cfg = SystemConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let rep = pinger.run_window(&fabric, &cfg, 0, &mut rng);
        let c = rep.paths[&PathId(0)];
        assert_eq!(c.sent, 300); // 10 pps × 30 s.
        assert_eq!(c.lost, 0);
        assert!(c.mean_rtt_us() > 0.0);
    }

    #[test]
    fn full_loss_triggers_confirmation_probes() {
        let ft = Fattree::new(4).unwrap();
        let (list, mut fabric) = setup(&ft);
        fabric.set_discipline_both(ft.ea_link(0, 0, 0), LossDiscipline::Full);
        let pinger = Pinger::bind(list, ft.graph());
        let cfg = SystemConfig::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let rep = pinger.run_window(&fabric, &cfg, 0, &mut rng);
        let c = rep.paths[&PathId(0)];
        // Each of the 300 scheduled probes is lost and confirmed twice.
        assert_eq!(c.sent, 300 * 3);
        assert_eq!(c.lost, 300 * 3);
    }

    #[test]
    fn deterministic_partial_loss_shows_port_dependence() {
        let ft = Fattree::new(4).unwrap();
        let (list, mut fabric) = setup(&ft);
        fabric.set_discipline_both(
            ft.ea_link(0, 0, 0),
            LossDiscipline::DeterministicPartial {
                fraction: 0.5,
                salt: 99,
            },
        );
        let pinger = Pinger::bind(list, ft.graph());
        let cfg = SystemConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let rep = pinger.run_window(&fabric, &cfg, 0, &mut rng);
        let c = rep.paths[&PathId(0)];
        // Some ports blackholed, some clean: strictly partial.
        assert!(c.lost > 0);
        assert!(c.lost < c.sent);
    }

    #[test]
    fn unresolvable_entries_are_dropped_at_bind() {
        let ft = Fattree::new(4).unwrap();
        let (mut list, _fabric) = setup(&ft);
        list.entries.push(PingEntry {
            path: Some(PathId(1)),
            route: vec![ft.server(0, 0, 0), ft.server(3, 1, 1)], // Not adjacent.
            responder: ft.server(3, 1, 1),
            waypoint: None,
        });
        let pinger = Pinger::bind(list, ft.graph());
        assert_eq!(pinger.num_entries(), 1);
    }

    #[test]
    fn dscp_blackhole_is_seen_as_partial_loss() {
        // A failure that only drops the EF class: roughly one third of
        // probes (one of three swept classes) are lost.
        let ft = Fattree::new(4).unwrap();
        let (list, mut fabric) = setup(&ft);
        fabric.set_discipline_both(
            ft.ea_link(0, 0, 0),
            LossDiscipline::DscpBlackhole { dscp: 46 },
        );
        let pinger = Pinger::bind(list, ft.graph());
        let cfg = SystemConfig::default();
        let mut rng = SmallRng::seed_from_u64(5);
        let rep = pinger.run_window(&fabric, &cfg, 0, &mut rng);
        let c = rep.paths[&PathId(0)];
        assert!(c.lost > 0, "EF probes must be lost");
        assert!(c.lost < c.sent, "other classes must get through");
        // The lost fraction is near one third of the *scheduled* probes
        // (confirmation probes of the same flow are also lost).
        let scheduled = 300.0;
        let lost_scheduled = c.lost as f64 / 3.0; // Each loss confirmed twice.
        let frac = lost_scheduled / scheduled;
        assert!((frac - 1.0 / 3.0).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn batch_runs_are_reproducible() {
        // Same (window_seed, server) ⇒ identical report, regardless of
        // when or where the batch runs — the pipelined scheduler's
        // equivalence hinges on this.
        let ft = Fattree::new(4).unwrap();
        let (list, mut fabric) = setup(&ft);
        fabric.set_discipline_both(
            ft.ea_link(0, 0, 0),
            LossDiscipline::RandomPartial { rate: 0.3 },
        );
        let batch = PingerBatch::bind(list, ft.graph());
        let cfg = SystemConfig::default();
        let a = batch.run_window(&fabric, &cfg, 0, 42);
        let b = batch.run_window(&fabric, &cfg, 0, 42);
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.in_rack, b.in_rack);
        assert_eq!(a.flows, b.flows);
        let c = batch.run_window(&fabric, &cfg, 0, 43);
        assert_ne!(
            a.paths, c.paths,
            "different window seeds must drive different probe streams"
        );
    }

    #[test]
    fn batch_seeds_separate_servers() {
        let s = batch_seed(7, NodeId(1));
        assert_ne!(s, batch_seed(7, NodeId(2)));
        assert_ne!(s, batch_seed(8, NodeId(1)));
        assert_eq!(s, batch_seed(7, NodeId(1)));
    }

    #[test]
    fn binding_is_keyed_on_version_and_content() {
        // The binding-cache validity check must reject a list whose
        // version matches but whose content differs — e.g. a cycle
        // refresh serving a version that was minted before a cell
        // re-base changed the entries' PathIds. A version-only key would
        // hand out routes bound to the retired ids.
        let ft = Fattree::new(4).unwrap();
        let (list, _fabric) = setup(&ft);
        let batch = PingerBatch::bind(list.clone(), ft.graph());
        assert!(batch.bound_to(&list), "identical list must hit the cache");

        // Same version, different content (the entry's path id moved to
        // a fresh range): the cache must miss.
        let mut rebased = list.clone();
        rebased.entries[0].path = Some(PathId(64));
        rebased.seal();
        assert_eq!(rebased.version, list.version);
        assert!(
            !batch.bound_to(&rebased),
            "a pre-re-base binding must not serve re-based ids"
        );

        // Different version, same content: also a miss (the version is
        // half of the key; dispatch bumps it only on content changes, so
        // honoring it keeps the check conservative).
        let mut bumped = list.clone();
        bumped.version += 1;
        assert!(!batch.bound_to(&bumped));

        // The stamp is computed over the *dispatched* list, so a list
        // with unresolvable (dropped-at-bind) entries still validates
        // against what was dispatched, not against the filtered copy.
        let mut with_bad_entry = list.clone();
        with_bad_entry.entries.push(PingEntry {
            path: Some(PathId(1)),
            route: vec![ft.server(0, 0, 0), ft.server(3, 1, 1)], // Not adjacent.
            responder: ft.server(3, 1, 1),
            waypoint: None,
        });
        with_bad_entry.seal();
        let partial = PingerBatch::bind(with_bad_entry.clone(), ft.graph());
        assert_eq!(partial.num_entries(), 1, "bad entry dropped at bind");
        assert!(partial.bound_to(&with_bad_entry));
        assert!(!partial.bound_to(&list));
    }

    #[test]
    fn cost_model_matches_paper_calibration() {
        let m = PingerCostModel::default();
        assert!((m.cpu_percent(10.0) - 0.4).abs() < 1e-9);
        assert!((m.memory_mb(10.0) - 13.0).abs() < 1e-9);
        let bw = m.bandwidth_kbps(15.0);
        assert!((bw - 102.0).abs() < 1.0, "bw {bw}");
    }
}
