//! Pinglists: what the controller dispatches to each pinger (§6.1).
//!
//! A pinglist carries a file version, the pinger's identity, one entry per
//! probe path assigned to the pinger (the source-routed node sequence, the
//! responder, the waypoint for IP-in-IP encapsulation and the port/DSCP
//! configuration), and the sending interval. The paper serializes these as
//! XML files fetched over HTTP; we serialize with serde.

use std::hash::{Hash, Hasher};

use detector_core::types::{NodeId, PathId};
use serde::{Deserialize, Serialize};

/// One probe assignment within a pinglist.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PingEntry {
    /// Probe-matrix path this entry exercises; `None` for in-rack probes
    /// (server ↔ ToR links are monitored separately, §3.1).
    pub path: Option<PathId>,
    /// Full node route from the pinger to the responder.
    pub route: Vec<NodeId>,
    /// The responder server.
    pub responder: NodeId,
    /// Decapsulation waypoint (core/intermediate switch) for IP-in-IP
    /// source routing; `None` when ECMP would already follow the route.
    pub waypoint: Option<NodeId>,
}

/// A pinger's probing assignment for one cycle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pinglist {
    /// Version (controller cycle number) for idempotent refreshes.
    pub version: u64,
    /// The pinger server this list belongs to.
    pub pinger: NodeId,
    /// Probe assignments.
    pub entries: Vec<PingEntry>,
    /// Packet-sending interval in microseconds.
    pub interval_us: u64,
    /// First source port to loop from.
    pub base_sport: u16,
    /// Number of source ports to loop over per path.
    pub port_range: u16,
    /// Responder port.
    pub dport: u16,
    /// Cached [`Pinglist::content_stamp`] of this list, set by
    /// [`Pinglist::seal`] when the controller finishes assembling the
    /// assignment. Together with `version` it forms the pinger-binding
    /// cache key — two cheap `u64` compares per window instead of
    /// re-hashing every entry. `0` means "unsealed": a binding check
    /// against it conservatively re-binds.
    pub stamp: u64,
}

impl Pinglist {
    /// Number of probe paths (excluding in-rack entries).
    pub fn num_paths(&self) -> usize {
        self.entries.iter().filter(|e| e.path.is_some()).count()
    }

    /// True when the two lists assign the same probing work (everything
    /// but the version). A re-plan that leaves a pinger's assignment
    /// untouched keeps the old version, so the pinger's cached route
    /// bindings stay valid.
    pub fn same_assignment(&self, other: &Pinglist) -> bool {
        self.pinger == other.pinger
            && self.entries == other.entries
            && self.interval_us == other.interval_us
            && self.base_sport == other.base_sport
            && self.port_range == other.port_range
            && self.dport == other.dport
    }

    /// A stamp over the list's *content* — every assignment-relevant
    /// field except the version. Together with the version it forms the
    /// pinger-binding cache key: a binding is served only for a list
    /// whose `(version, stamp)` both match, so a cycle refresh (or any
    /// dispatch path that ever re-minted a version) cannot serve routes
    /// and `PathId`s from a pre-re-base binding.
    pub fn content_stamp(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.pinger.hash(&mut h);
        self.entries.hash(&mut h);
        self.interval_us.hash(&mut h);
        self.base_sport.hash(&mut h);
        self.port_range.hash(&mut h);
        self.dport.hash(&mut h);
        h.finish()
    }

    /// Freezes [`Pinglist::content_stamp`] into [`Pinglist::stamp`].
    /// The controller seals every list once at assembly; binding checks
    /// then compare the cached value instead of re-hashing the entries
    /// every window. Any dispatch path that mutates entries afterwards
    /// must re-seal.
    pub fn seal(&mut self) {
        self.stamp = self.content_stamp();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pinglist {
        Pinglist {
            version: 3,
            pinger: NodeId(100),
            entries: vec![
                PingEntry {
                    path: Some(PathId(7)),
                    route: vec![NodeId(100), NodeId(1), NodeId(2), NodeId(101)],
                    responder: NodeId(101),
                    waypoint: Some(NodeId(2)),
                },
                PingEntry {
                    path: None,
                    route: vec![NodeId(100), NodeId(1), NodeId(102)],
                    responder: NodeId(102),
                    waypoint: None,
                },
            ],
            interval_us: 100_000,
            base_sport: 33000,
            port_range: 16,
            dport: 53533,
            stamp: 0,
        }
    }

    #[test]
    fn num_paths_excludes_in_rack() {
        assert_eq!(sample().num_paths(), 1);
    }

    #[test]
    fn pinglists_are_cloneable_and_comparable() {
        // Dispatch keeps a copy per pinger; equality drives idempotent
        // refresh (same version ⇒ no re-dispatch).
        let p = sample();
        let q = p.clone();
        assert_eq!(p, q);
        let mut r = p.clone();
        r.version += 1;
        assert_ne!(p, r);
    }
}
