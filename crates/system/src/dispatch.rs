//! Wire-level pinglist dispatch: canonical entry encoding, per-entry
//! deployment diffs, and the byte accounting behind
//! `PlanUpdated::bytes_dispatched`.
//!
//! The single-process runtime hands `Pinglist`s to pingers by reference,
//! so "dispatch cost" used to be countable only in lists
//! (`lists_redispatched`). The distributed control plane
//! (`detector-agent`) ships lists to pinger agents over a wire, where
//! cost is *bytes* — and the PR 5 segmented `PathId` ranges make a
//! per-entry diff well-defined: a single-cell delta leaves every other
//! cell's entries bit-identical, so only the touched entries need to
//! travel.
//!
//! This module is the shared vocabulary between the two tiers:
//!
//! * [`encode_entry`] / [`decode_entry`] — the canonical byte form of a
//!   [`PingEntry`]. The agent crate's frame codec reuses these, so the
//!   `bytes_dispatched` the controller reports is the length of the
//!   bytes that actually travel (asserted in `detector-agent` tests).
//! * [`entry_key`] — a stable 64-bit key over the canonical encoding
//!   (FNV-1a, *not* `DefaultHasher`: removals are addressed by key
//!   across process boundaries, so the hash must not depend on the
//!   process or std version).
//! * [`diff_deployment`] — turns two deployments into a
//!   [`DeploymentDiff`]: per-entry add/remove scripts where the edit is
//!   small, whole-list replacement where it is not (or where a diff
//!   cannot reproduce the new list exactly), removals for pingers that
//!   left duty, and the plan's `PathIdRange` re-bases.
//!
//! Both drivers (`Detector::apply`, the pipelined dispatch stage) and
//! the distributed controller compute their dispatch stats through
//! [`diff_deployment`], so `entries_diffed`/`bytes_dispatched` are
//! deterministic and identical across all three — the equivalence
//! harnesses compare them un-normalized.

use std::collections::HashMap;

use detector_core::types::{NodeId, PathId, PathIdRange};

use crate::controller::Deployment;
use crate::pinglist::{PingEntry, Pinglist};

/// Per-frame wire overhead: a `u32` length prefix plus the one-byte
/// frame tag. Every dispatch-byte figure in this module includes it, so
/// the model matches what the agent transport actually writes.
pub const FRAME_OVERHEAD: usize = 5;

/// Canonical byte encoding of one [`PingEntry`] (big-endian,
/// length-prefixed route). This is *the* wire form: the agent frame
/// codec delegates here, and [`entry_key`] hashes exactly these bytes.
pub fn encode_entry(e: &PingEntry, out: &mut Vec<u8>) {
    match e.path {
        Some(p) => {
            out.push(1);
            out.extend_from_slice(&p.0.to_be_bytes());
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(e.route.len() as u16).to_be_bytes());
    for n in &e.route {
        out.extend_from_slice(&n.0.to_be_bytes());
    }
    out.extend_from_slice(&e.responder.0.to_be_bytes());
    match e.waypoint {
        Some(w) => {
            out.push(1);
            out.extend_from_slice(&w.0.to_be_bytes());
        }
        None => out.push(0),
    }
}

/// Length of [`encode_entry`]'s output without materializing it.
pub fn encoded_entry_len(e: &PingEntry) -> usize {
    let path = if e.path.is_some() { 5 } else { 1 };
    let waypoint = if e.waypoint.is_some() { 5 } else { 1 };
    path + 2 + 4 * e.route.len() + 4 + waypoint
}

/// Decodes one entry from the front of `buf`, advancing it. `None` on
/// truncated or malformed input (the caller maps that to its own error).
pub fn decode_entry(buf: &mut &[u8]) -> Option<PingEntry> {
    fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if buf.len() < n {
            return None;
        }
        let (head, rest) = buf.split_at(n);
        *buf = rest;
        Some(head)
    }
    fn take_u32(buf: &mut &[u8]) -> Option<u32> {
        take(buf, 4).map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }
    let path = match take(buf, 1)?[0] {
        0 => None,
        1 => Some(PathId(take_u32(buf)?)),
        _ => return None,
    };
    let route_len = u16::from_be_bytes(take(buf, 2)?.try_into().expect("2 bytes")) as usize;
    let mut route = Vec::with_capacity(route_len);
    for _ in 0..route_len {
        route.push(NodeId(take_u32(buf)?));
    }
    let responder = NodeId(take_u32(buf)?);
    let waypoint = match take(buf, 1)?[0] {
        0 => None,
        1 => Some(NodeId(take_u32(buf)?)),
        _ => return None,
    };
    Some(PingEntry {
        path,
        route,
        responder,
        waypoint,
    })
}

/// Stable 64-bit identity of an entry: FNV-1a over its canonical
/// encoding. `EntryRemove` frames address entries by this key, so it
/// must be identical across processes, architectures and std versions —
/// which rules out `DefaultHasher`.
pub fn entry_key(e: &PingEntry) -> u64 {
    let mut bytes = Vec::with_capacity(encoded_entry_len(e));
    encode_entry(e, &mut bytes);
    fnv1a64(&bytes)
}

/// FNV-1a, the classic parameters.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bytes of a pinglist's non-entry fields on the wire (version, pinger,
/// interval, ports, stamp).
pub const LIST_HEADER_BYTES: usize = 8 + 4 + 8 + 2 + 2 + 2 + 8;

/// Wire bytes of a whole list shipped as one `ListReplace` frame.
pub fn encoded_list_len(list: &Pinglist) -> usize {
    FRAME_OVERHEAD
        + LIST_HEADER_BYTES
        + 4 // entry count
        + list.entries.iter().map(encoded_entry_len).sum::<usize>()
}

/// How one pinger's list changes on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum ListUpdate {
    /// Ship the whole list (new pinger, header change, or a diff that
    /// could not reproduce the target exactly / would not be smaller).
    Replace(Pinglist),
    /// Per-entry edit script: apply removals (by [`entry_key`]), then
    /// insert `added` entries at their target indices in ascending
    /// order, then adopt `(version, stamp)` — after which the rebuilt
    /// list is byte-identical to the dispatched one (the differ verifies
    /// this before choosing a diff over a replace).
    Diff {
        /// The pinger whose list this edits.
        pinger: NodeId,
        /// Version of the post-edit list.
        version: u64,
        /// Content stamp of the post-edit list (the seal; agents check
        /// their rebuilt list against it).
        stamp: u64,
        /// Keys of entries to remove, in the old list's order.
        removed: Vec<u64>,
        /// `(index in new list, entry)` insertions, ascending by index.
        added: Vec<(u32, PingEntry)>,
    },
    /// The pinger left duty; drop its list and binding.
    Remove(NodeId),
}

impl ListUpdate {
    /// The pinger this update addresses.
    pub fn pinger(&self) -> NodeId {
        match self {
            ListUpdate::Replace(list) => list.pinger,
            ListUpdate::Diff { pinger, .. } => *pinger,
            ListUpdate::Remove(p) => *p,
        }
    }

    /// Entries this update moves (added + removed; a replace counts all
    /// its entries) — the `entries_diffed` contribution.
    pub fn entries_diffed(&self) -> usize {
        match self {
            ListUpdate::Replace(list) => list.entries.len(),
            ListUpdate::Diff { removed, added, .. } => removed.len() + added.len(),
            ListUpdate::Remove(_) => 0,
        }
    }

    /// Exact wire bytes of the frames realizing this update (size model;
    /// `detector-agent` asserts its codec matches).
    pub fn wire_bytes(&self) -> usize {
        match self {
            ListUpdate::Replace(list) => encoded_list_len(list),
            ListUpdate::Diff { removed, added, .. } => {
                // EntryRemove{pinger, key} per removal…
                removed.len() * (FRAME_OVERHEAD + 4 + 8)
                    // …EntryAdd{pinger, index, entry} per insertion…
                    + added
                        .iter()
                        .map(|(_, e)| FRAME_OVERHEAD + 4 + 4 + encoded_entry_len(e))
                        .sum::<usize>()
                    // …and the closing ListSeal{pinger, version, stamp}.
                    + (FRAME_OVERHEAD + 4 + 8 + 8)
            }
            ListUpdate::Remove(_) => FRAME_OVERHEAD + 4,
        }
    }
}

/// Everything a deployment change puts on the wire.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeploymentDiff {
    /// Plan cells whose `PathIdRange` moved (old, new) — broadcast so
    /// agents can retire ids of the old range.
    pub rebases: Vec<(PathIdRange, PathIdRange)>,
    /// Per-pinger updates, ordered by the new deployment's list order
    /// (removals of departed pingers last, ascending).
    pub updates: Vec<ListUpdate>,
}

impl DeploymentDiff {
    /// Total entries added/removed/replaced across all updates.
    pub fn entries_diffed(&self) -> usize {
        self.updates.iter().map(ListUpdate::entries_diffed).sum()
    }

    /// Exact wire bytes of the whole diff, including `RangeRebase`
    /// frames (old + new range: 2 × (base `u32` + capacity `u32`)).
    pub fn wire_bytes(&self) -> usize {
        self.rebases.len() * (FRAME_OVERHEAD + 16)
            + self
                .updates
                .iter()
                .map(ListUpdate::wire_bytes)
                .sum::<usize>()
    }

    /// True when nothing needs to travel.
    pub fn is_empty(&self) -> bool {
        self.rebases.is_empty() && self.updates.is_empty()
    }
}

/// Dispatch cost of installing one deployment, as reported by
/// `PlanUpdated`. All three fields are deterministic functions of the
/// old and new deployments, so the sequential, pipelined and distributed
/// drivers must agree on them exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Lists re-dispatched (fresh versions; see
    /// [`Deployment::rebase_versions`]).
    pub lists_redispatched: usize,
    /// Entries that traveled: added + removed across diffs, plus every
    /// entry of whole-list replacements.
    pub entries_diffed: usize,
    /// Exact wire bytes of the dispatch ([`DeploymentDiff::wire_bytes`]).
    pub bytes_dispatched: u64,
}

/// Pairs up per-cell `PathIdRange`s captured before and after a re-plan,
/// keeping the cells whose range actually moved. Cells are positional
/// (a re-plan never reorders them); a first build has no "before", which
/// yields no re-bases.
pub fn rebase_pairs(
    before: Option<&[PathIdRange]>,
    after: Option<&[PathIdRange]>,
) -> Vec<(PathIdRange, PathIdRange)> {
    match (before, after) {
        (Some(b), Some(a)) => b
            .iter()
            .zip(a.iter())
            .filter(|(old, new)| old.base != new.base)
            .map(|(old, new)| (*old, *new))
            .collect(),
        _ => Vec::new(),
    }
}

/// Computes the wire-level diff that turns `prev`'s pinglists into
/// `next`'s. Call *after* [`Deployment::rebase_versions`], so lists
/// whose assignment did not change already share a version and are
/// skipped entirely (zero bytes — the whole point of minimal
/// re-dispatch).
///
/// For each changed list the differ builds an order-preserving edit
/// script keyed by [`entry_key`]: entries whose key left the list are
/// removed, new keys are inserted at their target index. If the
/// surviving entries changed relative order (they cannot, under the
/// controller's matrix-order assembly, but the differ does not assume
/// that), or the script would not be smaller than the list, it falls
/// back to a whole-list `Replace`. Either way the receiver ends up
/// byte-identical to `next` — verified here, not trusted.
pub fn diff_deployment(
    prev: &Deployment,
    next: &Deployment,
    rebases: &[(PathIdRange, PathIdRange)],
) -> DeploymentDiff {
    let mut updates = Vec::new();
    let prev_by_pinger: HashMap<NodeId, &Pinglist> =
        prev.pinglists.iter().map(|l| (l.pinger, l)).collect();

    for list in &next.pinglists {
        match prev_by_pinger.get(&list.pinger) {
            None => updates.push(ListUpdate::Replace(list.clone())),
            Some(old) if old.same_assignment(list) => {} // Nothing travels.
            Some(old) => updates.push(diff_list(old, list)),
        }
    }
    let next_pingers: HashMap<NodeId, ()> = next.pinglists.iter().map(|l| (l.pinger, ())).collect();
    let mut removed: Vec<NodeId> = prev
        .pinglists
        .iter()
        .map(|l| l.pinger)
        .filter(|p| !next_pingers.contains_key(p))
        .collect();
    removed.sort_unstable();
    updates.extend(removed.into_iter().map(ListUpdate::Remove));

    DeploymentDiff {
        rebases: rebases.to_vec(),
        updates,
    }
}

/// Whole-deployment dispatch as if every list traveled in full — the
/// pre-diff baseline the `dispatch_bytes` bench compares against.
pub fn full_dispatch_bytes(dep: &Deployment) -> usize {
    dep.pinglists.iter().map(encoded_list_len).sum()
}

fn diff_list(old: &Pinglist, new: &Pinglist) -> ListUpdate {
    // Header changes re-key every probe stream; ship the whole list.
    if old.interval_us != new.interval_us
        || old.base_sport != new.base_sport
        || old.port_range != new.port_range
        || old.dport != new.dport
    {
        return ListUpdate::Replace(new.clone());
    }

    // Multiset of keys on each side (duplicate entries would be a
    // controller bug, but the differ stays correct if they appear).
    let mut old_count: HashMap<u64, usize> = HashMap::new();
    for e in &old.entries {
        *old_count.entry(entry_key(e)).or_default() += 1;
    }
    let mut new_count: HashMap<u64, usize> = HashMap::new();
    for e in &new.entries {
        *new_count.entry(entry_key(e)).or_default() += 1;
    }

    // Removals: old entries beyond the count the new list retains.
    let mut keep_budget = new_count.clone();
    let mut removed = Vec::new();
    let mut kept: Vec<u64> = Vec::new();
    for e in &old.entries {
        let k = entry_key(e);
        match keep_budget.get_mut(&k) {
            Some(n) if *n > 0 => {
                *n -= 1;
                kept.push(k);
            }
            _ => removed.push(k),
        }
    }
    // Insertions: new entries beyond what the old list supplies, at
    // their index in the new list.
    let mut supply = old_count;
    for k in &removed {
        if let Some(n) = supply.get_mut(k) {
            *n -= 1;
        }
    }
    let mut added: Vec<(u32, PingEntry)> = Vec::new();
    let mut survivors: Vec<u64> = Vec::new();
    for (i, e) in new.entries.iter().enumerate() {
        let k = entry_key(e);
        match supply.get_mut(&k) {
            Some(n) if *n > 0 => {
                *n -= 1;
                survivors.push(k);
            }
            _ => added.push((i as u32, e.clone())),
        }
    }

    // The edit script reproduces `new` exactly only if the surviving
    // entries appear in the same relative order on both sides.
    let reproduces = kept == survivors;
    let diff = ListUpdate::Diff {
        pinger: new.pinger,
        version: new.version,
        stamp: new.stamp,
        removed,
        added,
    };
    if reproduces && diff.wire_bytes() < encoded_list_len(new) {
        diff
    } else {
        ListUpdate::Replace(new.clone())
    }
}

/// Applies one [`ListUpdate`] to a receiver-side list map — the exact
/// procedure a pinger agent runs on its frames; factored here so the
/// differ's tests and the agent crate share one implementation.
///
/// Returns `false` when a `Diff` addressed an unknown pinger or its
/// rebuilt list fails the stamp check — a protocol violation the caller
/// surfaces (it cannot happen for diffs produced by [`diff_deployment`],
/// which verifies reproduction before choosing a diff).
#[must_use]
pub fn apply_list_update(lists: &mut HashMap<NodeId, Pinglist>, update: &ListUpdate) -> bool {
    match update {
        ListUpdate::Replace(list) => {
            lists.insert(list.pinger, list.clone());
            true
        }
        ListUpdate::Remove(p) => {
            lists.remove(p);
            true
        }
        ListUpdate::Diff {
            pinger,
            version,
            stamp,
            removed,
            added,
        } => {
            let Some(list) = lists.get_mut(pinger) else {
                return false;
            };
            for k in removed {
                if let Some(pos) = list.entries.iter().position(|e| entry_key(e) == *k) {
                    list.entries.remove(pos);
                }
            }
            for (i, e) in added {
                let i = (*i as usize).min(list.entries.len());
                list.entries.insert(i, e.clone());
            }
            list.version = *version;
            list.seal();
            list.stamp == *stamp
        }
    }
}

/// [`diff_deployment`] + [`Deployment::rebase_versions`] in install
/// order, returning the diff alongside the stats — the one procedure
/// every driver's install path goes through (see
/// `runtime::install_dispatched`).
pub fn rebase_and_diff(
    prev: &Deployment,
    next: &mut Deployment,
    rebases: &[(PathIdRange, PathIdRange)],
) -> (DeploymentDiff, DispatchStats) {
    let lists_redispatched = next.rebase_versions(prev);
    let diff = diff_deployment(prev, next, rebases);
    let stats = DispatchStats {
        lists_redispatched,
        entries_diffed: diff.entries_diffed(),
        bytes_dispatched: diff.wire_bytes() as u64,
    };
    (diff, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_core::pmc::ProbeMatrix;

    fn entry(path: Option<u32>, route: &[u32], responder: u32, waypoint: Option<u32>) -> PingEntry {
        PingEntry {
            path: path.map(PathId),
            route: route.iter().map(|&n| NodeId(n)).collect(),
            responder: NodeId(responder),
            waypoint: waypoint.map(NodeId),
        }
    }

    fn list(pinger: u32, version: u64, entries: Vec<PingEntry>) -> Pinglist {
        let mut l = Pinglist {
            version,
            pinger: NodeId(pinger),
            entries,
            interval_us: 100_000,
            base_sport: 33000,
            port_range: 16,
            dport: 53533,
            stamp: 0,
        };
        l.seal();
        l
    }

    fn deployment(version: u64, lists: Vec<Pinglist>) -> Deployment {
        Deployment {
            matrix: ProbeMatrix::from_paths(0, Vec::new()),
            pinglists: lists,
            version,
        }
    }

    #[test]
    fn entry_encoding_round_trips_and_len_matches() {
        let cases = vec![
            entry(Some(7), &[1, 2, 3, 4], 4, Some(2)),
            entry(None, &[9, 8], 8, None),
            entry(Some(u32::MAX), &[], 0, None),
        ];
        for e in cases {
            let mut bytes = Vec::new();
            encode_entry(&e, &mut bytes);
            assert_eq!(bytes.len(), encoded_entry_len(&e));
            let mut buf = &bytes[..];
            assert_eq!(decode_entry(&mut buf).as_ref(), Some(&e));
            assert!(buf.is_empty(), "decode must consume exactly the encoding");
        }
    }

    #[test]
    fn entry_key_is_stable_and_content_sensitive() {
        let a = entry(Some(7), &[1, 2, 3], 3, None);
        // Keys must be reproducible across processes: pin the value.
        assert_eq!(entry_key(&a), entry_key(&a.clone()));
        let mut bytes = Vec::new();
        encode_entry(&a, &mut bytes);
        assert_eq!(entry_key(&a), fnv1a64(&bytes));
        let b = entry(Some(8), &[1, 2, 3], 3, None);
        assert_ne!(entry_key(&a), entry_key(&b));
    }

    #[test]
    fn unchanged_lists_ship_nothing() {
        let l = list(5, 1, vec![entry(Some(1), &[5, 1, 6], 6, None)]);
        let prev = deployment(1, vec![l.clone()]);
        let mut next = deployment(2, vec![list(5, 2, l.entries.clone())]);
        let (diff, stats) = rebase_and_diff(&prev, &mut next, &[]);
        assert!(diff.is_empty());
        assert_eq!(stats, DispatchStats::default());
        // rebase_versions rolled the untouched list back to its old
        // version, exactly as the single-process install does.
        assert_eq!(next.pinglists[0].version, 1);
    }

    #[test]
    fn single_entry_change_diffs_not_replaces() {
        let shared: Vec<PingEntry> = (0..20)
            .map(|i| entry(Some(i), &[5, 1, i + 100], i + 100, Some(1)))
            .collect();
        let mut old_entries = shared.clone();
        old_entries.push(entry(Some(90), &[5, 2, 7], 7, Some(2)));
        let mut new_entries = shared.clone();
        new_entries.insert(3, entry(Some(91), &[5, 3, 8], 8, Some(3)));

        let prev = deployment(1, vec![list(5, 1, old_entries)]);
        let mut next = deployment(2, vec![list(5, 2, new_entries)]);
        let (diff, stats) = rebase_and_diff(&prev, &mut next, &[]);
        assert_eq!(diff.updates.len(), 1);
        match &diff.updates[0] {
            ListUpdate::Diff { removed, added, .. } => {
                assert_eq!(removed.len(), 1);
                assert_eq!(added.len(), 1);
                assert_eq!(added[0].0, 3);
            }
            other => panic!("expected a diff, got {other:?}"),
        }
        assert_eq!(stats.lists_redispatched, 1);
        assert_eq!(stats.entries_diffed, 2);
        assert!(
            (stats.bytes_dispatched as usize) < encoded_list_len(&next.pinglists[0]),
            "diff must beat the full list"
        );
    }

    #[test]
    fn applying_the_diff_reproduces_the_new_list_exactly() {
        // Shuffle-ish change: drop two entries, add three, keep order.
        let old_entries: Vec<PingEntry> = (0..12)
            .map(|i| entry(Some(i), &[9, 1, i + 50], i + 50, None))
            .collect();
        let mut new_entries: Vec<PingEntry> = old_entries
            .iter()
            .filter(|e| e.path != Some(PathId(4)) && e.path != Some(PathId(9)))
            .cloned()
            .collect();
        new_entries.insert(0, entry(Some(40), &[9, 2, 41], 41, Some(2)));
        new_entries.push(entry(None, &[9, 1, 10], 10, None));
        new_entries.insert(5, entry(Some(41), &[9, 2, 42], 42, None));

        let prev = deployment(3, vec![list(9, 3, old_entries)]);
        let mut next = deployment(4, vec![list(9, 4, new_entries)]);
        let (diff, _) = rebase_and_diff(&prev, &mut next, &[]);

        let mut lists: HashMap<NodeId, Pinglist> = prev
            .pinglists
            .iter()
            .map(|l| (l.pinger, l.clone()))
            .collect();
        for u in &diff.updates {
            assert!(apply_list_update(&mut lists, u));
        }
        assert_eq!(lists[&NodeId(9)], next.pinglists[0]);
    }

    #[test]
    fn header_change_forces_replace() {
        let e = vec![entry(Some(1), &[5, 1, 6], 6, None)];
        let old = list(5, 1, e.clone());
        let mut new = list(5, 2, e);
        new.interval_us = 50_000;
        new.seal();
        let prev = deployment(1, vec![old]);
        let mut next = deployment(2, vec![new]);
        let (diff, _) = rebase_and_diff(&prev, &mut next, &[]);
        assert!(matches!(diff.updates[0], ListUpdate::Replace(_)));
    }

    #[test]
    fn departed_and_new_pingers_are_remove_and_replace() {
        let prev = deployment(1, vec![list(5, 1, vec![entry(None, &[5, 1, 6], 6, None)])]);
        let mut next = deployment(2, vec![list(7, 2, vec![entry(None, &[7, 1, 8], 8, None)])]);
        let (diff, stats) = rebase_and_diff(&prev, &mut next, &[]);
        assert_eq!(diff.updates.len(), 2);
        assert!(matches!(&diff.updates[0], ListUpdate::Replace(l) if l.pinger == NodeId(7)));
        assert_eq!(diff.updates[1], ListUpdate::Remove(NodeId(5)));
        assert_eq!(stats.lists_redispatched, 1);
        let expect = encoded_list_len(&next.pinglists[0]) + FRAME_OVERHEAD + 4;
        assert_eq!(stats.bytes_dispatched as usize, expect);
    }

    #[test]
    fn rebase_pairs_keep_only_moved_cells() {
        let before = vec![PathIdRange::new(0, 10), PathIdRange::new(10, 10)];
        let after = vec![PathIdRange::new(0, 10), PathIdRange::new(20, 12)];
        let pairs = rebase_pairs(Some(&before), Some(&after));
        assert_eq!(pairs, vec![(before[1], after[1])]);
        assert!(rebase_pairs(None, Some(&after)).is_empty());
    }

    #[test]
    fn wire_bytes_cover_rebases() {
        let diff = DeploymentDiff {
            rebases: vec![(PathIdRange::new(0, 4), PathIdRange::new(8, 6))],
            updates: Vec::new(),
        };
        assert_eq!(diff.wire_bytes(), FRAME_OVERHEAD + 16);
    }
}
