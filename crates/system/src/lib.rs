//! # detector-system
//!
//! The deTector runtime (§3, §6.1): a **controller** that recomputes the
//! probe matrix every cycle and dispatches pinglists, **pingers** (2+
//! servers per ToR) that source-route UDP probes and aggregate 30-second
//! reports, stateless **responders**, a **watchdog** tracking server
//! health, and a **diagnoser** running PLL on each report window.
//!
//! The runtime is driven by a simulated clock against the
//! `detector-simnet` fabric, so whole monitoring campaigns (hours of
//! simulated probing with failure injection) run deterministically in
//! milliseconds.
//!
//! # Examples
//!
//! ```
//! use detector_simnet::{Fabric, LossDiscipline};
//! use detector_system::{MonitorRun, SystemConfig};
//! use detector_topology::{DcnTopology, Fattree};
//! use rand::SeedableRng;
//!
//! let ft = Fattree::new(4).unwrap();
//! let mut run = MonitorRun::new(&ft, SystemConfig::default()).unwrap();
//! let mut fabric = Fabric::quiet(&ft);
//! fabric.set_discipline_both(ft.ea_link(0, 0, 0), LossDiscipline::Full);
//!
//! let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
//! let window = run.run_window(&fabric, &mut rng);
//! assert!(window
//!     .diagnosis
//!     .suspect_links()
//!     .contains(&ft.ea_link(0, 0, 0)));
//! ```

mod clock;
mod controller;
mod diagnoser;
mod monitor;
mod pinger;
mod pinglist;
mod report;
mod responder;
mod watchdog;

pub use clock::SimClock;
pub use controller::{Controller, Deployment};
pub use diagnoser::{Diagnoser, DiagnosisEvent};
pub use monitor::{MonitorRun, WindowResult};
pub use pinger::{Pinger, PingerCostModel};
pub use pinglist::{PingEntry, Pinglist};
pub use report::{PathCounters, PingerReport, ReportStore};
pub use responder::Responder;
pub use watchdog::Watchdog;

use detector_core::pll::PllConfig;
use detector_core::pmc::PmcConfig;

/// Deployment-wide configuration (§6.1 defaults).
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Servers per ToR acting as pingers (the paper uses 2–4).
    pub pingers_per_tor: usize,
    /// Probes each pinger sends per second (default 10, the red square of
    /// Fig. 4).
    pub probe_rate_pps: f64,
    /// Report/diagnosis window in seconds (default 30).
    pub window_s: u64,
    /// Probe-matrix recomputation cycle in seconds (default 600).
    pub cycle_s: u64,
    /// Number of source ports each path loops over (packet entropy, §7).
    pub port_range: u16,
    /// First source port.
    pub base_sport: u16,
    /// Responder port.
    pub dport: u16,
    /// DSCP classes the pinger cycles through (packet entropy across QoS
    /// classes, §6.1); must be non-empty.
    pub dscp_classes: Vec<u8>,
    /// Extra confirmation probes sent upon a loss (§3.1).
    pub confirm_probes: u32,
    /// RTTs above this are treated as losses (100 ms, §6.1).
    pub timeout_us: f64,
    /// Probe-matrix construction settings.
    pub pmc: PmcConfig,
    /// Loss-localization settings.
    pub pll: PllConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            pingers_per_tor: 2,
            probe_rate_pps: 10.0,
            window_s: 30,
            cycle_s: 600,
            port_range: 16,
            base_sport: 33000,
            dport: 53533,
            // Best effort, AF21, EF: a small spread of QoS classes.
            dscp_classes: vec![0, 18, 46],
            confirm_probes: 2,
            timeout_us: 100_000.0,
            pmc: PmcConfig::new(3, 1),
            // With two confirmation probes per loss, a real failure always
            // re-drops at least once in the same window; a path with a
            // single lost packet is background noise (§5.1).
            pll: PllConfig {
                min_loss_count: 2,
                ..PllConfig::default()
            },
        }
    }
}

impl SystemConfig {
    /// Overrides the probe rate.
    pub fn with_rate(mut self, pps: f64) -> Self {
        self.probe_rate_pps = pps;
        self
    }

    /// Overrides the PMC (α, β) targets.
    pub fn with_pmc(mut self, pmc: PmcConfig) -> Self {
        self.pmc = pmc;
        self
    }
}
