//! # detector-system
//!
//! The deTector runtime (§3, §6.1): a **controller** that recomputes the
//! probe matrix every cycle and dispatches pinglists, **pingers** (2+
//! servers per ToR) that source-route UDP probes and aggregate 30-second
//! reports, stateless **responders**, a **watchdog** tracking server
//! health, and a **diagnoser** running PLL on each report window.
//!
//! The public entry point is the owned [`Detector`] handle: build it from
//! an `Arc<dyn DcnTopology>` (validated configuration, typed
//! [`ConfigError`]s at build time), then drive it window by window with
//! [`Detector::step`] against any [`DataPlane`] — the simulated
//! `detector-simnet` fabric is the reference implementation, so whole
//! monitoring campaigns (hours of simulated probing with failure
//! injection) run deterministically in milliseconds. Each step emits
//! typed [`RuntimeEvent`]s to the registered [`EventSink`]s — the seam
//! for schedulers, JSON-lines exports and report consumers.
//!
//! For throughput, [`Detector::run_pipelined`] runs whole campaigns
//! through the **pipelined scheduler**: probe dispatch, report
//! collection and diagnosis overlap across windows on worker threads,
//! with scripted churn and pinger failures ([`Script`]), while emitting
//! the identical event stream as sequential stepping (proven by the
//! equivalence harness in `tests/scheduler_equivalence.rs`; see the
//! `scheduler` module docs for the stage layout).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use detector_simnet::{Fabric, LossDiscipline};
//! use detector_system::{Detector, SystemConfig};
//! use detector_topology::{DcnTopology, Fattree};
//! use rand::SeedableRng;
//!
//! let ft = Arc::new(Fattree::new(4).unwrap());
//! let mut run = Detector::builder(ft.clone())
//!     .config(SystemConfig::default())
//!     .build()
//!     .unwrap();
//! let mut fabric = Fabric::quiet(ft.as_ref());
//! fabric.set_discipline_both(ft.ea_link(0, 0, 0), LossDiscipline::Full);
//!
//! let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
//! let window = run.step(&fabric, &mut rng);
//! assert!(window
//!     .diagnosis
//!     .suspect_links()
//!     .contains(&ft.ea_link(0, 0, 0)));
//! ```
//!
//! # Migrating from `MonitorRun`
//!
//! Earlier revisions exposed a borrow-bound `MonitorRun<'a>` tied to the
//! concrete simulator. The mapping is mechanical:
//!
//! * `MonitorRun::new(&topo, cfg)?` → `Detector::new(Arc::new(topo), cfg)?`
//!   (or the [`Detector::builder`] form to attach sinks);
//! * `run.run_window(&fabric, &mut rng)` → `run.step(&fabric, &mut rng)`
//!   — `&Fabric` coerces to `&dyn DataPlane`;
//! * configuration errors now surface as typed [`ConfigError`]s from
//!   `build()` instead of runtime panics.

mod clock;
mod controller;
mod dataplane;
mod diagnoser;
pub mod dispatch;
mod events;
mod pinger;
mod pinglist;
mod planner;
mod report;
mod responder;
mod runtime;
mod scheduler;
mod watchdog;

use std::fmt;

pub use clock::{HostClock, ManualProbeClock, ProbeClock, SimClock};
pub use controller::{Controller, Deployment, PlanUpdate};
pub use dataplane::udp::{
    HarnessStats, LossShim, RetryPolicy, UdpConfig, UdpDataPlane, UdpHarness, UdpStats,
};
pub use dataplane::{DataPlane, ProbeOutcome, ProbeTag};
pub use diagnoser::{DiagConfig, DiagStep, Diagnoser, DiagnosisEvent, PendingDiagnosis};
pub use dispatch::{DeploymentDiff, DispatchStats, ListUpdate};
pub use events::{CollectingSink, EventSink, JsonLinesSink, RuntimeEvent, WindowResult};
pub use pinger::{batch_seed, Pinger, PingerBatch, PingerCostModel};
pub use pinglist::{PingEntry, Pinglist};
pub use planner::{IdHeadroom, ProbePlan, ReplanStats, EXHAUSTIVE_LIMIT};
pub use report::{PathCounters, PingerReport, ReportStore};
pub use responder::Responder;
pub use runtime::{BuildError, Detector, DetectorBuilder};
pub use scheduler::{PipelineConfig, PipelineError, Script, ScriptAction};
pub use watchdog::Watchdog;

// The live-topology surface lives in `detector-topology`; re-exported
// here because the runtime's `Detector::apply` seam is where most callers
// meet it.
pub use detector_topology::{SharedTopology, TopologyDelta, TopologyEvent, TopologyView};

use detector_core::pll::PllConfig;
use detector_core::pmc::PmcConfig;

/// Deployment-wide configuration (§6.1 defaults).
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Servers per ToR acting as pingers (the paper uses 2–4).
    pub pingers_per_tor: usize,
    /// Probes each pinger sends per second (default 10, the red square of
    /// Fig. 4).
    pub probe_rate_pps: f64,
    /// Report/diagnosis window in seconds (default 30).
    pub window_s: u64,
    /// Probe-matrix recomputation cycle in seconds (default 600).
    pub cycle_s: u64,
    /// Number of source ports each path loops over (packet entropy, §7).
    pub port_range: u16,
    /// First source port.
    pub base_sport: u16,
    /// Responder port.
    pub dport: u16,
    /// DSCP classes the pinger cycles through (packet entropy across QoS
    /// classes, §6.1); must be non-empty.
    pub dscp_classes: Vec<u8>,
    /// Extra confirmation probes sent upon a loss (§3.1).
    pub confirm_probes: u32,
    /// RTTs above this are treated as losses (100 ms, §6.1).
    pub timeout_us: f64,
    /// Probe-matrix construction settings.
    pub pmc: PmcConfig,
    /// Loss-localization settings.
    pub pll: PllConfig,
    /// Diagnosis-stage settings (component-parallel PLL fan-out); see
    /// [`DiagConfig`]. Orthogonal to `pll`: the algorithm is configured
    /// there, how the stage executes it here.
    pub diag: DiagConfig,
    /// Headroom policy for the probe plan's per-cell `PathId` ranges:
    /// how much id slack each plan cell reserves so churn re-solves stay
    /// inside their range (no re-dispatch of other cells' pinglists).
    /// [`IdHeadroom::NONE`] makes every growth a re-base, which is how
    /// the re-base path is exercised in tests.
    pub id_headroom: IdHeadroom,
    /// Opt-in ToR-locality pinger spread: key the pinger choice on the
    /// plan *cell* a path belongs to instead of the path id, so every
    /// path of one cell sourced at a given ToR lands on the same pinger
    /// pair and a single-cell delta re-dispatches fewer pinglists.
    ///
    /// Off by default because it only helps when `pingers_per_tor > 2`:
    /// with the default 2 pingers per ToR and 2 copies per path, both
    /// pingers necessarily carry every cell that crosses their ToR, so
    /// the spread key cannot reduce `lists_redispatched`. Raising
    /// `pingers_per_tor` trades per-cell affinity (fewer lists touched
    /// per delta) against per-pinger load spread.
    pub cell_affinity: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            pingers_per_tor: 2,
            probe_rate_pps: 10.0,
            window_s: 30,
            cycle_s: 600,
            port_range: 16,
            base_sport: 33000,
            dport: 53533,
            // Best effort, AF21, EF: a small spread of QoS classes.
            dscp_classes: vec![0, 18, 46],
            confirm_probes: 2,
            timeout_us: 100_000.0,
            pmc: PmcConfig::new(3, 1),
            // With two confirmation probes per loss, a real failure always
            // re-drops at least once in the same window; a path with a
            // single lost packet is background noise (§5.1).
            pll: PllConfig {
                min_loss_count: 2,
                ..PllConfig::default()
            },
            diag: DiagConfig::default(),
            id_headroom: IdHeadroom::default(),
            cell_affinity: false,
        }
    }
}

impl SystemConfig {
    /// Overrides the probe rate.
    pub fn with_rate(mut self, pps: f64) -> Self {
        self.probe_rate_pps = pps;
        self
    }

    /// Overrides the PMC (α, β) targets.
    pub fn with_pmc(mut self, pmc: PmcConfig) -> Self {
        self.pmc = pmc;
        self
    }

    /// Enables the cell-affinity pinger spread (see
    /// [`SystemConfig::cell_affinity`]); only useful together with
    /// `pingers_per_tor > 2`.
    pub fn with_cell_affinity(mut self, on: bool) -> Self {
        self.cell_affinity = on;
        self
    }

    /// Sets the component-parallel diagnosis worker count (see
    /// [`DiagConfig::parallel_components`]).
    pub fn with_parallel_diagnosis(mut self, workers: usize) -> Self {
        self.diag = self.diag.with_parallel_components(workers);
        self
    }

    /// Validates the configuration; [`DetectorBuilder::build`] calls this
    /// so misconfigurations surface as typed errors at construction time
    /// instead of panics mid-campaign.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window_s == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        // A zero cycle_s would make the boundary check true never (the
        // deployment would serve stale pinglists forever).
        if self.cycle_s == 0 {
            return Err(ConfigError::ZeroCycle);
        }
        if !self.probe_rate_pps.is_finite() || self.probe_rate_pps <= 0.0 {
            return Err(ConfigError::NonPositiveProbeRate);
        }
        if self.dscp_classes.is_empty() {
            return Err(ConfigError::NoDscpClasses);
        }
        if self.pingers_per_tor == 0 {
            return Err(ConfigError::ZeroPingersPerTor);
        }
        if self.timeout_us.is_nan() || self.timeout_us <= 0.0 {
            return Err(ConfigError::NonPositiveTimeout);
        }
        Ok(())
    }
}

/// A [`SystemConfig`] field rejected at build time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `window_s` was zero: no reporting interval.
    ZeroWindow,
    /// `cycle_s` was zero: the probe matrix would never refresh.
    ZeroCycle,
    /// `probe_rate_pps` was zero, negative or non-finite.
    NonPositiveProbeRate,
    /// `dscp_classes` was empty (the pinger cycles through it).
    NoDscpClasses,
    /// `pingers_per_tor` was zero: nothing would probe.
    ZeroPingersPerTor,
    /// `timeout_us` was zero or negative: every probe would be a loss.
    NonPositiveTimeout,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWindow => write!(f, "window_s must be > 0"),
            ConfigError::ZeroCycle => write!(f, "cycle_s must be > 0"),
            ConfigError::NonPositiveProbeRate => {
                write!(f, "probe_rate_pps must be a positive finite number")
            }
            ConfigError::NoDscpClasses => write!(f, "dscp_classes must be non-empty"),
            ConfigError::ZeroPingersPerTor => write!(f, "pingers_per_tor must be > 0"),
            ConfigError::NonPositiveTimeout => write!(f, "timeout_us must be > 0"),
        }
    }
}

impl std::error::Error for ConfigError {}
