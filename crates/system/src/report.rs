//! Pinger reports and the diagnoser-side report store (§6.1).
//!
//! Every 30 seconds each pinger aggregates per-path counters into a report
//! and POSTs it to the diagnoser, which stores them for real-time analysis
//! and later queries. The store is concurrency-safe (parking_lot) because
//! production pingers report independently.

use std::collections::HashMap;

use detector_core::types::{NodeId, PathId, PathObservation};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Per-path counters over one window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PathCounters {
    /// Probes sent.
    pub sent: u64,
    /// Probes lost (timeout or drop).
    pub lost: u64,
    /// Sum of measured RTTs (µs) over delivered probes.
    pub rtt_sum_us: f64,
    /// Max measured RTT (µs).
    pub rtt_max_us: f64,
}

impl PathCounters {
    /// Mean RTT of delivered probes, µs.
    pub fn mean_rtt_us(&self) -> f64 {
        let delivered = self.sent.saturating_sub(self.lost);
        if delivered == 0 {
            0.0
        } else {
            self.rtt_sum_us / delivered as f64
        }
    }

    /// Merges another window's counters.
    pub fn merge(&mut self, other: &PathCounters) {
        self.sent += other.sent;
        self.lost += other.lost;
        self.rtt_sum_us += other.rtt_sum_us;
        self.rtt_max_us = self.rtt_max_us.max(other.rtt_max_us);
    }
}

/// One pinger's report for one window.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PingerReport {
    /// Reporting pinger.
    pub pinger: NodeId,
    /// Window index (window start / window length).
    pub window: u64,
    /// Counters per probe-matrix path.
    pub paths: HashMap<PathId, PathCounters>,
    /// Counters for in-rack probes (server–ToR links), keyed by responder.
    pub in_rack: HashMap<NodeId, PathCounters>,
    /// Per-flow counters per path, keyed by (path, flow discriminator):
    /// the raw material for loss-type classification (§7). The flow
    /// discriminator packs the probe's source port and DSCP class.
    pub flows: HashMap<(PathId, u64), (u64, u64)>,
}

impl PingerReport {
    /// Total probes sent in this report (paths + in-rack).
    pub fn total_sent(&self) -> u64 {
        self.paths.values().map(|c| c.sent).sum::<u64>()
            + self.in_rack.values().map(|c| c.sent).sum::<u64>()
    }

    /// True when every probe of the report was lost (a strong hint the
    /// *pinger* is sick, not the network — §5.1 outliers).
    pub fn all_lost(&self) -> bool {
        let sent = self.total_sent();
        let lost = self.paths.values().map(|c| c.lost).sum::<u64>()
            + self.in_rack.values().map(|c| c.lost).sum::<u64>();
        sent > 0 && lost == sent
    }
}

/// Diagnoser-side store of reports, per window.
pub struct ReportStore {
    inner: RwLock<HashMap<u64, Vec<PingerReport>>>,
}

impl Default for ReportStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ReportStore {
    /// Debug-build acquisition rank of the store's lock (see the
    /// parking_lot shim): any lock the diagnoser may take *while*
    /// aggregating reports must rank above this.
    const LOCK_RANK: u32 = 100;

    /// An empty store.
    pub fn new() -> Self {
        Self {
            inner: RwLock::with_rank(HashMap::new(), Self::LOCK_RANK, "ReportStore.inner"),
        }
    }

    /// Ingests one report.
    pub fn ingest(&self, report: PingerReport) {
        self.inner
            .write()
            .entry(report.window)
            .or_default()
            .push(report);
    }

    /// Aggregates one window's reports into per-path observations,
    /// skipping reports from `excluded` pingers (watchdog outliers).
    pub fn window_observations(
        &self,
        window: u64,
        excluded: &dyn Fn(NodeId) -> bool,
    ) -> Vec<PathObservation> {
        let inner = self.inner.read();
        let mut agg: HashMap<PathId, PathCounters> = HashMap::new();
        if let Some(reports) = inner.get(&window) {
            for r in reports {
                if excluded(r.pinger) {
                    continue;
                }
                for (pid, c) in &r.paths {
                    agg.entry(*pid).or_default().merge(c);
                }
            }
        }
        let mut out: Vec<PathObservation> = agg
            .into_iter()
            .map(|(pid, c)| PathObservation::new(pid, c.sent, c.lost))
            .collect();
        out.sort_unstable_by_key(|o| o.path);
        out
    }

    /// Per-path `(sent, lost)` totals of the window's *excluded* reports
    /// plus how many reports were excluded — what the diagnoser
    /// subtracts from an ingest-plane snapshot (which aggregated every
    /// folded report) to apply watchdog exclusions at diagnosis time.
    pub fn excluded_path_totals(
        &self,
        window: u64,
        excluded: &dyn Fn(NodeId) -> bool,
    ) -> (HashMap<PathId, (u64, u64)>, u64) {
        let inner = self.inner.read();
        let mut agg: HashMap<PathId, (u64, u64)> = HashMap::new();
        let mut reports = 0u64;
        if let Some(rs) = inner.get(&window) {
            for r in rs {
                if !excluded(r.pinger) {
                    continue;
                }
                reports += 1;
                for (pid, c) in &r.paths {
                    let e = agg.entry(*pid).or_insert((0, 0));
                    e.0 += c.sent;
                    e.1 += c.lost;
                }
            }
        }
        (agg, reports)
    }

    /// Aggregates the per-flow counters of a window over paths selected
    /// by `keep_path`, excluding flagged pingers (classification input).
    pub fn flow_samples(
        &self,
        window: u64,
        excluded: &dyn Fn(NodeId) -> bool,
        keep_path: &dyn Fn(PathId) -> bool,
    ) -> HashMap<(NodeId, PathId, u64), (u64, u64)> {
        let inner = self.inner.read();
        // Keyed by pinger too: two pingers probing the same path use
        // different source addresses, so a header-matching blackhole can
        // treat their otherwise-identical flows differently — merging them
        // would fake intermediate loss rates and hide bimodality.
        let mut agg: HashMap<(NodeId, PathId, u64), (u64, u64)> = HashMap::new();
        if let Some(reports) = inner.get(&window) {
            for r in reports {
                if excluded(r.pinger) {
                    continue;
                }
                for (&(pid, flow), &(sent, lost)) in &r.flows {
                    if !keep_path(pid) {
                        continue;
                    }
                    let e = agg.entry((r.pinger, pid, flow)).or_insert((0, 0));
                    e.0 += sent;
                    e.1 += lost;
                }
            }
        }
        agg
    }

    /// Drops windows older than `keep_from` (the paper keeps a database
    /// for later queries; the simulator prunes to bound memory).
    pub fn prune_before(&self, keep_from: u64) {
        self.inner.write().retain(|w, _| *w >= keep_from);
    }

    /// Number of stored reports for a window.
    pub fn reports_in_window(&self, window: u64) -> usize {
        self.inner.read().get(&window).map_or(0, |v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pinger: u32, window: u64, path: u32, sent: u64, lost: u64) -> PingerReport {
        let mut paths = HashMap::new();
        paths.insert(
            PathId(path),
            PathCounters {
                sent,
                lost,
                rtt_sum_us: 100.0 * (sent - lost) as f64,
                rtt_max_us: 120.0,
            },
        );
        PingerReport {
            pinger: NodeId(pinger),
            window,
            paths,
            in_rack: HashMap::new(),
            flows: HashMap::new(),
        }
    }

    #[test]
    fn aggregation_merges_pingers() {
        let store = ReportStore::new();
        store.ingest(report(1, 0, 7, 10, 2));
        store.ingest(report(2, 0, 7, 10, 3));
        let obs = store.window_observations(0, &|_| false);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].sent, 20);
        assert_eq!(obs[0].lost, 5);
    }

    #[test]
    fn excluded_pingers_are_ignored() {
        let store = ReportStore::new();
        store.ingest(report(1, 0, 7, 10, 0));
        store.ingest(report(2, 0, 7, 10, 10));
        let obs = store.window_observations(0, &|p| p == NodeId(2));
        assert_eq!(obs[0].lost, 0);
    }

    #[test]
    fn windows_are_separate() {
        let store = ReportStore::new();
        store.ingest(report(1, 0, 7, 10, 1));
        store.ingest(report(1, 1, 7, 10, 2));
        assert_eq!(store.window_observations(0, &|_| false)[0].lost, 1);
        assert_eq!(store.window_observations(1, &|_| false)[0].lost, 2);
    }

    #[test]
    fn prune_drops_old_windows() {
        let store = ReportStore::new();
        store.ingest(report(1, 0, 7, 10, 1));
        store.ingest(report(1, 5, 7, 10, 1));
        store.prune_before(3);
        assert_eq!(store.reports_in_window(0), 0);
        assert_eq!(store.reports_in_window(5), 1);
    }

    #[test]
    fn counters_mean_rtt() {
        let c = PathCounters {
            sent: 10,
            lost: 2,
            rtt_sum_us: 800.0,
            rtt_max_us: 150.0,
        };
        assert!((c.mean_rtt_us() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn all_lost_detects_sick_pinger() {
        let r = report(1, 0, 7, 10, 10);
        assert!(r.all_lost());
        let r = report(1, 0, 7, 10, 9);
        assert!(!r.all_lost());
    }
}
